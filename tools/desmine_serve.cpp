// desmine_serve — long-lived multi-session streaming detection service.
//
// Loads one trained artifact (desmine_cli train) and serves any number of
// concurrent detection sessions over a JSON-lines protocol, batching
// window scores across sessions by edge model (serve::SessionManager).
//
// Protocol: one flat JSON object per line on stdin (default) or per TCP
// connection (--listen PORT). Requests:
//   {"op": "open"}                        -> {"ok":true,"op":"open","session":N}
//     optional "degraded": "true" for per-session health tracking
//   {"op": "ingest", "session": "N", "<sensor>": "<state>", ...}
//     one tick; every key besides op/session is a sensor reading. Completed
//     windows are emitted as events (see below). Silent when accepted.
//   {"op": "close", "session": "N"}       finish the session: drains
//     in-flight windows, emits them, then acknowledges.
//   {"op": "stats", "session": "N"}       session counters
//   {"op": "ping"}                        liveness check
//   {"op": "reload"}                      hot-swap the served models from a
//     saved artifact (optional "model": path; defaults to --model). On
//     success -> {"ok":true,"op":"reload","generation":N}; on failure the
//     old generation keeps serving. SIGHUP triggers the same reload of the
//     --model path from the outside.
//   {"op": "shadow", "model": PATH}       arm PATH as a shadow candidate
//     (DESIGN.md §14): it scores a mirrored sample of live windows with no
//     client-visible effect. "model" defaults to --model.
//     -> {"ok":true,"op":"shadow","candidate":N}
//   {"op": "promote"}                     promote the armed candidate into
//     serving; requires the shadow gate to pass.
//     -> {"ok":true,"op":"promote","generation":N}
//   {"op": "rollback"}                    discard the armed candidate; the
//     active generation stays bit-identical.
//     -> {"ok":true,"op":"rollback","path":PATH}
//   {"op": "shutdown"}                    drain in-flight windows, ack, then
//     exit exactly like SIGTERM (exit code 130 — the contract is unchanged)
// Window events (scored asynchronously, emitted in window order on the
// session's own connection at the next protocol interaction):
//   {"event":"window","session":N,"window":W,"end_tick":T,"score":S,
//    "coverage":C,"degraded":false,"broken":"a->b c->d","unhealthy":"s2",
//    "failed":"a->b","shed":false}
//   `failed` lists edges whose score was unavailable (decode failure or an
//   open circuit breaker); `shed` marks windows dropped under overload.
// Errors: {"ok":false,"error":"..."} — the connection stays up.
//
// Options: --model FILE (required), --config FILE / --dump-config,
// --listen PORT, detector band overrides (--lo --hi --tolerance
// --min-coverage), serving knobs (--workers --max-batch --decode-cache
// --max-pending --reject-when-full), fault-tolerance knobs
// (--max-global-pending --max-queue-delay-ms --max-consecutive-shed
// --circuit-open-after --circuit-probe-after), compute-kernel knobs
// (--kernels --precision, DESIGN.md §16), telemetry knobs
// (--telemetry-port --slow-window-ms --sliding-window-s --sliding-epochs;
// /metrics serves Prometheus text, /statusz the version/uptime/generation/
// stage-quantiles document), health knobs as desmine_cli detect, and the
// shared observability flags. Exit codes match desmine_cli:
// 0 ok | 1 runtime error | 2 usage error | 130 interrupted.
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "desmine.h"
#include "obs/json.h"
#include "robust/checkpoint.h"
#include "robust/interrupt.h"
#include "util/error.h"
#include "util/version.h"

using namespace desmine;

namespace {

const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {
      "dump-config", "reject-when-full", "force-heap-fallback"};
  return flags;
}

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw PreconditionError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (boolean_flags().count(key) != 0) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw PreconditionError("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw PreconditionError("missing required option --" + key);
    }
    return it->second;
  }

  std::string get_or(const std::string& key,
                     const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

io::RunConfig effective_config(const Args& args) {
  io::RunConfig run;
  const std::string path = args.get_or("config", "");
  if (!path.empty()) run = io::load_run_config(path);

  auto& d = run.framework.detector;
  d.valid_lo = args.number("lo", d.valid_lo);
  d.valid_hi = args.number("hi", d.valid_hi);
  d.tolerance = args.number("tolerance", d.tolerance);
  d.min_coverage = args.number("min-coverage", d.min_coverage);

  auto& h = run.health;
  h.drop_after_missing = static_cast<std::size_t>(args.number(
      "health-drop-after", static_cast<double>(h.drop_after_missing)));
  h.stale_after = static_cast<std::size_t>(
      args.number("health-stale-after", static_cast<double>(h.stale_after)));
  h.max_unk_rate = args.number("health-unk-rate", h.max_unk_rate);
  h.unk_window = static_cast<std::size_t>(
      args.number("health-unk-window", static_cast<double>(h.unk_window)));
  h.readmit_after = static_cast<std::size_t>(args.number(
      "health-readmit-after", static_cast<double>(h.readmit_after)));

  auto& s = run.serve;
  s.workers = static_cast<std::size_t>(
      args.number("workers", static_cast<double>(s.workers)));
  s.max_batch = static_cast<std::size_t>(
      args.number("max-batch", static_cast<double>(s.max_batch)));
  s.decode_cache = static_cast<std::size_t>(
      args.number("decode-cache", static_cast<double>(s.decode_cache)));
  s.limits.max_pending_windows = static_cast<std::size_t>(args.number(
      "max-pending", static_cast<double>(s.limits.max_pending_windows)));
  s.limits.reject_when_full =
      s.limits.reject_when_full || args.flag("reject-when-full");
  s.limits.max_consecutive_shed = static_cast<std::size_t>(
      args.number("max-consecutive-shed",
                  static_cast<double>(s.limits.max_consecutive_shed)));
  s.max_global_pending = static_cast<std::size_t>(args.number(
      "max-global-pending", static_cast<double>(s.max_global_pending)));
  s.max_queue_delay_ms = args.number("max-queue-delay-ms",
                                     s.max_queue_delay_ms);
  s.circuit_open_after = static_cast<std::size_t>(args.number(
      "circuit-open-after", static_cast<double>(s.circuit_open_after)));
  s.circuit_probe_after = static_cast<std::size_t>(args.number(
      "circuit-probe-after", static_cast<double>(s.circuit_probe_after)));
  s.telemetry_port = static_cast<std::size_t>(
      args.number("telemetry-port", static_cast<double>(s.telemetry_port)));
  s.resident_bytes = static_cast<std::uint64_t>(args.number(
      "resident-bytes", static_cast<double>(s.resident_bytes)));
  s.resident_edges = static_cast<std::size_t>(args.number(
      "resident-edges", static_cast<double>(s.resident_edges)));
  s.slow_window_ms = args.number("slow-window-ms", s.slow_window_ms);
  s.sliding_window_s = args.number("sliding-window-s", s.sliding_window_s);
  s.sliding_epochs = static_cast<std::size_t>(args.number(
      "sliding-epochs", static_cast<double>(s.sliding_epochs)));
  s.detector = d;

  // --kernels/--precision override the config file's `tensor` section; the
  // choice is validated and applied at startup (after any --dump-config
  // exit), never mid-stream.
  run.tensor.kernels = args.get_or("kernels", run.tensor.kernels);
  run.tensor.precision = args.get_or("precision", run.tensor.precision);
  return run;
}

/// Per-stage latency quantiles out of the cumulative stage histograms —
/// shared by the stats op and /statusz.
void stage_quantiles_json(obs::JsonWriter& w) {
  const obs::RegistrySnapshot snap = obs::metrics().snapshot();
  w.key("stages").begin_object();
  for (const char* stage :
       {"queue_ms", "batch_form_ms", "decode_ms", "reorder_ms"}) {
    w.key(stage).begin_object();
    const auto it = snap.histograms.find(std::string("serve.stage.") + stage);
    const obs::Histogram::Snapshot s =
        it == snap.histograms.end() ? obs::Histogram::Snapshot{} : it->second;
    w.key("count").value(s.count);
    w.key("p50").value(s.quantile(0.50));
    w.key("p95").value(s.quantile(0.95));
    w.key("p99").value(s.quantile(0.99));
    w.end_object();
  }
  w.end_object();
}

/// Model-lifecycle fields shared by the stats op and /statusz: generation,
/// retired-generation drain, last reload failure, and the armed shadow
/// candidate's gate progress (null when none is armed).
void lifecycle_fields_json(obs::JsonWriter& w,
                           const serve::SessionManager& manager) {
  w.key("generation").value(manager.generation());
  w.key("retired_live").value(
      static_cast<std::uint64_t>(manager.registry().retired_live()));
  w.key("last_reload_error").value(manager.last_reload_error());
  w.key("candidate");
  const auto status = manager.shadow_status();
  if (!status) {
    w.null();
    return;
  }
  w.begin_object();
  w.key("path").value(status->path);
  w.key("candidate_id").value(status->candidate_id);
  w.key("observed").value(static_cast<std::uint64_t>(status->observed));
  w.key("sampled").value(static_cast<std::uint64_t>(status->sampled));
  w.key("alert_rate").value(status->alert_rate());
  w.key("agreement").value(status->agreement());
  w.key("failures").value(static_cast<std::uint64_t>(status->failures));
  w.key("gate_passed").value(manager.shadow_gate_passed());
  w.end_object();
}

/// The /statusz document: build identity, uptime, live session/model
/// counts, lifecycle state, and the per-stage quantiles.
std::string statusz_json(const serve::SessionManager& manager) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("version").value(util::desmine_version());
  w.key("uptime_s").value(manager.uptime_s());
  w.key("sessions").value(
      static_cast<std::uint64_t>(manager.session_count()));
  w.key("valid_models").value(
      static_cast<std::uint64_t>(manager.valid_model_count()));
  w.key("kernels").value(
      tensor::kernels::backend_name(tensor::kernels::active_backend()));
  w.key("precision").value(
      tensor::precision_name(manager.config().precision));
  lifecycle_fields_json(w, manager);
  stage_quantiles_json(w);
  w.end_object();
  return w.str();
}

/// One protocol endpoint (stdin/stdout or one TCP connection). Lines are
/// written whole so concurrent connections never interleave mid-line.
class LineWriter {
 public:
  virtual ~LineWriter() = default;
  virtual void write(const std::string& line) = 0;
};

class StdoutWriter : public LineWriter {
 public:
  void write(const std::string& line) override {
    std::cout << line << "\n" << std::flush;
  }
};

class FdWriter : public LineWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  void write(const std::string& line) override {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) return;  // peer went away; drop the rest silently
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
};

std::string error_line(const std::string& what) {
  obs::JsonWriter w;
  w.begin_object().key("ok").value(false).key("error").value(what);
  w.end_object();
  return w.str();
}

std::string window_line(std::uint64_t session,
                        const serve::WindowResult& r,
                        const core::SensorEncrypter& encrypter) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("event").value("window");
  w.key("session").value(static_cast<std::uint64_t>(session));
  w.key("window").value(static_cast<std::uint64_t>(r.window_index));
  w.key("end_tick").value(static_cast<std::uint64_t>(r.end_tick));
  w.key("score").value(r.anomaly_score);
  w.key("coverage").value(r.coverage);
  w.key("degraded").value(r.degraded);
  const auto& names = encrypter.kept_sensors();
  std::string broken;
  for (const auto& [src, dst] : r.broken) {
    if (!broken.empty()) broken += ' ';
    broken += names[src] + "->" + names[dst];
  }
  w.key("broken").value(broken);
  std::string unhealthy;
  for (const std::size_t n : r.unhealthy) {
    if (!unhealthy.empty()) unhealthy += ' ';
    unhealthy += names[n];
  }
  w.key("unhealthy").value(unhealthy);
  std::string failed;
  for (const auto& [src, dst] : r.failed) {
    if (!failed.empty()) failed += ' ';
    failed += names[src] + "->" + names[dst];
  }
  w.key("failed").value(failed);
  w.key("shed").value(r.shed);
  w.end_object();
  return w.str();
}

/// The protocol state machine, shared by stdin and TCP front-ends. One
/// instance per connection; the SessionManager behind it is shared, so
/// sessions on different connections batch into the same decodes.
class Protocol {
 public:
  /// `default_model` backs the reload op when no "model" field is given;
  /// `shutdown_hook` runs after a shutdown op's ack was written (it mirrors
  /// SIGTERM: sets the interrupt flag and unblocks the accept loop).
  Protocol(serve::SessionManager& manager, core::DegradedConfig degraded,
           std::string default_model, std::function<void()> shutdown_hook)
      : manager_(manager),
        degraded_(degraded),
        default_model_(std::move(default_model)),
        shutdown_hook_(std::move(shutdown_hook)) {}

  ~Protocol() {
    // A dropped connection takes its sessions with it.
    for (const std::uint64_t id : mine_) {
      try {
        manager_.erase(id);
      } catch (const std::exception&) {
      }
    }
  }

  void handle(const std::string& line, LineWriter& out) {
    if (line.empty()) return;
    std::map<std::string, std::string> fields;
    if (!robust::parse_flat_json(line, fields)) {
      out.write(error_line("malformed JSON line"));
      return;
    }
    const auto op_it = fields.find("op");
    if (op_it == fields.end()) {
      out.write(error_line("missing \"op\""));
      return;
    }
    const std::string op = op_it->second;
    try {
      if (op == "open") {
        cmd_open(fields, out);
      } else if (op == "ingest") {
        cmd_ingest(fields, out);
      } else if (op == "close") {
        cmd_close(fields, out);
      } else if (op == "stats") {
        cmd_stats(fields, out);
      } else if (op == "reload") {
        cmd_reload(fields, out);
      } else if (op == "shadow") {
        cmd_shadow(fields, out);
      } else if (op == "promote") {
        cmd_promote(out);
      } else if (op == "rollback") {
        cmd_rollback(out);
      } else if (op == "shutdown") {
        cmd_shutdown(out);
      } else if (op == "ping") {
        obs::JsonWriter w;
        w.begin_object().key("ok").value(true).key("op").value("ping");
        w.end_object();
        out.write(w.str());
      } else {
        out.write(error_line("unknown op '" + op + "'"));
      }
    } catch (const std::exception& e) {
      out.write(error_line(e.what()));
    }
  }

 private:
  std::uint64_t session_of(const std::map<std::string, std::string>& fields) {
    const auto it = fields.find("session");
    if (it == fields.end()) {
      throw PreconditionError("missing \"session\"");
    }
    const std::uint64_t id = std::strtoull(it->second.c_str(), nullptr, 10);
    if (mine_.count(id) == 0) {
      throw PreconditionError("unknown session '" + it->second + "'");
    }
    return id;
  }

  void emit_completed(std::uint64_t id, LineWriter& out) {
    while (const auto r = manager_.poll(id)) {
      out.write(window_line(id, *r, manager_.encrypter()));
    }
  }

  void cmd_open(const std::map<std::string, std::string>& fields,
                LineWriter& out) {
    core::DegradedConfig degraded;  // strict unless asked
    const auto it = fields.find("degraded");
    if (it != fields.end() && it->second == "true") degraded = degraded_;
    const std::uint64_t id = manager_.open(degraded);
    mine_.insert(id);
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("open");
    w.key("session").value(static_cast<std::uint64_t>(id));
    w.end_object();
    out.write(w.str());
  }

  void cmd_ingest(const std::map<std::string, std::string>& fields,
                  LineWriter& out) {
    const std::uint64_t id = session_of(fields);
    std::map<std::string, std::string> states = fields;
    states.erase("op");
    states.erase("session");
    const serve::IngestStatus status = manager_.ingest(id, states);
    if (status == serve::IngestStatus::kRejected) {
      out.write(error_line("backpressure: session " + std::to_string(id) +
                           " is full; poll and retry"));
    } else if (status == serve::IngestStatus::kClosed) {
      out.write(error_line("session " + std::to_string(id) + " is closed"));
    }
    emit_completed(id, out);
  }

  void cmd_close(const std::map<std::string, std::string>& fields,
                 LineWriter& out) {
    const std::uint64_t id = session_of(fields);
    manager_.close(id);
    manager_.drain(id);
    emit_completed(id, out);
    const serve::Session::Stats stats = manager_.stats(id);
    manager_.erase(id);
    mine_.erase(id);
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("close");
    w.key("session").value(static_cast<std::uint64_t>(id));
    w.key("windows").value(static_cast<std::uint64_t>(stats.windows_delivered));
    w.end_object();
    out.write(w.str());
  }

  void cmd_stats(const std::map<std::string, std::string>& fields,
                 LineWriter& out) {
    const std::uint64_t id = session_of(fields);
    emit_completed(id, out);
    const serve::Session::Stats stats = manager_.stats(id);
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("stats");
    w.key("session").value(static_cast<std::uint64_t>(id));
    w.key("ticks").value(static_cast<std::uint64_t>(stats.ticks));
    w.key("windows_assembled")
        .value(static_cast<std::uint64_t>(stats.windows_assembled));
    w.key("windows_delivered")
        .value(static_cast<std::uint64_t>(stats.windows_delivered));
    w.key("pending").value(static_cast<std::uint64_t>(stats.pending));
    w.key("shed").value(static_cast<std::uint64_t>(stats.shed));
    w.key("kernels").value(
        tensor::kernels::backend_name(tensor::kernels::active_backend()));
    w.key("precision").value(
        tensor::precision_name(manager_.config().precision));
    lifecycle_fields_json(w, manager_);
    w.key("uptime_s").value(manager_.uptime_s());
    w.key("version").value(util::desmine_version());
    stage_quantiles_json(w);
    w.end_object();
    out.write(w.str());
  }

  void cmd_reload(const std::map<std::string, std::string>& fields,
                  LineWriter& out) {
    const auto it = fields.find("model");
    const std::string path =
        it != fields.end() && !it->second.empty() ? it->second
                                                  : default_model_;
    const std::uint64_t generation = manager_.reload(path);
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("reload");
    w.key("generation").value(generation);
    w.end_object();
    out.write(w.str());
  }

  void cmd_shadow(const std::map<std::string, std::string>& fields,
                  LineWriter& out) {
    const auto it = fields.find("model");
    const std::string path =
        it != fields.end() && !it->second.empty() ? it->second
                                                  : default_model_;
    const std::uint64_t candidate = manager_.begin_shadow(path);
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("shadow");
    w.key("candidate").value(candidate);
    w.end_object();
    out.write(w.str());
  }

  void cmd_promote(LineWriter& out) {
    const std::uint64_t generation = manager_.promote();
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("promote");
    w.key("generation").value(generation);
    w.end_object();
    out.write(w.str());
  }

  void cmd_rollback(LineWriter& out) {
    const std::string path = manager_.rollback();
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("rollback");
    w.key("path").value(path);
    w.end_object();
    out.write(w.str());
  }

  void cmd_shutdown(LineWriter& out) {
    // Drain-then-exit: every in-flight window is scored before the ack, and
    // the hook then takes the same path SIGTERM does (exit code 130).
    manager_.drain();
    obs::JsonWriter w;
    w.begin_object().key("ok").value(true).key("op").value("shutdown");
    w.end_object();
    out.write(w.str());
    if (shutdown_hook_) shutdown_hook_();
  }

  serve::SessionManager& manager_;
  core::DegradedConfig degraded_;
  const std::string default_model_;
  const std::function<void()> shutdown_hook_;
  std::set<std::uint64_t> mine_;
};

int run_stdin(serve::SessionManager& manager, core::DegradedConfig degraded,
              const std::string& model_path) {
  Protocol protocol(manager, degraded, model_path,
                    [] { robust::request_interrupt(); });
  StdoutWriter out;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (robust::interrupted()) return 130;
    protocol.handle(line, out);
    if (robust::interrupted()) return 130;  // shutdown op, after its ack
  }
  return 0;
}

int run_tcp(serve::SessionManager& manager, core::DegradedConfig degraded,
            const std::string& model_path, int port) {
  // std::signal installs SA_RESTART handlers, under which a blocking
  // accept()/read() silently resumes and SIGINT/SIGTERM never interrupt the
  // server. Re-install without SA_RESTART so they fail with EINTR instead.
  struct sigaction sa {};
  sa.sa_handler = [](int) { robust::request_interrupt(); };
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) throw RuntimeError("socket() failed");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    ::close(listener);
    throw RuntimeError("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  DESMINE_LOG_INFO("serving", {obs::kv("port", static_cast<std::int64_t>(port))});

  std::vector<std::thread> connections;
  std::mutex fds_mu;
  std::vector<int> open_fds;
  // The shutdown op's hook: flag the interrupt like SIGTERM would, then
  // poke the listener so the accept loop below observes it immediately.
  const auto shutdown_hook = [listener] {
    robust::request_interrupt();
    ::shutdown(listener, SHUT_RDWR);
  };
  while (!robust::interrupted()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;  // interrupted or listener torn down
    {
      std::lock_guard lock(fds_mu);
      open_fds.push_back(fd);
    }
    connections.emplace_back([fd, &manager, degraded, &model_path,
                              &shutdown_hook] {
      Protocol protocol(manager, degraded, model_path, shutdown_hook);
      FdWriter out(fd);
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          std::string line = buffer.substr(0, nl);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          buffer.erase(0, nl + 1);
          protocol.handle(line, out);
        }
      }
      ::close(fd);
    });
  }
  ::close(listener);
  {
    // Unblock connection threads parked in read() so join() cannot hang on
    // an idle client; their reads return 0/-1 and the threads exit.
    std::lock_guard lock(fds_mu);
    for (const int fd : open_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections) t.join();
  return robust::interrupted() ? 130 : 0;
}

void usage() {
  std::cerr
      << "usage: desmine_serve --model model.bin [options]\n"
         "  --listen PORT        serve JSON-lines over TCP (127.0.0.1);\n"
         "                       default reads stdin, writes stdout\n"
         "  --config FILE        JSON config baseline (desmine_cli\n"
         "                       --dump-config for the schema)\n"
         "  --dump-config        print the effective config as JSON and exit\n"
         "  --lo 80 --hi 90 --tolerance 0 --min-coverage 0.5\n"
         "  --workers 0 --max-batch 32 --decode-cache 4096\n"
         "  --max-pending 64 --reject-when-full\n"
         "  --max-global-pending 0   cap in-flight windows across sessions\n"
         "  --max-queue-delay-ms 0   shed windows queued longer than this\n"
         "  --max-consecutive-shed 8 --circuit-open-after 5\n"
         "  --circuit-probe-after 16\n"
         "  --telemetry-port P   expose /metrics /healthz /statusz on\n"
         "                       127.0.0.1:P (Prometheus text format)\n"
         "  --resident-bytes 0   mapped (v4) models: LRU byte budget for\n"
         "                       materialized edge decode state (0 = all)\n"
         "  --resident-edges 0   mapped models: cap on materialized edges\n"
         "  --force-heap-fallback  read v4 artifacts into heap memory\n"
         "                       instead of mmap (debug/portability)\n"
         "  --kernels auto|scalar|blocked|avx2   compute-kernel backend\n"
         "                       (default auto: DESMINE_KERNELS env, else\n"
         "                       best available for this CPU)\n"
         "  --precision f32|int8 decode precision for window scoring\n"
         "  --slow-window-ms MS  log span trees of windows slower than MS\n"
         "  --sliding-window-s 60 --sliding-epochs 6\n"
         "  --health-drop-after 3 --health-stale-after 0 --health-unk-rate\n"
         "  0.5 --health-unk-window 64 --health-readmit-after 8\n"
         "  --log-level L --log-json FILE --metrics-out FILE\n"
         "protocol: one flat JSON object per line; see the tool header\n"
         "lifecycle ops: shadow (arm a candidate), promote (gate-checked\n"
         "hot swap), rollback (discard; serving untouched) — DESIGN.md §14\n"
         "signals: SIGHUP hot-reloads --model; SIGTERM/SIGINT drain and exit\n"
         "exit codes: 0 ok | 1 runtime error | 2 usage error | 130 interrupted\n";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot write " + path);
  out << content << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Args> args;
  try {
    args = std::make_unique<Args>(argc, argv, 1);
    obs::logger().set_level(
        obs::parse_level(args->get_or("log-level", "info")));
    const std::string log_json = args->get_or("log-json", "");
    if (!log_json.empty()) {
      obs::logger().add_sink(std::make_shared<obs::JsonLinesSink>(log_json));
    }
  } catch (const std::exception& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  }
  try {
    io::RunConfig run = effective_config(*args);
    if (args->flag("dump-config")) {
      std::cout << io::run_config_to_json(run);
      return 0;
    }
    run.serve.precision = tensor::kernels::apply_kernel_config(run.tensor);
    DESMINE_LOG_INFO(
        "compute kernels selected",
        {obs::kv("backend", tensor::kernels::backend_name(
                                tensor::kernels::active_backend())),
         obs::kv("precision", tensor::precision_name(run.serve.precision))});

    const std::string model_path = args->get("model");
    if (args->flag("force-heap-fallback")) {
      // Honored by io::ArtifactMap::open for this process and any reload.
      ::setenv("DESMINE_FORCE_HEAP_FALLBACK", "1", 1);
    }
    // Version-dispatching open: a v4 artifact is mmap()ed and served through
    // zero-copy weight views (restart-to-first-window is O(header + TOC));
    // v1–v3 deserialize onto the heap as before. Bit-identical either way.
    serve::SessionManager manager(model_path, run.serve);
    core::DegradedConfig degraded;
    degraded.enabled = true;
    degraded.health = run.health;

    // Telemetry plane: declared after the manager so the listener stops
    // before the sessions it reads from are torn down.
    obs::HttpExposition exposition;
    if (run.serve.telemetry_port != 0) {
      obs::mount_telemetry(exposition,
                           [&manager] { return statusz_json(manager); });
      exposition.start(static_cast<std::uint16_t>(run.serve.telemetry_port));
      DESMINE_LOG_INFO("telemetry up",
                       {obs::kv("port", exposition.port()),
                        obs::kv("endpoints", "/metrics /healthz /statusz")});
    }

    // SIGHUP watcher: a control thread polls the reload flag and hot-swaps
    // the --model artifact off the protocol/worker threads. Reload failures
    // are logged by the manager and leave the old generation serving.
    robust::install_reload_signal();
    std::atomic<bool> watcher_stop{false};
    std::thread reload_watcher([&manager, &watcher_stop, model_path] {
      while (!watcher_stop.load(std::memory_order_relaxed)) {
        if (robust::reload_requested()) {
          robust::clear_reload_request();
          try {
            manager.reload(model_path);
          } catch (const std::exception&) {
            // already counted (serve.reload.failures) and logged
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });

    robust::install_signal_flag();
    const std::string listen = args->get_or("listen", "");
    const int rc =
        listen.empty()
            ? run_stdin(manager, degraded, model_path)
            : run_tcp(manager, degraded, model_path,
                      static_cast<int>(std::stod(listen)));

    watcher_stop.store(true, std::memory_order_relaxed);
    reload_watcher.join();

    const std::string metrics_out = args->get_or("metrics-out", "");
    if (!metrics_out.empty()) {
      write_file(metrics_out, obs::metrics().to_json());
    }
    return rc;
  } catch (const PreconditionError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
