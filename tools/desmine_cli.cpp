// desmine command-line tool.
//
// Subcommands:
//   generate --out plant.csv [--days N --minutes M --seed S]
//       Emit a synthetic plant series as CSV (for trying the tool offline).
//   train --train a.csv --dev b.csv --out model.bin [options]
//       Fit the framework (Algorithm 1) on CSV event series and save the
//       artifact.
//   detect --model model.bin --test c.csv [--lo L --hi H --tolerance T]
//       Score a CSV test series (Algorithm 2); prints one line per window.
//       Degraded-mode options (DESIGN.md §8): --degraded enables sensor
//       health tracking; unhealthy sensors are excluded per window, scores
//       renormalized over the survivors, and windows below --min-coverage
//       emit "no-verdict" instead of a fake score. --on-bad-row
//       throw|skip|quarantine selects the CSV tolerant mode; quarantined
//       rows are journaled to --quarantine FILE (default
//       <test>.quarantine.jsonl) and surface as missing ticks.
//   inspect --model model.bin [--lo L --hi H]
//       Print graph statistics (per-band edges, degrees, popular sensors).
//
// Observability options (any subcommand):
//   --log-level trace|debug|info|warn|error|off   (default info)
//   --log-json FILE       structured JSON-lines log in addition to stderr
//   --metrics-out FILE    dump the metrics registry as JSON on exit
//   --metrics-interval-s N  additionally re-write --metrics-out atomically
//                         every N seconds while the command runs
//   --trace-out FILE      record spans; dump chrome://tracing JSON on exit
//
// Exit codes (documented in README.md):
//   0    success
//   1    runtime failure (I/O error, corrupt artifact, ...)
//   2    usage error (unknown command, bad/missing option, precondition)
//   3    training completed but some pairs permanently failed
//   4    detection completed degraded (some windows below the coverage
//        quorum emitted no verdict)
//   130  interrupted (SIGINT/SIGTERM); checkpoint and metrics are flushed
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "data/plant.h"
#include "io/config_json.h"
#include "io/csv.h"
#include "io/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/errors.h"
#include "robust/interrupt.h"
#include "tensor/kernels.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

using namespace desmine;

namespace {

/// Options that take no value; present means true.
const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {"resume", "degraded",
                                              "dump-config"};
  return flags;
}

/// Minimal --key value argument map. Accepts both "--key value" and
/// "--key=value"; flags listed in boolean_flags() take no value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw PreconditionError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (boolean_flags().count(key) != 0) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw PreconditionError("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw PreconditionError("missing required option --" + key);
    }
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// --config FILE as the option baseline; explicit flags override it.
io::RunConfig base_config(const Args& args) {
  const std::string path = args.get_or("config", "");
  if (path.empty()) return {};
  return io::load_run_config(path);
}

/// Fold --kernels/--precision over the config file's `tensor` section
/// (explicit flags win, like every other option). The caller applies the
/// result via tensor::kernels::apply_kernel_config after any --dump-config
/// exit, so a dump reflects the flags without requiring the backend to be
/// available on this machine.
void merge_tensor_flags(const Args& args, io::RunConfig& run) {
  run.tensor.kernels = args.get_or("kernels", run.tensor.kernels);
  run.tensor.precision = args.get_or("precision", run.tensor.precision);
}

core::FrameworkConfig config_from(const Args& args,
                                  core::FrameworkConfig cfg) {
  cfg.window.word_length = static_cast<std::size_t>(
      args.number("word", static_cast<double>(cfg.window.word_length)));
  cfg.window.word_stride = static_cast<std::size_t>(
      args.number("word-stride", static_cast<double>(cfg.window.word_stride)));
  cfg.window.sentence_length = static_cast<std::size_t>(args.number(
      "sentence", static_cast<double>(cfg.window.sentence_length)));
  cfg.window.sentence_stride = static_cast<std::size_t>(args.number(
      "sentence-stride", static_cast<double>(cfg.window.sentence_stride)));

  auto& model = cfg.miner.translation.model;
  model.embedding_dim = static_cast<std::size_t>(
      args.number("embedding", static_cast<double>(model.embedding_dim)));
  model.hidden_dim = static_cast<std::size_t>(
      args.number("hidden", static_cast<double>(model.hidden_dim)));
  model.num_layers = static_cast<std::size_t>(
      args.number("layers", static_cast<double>(model.num_layers)));
  model.dropout = static_cast<float>(
      args.number("dropout", static_cast<double>(model.dropout)));
  model.max_decode_length = cfg.window.sentence_length + 2;

  auto& trainer = cfg.miner.translation.trainer;
  trainer.steps = static_cast<std::size_t>(
      args.number("steps", static_cast<double>(trainer.steps)));
  trainer.batch_size = static_cast<std::size_t>(
      args.number("batch", static_cast<double>(trainer.batch_size)));
  trainer.lr =
      static_cast<float>(args.number("lr", static_cast<double>(trainer.lr)));

  cfg.miner.seed = static_cast<std::uint64_t>(
      args.number("seed", static_cast<double>(cfg.miner.seed)));
  cfg.miner.threads = static_cast<std::size_t>(
      args.number("threads", static_cast<double>(cfg.miner.threads)));

  cfg.miner.checkpoint_path =
      args.get_or("checkpoint", cfg.miner.checkpoint_path);
  cfg.miner.resume = cfg.miner.resume || args.flag("resume");
  cfg.miner.pair_timeout_s =
      args.number("pair-timeout-s", cfg.miner.pair_timeout_s);
  cfg.miner.retry.max_retries = static_cast<std::size_t>(args.number(
      "max-retries", static_cast<double>(cfg.miner.retry.max_retries)));
  if (cfg.miner.resume && cfg.miner.checkpoint_path.empty()) {
    throw PreconditionError("--resume requires --checkpoint FILE");
  }

  cfg.detector.valid_lo = args.number("lo", cfg.detector.valid_lo);
  cfg.detector.valid_hi = args.number("hi", cfg.detector.valid_hi);
  cfg.detector.tolerance = args.number("tolerance", cfg.detector.tolerance);
  return cfg;
}

int cmd_generate(const Args& args) {
  data::PlantConfig cfg;
  cfg.days = static_cast<std::size_t>(args.number("days", 10));
  cfg.minutes_per_day =
      static_cast<std::size_t>(args.number("minutes", 240));
  cfg.seed = static_cast<std::uint64_t>(args.number("seed", 7));
  cfg.num_components = static_cast<std::size_t>(args.number("components", 3));
  cfg.sensors_per_component = 3;
  cfg.num_popular = 1;
  cfg.num_lazy = 2;
  cfg.num_constant = 1;
  cfg.anomalies.clear();
  const double anomaly_day = args.number("anomaly-day", -1);
  if (anomaly_day >= 0) {
    cfg.anomalies.push_back({static_cast<std::size_t>(anomaly_day), {}});
  }
  const auto plant = data::generate_plant(cfg);
  io::write_series_csv(args.get("out"), plant.series);
  std::cout << "wrote " << plant.series.size() << " sensors x "
            << cfg.days * cfg.minutes_per_day << " ticks to "
            << args.get("out") << "\n";
  return 0;
}

int cmd_train(const Args& args) {
  io::RunConfig run = base_config(args);
  run.framework = config_from(args, run.framework);
  merge_tensor_flags(args, run);
  if (args.flag("dump-config")) {
    std::cout << io::run_config_to_json(run);
    return 0;
  }
  // Training always runs f32; --kernels still picks the backend it runs on.
  tensor::kernels::apply_kernel_config(run.tensor);
  obs::logger().info("compute kernels selected",
                     {obs::kv("backend", tensor::kernels::backend_name(
                                             tensor::kernels::active_backend()))});
  const auto train_series = io::read_series_csv(args.get("train"));
  const auto dev_series = io::read_series_csv(args.get("dev"));
  core::FrameworkConfig cfg = run.framework;

  // Ctrl-C unwinds mining gracefully: the miner stops scheduling pairs and
  // throws robust::Interrupted after the checkpoint journal is flushed.
  robust::install_signal_flag();
  cfg.miner.should_abort = [] { return robust::interrupted(); };

  // Per-pair progress through the logger (visible at --log-level info;
  // the miner also emits per-pair debug records with step counts).
  cfg.miner.on_pair = [](const core::PairEvent& e) {
    obs::logger().info(
        "pair " + std::to_string(e.pair_index + 1) + "/" +
            std::to_string(e.pair_count) + (e.resumed ? " (resumed)" : ""),
        {obs::kv("src", e.src_name), obs::kv("dst", e.dst_name),
         obs::kv("bleu", e.bleu), obs::kv("wall_ms", e.wall_ms),
         obs::kv("steps", e.steps_run), obs::kv("attempts", e.attempts)});
  };

  std::cout << "training pairwise models over " << train_series.size()
            << " sensors...\n";
  core::Framework fw(cfg);
  fw.fit(train_series, dev_series);
  io::save_framework(fw, args.get("out"));
  std::cout << "trained " << fw.graph().edges().size()
            << " directional models ("
            << fw.encrypter().dropped_sensors().size()
            << " constant sensors dropped); saved to " << args.get("out")
            << "\n";

  const auto& failures = fw.graph().failures();
  if (!failures.empty()) {
    std::cerr << failures.size()
              << " pair(s) permanently failed (artifact saved without "
                 "those edges):\n";
    for (const auto& f : failures) {
      std::cerr << "  " << fw.graph().name(f.src) << " -> "
                << fw.graph().name(f.dst) << " after " << f.attempts
                << " attempt(s): " << f.reason << "\n";
    }
    return 3;
  }
  return 0;
}

io::OnBadRow parse_on_bad_row(const std::string& v) {
  if (v == "throw") return io::OnBadRow::kThrow;
  if (v == "skip") return io::OnBadRow::kSkip;
  if (v == "quarantine") return io::OnBadRow::kQuarantine;
  throw PreconditionError("--on-bad-row must be throw|skip|quarantine, got '" +
                          v + "'");
}

robust::HealthConfig health_from(const Args& args, robust::HealthConfig h) {
  h.drop_after_missing = static_cast<std::size_t>(args.number(
      "health-drop-after", static_cast<double>(h.drop_after_missing)));
  h.stale_after = static_cast<std::size_t>(
      args.number("health-stale-after", static_cast<double>(h.stale_after)));
  h.max_unk_rate = args.number("health-unk-rate", h.max_unk_rate);
  h.unk_window = static_cast<std::size_t>(
      args.number("health-unk-window", static_cast<double>(h.unk_window)));
  h.readmit_after = static_cast<std::size_t>(args.number(
      "health-readmit-after", static_cast<double>(h.readmit_after)));
  return h;
}

int cmd_detect(const Args& args) {
  io::RunConfig run = base_config(args);
  core::FrameworkConfig cfg;
  cfg.detector = run.framework.detector;
  cfg.detector.valid_lo = args.number("lo", cfg.detector.valid_lo);
  cfg.detector.valid_hi = args.number("hi", cfg.detector.valid_hi);
  cfg.detector.tolerance = args.number("tolerance", cfg.detector.tolerance);
  cfg.detector.min_coverage =
      args.number("min-coverage", cfg.detector.min_coverage);
  const robust::HealthConfig health = health_from(args, run.health);
  merge_tensor_flags(args, run);
  if (args.flag("dump-config")) {
    run.framework.detector = cfg.detector;
    run.health = health;
    std::cout << io::run_config_to_json(run);
    return 0;
  }
  const tensor::Precision precision =
      tensor::kernels::apply_kernel_config(run.tensor);
  obs::logger().info(
      "compute kernels selected",
      {obs::kv("backend", tensor::kernels::backend_name(
                              tensor::kernels::active_backend())),
       obs::kv("precision", tensor::precision_name(precision))});

  const bool degraded_mode = args.flag("degraded");
  io::CsvOptions csv_opts;
  csv_opts.on_bad_row = parse_on_bad_row(args.get_or("on-bad-row", "throw"));
  csv_opts.max_bad_rows =
      static_cast<std::size_t>(args.number("max-bad-rows", 1000));
  if (csv_opts.on_bad_row == io::OnBadRow::kQuarantine) {
    csv_opts.quarantine_path =
        args.get_or("quarantine", args.get("test") + ".quarantine.jsonl");
  }

  // Pre-register the degraded-mode audit counters so --metrics-out always
  // carries them (zero-valued on a clean run).
  obs::metrics().counter("csv.rows_bad");
  obs::metrics().counter("csv.rows_quarantined");
  obs::metrics().counter("detect.window.degraded");
  obs::metrics().counter("detect.sensor.dropped");

  core::Framework fw = io::load_framework(args.get("model"), cfg);
  io::CsvReport report;
  const auto test_series =
      io::read_series_csv(args.get("test"), csv_opts, &report);
  if (report.rows_bad > 0) {
    std::cerr << report.rows_bad << " malformed CSV row(s) "
              << (csv_opts.on_bad_row == io::OnBadRow::kQuarantine
                      ? "quarantined to " + csv_opts.quarantine_path
                      : "skipped")
              << "\n";
  }

  const auto result =
      degraded_mode
          ? fw.detect_degraded(test_series, health, report.missing_ticks,
                               precision)
          : fw.detect(test_series, precision);

  std::size_t degraded_windows = 0;
  if (degraded_mode) {
    util::Table t({"window", "anomaly score", "broken", "valid", "coverage"});
    for (std::size_t w = 0; w < result.anomaly_scores.size(); ++w) {
      const bool no_verdict = result.degraded[w] != 0;
      if (no_verdict) ++degraded_windows;
      t.add_row({std::to_string(w),
                 no_verdict ? "no-verdict"
                            : util::fixed(result.anomaly_scores[w], 3),
                 std::to_string(result.broken_edges[w].size()),
                 std::to_string(result.valid_edges.size()),
                 util::fixed(result.coverage[w], 2)});
    }
    std::cout << t.to_text("detection (band [" +
                           util::fixed(cfg.detector.valid_lo, 0) + ", " +
                           util::fixed(cfg.detector.valid_hi, 0) +
                           "), degraded mode)");
  } else {
    util::Table t({"window", "anomaly score", "broken", "valid"});
    for (std::size_t w = 0; w < result.anomaly_scores.size(); ++w) {
      t.add_row({std::to_string(w), util::fixed(result.anomaly_scores[w], 3),
                 std::to_string(result.broken_edges[w].size()),
                 std::to_string(result.valid_edges.size())});
    }
    std::cout << t.to_text("detection (band [" +
                           util::fixed(cfg.detector.valid_lo, 0) + ", " +
                           util::fixed(cfg.detector.valid_hi, 0) + "))");
  }

  if (degraded_mode) {
    std::cerr << "sensor dropouts: "
              << obs::metrics().counter("detect.sensor.dropped").value()
              << ", rows quarantined: "
              << obs::metrics().counter("csv.rows_quarantined").value()
              << ", degraded windows: " << degraded_windows << "\n";
  }
  if (degraded_mode && degraded_windows > 0) {
    std::cerr << degraded_windows << " of " << result.anomaly_scores.size()
              << " window(s) emitted no verdict (coverage below "
              << util::fixed(cfg.detector.min_coverage, 2) << ")\n";
    return 4;
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  core::Framework fw = io::load_framework(args.get("model"));
  const auto& g = fw.graph();
  std::cout << "sensors: " << g.sensor_count()
            << ", directional models: " << g.edges().size()
            << ", kernels: "
            << tensor::kernels::backend_name(
                   tensor::kernels::active_backend())
            << "\n";

  util::Table t({"BLEU band", "edges", "active sensors", "max in-degree"});
  const double edges_total = static_cast<double>(g.edges().size());
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0, 60}, {60, 70}, {70, 80}, {80, 90}, {90, 100.5}}) {
    const auto sub = g.filter_bleu(lo, hi);
    const auto in = sub.in_degrees();
    std::size_t max_in = 0;
    for (std::size_t v : in) max_in = std::max(max_in, v);
    t.add_row({"[" + util::fixed(lo, 0) + ", " + util::fixed(hi, 0) + ")",
               std::to_string(sub.edges().size()) + " (" +
                   util::fixed(100.0 * sub.edges().size() / edges_total, 1) +
                   "%)",
               std::to_string(sub.active_sensors().size()),
               std::to_string(max_in)});
  }
  std::cout << t.to_text("band decomposition");

  const double lo = args.number("lo", 80.0), hi = args.number("hi", 90.0);
  const auto band = g.filter_bleu(lo, hi);
  const auto in = band.in_degrees();
  std::cout << "in-degrees in [" << lo << ", " << hi << "):";
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    if (in[v] > 0) std::cout << " " << g.name(v) << "=" << in[v];
  }
  std::cout << "\n";
  return 0;
}

void usage() {
  std::cerr
      << "usage: desmine_cli <generate|train|detect|inspect> [--option value]...\n"
         "  generate --out plant.csv [--days N --minutes M --seed S --anomaly-day D]\n"
         "  train    --train a.csv --dev b.csv --out model.bin\n"
         "           [--word 10 --word-stride 1 --sentence 20 --sentence-stride 20\n"
         "            --hidden 64 --embedding 64 --layers 2 --dropout 0.2\n"
         "            --steps 1000 --batch 16 --lr 0.01 --seed 42 --threads 0]\n"
         "           [--checkpoint FILE [--resume] --pair-timeout-s 0\n"
         "            --max-retries 2]\n"
         "  detect   --model model.bin --test c.csv [--lo 80 --hi 90 --tolerance 0]\n"
         "           [--degraded --min-coverage 0.5 --on-bad-row throw|skip|quarantine\n"
         "            --quarantine FILE --max-bad-rows 1000 --health-drop-after 3\n"
         "            --health-stale-after 0 --health-unk-rate 0.5\n"
         "            --health-unk-window 64 --health-readmit-after 8]\n"
         "  inspect  --model model.bin [--lo 80 --hi 90]\n"
         "config files (train/detect):\n"
         "  --config FILE        JSON config as the option baseline (explicit\n"
         "                       flags still win); see --dump-config\n"
         "  --dump-config        print the effective config as JSON and exit\n"
         "                       (also: desmine_cli --dump-config for defaults)\n"
         "compute kernels (train/detect; config keys tensor.kernels/.precision):\n"
         "  --kernels auto|scalar|blocked|avx2   backend for the dense kernels\n"
         "                       (default auto: DESMINE_KERNELS env, else best\n"
         "                       available for this CPU)\n"
         "  --precision f32|int8 decode precision for detect scoring (training\n"
         "                       always runs f32)\n"
         "observability (any subcommand; --key=value also accepted):\n"
         "  --log-level trace|debug|info|warn|error|off   (default info)\n"
         "  --log-json FILE      JSON-lines log in addition to stderr\n"
         "  --metrics-out FILE   dump counters/gauges/histograms JSON on exit\n"
         "  --metrics-interval-s N  also re-write --metrics-out atomically\n"
         "                       every N seconds during the run\n"
         "  --trace-out FILE     dump chrome://tracing span JSON on exit\n"
         "exit codes: 0 ok | 1 runtime error | 2 usage error |\n"
         "            3 trained with permanently failed pairs |\n"
         "            4 detection completed degraded | 130 interrupted\n";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot write " + path);
  out << content << "\n";
}

/// Configure the obs layer from the shared flags before a command runs.
void setup_observability(const Args& args) {
  obs::logger().set_level(obs::parse_level(args.get_or("log-level", "info")));
  const std::string log_json = args.get_or("log-json", "");
  if (!log_json.empty()) {
    obs::logger().add_sink(std::make_shared<obs::JsonLinesSink>(log_json));
  }
  if (!args.get_or("trace-out", "").empty()) obs::tracer().enable();
  // Pre-register the arena instruments so every --metrics-out dump carries
  // them, even for commands that never touch the numeric hot path.
  obs::metrics().gauge("tensor.workspace.bytes_peak");
  obs::metrics().counter("tensor.workspace.rewinds");
}

/// Background metrics flusher for long runs: while a command executes,
/// re-write --metrics-out every interval via io::write_file_atomic, so an
/// external watcher always reads a complete JSON document mid-run (a plain
/// ofstream would expose torn half-written files). Tool-level on purpose —
/// the obs layer stays io-free.
class PeriodicMetricsWriter {
 public:
  PeriodicMetricsWriter(std::string path, double interval_s)
      : path_(std::move(path)) {
    DESMINE_EXPECTS(interval_s > 0.0, "--metrics-interval-s must be > 0");
    worker_ = std::thread([this, interval_s] {
      std::unique_lock lock(mu_);
      const auto interval = std::chrono::duration<double>(interval_s);
      while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
        lock.unlock();
        try {
          io::write_file_atomic(path_, obs::metrics().to_json());
        } catch (const std::exception& e) {
          // A failed flush must not kill the run; the exit dump still runs.
          obs::logger().warn("periodic metrics write failed",
                             {obs::kv("path", path_), obs::kv("error", e.what())});
        }
        lock.lock();
      }
    });
  }

  ~PeriodicMetricsWriter() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

 private:
  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread worker_;
};

/// Export metrics/trace dumps after a command finished.
void dump_observability(const Args& args) {
  const std::string metrics_out = args.get_or("metrics-out", "");
  if (!metrics_out.empty()) {
    write_file(metrics_out, obs::metrics().to_json());
    obs::logger().info("metrics written", {obs::kv("path", metrics_out)});
  }
  const std::string trace_out = args.get_or("trace-out", "");
  if (!trace_out.empty()) {
    write_file(trace_out, obs::tracer().to_chrome_json());
    write_file(trace_out + ".tree.json", obs::tracer().to_tree_json());
    obs::logger().info("trace written", {obs::kv("path", trace_out)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--dump-config" || command == "dump-config") {
    std::cout << io::run_config_to_json({});
    return 0;
  }
  std::unique_ptr<Args> args;
  try {
    args = std::make_unique<Args>(argc, argv, 2);
    setup_observability(*args);
  } catch (const std::exception& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  }
  try {
    // --metrics-interval-s N: flush --metrics-out atomically every N
    // seconds while the command runs (long mining runs become observable).
    std::unique_ptr<PeriodicMetricsWriter> metrics_writer;
    const double metrics_interval = args->number("metrics-interval-s", 0.0);
    const std::string metrics_out = args->get_or("metrics-out", "");
    if (metrics_interval > 0.0) {
      if (metrics_out.empty()) {
        throw PreconditionError(
            "--metrics-interval-s requires --metrics-out");
      }
      metrics_writer = std::make_unique<PeriodicMetricsWriter>(
          metrics_out, metrics_interval);
    }

    int rc = 2;
    if (command == "generate") {
      rc = cmd_generate(*args);
    } else if (command == "train") {
      rc = cmd_train(*args);
    } else if (command == "detect") {
      rc = cmd_detect(*args);
    } else if (command == "inspect") {
      rc = cmd_inspect(*args);
    } else {
      usage();
      return 2;
    }
    dump_observability(*args);
    return rc;
  } catch (const robust::Interrupted& e) {
    // Completed pairs are already durable in the checkpoint journal; flush
    // the observability dumps so an interrupted run is still inspectable.
    std::cerr << "interrupted: " << e.what() << "\n";
    try {
      dump_observability(*args);
    } catch (const std::exception& dump_error) {
      std::cerr << "error: " << dump_error.what() << "\n";
    }
    return 130;
  } catch (const PreconditionError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
