// desmine_top — live terminal dashboard for a running desmine_serve.
//
// Polls http://127.0.0.1:<port>/metrics (the Prometheus exposition mounted
// by desmine_serve --telemetry-port) every --interval-s seconds and renders
// the serving layer's vitals in place:
//   * sessions, uptime-style counters (ticks, windows scored, slow windows)
//   * throughput rates (ticks/s, windows/s) from scrape-to-scrape deltas
//   * recent latency quantiles (the sliding serve.window.latency_ms summary)
//   * per-stage p50/p95/p99 (queue / batch_form / decode / reorder)
//   * fault tolerance (model generation, shed windows, global rejects,
//     circuit breaker transitions, failed edge scores)
//   * continual mining lifecycle (drift verdict counts, armed shadow
//     candidate, shadow agreement, promotions/rollbacks, retired
//     generations still live)
//   * degraded-mode counters (unhealthy sensors, degraded windows)
//
// Options:
//   --port P         telemetry port of the target desmine_serve (required)
//   --interval-s N   poll period in seconds (default 2)
//   --frames N       render N frames then exit (default 0 = run forever);
//                    also the test hook — one frame makes the tool a plain
//                    scrape-and-print
//   --no-clear       append frames instead of redrawing in place
// Exit codes: 0 ok | 1 scrape failed | 2 usage error.
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_exposition.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

using namespace desmine;

namespace {

const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {"no-clear"};
  return flags;
}

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw PreconditionError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (boolean_flags().count(key) != 0) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw PreconditionError("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw PreconditionError("missing required option --" + key);
    }
    return it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// One scrape, parsed: full sample name (with label set) -> value. The
/// Prometheus text format is line-oriented, so "name{labels} value" parsing
/// is a split at the last space.
using Samples = std::map<std::string, double>;

Samples parse_prometheus(const std::string& body) {
  Samples out;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (value == "+Inf") {
      out[name] = std::numeric_limits<double>::infinity();
    } else if (value == "-Inf") {
      out[name] = -std::numeric_limits<double>::infinity();
    } else if (value == "NaN") {
      out[name] = std::numeric_limits<double>::quiet_NaN();
    } else {
      try {
        out[name] = std::stod(value);
      } catch (const std::exception&) {
      }
    }
  }
  return out;
}

double sample(const Samples& s, const std::string& name, double fallback = 0.0) {
  const auto it = s.find(name);
  return it == s.end() ? fallback : it->second;
}

std::string fixed_or_dash(double v, int digits = 2) {
  if (!std::isfinite(v)) return "-";
  return util::fixed(v, digits);
}

/// Scrape-to-scrape rate of a counter (per second); "-" before the second
/// frame or across a server restart (counter went backwards).
std::string rate(const Samples& now, const Samples* prev,
                 const std::string& name, double dt_s) {
  if (prev == nullptr || dt_s <= 0.0) return "-";
  const double d = sample(now, name) - sample(*prev, name);
  if (d < 0.0) return "-";
  return util::fixed(d / dt_s, 1);
}

std::string render(const Samples& s, const Samples* prev, double dt_s,
                   std::uint16_t port) {
  std::string out = "desmine_top — 127.0.0.1:" + std::to_string(port) + "\n";

  util::Table vitals({"sessions", "ticks/s", "windows/s", "windows_total",
                      "slow", "rejected"});
  vitals.add_row(
      {util::fixed(sample(s, "desmine_serve_sessions"), 0),
       rate(s, prev, "desmine_serve_ticks_total", dt_s),
       rate(s, prev, "desmine_serve_windows_scored_total", dt_s),
       util::fixed(sample(s, "desmine_serve_windows_scored_total"), 0),
       util::fixed(sample(s, "desmine_serve_window_slow_total"), 0),
       util::fixed(sample(s, "desmine_serve_ingest_rejected_total"), 0)});
  out += vitals.to_text("serving");

  const std::string recent = "desmine_serve_window_latency_ms_recent";
  util::Table latency({"window", "p50_ms", "p95_ms", "p99_ms", "count"});
  latency.add_row({"recent",
                   fixed_or_dash(sample(s, recent + "{quantile=\"0.5\"}")),
                   fixed_or_dash(sample(s, recent + "{quantile=\"0.95\"}")),
                   fixed_or_dash(sample(s, recent + "{quantile=\"0.99\"}")),
                   util::fixed(sample(s, recent + "_count"), 0)});
  out += latency.to_text("window latency (sliding)");

  util::Table stages({"stage", "mean_ms", "count"});
  for (const char* stage :
       {"queue_ms", "batch_form_ms", "decode_ms", "reorder_ms"}) {
    const std::string base = std::string("desmine_serve_stage_") + stage;
    const double count = sample(s, base + "_count");
    const double mean = count > 0 ? sample(s, base + "_sum") / count : NAN;
    stages.add_row({stage, fixed_or_dash(mean, 3), util::fixed(count, 0)});
  }
  out += stages.to_text("stage breakdown (cumulative)");

  util::Table faults({"generation", "shed", "shed/s", "global_rejects",
                      "circuit_open", "circuit_closed", "failed_edges"});
  faults.add_row(
      {util::fixed(sample(s, "desmine_serve_model_generation"), 0),
       util::fixed(sample(s, "desmine_serve_shed_windows_total"), 0),
       rate(s, prev, "desmine_serve_shed_windows_total", dt_s),
       util::fixed(sample(s, "desmine_serve_shed_global_rejects_total"), 0),
       util::fixed(sample(s, "desmine_serve_circuit_opened_total"), 0),
       util::fixed(sample(s, "desmine_serve_circuit_closed_total"), 0),
       util::fixed(sample(s, "desmine_serve_window_failed_edges_total"), 0)});
  out += faults.to_text("fault tolerance");

  util::Table lifecycle({"drifting", "drifted", "shadow", "shadow_windows",
                         "agreement", "promoted", "rolled_back",
                         "retired_live"});
  lifecycle.add_row(
      {util::fixed(sample(s, "desmine_lifecycle_drift_drifting"), 0),
       util::fixed(sample(s, "desmine_lifecycle_drift_drifted"), 0),
       sample(s, "desmine_serve_shadow_active") > 0 ? "armed" : "-",
       util::fixed(sample(s, "desmine_serve_shadow_windows_total"), 0),
       fixed_or_dash(sample(s, "desmine_serve_shadow_agreement")),
       util::fixed(sample(s, "desmine_lifecycle_promotions_total"), 0),
       util::fixed(sample(s, "desmine_lifecycle_rollbacks_total"), 0),
       util::fixed(sample(s, "desmine_serve_model_retired_live"), 0)});
  out += lifecycle.to_text("lifecycle");

  util::Table degraded({"dropped", "stale", "flooding", "readmitted",
                        "degraded_windows"});
  degraded.add_row(
      {util::fixed(sample(s, "desmine_detect_sensor_dropped_total"), 0),
       util::fixed(sample(s, "desmine_detect_sensor_stale_total"), 0),
       util::fixed(sample(s, "desmine_detect_sensor_flooding_total"), 0),
       util::fixed(sample(s, "desmine_detect_sensor_readmitted_total"), 0),
       util::fixed(sample(s, "desmine_detect_window_degraded_total"), 0)});
  out += degraded.to_text("sensor health");

  return out;
}

volatile std::sig_atomic_t g_stop = 0;

void usage() {
  std::cerr << "usage: desmine_top --port P [--interval-s 2] [--frames 0]\n"
               "                   [--no-clear]\n"
               "polls /metrics of a desmine_serve --telemetry-port P and\n"
               "renders live serving vitals; ctrl-c to quit\n"
               "exit codes: 0 ok | 1 scrape failed | 2 usage error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Args> args;
  std::uint16_t port = 0;
  double interval_s = 2.0;
  std::size_t frames = 0;
  try {
    args = std::make_unique<Args>(argc, argv, 1);
    const double p = std::stod(args->get("port"));
    if (p < 1.0 || p > 65535.0) {
      throw PreconditionError("--port must lie in [1, 65535]");
    }
    port = static_cast<std::uint16_t>(p);
    interval_s = args->number("interval-s", interval_s);
    if (interval_s <= 0.0) {
      throw PreconditionError("--interval-s must be > 0");
    }
    frames = static_cast<std::size_t>(args->number("frames", 0.0));
  } catch (const std::exception& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  }

  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  const bool clear = !args->flag("no-clear");

  std::optional<Samples> prev;
  std::size_t rendered = 0;
  while (g_stop == 0) {
    Samples now;
    try {
      const obs::HttpGetResult got = obs::http_get(port, "/metrics");
      if (got.status != 200) {
        std::cerr << "error: /metrics returned status " +
                         std::to_string(got.status) + "\n";
        return 1;
      }
      now = parse_prometheus(got.body);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }

    if (clear && rendered > 0) std::cout << "\x1b[H\x1b[2J";
    std::cout << render(now, prev ? &*prev : nullptr, interval_s, port)
              << std::flush;
    prev = std::move(now);

    if (++rendered == frames && frames != 0) break;
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::duration<double>(interval_s));
    while (g_stop == 0 && std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}
