// desmine_inspect — dump the layout of any desmine artifact (v1–v4).
//
// A debugging/ops companion to the model store: prints the artifact's
// version, integrity status, and structure without loading any model onto
// the heap. For mapped (v4) artifacts that means the header, the TOC
// (edges, blob offsets/sizes, per-parameter shapes) and — with --verify —
// every edge's meta/weight CRC status; for stream (v1–v3) artifacts the
// header, window config, sensor list, and per-edge model summary.
//
// Usage:
//   desmine_inspect --model FILE [--json] [--verify] [--edges N]
//     --json       machine-readable output (one JSON document)
//     --verify     check every edge's CRCs (v4; touches all weight pages)
//     --edges N    cap per-edge listing at N rows (default 16; 0 = all)
//
// Exit codes: 0 ok | 1 corrupt/unreadable artifact | 2 usage error.
// Corruption detail goes to stderr; the section that failed (header, toc,
// meta, weights, truncated) is named so an operator knows whether the file
// is salvageable (bad weight page) or gone (bad header).
#include <cstdint>
#include <exception>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/framework.h"
#include "io/artifact_map.h"
#include "io/serialize.h"
#include "tensor/kernels.h"
#include "util/error.h"
#include "util/version.h"

using namespace desmine;

namespace {

class Args {
 public:
  Args(int argc, char** argv, int first) {
    static const std::set<std::string> boolean_flags = {"json", "verify"};
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw PreconditionError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (boolean_flags.count(key) != 0) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        throw PreconditionError("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw PreconditionError("missing required option --" + key);
    }
    return it->second;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  bool flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

struct InspectOptions {
  bool json = false;
  bool verify = false;
  std::size_t max_edges = 16;  // 0 = all
};

/// "avx2 (scalar blocked avx2 available)" — what this host would decode
/// with, for ops parity with /statusz.
std::string kernels_summary() {
  std::string out = tensor::kernels::backend_name(
      tensor::kernels::active_backend());
  out += " (";
  bool first = true;
  for (const tensor::kernels::Backend b :
       tensor::kernels::available_backends()) {
    if (!first) out += ' ';
    first = false;
    out += tensor::kernels::backend_name(b);
  }
  out += " available)";
  return out;
}

/// v4: everything comes from the header + TOC; --verify additionally CRCs
/// every edge (first materialization-grade touch of the weight pages).
int inspect_mapped(const std::string& path, const InspectOptions& opt) {
  const std::shared_ptr<io::ArtifactMap> map = io::ArtifactMap::open(path);
  const auto& edges = map->edges();
  std::size_t models = 0;
  std::uint64_t weight_bytes = 0;
  for (const io::EdgeEntry& e : edges) {
    if (!e.has_model) continue;
    ++models;
    weight_bytes += e.weights_len;
  }
  // CRC sweep before printing so a corrupt edge fails the run even when the
  // edge listing is capped.
  std::size_t verified = 0;
  if (opt.verify) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!edges[i].has_model) continue;
      map->materialize_edge(i);  // throws io::ArtifactError on bad CRC
      ++verified;
    }
  }
  const std::size_t shown =
      opt.max_edges == 0 ? edges.size()
                         : std::min(edges.size(), opt.max_edges);

  if (opt.json) {
    std::ostringstream os;
    os << "{\"path\":\"" << json_escape(path) << "\",\"version\":4,"
       << "\"layout\":\"mapped\",\"file_size\":" << map->file_size()
       << ",\"mapped\":" << (map->mapped() ? "true" : "false")
       << ",\"sensors\":" << map->sensor_names().size()
       << ",\"edges\":" << edges.size() << ",\"models\":" << models
       << ",\"weight_bytes\":" << weight_bytes
       << ",\"failures\":" << map->failures().size()
       << ",\"window\":{\"word_length\":" << map->window().word_length
       << ",\"word_stride\":" << map->window().word_stride
       << ",\"sentence_length\":" << map->window().sentence_length
       << ",\"sentence_stride\":" << map->window().sentence_stride << "}"
       << ",\"verified_edges\":" << (opt.verify ? verified : 0)
       << ",\"kernels\":\""
       << tensor::kernels::backend_name(tensor::kernels::active_backend())
       << "\",\"edge_table\":[";
    for (std::size_t i = 0; i < shown; ++i) {
      const io::EdgeEntry& e = edges[i];
      if (i != 0) os << ",";
      os << "{\"src\":" << e.src << ",\"dst\":" << e.dst
         << ",\"bleu\":" << e.bleu << ",\"has_model\":"
         << (e.has_model ? "true" : "false");
      if (e.has_model) {
        os << ",\"meta_off\":" << e.meta_off << ",\"meta_len\":" << e.meta_len
           << ",\"weights_off\":" << e.weights_off
           << ",\"weights_len\":" << e.weights_len
           << ",\"params\":" << e.params.size();
      }
      os << "}";
    }
    os << "]}";
    std::cout << os.str() << "\n";
    return 0;
  }

  std::cout << path << ": desmine artifact v4 (mapped, "
            << (map->mapped() ? "mmap" : "heap fallback") << ")\n"
            << "  file_size:  " << map->file_size() << " bytes\n"
            << "  sensors:    " << map->sensor_names().size() << "\n"
            << "  edges:      " << edges.size() << " (" << models
            << " with models, " << weight_bytes << " weight bytes)\n"
            << "  failures:   " << map->failures().size() << "\n"
            << "  window:     word " << map->window().word_length << "/"
            << map->window().word_stride << ", sentence "
            << map->window().sentence_length << "/"
            << map->window().sentence_stride << "\n"
            << "  integrity:  header OK, TOC OK"
            << (opt.verify
                    ? ", " + std::to_string(verified) + " edge CRCs OK"
                    : " (edge CRCs verify lazily; --verify checks now)")
            << "\n"
            << "  kernels:    " << kernels_summary() << "\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const io::EdgeEntry& e = edges[i];
    std::cout << "  edge " << e.src << "->" << e.dst << " bleu=" << e.bleu;
    if (e.has_model) {
      std::cout << " meta@" << e.meta_off << "+" << e.meta_len << " weights@"
                << e.weights_off << "+" << e.weights_len << " ("
                << e.params.size() << " params)";
    } else {
      std::cout << " (no model)";
    }
    std::cout << "\n";
  }
  if (shown < edges.size()) {
    std::cout << "  ... " << edges.size() - shown
              << " more edges (--edges 0 lists all)\n";
  }
  return 0;
}

/// v1–v3: the only way to know the structure is to deserialize the stream
/// (which also verifies the v3 CRC trailer).
int inspect_stream(const std::string& path, std::uint32_t version,
                   const InspectOptions& opt) {
  const core::Framework fw = io::load_framework(path);
  const core::MvrGraph& graph = fw.graph();
  std::size_t models = 0;
  for (const core::MvrEdge& e : graph.edges()) models += e.model != nullptr;
  const std::size_t shown =
      opt.max_edges == 0 ? graph.edges().size()
                         : std::min(graph.edges().size(), opt.max_edges);

  if (opt.json) {
    std::ostringstream os;
    os << "{\"path\":\"" << json_escape(path) << "\",\"version\":" << version
       << ",\"layout\":\"stream\",\"sensors\":" << graph.sensor_count()
       << ",\"edges\":" << graph.edges().size() << ",\"models\":" << models
       << ",\"failures\":" << graph.failures().size()
       << ",\"window\":{\"word_length\":" << fw.config().window.word_length
       << ",\"word_stride\":" << fw.config().window.word_stride
       << ",\"sentence_length\":" << fw.config().window.sentence_length
       << ",\"sentence_stride\":" << fw.config().window.sentence_stride
       << "},\"kernels\":\""
       << tensor::kernels::backend_name(tensor::kernels::active_backend())
       << "\",\"edge_table\":[";
    for (std::size_t i = 0; i < shown; ++i) {
      const core::MvrEdge& e = graph.edges()[i];
      if (i != 0) os << ",";
      os << "{\"src\":" << e.src << ",\"dst\":" << e.dst
         << ",\"bleu\":" << e.bleu << ",\"has_model\":"
         << (e.model != nullptr ? "true" : "false") << "}";
    }
    os << "]}";
    std::cout << os.str() << "\n";
    return 0;
  }

  std::cout << path << ": desmine artifact v" << version << " (stream)\n"
            << "  sensors:    " << graph.sensor_count() << "\n"
            << "  edges:      " << graph.edges().size() << " (" << models
            << " with models)\n"
            << "  failures:   " << graph.failures().size() << "\n"
            << "  window:     word " << fw.config().window.word_length << "/"
            << fw.config().window.word_stride << ", sentence "
            << fw.config().window.sentence_length << "/"
            << fw.config().window.sentence_stride << "\n"
            << "  integrity:  "
            << (version >= 3 ? "CRC trailer OK" : "no CRC (pre-v3 stream)")
            << "\n"
            << "  kernels:    " << kernels_summary() << "\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const core::MvrEdge& e = graph.edges()[i];
    std::cout << "  edge " << e.src << "->" << e.dst << " bleu=" << e.bleu
              << (e.model != nullptr ? "" : " (no model)") << "\n";
  }
  if (shown < graph.edges().size()) {
    std::cout << "  ... " << graph.edges().size() - shown
              << " more edges (--edges 0 lists all)\n";
  }
  return 0;
}

void usage() {
  std::cerr << "usage: desmine_inspect --model artifact.bin [options]\n"
               "  --json       machine-readable output\n"
               "  --verify     check every edge CRC (v4)\n"
               "  --edges N    per-edge rows to print (default 16, 0 = all)\n"
               "exit codes: 0 ok | 1 corrupt/unreadable | 2 usage error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Args> args;
  try {
    args = std::make_unique<Args>(argc, argv, 1);
  } catch (const std::exception& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  }
  try {
    const std::string path = args->get("model");
    InspectOptions opt;
    opt.json = args->flag("json");
    opt.verify = args->flag("verify");
    opt.max_edges = static_cast<std::size_t>(args->number("edges", 16));
    const std::uint32_t version = io::peek_artifact_version(path);
    return version == io::kMappedArtifactVersion
               ? inspect_mapped(path, opt)
               : inspect_stream(path, version, opt);
  } catch (const io::ArtifactError& e) {
    std::cerr << "corrupt artifact [" <<
        io::ArtifactError::section_name(e.section()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const PreconditionError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
