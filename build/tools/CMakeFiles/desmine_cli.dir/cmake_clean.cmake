file(REMOVE_RECURSE
  "CMakeFiles/desmine_cli.dir/desmine_cli.cpp.o"
  "CMakeFiles/desmine_cli.dir/desmine_cli.cpp.o.d"
  "desmine_cli"
  "desmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
