# Empty compiler generated dependencies file for desmine_cli.
# This may be replaced when dependencies are built.
