# Empty dependencies file for bench_fig09_fault_diagnosis.
# This may be replaced when dependencies are built.
