file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_sequences.dir/bench_fig02_sequences.cpp.o"
  "CMakeFiles/bench_fig02_sequences.dir/bench_fig02_sequences.cpp.o.d"
  "bench_fig02_sequences"
  "bench_fig02_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
