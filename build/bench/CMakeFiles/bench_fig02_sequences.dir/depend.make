# Empty dependencies file for bench_fig02_sequences.
# This may be replaced when dependencies are built.
