# Empty dependencies file for bench_fig05_degree_cdfs.
# This may be replaced when dependencies are built.
