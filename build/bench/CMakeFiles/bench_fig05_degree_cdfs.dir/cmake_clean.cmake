file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_degree_cdfs.dir/bench_fig05_degree_cdfs.cpp.o"
  "CMakeFiles/bench_fig05_degree_cdfs.dir/bench_fig05_degree_cdfs.cpp.o.d"
  "bench_fig05_degree_cdfs"
  "bench_fig05_degree_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_degree_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
