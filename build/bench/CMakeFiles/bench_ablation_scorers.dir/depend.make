# Empty dependencies file for bench_ablation_scorers.
# This may be replaced when dependencies are built.
