file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scorers.dir/bench_ablation_scorers.cpp.o"
  "CMakeFiles/bench_ablation_scorers.dir/bench_ablation_scorers.cpp.o.d"
  "bench_ablation_scorers"
  "bench_ablation_scorers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scorers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
