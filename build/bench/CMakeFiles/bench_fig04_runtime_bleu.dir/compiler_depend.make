# Empty compiler generated dependencies file for bench_fig04_runtime_bleu.
# This may be replaced when dependencies are built.
