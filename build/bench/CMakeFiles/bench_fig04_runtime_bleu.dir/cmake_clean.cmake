file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_runtime_bleu.dir/bench_fig04_runtime_bleu.cpp.o"
  "CMakeFiles/bench_fig04_runtime_bleu.dir/bench_fig04_runtime_bleu.cpp.o.d"
  "bench_fig04_runtime_bleu"
  "bench_fig04_runtime_bleu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_runtime_bleu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
