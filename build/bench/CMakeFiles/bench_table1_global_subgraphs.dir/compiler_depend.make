# Empty compiler generated dependencies file for bench_table1_global_subgraphs.
# This may be replaced when dependencies are built.
