# Empty dependencies file for bench_fig08_anomaly_timeline.
# This may be replaced when dependencies are built.
