file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_windows.dir/bench_ablation_windows.cpp.o"
  "CMakeFiles/bench_ablation_windows.dir/bench_ablation_windows.cpp.o.d"
  "bench_ablation_windows"
  "bench_ablation_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
