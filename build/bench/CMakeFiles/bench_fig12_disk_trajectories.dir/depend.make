# Empty dependencies file for bench_fig12_disk_trajectories.
# This may be replaced when dependencies are built.
