file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nmt_settings.dir/bench_ablation_nmt_settings.cpp.o"
  "CMakeFiles/bench_ablation_nmt_settings.dir/bench_ablation_nmt_settings.cpp.o.d"
  "bench_ablation_nmt_settings"
  "bench_ablation_nmt_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nmt_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
