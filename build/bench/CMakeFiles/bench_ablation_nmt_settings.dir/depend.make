# Empty dependencies file for bench_ablation_nmt_settings.
# This may be replaced when dependencies are built.
