# Empty compiler generated dependencies file for bench_fig03_cardinality_vocab.
# This may be replaced when dependencies are built.
