file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_cardinality_vocab.dir/bench_fig03_cardinality_vocab.cpp.o"
  "CMakeFiles/bench_fig03_cardinality_vocab.dir/bench_fig03_cardinality_vocab.cpp.o.d"
  "bench_fig03_cardinality_vocab"
  "bench_fig03_cardinality_vocab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_cardinality_vocab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
