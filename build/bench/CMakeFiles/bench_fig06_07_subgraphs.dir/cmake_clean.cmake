file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_07_subgraphs.dir/bench_fig06_07_subgraphs.cpp.o"
  "CMakeFiles/bench_fig06_07_subgraphs.dir/bench_fig06_07_subgraphs.cpp.o.d"
  "bench_fig06_07_subgraphs"
  "bench_fig06_07_subgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_07_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
