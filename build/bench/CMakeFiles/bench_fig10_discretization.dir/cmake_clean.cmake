file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_discretization.dir/bench_fig10_discretization.cpp.o"
  "CMakeFiles/bench_fig10_discretization.dir/bench_fig10_discretization.cpp.o.d"
  "bench_fig10_discretization"
  "bench_fig10_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
