# Empty dependencies file for bench_fig10_discretization.
# This may be replaced when dependencies are built.
