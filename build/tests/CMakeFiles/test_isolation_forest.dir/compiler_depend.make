# Empty compiler generated dependencies file for test_isolation_forest.
# This may be replaced when dependencies are built.
