file(REMOVE_RECURSE
  "CMakeFiles/test_isolation_forest.dir/test_isolation_forest.cpp.o"
  "CMakeFiles/test_isolation_forest.dir/test_isolation_forest.cpp.o.d"
  "test_isolation_forest"
  "test_isolation_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isolation_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
