# Empty dependencies file for test_encryption.
# This may be replaced when dependencies are built.
