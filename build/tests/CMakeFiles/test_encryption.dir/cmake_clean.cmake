file(REMOVE_RECURSE
  "CMakeFiles/test_encryption.dir/test_encryption.cpp.o"
  "CMakeFiles/test_encryption.dir/test_encryption.cpp.o.d"
  "test_encryption"
  "test_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
