file(REMOVE_RECURSE
  "CMakeFiles/test_mvr_graph.dir/test_mvr_graph.cpp.o"
  "CMakeFiles/test_mvr_graph.dir/test_mvr_graph.cpp.o.d"
  "test_mvr_graph"
  "test_mvr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mvr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
