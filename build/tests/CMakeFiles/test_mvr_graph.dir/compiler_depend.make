# Empty compiler generated dependencies file for test_mvr_graph.
# This may be replaced when dependencies are built.
