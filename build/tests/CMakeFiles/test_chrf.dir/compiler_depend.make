# Empty compiler generated dependencies file for test_chrf.
# This may be replaced when dependencies are built.
