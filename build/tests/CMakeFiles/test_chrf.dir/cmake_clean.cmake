file(REMOVE_RECURSE
  "CMakeFiles/test_chrf.dir/test_chrf.cpp.o"
  "CMakeFiles/test_chrf.dir/test_chrf.cpp.o.d"
  "test_chrf"
  "test_chrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
