file(REMOVE_RECURSE
  "CMakeFiles/test_inference_parity.dir/test_inference_parity.cpp.o"
  "CMakeFiles/test_inference_parity.dir/test_inference_parity.cpp.o.d"
  "test_inference_parity"
  "test_inference_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inference_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
