# Empty dependencies file for test_inference_parity.
# This may be replaced when dependencies are built.
