file(REMOVE_RECURSE
  "CMakeFiles/test_nmt_extensions.dir/test_nmt_extensions.cpp.o"
  "CMakeFiles/test_nmt_extensions.dir/test_nmt_extensions.cpp.o.d"
  "test_nmt_extensions"
  "test_nmt_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmt_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
