# Empty dependencies file for test_nmt_extensions.
# This may be replaced when dependencies are built.
