# Empty compiler generated dependencies file for test_discretize.
# This may be replaced when dependencies are built.
