file(REMOVE_RECURSE
  "CMakeFiles/test_nmt.dir/test_nmt.cpp.o"
  "CMakeFiles/test_nmt.dir/test_nmt.cpp.o.d"
  "test_nmt"
  "test_nmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
