# Empty compiler generated dependencies file for test_nmt.
# This may be replaced when dependencies are built.
