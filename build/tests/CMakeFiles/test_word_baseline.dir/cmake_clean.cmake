file(REMOVE_RECURSE
  "CMakeFiles/test_word_baseline.dir/test_word_baseline.cpp.o"
  "CMakeFiles/test_word_baseline.dir/test_word_baseline.cpp.o.d"
  "test_word_baseline"
  "test_word_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_word_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
