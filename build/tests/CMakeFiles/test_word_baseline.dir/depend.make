# Empty dependencies file for test_word_baseline.
# This may be replaced when dependencies are built.
