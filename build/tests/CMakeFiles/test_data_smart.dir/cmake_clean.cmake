file(REMOVE_RECURSE
  "CMakeFiles/test_data_smart.dir/test_data_smart.cpp.o"
  "CMakeFiles/test_data_smart.dir/test_data_smart.cpp.o.d"
  "test_data_smart"
  "test_data_smart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_smart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
