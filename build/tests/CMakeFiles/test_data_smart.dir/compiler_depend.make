# Empty compiler generated dependencies file for test_data_smart.
# This may be replaced when dependencies are built.
