# Empty dependencies file for test_diagnosis.
# This may be replaced when dependencies are built.
