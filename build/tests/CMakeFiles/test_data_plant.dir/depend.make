# Empty dependencies file for test_data_plant.
# This may be replaced when dependencies are built.
