file(REMOVE_RECURSE
  "CMakeFiles/test_data_plant.dir/test_data_plant.cpp.o"
  "CMakeFiles/test_data_plant.dir/test_data_plant.cpp.o.d"
  "test_data_plant"
  "test_data_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
