# Empty dependencies file for desmine.
# This may be replaced when dependencies are built.
