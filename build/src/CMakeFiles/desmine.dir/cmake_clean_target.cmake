file(REMOVE_RECURSE
  "libdesmine.a"
)
