
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/CMakeFiles/desmine.dir/core/anomaly.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/anomaly.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/CMakeFiles/desmine.dir/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/diagnosis.cpp.o.d"
  "/root/repo/src/core/discretize.cpp" "src/CMakeFiles/desmine.dir/core/discretize.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/discretize.cpp.o.d"
  "/root/repo/src/core/encryption.cpp" "src/CMakeFiles/desmine.dir/core/encryption.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/encryption.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/CMakeFiles/desmine.dir/core/event.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/event.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/CMakeFiles/desmine.dir/core/framework.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/framework.cpp.o.d"
  "/root/repo/src/core/language.cpp" "src/CMakeFiles/desmine.dir/core/language.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/language.cpp.o.d"
  "/root/repo/src/core/miner.cpp" "src/CMakeFiles/desmine.dir/core/miner.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/miner.cpp.o.d"
  "/root/repo/src/core/mvr_graph.cpp" "src/CMakeFiles/desmine.dir/core/mvr_graph.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/mvr_graph.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/desmine.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/core/online.cpp.o.d"
  "/root/repo/src/data/plant.cpp" "src/CMakeFiles/desmine.dir/data/plant.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/data/plant.cpp.o.d"
  "/root/repo/src/data/smart.cpp" "src/CMakeFiles/desmine.dir/data/smart.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/data/smart.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/desmine.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/walktrap.cpp" "src/CMakeFiles/desmine.dir/graph/walktrap.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/graph/walktrap.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/desmine.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/desmine.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/io/serialize.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/desmine.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/dependence.cpp" "src/CMakeFiles/desmine.dir/ml/dependence.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/dependence.cpp.o.d"
  "/root/repo/src/ml/isolation_forest.cpp" "src/CMakeFiles/desmine.dir/ml/isolation_forest.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/isolation_forest.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/CMakeFiles/desmine.dir/ml/kmeans.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/kmeans.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/desmine.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/ocsvm.cpp" "src/CMakeFiles/desmine.dir/ml/ocsvm.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/ocsvm.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/desmine.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/nmt/seq2seq.cpp" "src/CMakeFiles/desmine.dir/nmt/seq2seq.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nmt/seq2seq.cpp.o.d"
  "/root/repo/src/nmt/trainer.cpp" "src/CMakeFiles/desmine.dir/nmt/trainer.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nmt/trainer.cpp.o.d"
  "/root/repo/src/nmt/translation.cpp" "src/CMakeFiles/desmine.dir/nmt/translation.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nmt/translation.cpp.o.d"
  "/root/repo/src/nmt/word_baseline.cpp" "src/CMakeFiles/desmine.dir/nmt/word_baseline.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nmt/word_baseline.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/desmine.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/desmine.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/desmine.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/CMakeFiles/desmine.dir/nn/gradcheck.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/gradcheck.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/desmine.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/desmine.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/desmine.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/param.cpp" "src/CMakeFiles/desmine.dir/nn/param.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/nn/param.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "src/CMakeFiles/desmine.dir/tensor/matrix.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/tensor/matrix.cpp.o.d"
  "/root/repo/src/text/bleu.cpp" "src/CMakeFiles/desmine.dir/text/bleu.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/text/bleu.cpp.o.d"
  "/root/repo/src/text/chrf.cpp" "src/CMakeFiles/desmine.dir/text/chrf.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/text/chrf.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/CMakeFiles/desmine.dir/text/vocabulary.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/text/vocabulary.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/desmine.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/desmine.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/desmine.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/desmine.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/desmine.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
