# Empty dependencies file for knowledge_discovery.
# This may be replaced when dependencies are built.
