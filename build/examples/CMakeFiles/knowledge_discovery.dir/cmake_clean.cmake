file(REMOVE_RECURSE
  "CMakeFiles/knowledge_discovery.dir/knowledge_discovery.cpp.o"
  "CMakeFiles/knowledge_discovery.dir/knowledge_discovery.cpp.o.d"
  "knowledge_discovery"
  "knowledge_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
