# Empty compiler generated dependencies file for disk_failure.
# This may be replaced when dependencies are built.
