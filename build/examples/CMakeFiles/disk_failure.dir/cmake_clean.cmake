file(REMOVE_RECURSE
  "CMakeFiles/disk_failure.dir/disk_failure.cpp.o"
  "CMakeFiles/disk_failure.dir/disk_failure.cpp.o.d"
  "disk_failure"
  "disk_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
