file(REMOVE_RECURSE
  "CMakeFiles/plant_monitoring.dir/plant_monitoring.cpp.o"
  "CMakeFiles/plant_monitoring.dir/plant_monitoring.cpp.o.d"
  "plant_monitoring"
  "plant_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
