# Empty dependencies file for plant_monitoring.
# This may be replaced when dependencies are built.
