// Table III — the top-5 most important SMART features reported by the
// global subgraph at [80,90): id, name, in-degree, out-degree.
//
// Paper: 192 (15/3), 187 (13/2), 198 (13/2), 197 (13/2), 5 (3/4) — all
// counters of failed I/O whose nonzero values put disk health at risk.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Table III: top SMART features by subgraph in-degree ===\n";
  const dd::SmartDataset smart = dd::generate_smart(db::smart_config());
  const auto fw = db::smart_framework(smart);
  const auto& g = fw.graph();

  // The paper reads importance off the [80,90) band; at mini scale the
  // strong edges cluster near the top of the scale, so we rank over the
  // whole strong region [80,100] (see EXPERIMENTS.md).
  auto band = g.filter_bleu(80.0, 100.5);
  std::string band_label = "[80, 100]";

  const auto in_deg = band.in_degrees();
  const auto out_deg = band.out_degrees();
  std::vector<std::size_t> order(g.sensor_count());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return in_deg[a] > in_deg[b];
                   });

  du::Table t({"ID", "name", "# in-degree", "# out-degree", "error counter?"});
  std::size_t error_counters_in_top5 = 0;
  for (std::size_t r = 0; r < std::min<std::size_t>(5, order.size()); ++r) {
    const std::string& node = g.name(order[r]);  // "smart_<id>"
    const int id = std::stoi(node.substr(node.find('_') + 1));
    const auto& spec = smart.feature(id);
    t.add_row({std::to_string(id), spec.name,
               std::to_string(in_deg[order[r]]),
               std::to_string(out_deg[order[r]]),
               spec.error_counter ? "yes" : "no"});
    error_counters_in_top5 += spec.error_counter ? 1 : 0;
  }
  std::cout << t.to_text("Table III equivalent, band " + band_label);

  db::expectation("top-5 features", "192, 187, 198, 197, 5 (all failed-I/O "
                                    "counters)",
                  std::to_string(error_counters_in_top5) +
                      " of 5 are error counters (see table)");
  db::expectation("interpretation",
                  "nonzero values indicate failed I/O, disk health at risk",
                  "error-counter features dominate the in-degree ranking");
  return 0;
}
