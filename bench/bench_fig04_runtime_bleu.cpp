// Figure 4 — (a) CDF of per-model train+test runtime and (b) histogram of
// pairwise BLEU scores over all directional sensor pairs.
//
// Paper: mean model runtime ~2.5 min (their 64-hidden 2-layer TF models);
// 89.4% of BLEU scores are > 60. Our runtimes are for the mini models (see
// EXPERIMENTS.md); the BLEU histogram shape — mass concentrated above 60
// with a long left tail — is the reproduced result.
#include <iostream>

#include "common.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Figure 4: model runtime CDF and BLEU histogram ===\n";
  db::enable_observability();
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);
  const auto& edges = fw.graph().edges();

  std::vector<double> runtimes, bleus;
  for (const auto& e : edges) {
    runtimes.push_back(e.runtime_seconds);
    bleus.push_back(e.bleu);
  }

  // ---- (a) runtime CDF ----
  if (runtimes.front() > 0.0) {
    const auto s = du::summarize(runtimes);
    db::print_cdf("Fig 4(a): CDF of model train+score runtime (seconds)",
                  runtimes,
                  {s.min, s.p25, s.median, s.p75, s.max});
    db::expectation("mean model runtime",
                    "~150 s (64-hidden 2-layer TF model)",
                    du::fixed(s.mean, 2) + " s (mini 24-hidden 1-layer model)");
  } else {
    std::cout << "  (runtimes unavailable: graph loaded from an artifact "
                 "saved by an earlier run)\n";
  }

  // ---- (b) BLEU histogram ----
  const auto hist = du::histogram(bleus, 0.0, 100.0, 10);
  du::Table t({"BLEU bin", "count", "fraction"});
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    t.add_row({"[" + du::fixed(hist.bin_lo(b), 0) + ", " +
                   du::fixed(hist.bin_hi(b), 0) + ")",
               std::to_string(hist.counts[b]),
               du::fixed(hist.fraction(b), 3)});
  }
  std::cout << t.to_text("Fig 4(b): histogram of pairwise BLEU scores");

  const double over60 = 1.0 - du::cdf_at(bleus, 60.0);
  db::expectation("share of BLEU scores > 60", "89.4%",
                  du::fixed(100.0 * over60, 1) + "%");
  db::expectation("total directional pair models",
                  "128*127 at paper scale",
                  std::to_string(edges.size()) + " (mini scale)");
  db::dump_observability("fig04");
  return 0;
}
