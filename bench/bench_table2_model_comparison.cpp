// Table II — comparison of models on the HDD dataset: Random Forest
// (supervised), one-class SVM (unsupervised, feature-engineered), and the
// proposed framework (unsupervised, discrete-native).
//
// Paper: RF recall 70-80%, OC-SVM ~60%, ours 58% — the point being that an
// unsupervised method needing no feature engineering and working directly on
// discrete sequences is competitive with OC-SVM.
#include <iostream>

#include "common.h"
#include "ml/metrics.h"
#include "ml/ocsvm.h"
#include "ml/random_forest.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;
namespace ml = desmine::ml;

int main() {
  std::cout << "=== Table II: model comparison on the HDD dataset ===\n";
  const dd::SmartDataset smart = dd::generate_smart(db::smart_config());
  const auto matrix = dd::to_labeled_matrix(smart);
  desmine::util::Rng rng(17);

  // ---- Random Forest: 80/20 drive split, 1:1 balanced training ----
  // Averaged over several splits: with ~a dozen positive samples one fold's
  // recall is quantized to thirds.
  double rf_recall = 0.0;
  for (std::uint64_t split_seed = 100; split_seed < 105; ++split_seed) {
    desmine::util::Rng rng(split_seed);
    std::vector<std::size_t> drive_ids(smart.drives.size());
    for (std::size_t i = 0; i < drive_ids.size(); ++i) drive_ids[i] = i;
    rng.shuffle(drive_ids);
    const std::size_t test_count = drive_ids.size() / 5;
    std::vector<bool> is_test(smart.drives.size(), false);
    for (std::size_t i = 0; i < test_count; ++i) is_test[drive_ids[i]] = true;
    // Ensure the test fold contains failures (tiny dataset).
    bool test_has_failure = false;
    for (std::size_t d = 0; d < smart.drives.size(); ++d) {
      test_has_failure |= is_test[d] && smart.drives[d].failed;
    }
    if (!test_has_failure) {
      for (std::size_t d = 0; d < smart.drives.size(); ++d) {
        if (smart.drives[d].failed) {
          is_test[d] = true;
          break;
        }
      }
    }

    std::vector<std::size_t> train_rows;
    std::vector<int> train_labels_all(matrix.labels.size(), 0);
    std::vector<std::size_t> test_rows;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
      (is_test[matrix.drive_of_row[r]] ? test_rows : train_rows).push_back(r);
    }
    // Balance within the training fold.
    std::vector<std::size_t> minority, majority;
    for (std::size_t r : train_rows) {
      (matrix.labels[r] == 1 ? minority : majority).push_back(r);
    }
    std::vector<std::size_t> balanced = minority;
    const auto picks =
        rng.sample_without_replacement(majority.size(), minority.size());
    for (std::size_t p : picks) balanced.push_back(majority[p]);

    ml::RandomForest forest;
    ml::ForestConfig fcfg;
    fcfg.num_trees = 100;
    forest.fit(matrix.rows, matrix.labels, fcfg, balanced);

    std::vector<int> labels, preds;
    for (std::size_t r : test_rows) {
      labels.push_back(matrix.labels[r]);
      preds.push_back(forest.predict(matrix.rows[r]));
    }
    rf_recall += ml::confusion(labels, preds).recall() / 5.0;
  }

  // ---- One-class SVM: train on healthy observations (subsampled) ----
  double ocsvm_recall = 0.0;
  {
    std::vector<std::size_t> healthy_rows;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
      if (!smart.drives[matrix.drive_of_row[r]].failed) {
        healthy_rows.push_back(r);
      }
    }
    const std::size_t sample_size =
        std::min<std::size_t>(400, healthy_rows.size());
    const auto picks =
        rng.sample_without_replacement(healthy_rows.size(), sample_size);
    ml::FeatureMatrix train;
    for (std::size_t p : picks) train.push_back(matrix.rows[healthy_rows[p]]);

    ml::OneClassSvm svm;
    ml::OcSvmConfig scfg;
    scfg.nu = 0.05;
    svm.fit(train, scfg);

    std::size_t detected = 0, failures = 0;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
      if (matrix.labels[r] == 1) {
        ++failures;
        detected += svm.predict_anomaly(matrix.rows[r]);
      }
    }
    ocsvm_recall = failures == 0
                       ? 0.0
                       : static_cast<double>(detected) /
                             static_cast<double>(failures);
  }

  // ---- Ours: sharp anomaly-score increase before the failure date ----
  double ours_recall = 0.0;
  {
    const auto fw = db::smart_framework(smart);
    desmine::core::DetectorConfig dcfg = fw.config().detector;
    dcfg.valid_lo = 60.0;  // widen the mini-scale band (see EXPERIMENTS.md)
    dcfg.valid_hi = 100.5;
    // Per-drive sentences score below the pooled-corpus training BLEU even
    // when healthy; the wider tolerance keeps normal windows quiet so the
    // pre-failure jump stands out (§IV-D2).
    dcfg.tolerance = 25.0;
    std::size_t detected = 0, failures = 0;
    for (const auto& drive : smart.drives) {
      if (!drive.failed) continue;
      ++failures;
      // Score from 10 days before the test month: a detection window spans
      // ~11 days of daily samples, so early-month failures otherwise have
      // no complete window (and no pre-degradation baseline).
      const std::size_t from_day =
          db::kSmartTrainDays + db::kSmartDevDays - 10;
      const auto scores =
          db::smart_drive_scores(fw, smart, drive, from_day, dcfg);
      if (db::sharp_increase(scores, 0.3)) ++detected;
    }
    ours_recall = failures == 0 ? 0.0
                                : static_cast<double>(detected) /
                                      static_cast<double>(failures);
  }

  du::Table t({"Model", "Unsupervised?", "Feature engineering?",
               "Feature ranking?", "Recall", "Discrete-native?"});
  t.add_row({"RF", "no", "yes", "yes", du::fixed(100 * rf_recall, 0) + "%",
             "no"});
  t.add_row({"OC-SVM", "yes", "yes", "no",
             du::fixed(100 * ocsvm_recall, 0) + "%", "no"});
  t.add_row({"Ours", "yes", "no", "yes",
             du::fixed(100 * ours_recall, 0) + "%", "yes"});
  std::cout << t.to_text("Table II equivalent");

  db::expectation("ordering", "RF (70-80%) > OC-SVM (60%) ~ Ours (58%)",
                  "RF " + du::fixed(100 * rf_recall, 0) + "% vs OC-SVM " +
                      du::fixed(100 * ocsvm_recall, 0) + "% vs ours " +
                      du::fixed(100 * ours_recall, 0) + "%");
  db::expectation("takeaway",
                  "ours is competitive with OC-SVM without feature "
                  "engineering and works on discrete sequences",
                  "see capability columns");
  return 0;
}
