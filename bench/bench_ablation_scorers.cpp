// Ablation — relationship scorers compared.
//
// The paper's key design choice is using an NMT model's BLEU as the pairwise
// relationship metric. This ablation pits it against (a) a count-based
// position-wise word-translation baseline (BLEU-scored the same way) and
// (b) classical instantaneous dependence measures (normalized mutual
// information, Cramér's V) on three pair types from the plant data:
//   * lagged within-component pair (delayed copy — needs temporal context),
//   * cross-component pair (weakly related),
//   * sensor vs shuffled noise (unrelated).
// A good scorer separates the three; instantaneous measures miss the lag
// unless explicitly scanned, and the count baseline misses cross-position
// structure.
#include <chrono>
#include <iostream>

#include "common.h"
#include "core/encryption.h"
#include "core/language.h"
#include "data/plant.h"
#include "ml/dependence.h"
#include "nmt/translation.h"
#include "nmt/word_baseline.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace dm = desmine::nmt;
namespace ml = desmine::ml;
namespace du = desmine::util;

int main() {
  std::cout << "=== Ablation: relationship scorers (NMT vs count baseline vs "
               "dependence measures) ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto train = plant.days_slice(0, db::kPlantTrainDays);
  const auto dev =
      plant.days_slice(db::kPlantTrainDays, db::kPlantDevDays);
  const auto enc = dc::SensorEncrypter::fit(train);
  const dc::LanguageGenerator gen(db::plant_framework_config().window);

  auto events_of = [&](const dc::MultivariateSeries& series,
                       const std::string& name) {
    for (const auto& s : series) {
      if (s.name == name) return s.events;
    }
    throw desmine::PreconditionError("sensor not found: " + name);
  };

  // Pair types: (source, target, label).
  desmine::util::Rng rng(4);
  dc::EventSequence shuffled = events_of(train, "c2.s2");
  rng.shuffle(shuffled);
  dc::EventSequence shuffled_dev = events_of(dev, "c2.s2");
  rng.shuffle(shuffled_dev);

  struct Pair {
    std::string label;
    dc::EventSequence train_src, train_tgt, dev_src, dev_tgt;
  };
  std::vector<Pair> pairs = {
      {"within-component (lagged copy)", events_of(train, "c0.s0"),
       events_of(train, "c0.s2"), events_of(dev, "c0.s0"),
       events_of(dev, "c0.s2")},
      {"cross-component", events_of(train, "c0.s0"),
       events_of(train, "c1.s0"), events_of(dev, "c0.s0"),
       events_of(dev, "c1.s0")},
      {"unrelated (shuffled)", events_of(train, "c0.s0"), shuffled,
       events_of(dev, "c0.s0"), shuffled_dev},
  };

  dm::TranslationConfig nmt_cfg = db::plant_framework_config().miner.translation;

  du::Table t({"pair", "NMT BLEU", "count-baseline BLEU", "NMI",
               "best lagged NMI (lag)", "Cramer's V", "NMT secs"});
  for (const Pair& p : pairs) {
    // Sensor-language corpora (encode via a per-pair encrypter fit so the
    // shuffled pseudo-sensor gets a table too).
    dc::MultivariateSeries pair_train = {{"src", p.train_src},
                                         {"tgt", p.train_tgt}};
    dc::MultivariateSeries pair_dev = {{"src", p.dev_src}, {"tgt", p.dev_tgt}};
    const auto pair_enc = dc::SensorEncrypter::fit(pair_train);
    const auto tr = pair_enc.encode_all(pair_train);
    const auto dv = pair_enc.encode_all(pair_dev);
    const auto src_train = gen.generate(tr[0]);
    const auto tgt_train = gen.generate(tr[1]);
    const auto src_dev = gen.generate(dv[0]);
    const auto tgt_dev = gen.generate(dv[1]);

    const auto start = std::chrono::steady_clock::now();
    auto nmt = dm::train_translation_model(src_train, tgt_train, nmt_cfg, 5);
    const double nmt_bleu = nmt.score(src_dev, tgt_dev).score;
    const double nmt_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const auto baseline = dm::WordBaseline::fit(src_train, tgt_train);
    const double base_bleu = baseline.score(src_dev, tgt_dev).score;

    const double nmi =
        ml::normalized_mutual_information(p.dev_tgt, p.dev_src);
    const auto lag = ml::scan_lags(p.dev_tgt, p.dev_src, 12);
    const double v =
        ml::cramers_v(ml::ContingencyTable(p.dev_src, p.dev_tgt));

    t.add_row({p.label, du::fixed(nmt_bleu, 1), du::fixed(base_bleu, 1),
               du::fixed(nmi, 3),
               du::fixed(lag.best_nmi, 3) + " (" +
                   std::to_string(lag.best_lag) + ")",
               du::fixed(v, 3), du::fixed(nmt_secs, 1)});
  }
  std::cout << t.to_text();

  db::expectation("NMT separation",
                  "related >> unrelated under one architecture (§II-A3)",
                  "NMT BLEU column is monotone across the three pair types");
  db::expectation("instantaneous measures on lagged pairs",
                  "miss delayed coupling unless a lag scan is added",
                  "NMI at lag 0 underestimates the within-component pair; "
                  "the lag scan recovers it");
  db::expectation("count baseline",
                  "captures word-for-word coupling only",
                  "competitive on aligned pairs, no context for the rest");
  return 0;
}
