// Figure 3 — (a) CDF of sensor event cardinality and (b) CDF of sensor
// vocabulary size on the plant dataset.
//
// Paper: mean cardinality 2.07, 97.6% binary, max 7; with 10-char words
// ~40% of sensors have vocabulary < 13, <20% exceed 100, average 707.
#include <iostream>

#include "common.h"
#include "core/encryption.h"
#include "core/language.h"
#include "util/stats.h"
#include "util/strings.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Figure 3: sensor cardinality and vocabulary size ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::full_plant_config());

  // Training slice only, like the paper's offline phase.
  const auto train = plant.days_slice(0, db::kPlantTrainDays);
  const auto enc = dc::SensorEncrypter::fit(train);

  // ---- (a) cardinality CDF ----
  std::vector<double> cardinalities;
  std::size_t binary = 0;
  for (const auto& name : enc.kept_sensors()) {
    const double c = static_cast<double>(enc.cardinality(name));
    cardinalities.push_back(c);
    binary += c == 2.0 ? 1 : 0;
  }
  db::print_cdf("Fig 3(a): CDF of sensor cardinality", cardinalities,
                {2, 3, 4, 5, 6, 7});
  const double mean_card = du::mean(cardinalities);
  db::expectation("mean cardinality", "2.07", du::fixed(mean_card, 2));
  db::expectation(
      "% binary sensors", "97.6%",
      du::fixed(100.0 * binary / cardinalities.size(), 1) + "%");
  db::expectation("max cardinality", "7",
                  du::fixed(*std::max_element(cardinalities.begin(),
                                              cardinalities.end()),
                            0));
  db::expectation("filtered (constant) sensors", "excluded by §II-A1",
                  std::to_string(enc.dropped_sensors().size()) + " dropped");

  // ---- (b) vocabulary-size CDF (word = 10 chars, stride 1, §III-A1) ----
  dc::WindowConfig wcfg;
  wcfg.word_length = 10;
  wcfg.word_stride = 1;
  const dc::LanguageGenerator gen(wcfg);
  std::vector<double> vocab_sizes;
  for (const auto& name : enc.kept_sensors()) {
    for (const auto& sensor : train) {
      if (sensor.name == name) {
        vocab_sizes.push_back(static_cast<double>(
            gen.vocabulary_size(enc.encode(name, sensor.events))));
      }
    }
  }
  db::print_cdf("Fig 3(b): CDF of vocabulary size (word=10 chars)",
                vocab_sizes, {1, 5, 13, 50, 100, 500, 1000});
  db::expectation("~40% of sensors have vocab < 13", "0.40",
                  du::fixed(du::cdf_at(vocab_sizes, 13), 2));
  db::expectation("<20% of sensors have vocab > 100", "<0.20",
                  du::fixed(1.0 - du::cdf_at(vocab_sizes, 100), 2));
  db::expectation("average vocabulary size", "707",
                  du::fixed(du::mean(vocab_sizes), 0));
  std::cout << "  note: our wave-driven binary sensors have more regular "
               "languages than the real plant's,\n"
               "  so the vocabulary tail is lighter; the CDF shape "
               "(many tiny vocabularies, long tail) matches.\n";
  return 0;
}
