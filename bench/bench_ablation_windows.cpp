// Ablation — word/sentence window parameters (§II-A2, §III-A1).
//
// The paper discusses how word length i controls vocabulary size (more
// information vs longer training), word stride j the overlap, sentence
// length m the context span, and sentence stride n the detection
// granularity / corpus size trade-off. This ablation measures all four on
// the plant data.
#include <iostream>

#include "common.h"
#include "core/encryption.h"
#include "core/language.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Ablation: language window parameters (i, j, m, n) ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::full_plant_config());
  const auto train = plant.days_slice(0, db::kPlantTrainDays);
  const auto enc = dc::SensorEncrypter::fit(train);

  // Encode once.
  const auto chars = enc.encode_all(train);

  struct Setting {
    std::size_t i, j, m, n;
  };
  const Setting settings[] = {
      {10, 1, 20, 20},  // paper defaults
      {10, 1, 20, 1},   // per-minute detection granularity
      {5, 1, 20, 20},   // shorter words
      {20, 1, 20, 20},  // longer words
      {10, 5, 20, 20},  // sparser word overlap
      {10, 1, 7, 7},    // shorter sentences
      {10, 1, 40, 40},  // longer sentences
  };

  du::Table t({"word i", "stride j", "sent m", "stride n", "mean vocab",
               "max vocab", "sentences/sensor", "detections/day"});
  for (const Setting& s : settings) {
    dc::WindowConfig w;
    w.word_length = s.i;
    w.word_stride = s.j;
    w.sentence_length = s.m;
    w.sentence_stride = s.n;
    const dc::LanguageGenerator gen(w);

    std::vector<double> vocab;
    vocab.reserve(chars.size());
    for (const auto& c : chars) {
      vocab.push_back(static_cast<double>(gen.vocabulary_size(c)));
    }
    const std::size_t sentences = gen.sentence_count(chars.front().size());
    const double per_day =
        static_cast<double>(sentences) / db::kPlantTrainDays;

    t.add_row({std::to_string(s.i), std::to_string(s.j), std::to_string(s.m),
               std::to_string(s.n), du::fixed(du::mean(vocab), 1),
               du::fixed(*std::max_element(vocab.begin(), vocab.end()), 0),
               std::to_string(sentences), du::fixed(per_day, 1)});
  }
  std::cout << t.to_text();

  db::expectation("word length i", "longer words -> larger vocabulary -> "
                                   "more information but longer training",
                  "mean/max vocab grows with i");
  db::expectation("sentence stride n",
                  "n=1 gives per-minute detection (1440 sentences/day) vs "
                  "72/day at n=20, at higher training cost",
                  "detections/day column");
  return 0;
}
