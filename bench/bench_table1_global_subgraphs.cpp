// Table I — statistics of global subgraphs at the paper's BLEU score ranges:
// % of relationships, # sensors, # popular sensors, # relationships after
// removing popular sensors.
#include <iostream>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Table I: global subgraph statistics per BLEU range ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);
  const auto& g = fw.graph();
  const double total_edges = static_cast<double>(g.edges().size());
  const std::size_t pop_thresh = db::popular_threshold(g.sensor_count());

  struct Band {
    double lo, hi;
    const char* label;
  };
  const Band bands[] = {{0, 60, "[0, 60)"},
                        {60, 70, "[60, 70)"},
                        {70, 80, "[70, 80)"},
                        {80, 90, "[80, 90)"},
                        {90, 100.5, "[90, 100]"}};

  du::Table t({"BLEU range", "% relationships", "# sensors",
               "# popular (in-deg >= " + std::to_string(pop_thresh) + ")",
               "# relationships w/o popular"});
  for (const Band& band : bands) {
    const auto sub = g.filter_bleu(band.lo, band.hi);
    const auto popular = sub.popular_sensors(pop_thresh);
    const auto local = sub.without_sensors(popular);
    t.add_row({band.label,
               du::fixed(100.0 * sub.edges().size() / total_edges, 1) + "%",
               std::to_string(sub.active_sensors().size()),
               std::to_string(popular.size()),
               std::to_string(local.edges().size())});
  }
  std::cout << t.to_text();

  db::expectation("distribution across bands",
                  "10.6 / 12.8 / 28.8 / 17.8 / 29.9 % (majority above 70)",
                  "see table — mass concentrated in the upper bands");
  db::expectation("popular sensors exist in every strong band",
                  "9-32 per band at 128 sensors",
                  "nonzero counts at mini scale (threshold rescaled)");
  return 0;
}
