// Serving-layer throughput bench (ISSUE 5 acceptance): windows/sec and p99
// window latency for N concurrent sessions through serve::SessionManager,
// against N sequential per-session OnlineDetector replays of the same
// streams. Acceptance: >= 3x windows/sec at 8 sessions, with every served
// score bit-identical (IEEE-754) to its sequential replay.
//
// The speedup on this scale comes from what the serving layer shares and
// the sequential path cannot: duplicate sentence-windows across sessions
// are decoded once per batch (TranslationModel::translate_batch dedup), and
// the per-edge decode cache turns the periodic plant's repeating windows
// into pure BLEU evaluations. Both are exact — greedy decode is a pure
// function of the source tokens.
//
// Also measures the telemetry plane's cost (ISSUE 6): windows/sec at 8
// sessions with the /metrics HTTP exposition off vs scraped every 50 ms;
// the overhead must stay <= 2%.
//
// Overload scenario (ISSUE 7): an open-loop driver offers 2x the measured
// saturation throughput with deadline shedding armed; the run records the
// shed rate, the p99 latency of accepted windows (must stay <= 2x the
// 1x-load p99), and the accepted throughput (within 10% of saturation).
//
// Results: bench_artifacts/BENCH_serve.json (+ _metrics/_trace dumps).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "common.h"
#include "core/online.h"
#include "data/plant.h"
#include "io/serialize.h"
#include "obs/http_exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace ds = desmine::serve;
namespace dd = desmine::data;
using desmine::obs::JsonWriter;

namespace {

constexpr std::size_t kSliceTicks = 240;  // one plant day per session stream

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Small serving plant: 9 kept sensors -> 72 pair models, mined once and
/// cached (bench_artifacts/serve_mvrg.bin).
dd::PlantConfig serve_plant_config() {
  dd::PlantConfig cfg;
  cfg.days = 8;
  cfg.minutes_per_day = 240;
  cfg.seed = 7;
  cfg.num_components = 2;
  cfg.sensors_per_component = 3;
  cfg.num_popular = 1;
  cfg.num_lazy = 2;
  cfg.num_constant = 1;
  cfg.anomalies.clear();
  return cfg;
}

dc::FrameworkConfig serve_framework_config() {
  dc::FrameworkConfig cfg;
  cfg.window = {10, 1, 20, 20};  // paper windowing
  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.model.max_decode_length = 22;
  cfg.miner.translation.trainer.steps = 250;
  cfg.miner.translation.trainer.batch_size = 16;
  cfg.miner.seed = 5;
  cfg.miner.threads = 1;
  cfg.detector.valid_lo = 0.0;  // keep every edge: maximum scoring work
  cfg.detector.valid_hi = 100.5;
  cfg.detector.threads = 1;
  return cfg;
}

dc::Framework serve_framework(const dc::MultivariateSeries& series) {
  const std::string path = db::artifact_dir() + "/serve_mvrg.bin";
  const dc::FrameworkConfig cfg = serve_framework_config();
  if (std::ifstream probe(path); probe.good()) {
    std::cout << "loading cached serving artifact " << path << "\n";
    return desmine::io::load_framework(path, cfg);
  }
  std::cout << "mining serving artifact (once; cached at " << path << ")\n";
  const std::size_t day = serve_plant_config().minutes_per_day;
  dc::MultivariateSeries train, dev;
  for (const auto& s : series) {
    dc::EventSequence tr(s.events.begin(), s.events.begin() + 6 * day);
    dc::EventSequence dv(s.events.begin() + 6 * day,
                         s.events.begin() + 8 * day);
    train.push_back({s.name, tr});
    dev.push_back({s.name, dv});
  }
  dc::Framework fw(cfg);
  fw.fit(train, dev);
  desmine::io::save_framework(fw, path);
  return fw;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Session s replays one day of the stream starting at a day offset, so
/// concurrent sessions overlap the way independent plants on the same
/// duty cycle would.
std::size_t slice_start(std::size_t session, std::size_t total_ticks,
                        std::size_t slice_ticks = kSliceTicks) {
  const std::size_t day = serve_plant_config().minutes_per_day;
  return (session * day) % (total_ticks - slice_ticks + 1);
}

struct RunResult {
  double elapsed_s = 0.0;
  std::size_t windows = 0;
  std::vector<std::vector<double>> scores;  // per session, in window order
};

RunResult run_sequential(const dc::Framework& fw,
                         const dc::MultivariateSeries& series,
                         std::size_t sessions) {
  const dc::FrameworkConfig& cfg = fw.config();
  RunResult out;
  out.scores.resize(sessions);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sessions; ++s) {
    dc::OnlineDetector online(fw.graph(), fw.encrypter(), cfg.window,
                              cfg.detector);
    const std::size_t start = slice_start(s, series.front().events.size());
    for (std::size_t t = 0; t < kSliceTicks; ++t) {
      const auto r = online.push(tick_states(series, start + t));
      if (r) {
        out.scores[s].push_back(r->anomaly_score);
        ++out.windows;
      }
    }
  }
  out.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

RunResult run_served(const dc::Framework& fw,
                     const dc::MultivariateSeries& series,
                     std::size_t sessions, double* p99_ms) {
  const dc::FrameworkConfig& cfg = fw.config();
  ds::ServeConfig scfg;
  scfg.detector = cfg.detector;
  RunResult out;
  out.scores.resize(sessions);
  desmine::obs::metrics().histogram("serve.window.latency_ms").reset();
  const auto t0 = std::chrono::steady_clock::now();
  {
    ds::SessionManager manager(fw.graph(), fw.encrypter(), cfg.window, scfg);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < sessions; ++s) ids.push_back(manager.open());
    for (std::size_t t = 0; t < kSliceTicks; ++t) {
      for (std::size_t s = 0; s < sessions; ++s) {
        const std::size_t start =
            slice_start(s, series.front().events.size());
        manager.ingest(ids[s], tick_states(series, start + t));
      }
    }
    manager.drain();
    for (std::size_t s = 0; s < sessions; ++s) {
      while (const auto r = manager.poll(ids[s])) {
        out.scores[s].push_back(r->anomaly_score);
        ++out.windows;
      }
    }
  }
  out.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *p99_ms = desmine::obs::metrics()
                .histogram("serve.window.latency_ms")
                .snapshot()
                .quantile(0.99);
  return out;
}

/// Telemetry-plane overhead (ISSUE 6 acceptance): windows/sec at `sessions`
/// streams with the /metrics exposition off vs on under an aggressive
/// scraper (one scrape per 50 ms — far hotter than a real Prometheus poll).
/// One run lasts well under a second, so a single off/on pair mostly
/// measures scheduling noise; instead the modes alternate for `kReps`
/// rounds and each mode keeps its best throughput (best-of-N is robust to
/// one-sided slowdowns, which is what OS jitter produces). Returns the
/// throughput loss in percent (clamped at 0: even best-of noise can make
/// the exposed run the faster one).
double exposition_overhead_pct(const dc::Framework& fw,
                               const dc::MultivariateSeries& series,
                               std::size_t sessions, double* off_wps,
                               double* on_wps, std::size_t* scrapes_out) {
  constexpr int kReps = 5;
  double p99 = 0.0;
  std::size_t scrapes = 0;
  *off_wps = 0.0;
  *on_wps = 0.0;
  const auto run_off = [&] {
    const RunResult off = run_served(fw, series, sessions, &p99);
    *off_wps = std::max(*off_wps, static_cast<double>(off.windows) /
                                      std::max(off.elapsed_s, 1e-9));
  };
  const auto run_on = [&] {
    desmine::obs::HttpExposition http;
    desmine::obs::mount_telemetry(http);
    http.start(0);  // ephemeral port: parallel benches never collide
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          desmine::obs::http_get(http.port(), "/metrics");
          ++scrapes;
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
    const RunResult on = run_served(fw, series, sessions, &p99);
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    http.stop();
    *on_wps = std::max(*on_wps, static_cast<double>(on.windows) /
                                    std::max(on.elapsed_s, 1e-9));
  };
  for (int rep = 0; rep < kReps; ++rep) {
    // Alternate which mode goes first so neither systematically pays the
    // post-idle warmup.
    if (rep % 2 == 0) {
      run_off();
      run_on();
    } else {
      run_on();
      run_off();
    }
  }
  *scrapes_out = scrapes;
  return std::max(0.0, (*off_wps - *on_wps) / std::max(*off_wps, 1e-9) * 100.0);
}

// ---------------------------------------------------------------------------
// Overload scenario (ISSUE 7): open-loop offered load vs deadline shedding

constexpr std::size_t kOverloadTicks = 480;  // two plant days per session

struct OverloadRun {
  double offered_wps = 0.0;   ///< realized open-loop offered window rate
  double accepted_wps = 0.0;  ///< scored (non-shed) windows per second
  double shed_rate = 0.0;     ///< shed / (shed + accepted)
  double p99_ms = 0.0;        ///< p99 latency of ACCEPTED windows only
  std::size_t accepted = 0;
  std::size_t shed = 0;
};

/// Open-loop driver: ticks are offered on a fixed wall-clock schedule
/// derived from `offered_wps` (one window needs sentence_stride ticks per
/// session) and never slowed down by the server — if the fleet cannot keep
/// up, windows go stale in the scheduler queue and the `deadline_ms`
/// shedding policy drops them as counted no-verdict results. Shed windows
/// are excluded from serve.window.latency_ms by design, so the measured p99
/// is the accepted-windows p99 the acceptance bound speaks about.
OverloadRun run_overload(const dc::Framework& fw,
                         const dc::MultivariateSeries& series,
                         std::size_t sessions, double offered_wps,
                         double deadline_ms) {
  const dc::FrameworkConfig& cfg = fw.config();
  ds::ServeConfig scfg;
  scfg.detector = cfg.detector;
  scfg.max_queue_delay_ms = deadline_ms;
  // The bench measures steady-state shedding, not the starvation guard:
  // effectively-unbounded budgets keep the open loop from ever blocking,
  // and an unreachable consecutive-shed cap keeps guard-forced stragglers
  // (accepted windows with unbounded queue age) out of the p99.
  scfg.limits.max_pending_windows = 1u << 20;
  scfg.limits.max_consecutive_shed = 1u << 20;

  const std::size_t stride = cfg.window.sentence_stride;
  // One round feeds one tick to every session = sessions/stride windows.
  const double rounds_per_s =
      offered_wps * static_cast<double>(stride) / static_cast<double>(sessions);
  const auto round_interval = std::chrono::duration<double>(1.0 / rounds_per_s);

  OverloadRun out;
  desmine::obs::metrics().histogram("serve.window.latency_ms").reset();
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed_s = 0.0;
  {
    ds::SessionManager manager(fw.graph(), fw.encrypter(), cfg.window, scfg);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < sessions; ++s) ids.push_back(manager.open());
    for (std::size_t t = 0; t < kOverloadTicks; ++t) {
      // Absolute schedule: a late round never stretches the offered rate.
      const auto due = t0 + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                round_interval * static_cast<double>(t));
      while (std::chrono::steady_clock::now() < due) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      for (std::size_t s = 0; s < sessions; ++s) {
        const std::size_t start = slice_start(s, series.front().events.size(),
                                              kOverloadTicks);
        manager.ingest(ids[s], tick_states(series, start + t));
      }
    }
    manager.drain();
    elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (std::size_t s = 0; s < sessions; ++s) {
      while (const auto r = manager.poll(ids[s])) {
        if (r->shed) {
          ++out.shed;
        } else {
          ++out.accepted;
        }
      }
    }
  }
  const std::size_t total = out.accepted + out.shed;
  out.offered_wps = static_cast<double>(total) / std::max(elapsed_s, 1e-9);
  out.accepted_wps =
      static_cast<double>(out.accepted) / std::max(elapsed_s, 1e-9);
  out.shed_rate = total == 0 ? 0.0
                             : static_cast<double>(out.shed) /
                                   static_cast<double>(total);
  out.p99_ms = desmine::obs::metrics()
                   .histogram("serve.window.latency_ms")
                   .snapshot()
                   .quantile(0.99);
  return out;
}

// ---------------------------------------------------------------------------
// Cold start (ISSUE 9): restart-to-first-window, v3 heap vs v4 mmap

std::size_t vm_rss_kb() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

struct ColdStart {
  double open_ms = 0.0;          ///< SessionManager ctor (load or map)
  double first_window_ms = 0.0;  ///< ctor + ingest until the first verdict
  std::int64_t rss_delta_kb = 0;
};

/// One restart: construct a SessionManager from `path` with detector `det`
/// and feed ticks until the first window verdict arrives. v3 pays a full
/// deserialization of every model in the ctor; v4 maps the file and only
/// materializes the valid-band edges the first window actually touches.
ColdStart run_cold_start(const std::string& path,
                         const dc::DetectorConfig& det,
                         const dc::MultivariateSeries& series) {
  ds::ServeConfig scfg;
  scfg.detector = det;
  ColdStart out;
  const std::size_t rss0 = vm_rss_kb();
  const auto t0 = std::chrono::steady_clock::now();
  ds::SessionManager manager(path, scfg);
  out.open_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  const std::uint64_t id = manager.open();
  // A restarting server replays its buffered stream tail at full speed; no
  // window can complete before word_length + sentence_length - 1 ticks, so
  // the drain/poll handshake only starts once one can.
  const dc::FrameworkConfig& fcfg = serve_framework_config();
  const std::size_t earliest =
      fcfg.window.word_length + fcfg.window.sentence_length - 2;
  for (std::size_t t = 0; t < kSliceTicks; ++t) {
    manager.ingest(id, tick_states(series, t));
    if (t < earliest) continue;
    manager.drain(id);
    if (manager.poll(id)) break;
  }
  out.first_window_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  out.rss_delta_kb = static_cast<std::int64_t>(vm_rss_kb()) -
                     static_cast<std::int64_t>(rss0);
  return out;
}

/// Valid band that keeps only the `keep` highest-BLEU edges — the ops
/// posture a tuned deployment runs with (paper band [80,90) keeps a small
/// fraction of all pairs). v3 still deserializes every model.
dc::DetectorConfig narrow_band(const dc::Framework& fw, std::size_t keep) {
  dc::DetectorConfig det = fw.config().detector;
  std::vector<double> bleus;
  for (const auto& e : fw.graph().edges()) bleus.push_back(e.bleu);
  std::sort(bleus.rbegin(), bleus.rend());
  if (bleus.size() > keep) det.valid_lo = bleus[keep - 1];
  return det;
}

bool bit_identical(const RunResult& a, const RunResult& b) {
  if (a.scores.size() != b.scores.size()) return false;
  for (std::size_t s = 0; s < a.scores.size(); ++s) {
    if (a.scores[s].size() != b.scores[s].size()) return false;
    for (std::size_t w = 0; w < a.scores[s].size(); ++w) {
      if (bits(a.scores[s][w]) != bits(b.scores[s][w])) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  db::enable_observability("warn");
  const dd::PlantDataset plant = dd::generate_plant(serve_plant_config());
  const dc::Framework fw = serve_framework(plant.series);
  std::cout << "valid edges: " << fw.graph().edges().size() << ", slice "
            << kSliceTicks << " ticks/session\n";

  desmine::util::Table table({"sessions", "sequential w/s", "served w/s",
                              "speedup", "p99 latency ms", "bit-identical"});
  JsonWriter json;
  json.begin_object().key("bench").value("serve");
  json.key("slice_ticks").value(static_cast<std::uint64_t>(kSliceTicks));
  json.key("runs").begin_array();

  bool all_identical = true;
  double speedup_at_8 = 0.0;
  double capacity_wps = 0.0;
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{8},
                                     std::size_t{32}}) {
    const RunResult seq = run_sequential(fw, plant.series, sessions);
    double p99_ms = 0.0;
    const RunResult served = run_served(fw, plant.series, sessions, &p99_ms);
    const bool identical = bit_identical(seq, served);
    all_identical = all_identical && identical;

    const double seq_wps =
        static_cast<double>(seq.windows) / std::max(seq.elapsed_s, 1e-9);
    const double served_wps =
        static_cast<double>(served.windows) / std::max(served.elapsed_s, 1e-9);
    const double speedup = served_wps / std::max(seq_wps, 1e-9);
    if (sessions == 8) {
      speedup_at_8 = speedup;
      capacity_wps = served_wps;  // no-shedding saturation throughput
    }

    table.add_row({std::to_string(sessions),
                   desmine::util::fixed(seq_wps, 1),
                   desmine::util::fixed(served_wps, 1),
                   desmine::util::fixed(speedup, 2) + "x",
                   desmine::util::fixed(p99_ms, 1),
                   identical ? "yes" : "NO"});

    json.begin_object();
    json.key("sessions").value(static_cast<std::uint64_t>(sessions));
    json.key("windows").value(static_cast<std::uint64_t>(served.windows));
    json.key("sequential_windows_per_sec").value(seq_wps);
    json.key("served_windows_per_sec").value(served_wps);
    json.key("speedup").value(speedup);
    json.key("p99_window_latency_ms").value(p99_ms);
    json.key("bit_identical").value(identical);
    json.end_object();
  }
  json.end_array();
  json.key("speedup_at_8_sessions").value(speedup_at_8);
  json.key("all_bit_identical").value(all_identical);

  // Telemetry-plane overhead at 8 sessions: scraping /metrics every 50 ms
  // must not meaningfully tax the serving hot path.
  double off_wps = 0.0, on_wps = 0.0;
  std::size_t scrapes = 0;
  const double overhead_pct = exposition_overhead_pct(
      fw, plant.series, 8, &off_wps, &on_wps, &scrapes);
  json.key("exposition_off_windows_per_sec").value(off_wps);
  json.key("exposition_on_windows_per_sec").value(on_wps);
  json.key("exposition_scrapes").value(static_cast<std::uint64_t>(scrapes));
  json.key("exposition_overhead_pct").value(overhead_pct);

  // Overload scenario (ISSUE 7): a 1x open-loop run with shedding off sets
  // the reference p99 and the shedding deadline, then the same fleet takes
  // 2x its measured saturation throughput with deadline shedding on. The
  // acceptance bounds: sheds happen, the accepted-windows p99 stays within
  // 2x the 1x-load p99, and accepted throughput stays within 10% of the
  // no-shedding saturation.
  const OverloadRun base =
      run_overload(fw, plant.series, 8, capacity_wps, 0.0);
  const double deadline_ms = std::max(base.p99_ms, 0.5);
  const OverloadRun loaded =
      run_overload(fw, plant.series, 8, 2.0 * capacity_wps, deadline_ms);
  const bool overload_sheds = loaded.shed_rate > 0.0;
  const bool overload_p99_bounded = loaded.p99_ms <= 2.0 * base.p99_ms;
  const bool overload_throughput_held =
      loaded.accepted_wps >= 0.9 * capacity_wps;

  desmine::util::Table overload({"offered", "offered w/s", "accepted w/s",
                                 "shed rate", "p99 accepted ms"});
  overload.add_row({"1x", desmine::util::fixed(base.offered_wps, 1),
                    desmine::util::fixed(base.accepted_wps, 1),
                    desmine::util::fixed(base.shed_rate, 3),
                    desmine::util::fixed(base.p99_ms, 1)});
  overload.add_row({"2x", desmine::util::fixed(loaded.offered_wps, 1),
                    desmine::util::fixed(loaded.accepted_wps, 1),
                    desmine::util::fixed(loaded.shed_rate, 3),
                    desmine::util::fixed(loaded.p99_ms, 1)});
  std::cout << overload.to_text(
      "overload shedding (8 sessions, open-loop offered load)");

  json.key("overload").begin_object();
  json.key("sessions").value(std::uint64_t{8});
  json.key("ticks_per_session")
      .value(static_cast<std::uint64_t>(kOverloadTicks));
  json.key("capacity_windows_per_sec").value(capacity_wps);
  json.key("shed_deadline_ms").value(deadline_ms);
  json.key("runs").begin_array();
  for (const OverloadRun* run : {&base, &loaded}) {
    json.begin_object();
    json.key("load_factor").value(run == &base ? 1.0 : 2.0);
    json.key("offered_windows_per_sec").value(run->offered_wps);
    json.key("accepted_windows_per_sec").value(run->accepted_wps);
    json.key("accepted").value(static_cast<std::uint64_t>(run->accepted));
    json.key("shed").value(static_cast<std::uint64_t>(run->shed));
    json.key("shed_rate").value(run->shed_rate);
    json.key("p99_accepted_latency_ms").value(run->p99_ms);
    json.end_object();
  }
  json.end_array();
  json.key("shed_rate_positive").value(overload_sheds);
  json.key("p99_within_2x_of_1x_load").value(overload_p99_bounded);
  json.key("accepted_within_10pct_of_saturation")
      .value(overload_throughput_held);
  json.end_object();

  std::cout << table.to_text("serving layer throughput (1 artifact, N streams)");
  db::expectation("speedup at 8 sessions", ">= 3x",
                  desmine::util::fixed(speedup_at_8, 2) + "x");
  db::expectation("served scores vs sequential replay", "bit-identical",
                  all_identical ? "bit-identical" : "MISMATCH");
  db::expectation("/metrics exposition overhead (8 sessions)", "<= 2%",
                  desmine::util::fixed(overhead_pct, 2) + "% (" +
                      std::to_string(scrapes) + " scrapes)");
  db::expectation("overload shed rate at 2x offered load", "> 0",
                  desmine::util::fixed(loaded.shed_rate, 3) + " (" +
                      std::to_string(loaded.shed) + " windows)");
  db::expectation("overload p99 of accepted windows",
                  "<= 2x 1x-load p99 (" +
                      desmine::util::fixed(2.0 * base.p99_ms, 1) + " ms)",
                  desmine::util::fixed(loaded.p99_ms, 1) + " ms");
  db::expectation("overload accepted throughput",
                  ">= 90% of saturation (" +
                      desmine::util::fixed(0.9 * capacity_wps, 1) + " w/s)",
                  desmine::util::fixed(loaded.accepted_wps, 1) + " w/s");

  // Cold start (ISSUE 9): the same fitted graph published as a v3 stream
  // and a v4 mapped artifact, restarted to the first window verdict. Two
  // bands: the bench's keep-everything band (worst case for v4 — the first
  // window touches every edge) and a narrow top-6 band (the tuned-ops case
  // the mapped layout is designed for: open is O(header+TOC) and only the
  // valid-band edges ever materialize).
  const std::string v3_path = db::artifact_dir() + "/serve_cold_v3.bin";
  const std::string v4_path = db::artifact_dir() + "/serve_cold_v4.bin";
  desmine::io::save_framework(fw, v3_path,
                              desmine::io::kStreamArtifactVersion);
  desmine::io::save_framework(fw, v4_path);
  const dc::DetectorConfig full_band = fw.config().detector;
  const dc::DetectorConfig top6_band = narrow_band(fw, 6);

  constexpr int kColdReps = 3;
  const auto best_cold = [&](const std::string& path,
                             const dc::DetectorConfig& det) {
    ColdStart best = run_cold_start(path, det, plant.series);
    for (int rep = 1; rep < kColdReps; ++rep) {
      const ColdStart run = run_cold_start(path, det, plant.series);
      if (run.first_window_ms < best.first_window_ms) best = run;
    }
    return best;
  };
  const ColdStart v3_full = best_cold(v3_path, full_band);
  const ColdStart v4_full = best_cold(v4_path, full_band);
  const ColdStart v3_narrow = best_cold(v3_path, top6_band);
  const ColdStart v4_narrow = best_cold(v4_path, top6_band);
  // The acceptance quantity is the restart latency the artifact layout adds
  // before the server is serveable: v3 parses every model in the ctor, v4
  // opens in O(header+TOC). End-to-end first-window time additionally
  // includes ingest + the first window's decode work, which is identical
  // for both layouts and floors the end-to-end ratio — both are reported.
  const double open_speedup_full =
      v3_full.open_ms / std::max(v4_full.open_ms, 1e-9);
  const double open_speedup_narrow =
      v3_narrow.open_ms / std::max(v4_narrow.open_ms, 1e-9);
  const double cold_speedup_full =
      v3_full.first_window_ms / std::max(v4_full.first_window_ms, 1e-9);
  const double cold_speedup_narrow =
      v3_narrow.first_window_ms / std::max(v4_narrow.first_window_ms, 1e-9);

  // Fleet restart: N managers over the SAME artifact, open cost only. The
  // v4 maps share one page cache entry per weight page; v3 re-parses the
  // full stream N times.
  constexpr std::size_t kFleet = 8;
  const auto fleet_open_ms = [&](const std::string& path) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::unique_ptr<ds::SessionManager>> fleet;
    for (std::size_t i = 0; i < kFleet; ++i) {
      ds::ServeConfig scfg;
      scfg.detector = top6_band;
      fleet.push_back(std::make_unique<ds::SessionManager>(path, scfg));
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double fleet_v3_ms = fleet_open_ms(v3_path);
  const double fleet_v4_ms = fleet_open_ms(v4_path);

  desmine::util::Table cold({"layout", "band", "open ms", "first window ms",
                             "rss delta kb"});
  const auto cold_row = [&](const char* layout, const char* band,
                            const ColdStart& r) {
    cold.add_row({layout, band, desmine::util::fixed(r.open_ms, 2),
                  desmine::util::fixed(r.first_window_ms, 2),
                  std::to_string(r.rss_delta_kb)});
  };
  cold_row("v3 heap", "full", v3_full);
  cold_row("v4 mmap", "full", v4_full);
  cold_row("v3 heap", "top-6", v3_narrow);
  cold_row("v4 mmap", "top-6", v4_narrow);
  std::cout << cold.to_text("cold start: restart to first window verdict");

  json.key("cold_start").begin_object();
  json.key("edges").value(
      static_cast<std::uint64_t>(fw.graph().edges().size()));
  json.key("runs").begin_array();
  const auto cold_json = [&](const char* layout, const char* band,
                             const ColdStart& r) {
    json.begin_object();
    json.key("layout").value(layout);
    json.key("band").value(band);
    json.key("open_ms").value(r.open_ms);
    json.key("first_window_ms").value(r.first_window_ms);
    json.key("rss_delta_kb").value(static_cast<double>(r.rss_delta_kb));
    json.end_object();
  };
  cold_json("v3_heap", "full", v3_full);
  cold_json("v4_mmap", "full", v4_full);
  cold_json("v3_heap", "top6", v3_narrow);
  cold_json("v4_mmap", "top6", v4_narrow);
  json.end_array();
  json.key("open_speedup_full_band").value(open_speedup_full);
  json.key("open_speedup_top6_band").value(open_speedup_narrow);
  json.key("first_window_speedup_full_band").value(cold_speedup_full);
  json.key("first_window_speedup_top6_band").value(cold_speedup_narrow);
  json.key("fleet_size").value(static_cast<std::uint64_t>(kFleet));
  json.key("fleet_open_v3_ms").value(fleet_v3_ms);
  json.key("fleet_open_v4_ms").value(fleet_v4_ms);
  json.key("fleet_open_speedup")
      .value(fleet_v3_ms / std::max(fleet_v4_ms, 1e-9));
  json.end_object();
  json.end_object();  // root

  db::expectation("restart-to-serveable (open) v4 vs v3", ">= 50x",
                  desmine::util::fixed(open_speedup_full, 1) + "x full band, " +
                      desmine::util::fixed(open_speedup_narrow, 1) +
                      "x top-6 band");
  db::expectation("restart-to-first-window v4 vs v3", "report",
                  desmine::util::fixed(cold_speedup_full, 1) + "x full band, " +
                      desmine::util::fixed(cold_speedup_narrow, 1) +
                      "x top-6 band (floor: first window decode)");
  db::expectation(
      "fleet of 8 opens (top-6 band)", "report",
      desmine::util::fixed(fleet_v3_ms, 1) + " ms v3 vs " +
          desmine::util::fixed(fleet_v4_ms, 1) + " ms v4 (" +
          desmine::util::fixed(fleet_v3_ms / std::max(fleet_v4_ms, 1e-9), 1) +
          "x)");

  const std::string out_path = db::artifact_dir() + "/BENCH_serve.json";
  std::ofstream out(out_path);
  out << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  db::dump_observability("serve");
  return all_identical && speedup_at_8 >= 3.0 && overload_sheds &&
                 open_speedup_full >= 50.0
             ? 0
             : 1;
}
