// Serving-layer throughput bench (ISSUE 5 acceptance): windows/sec and p99
// window latency for N concurrent sessions through serve::SessionManager,
// against N sequential per-session OnlineDetector replays of the same
// streams. Acceptance: >= 3x windows/sec at 8 sessions, with every served
// score bit-identical (IEEE-754) to its sequential replay.
//
// The speedup on this scale comes from what the serving layer shares and
// the sequential path cannot: duplicate sentence-windows across sessions
// are decoded once per batch (TranslationModel::translate_batch dedup), and
// the per-edge decode cache turns the periodic plant's repeating windows
// into pure BLEU evaluations. Both are exact — greedy decode is a pure
// function of the source tokens.
//
// Also measures the telemetry plane's cost (ISSUE 6): windows/sec at 8
// sessions with the /metrics HTTP exposition off vs scraped every 50 ms;
// the overhead must stay <= 2%.
//
// Results: bench_artifacts/BENCH_serve.json (+ _metrics/_trace dumps).
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "common.h"
#include "core/online.h"
#include "data/plant.h"
#include "io/serialize.h"
#include "obs/http_exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace ds = desmine::serve;
namespace dd = desmine::data;
using desmine::obs::JsonWriter;

namespace {

constexpr std::size_t kSliceTicks = 240;  // one plant day per session stream

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Small serving plant: 9 kept sensors -> 72 pair models, mined once and
/// cached (bench_artifacts/serve_mvrg.bin).
dd::PlantConfig serve_plant_config() {
  dd::PlantConfig cfg;
  cfg.days = 8;
  cfg.minutes_per_day = 240;
  cfg.seed = 7;
  cfg.num_components = 2;
  cfg.sensors_per_component = 3;
  cfg.num_popular = 1;
  cfg.num_lazy = 2;
  cfg.num_constant = 1;
  cfg.anomalies.clear();
  return cfg;
}

dc::FrameworkConfig serve_framework_config() {
  dc::FrameworkConfig cfg;
  cfg.window = {10, 1, 20, 20};  // paper windowing
  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.model.max_decode_length = 22;
  cfg.miner.translation.trainer.steps = 250;
  cfg.miner.translation.trainer.batch_size = 16;
  cfg.miner.seed = 5;
  cfg.miner.threads = 1;
  cfg.detector.valid_lo = 0.0;  // keep every edge: maximum scoring work
  cfg.detector.valid_hi = 100.5;
  cfg.detector.threads = 1;
  return cfg;
}

dc::Framework serve_framework(const dc::MultivariateSeries& series) {
  const std::string path = db::artifact_dir() + "/serve_mvrg.bin";
  const dc::FrameworkConfig cfg = serve_framework_config();
  if (std::ifstream probe(path); probe.good()) {
    std::cout << "loading cached serving artifact " << path << "\n";
    return desmine::io::load_framework(path, cfg);
  }
  std::cout << "mining serving artifact (once; cached at " << path << ")\n";
  const std::size_t day = serve_plant_config().minutes_per_day;
  dc::MultivariateSeries train, dev;
  for (const auto& s : series) {
    dc::EventSequence tr(s.events.begin(), s.events.begin() + 6 * day);
    dc::EventSequence dv(s.events.begin() + 6 * day,
                         s.events.begin() + 8 * day);
    train.push_back({s.name, tr});
    dev.push_back({s.name, dv});
  }
  dc::Framework fw(cfg);
  fw.fit(train, dev);
  desmine::io::save_framework(fw, path);
  return fw;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Session s replays one day of the stream starting at a day offset, so
/// concurrent sessions overlap the way independent plants on the same
/// duty cycle would.
std::size_t slice_start(std::size_t session, std::size_t total_ticks) {
  const std::size_t day = serve_plant_config().minutes_per_day;
  return (session * day) % (total_ticks - kSliceTicks + 1);
}

struct RunResult {
  double elapsed_s = 0.0;
  std::size_t windows = 0;
  std::vector<std::vector<double>> scores;  // per session, in window order
};

RunResult run_sequential(const dc::Framework& fw,
                         const dc::MultivariateSeries& series,
                         std::size_t sessions) {
  const dc::FrameworkConfig& cfg = fw.config();
  RunResult out;
  out.scores.resize(sessions);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sessions; ++s) {
    dc::OnlineDetector online(fw.graph(), fw.encrypter(), cfg.window,
                              cfg.detector);
    const std::size_t start = slice_start(s, series.front().events.size());
    for (std::size_t t = 0; t < kSliceTicks; ++t) {
      const auto r = online.push(tick_states(series, start + t));
      if (r) {
        out.scores[s].push_back(r->anomaly_score);
        ++out.windows;
      }
    }
  }
  out.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

RunResult run_served(const dc::Framework& fw,
                     const dc::MultivariateSeries& series,
                     std::size_t sessions, double* p99_ms) {
  const dc::FrameworkConfig& cfg = fw.config();
  ds::ServeConfig scfg;
  scfg.detector = cfg.detector;
  RunResult out;
  out.scores.resize(sessions);
  desmine::obs::metrics().histogram("serve.window.latency_ms").reset();
  const auto t0 = std::chrono::steady_clock::now();
  {
    ds::SessionManager manager(fw.graph(), fw.encrypter(), cfg.window, scfg);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < sessions; ++s) ids.push_back(manager.open());
    for (std::size_t t = 0; t < kSliceTicks; ++t) {
      for (std::size_t s = 0; s < sessions; ++s) {
        const std::size_t start =
            slice_start(s, series.front().events.size());
        manager.ingest(ids[s], tick_states(series, start + t));
      }
    }
    manager.drain();
    for (std::size_t s = 0; s < sessions; ++s) {
      while (const auto r = manager.poll(ids[s])) {
        out.scores[s].push_back(r->anomaly_score);
        ++out.windows;
      }
    }
  }
  out.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  *p99_ms = desmine::obs::metrics()
                .histogram("serve.window.latency_ms")
                .snapshot()
                .quantile(0.99);
  return out;
}

/// Telemetry-plane overhead (ISSUE 6 acceptance): windows/sec at `sessions`
/// streams with the /metrics exposition off vs on under an aggressive
/// scraper (one scrape per 50 ms — far hotter than a real Prometheus poll).
/// One run lasts well under a second, so a single off/on pair mostly
/// measures scheduling noise; instead the modes alternate for `kReps`
/// rounds and each mode keeps its best throughput (best-of-N is robust to
/// one-sided slowdowns, which is what OS jitter produces). Returns the
/// throughput loss in percent (clamped at 0: even best-of noise can make
/// the exposed run the faster one).
double exposition_overhead_pct(const dc::Framework& fw,
                               const dc::MultivariateSeries& series,
                               std::size_t sessions, double* off_wps,
                               double* on_wps, std::size_t* scrapes_out) {
  constexpr int kReps = 5;
  double p99 = 0.0;
  std::size_t scrapes = 0;
  *off_wps = 0.0;
  *on_wps = 0.0;
  const auto run_off = [&] {
    const RunResult off = run_served(fw, series, sessions, &p99);
    *off_wps = std::max(*off_wps, static_cast<double>(off.windows) /
                                      std::max(off.elapsed_s, 1e-9));
  };
  const auto run_on = [&] {
    desmine::obs::HttpExposition http;
    desmine::obs::mount_telemetry(http);
    http.start(0);  // ephemeral port: parallel benches never collide
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          desmine::obs::http_get(http.port(), "/metrics");
          ++scrapes;
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
    const RunResult on = run_served(fw, series, sessions, &p99);
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    http.stop();
    *on_wps = std::max(*on_wps, static_cast<double>(on.windows) /
                                    std::max(on.elapsed_s, 1e-9));
  };
  for (int rep = 0; rep < kReps; ++rep) {
    // Alternate which mode goes first so neither systematically pays the
    // post-idle warmup.
    if (rep % 2 == 0) {
      run_off();
      run_on();
    } else {
      run_on();
      run_off();
    }
  }
  *scrapes_out = scrapes;
  return std::max(0.0, (*off_wps - *on_wps) / std::max(*off_wps, 1e-9) * 100.0);
}

bool bit_identical(const RunResult& a, const RunResult& b) {
  if (a.scores.size() != b.scores.size()) return false;
  for (std::size_t s = 0; s < a.scores.size(); ++s) {
    if (a.scores[s].size() != b.scores[s].size()) return false;
    for (std::size_t w = 0; w < a.scores[s].size(); ++w) {
      if (bits(a.scores[s][w]) != bits(b.scores[s][w])) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  db::enable_observability("warn");
  const dd::PlantDataset plant = dd::generate_plant(serve_plant_config());
  const dc::Framework fw = serve_framework(plant.series);
  std::cout << "valid edges: " << fw.graph().edges().size() << ", slice "
            << kSliceTicks << " ticks/session\n";

  desmine::util::Table table({"sessions", "sequential w/s", "served w/s",
                              "speedup", "p99 latency ms", "bit-identical"});
  JsonWriter json;
  json.begin_object().key("bench").value("serve");
  json.key("slice_ticks").value(static_cast<std::uint64_t>(kSliceTicks));
  json.key("runs").begin_array();

  bool all_identical = true;
  double speedup_at_8 = 0.0;
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{8},
                                     std::size_t{32}}) {
    const RunResult seq = run_sequential(fw, plant.series, sessions);
    double p99_ms = 0.0;
    const RunResult served = run_served(fw, plant.series, sessions, &p99_ms);
    const bool identical = bit_identical(seq, served);
    all_identical = all_identical && identical;

    const double seq_wps =
        static_cast<double>(seq.windows) / std::max(seq.elapsed_s, 1e-9);
    const double served_wps =
        static_cast<double>(served.windows) / std::max(served.elapsed_s, 1e-9);
    const double speedup = served_wps / std::max(seq_wps, 1e-9);
    if (sessions == 8) speedup_at_8 = speedup;

    table.add_row({std::to_string(sessions),
                   desmine::util::fixed(seq_wps, 1),
                   desmine::util::fixed(served_wps, 1),
                   desmine::util::fixed(speedup, 2) + "x",
                   desmine::util::fixed(p99_ms, 1),
                   identical ? "yes" : "NO"});

    json.begin_object();
    json.key("sessions").value(static_cast<std::uint64_t>(sessions));
    json.key("windows").value(static_cast<std::uint64_t>(served.windows));
    json.key("sequential_windows_per_sec").value(seq_wps);
    json.key("served_windows_per_sec").value(served_wps);
    json.key("speedup").value(speedup);
    json.key("p99_window_latency_ms").value(p99_ms);
    json.key("bit_identical").value(identical);
    json.end_object();
  }
  json.end_array();
  json.key("speedup_at_8_sessions").value(speedup_at_8);
  json.key("all_bit_identical").value(all_identical);

  // Telemetry-plane overhead at 8 sessions: scraping /metrics every 50 ms
  // must not meaningfully tax the serving hot path.
  double off_wps = 0.0, on_wps = 0.0;
  std::size_t scrapes = 0;
  const double overhead_pct = exposition_overhead_pct(
      fw, plant.series, 8, &off_wps, &on_wps, &scrapes);
  json.key("exposition_off_windows_per_sec").value(off_wps);
  json.key("exposition_on_windows_per_sec").value(on_wps);
  json.key("exposition_scrapes").value(static_cast<std::uint64_t>(scrapes));
  json.key("exposition_overhead_pct").value(overhead_pct);
  json.end_object();

  std::cout << table.to_text("serving layer throughput (1 artifact, N streams)");
  db::expectation("speedup at 8 sessions", ">= 3x",
                  desmine::util::fixed(speedup_at_8, 2) + "x");
  db::expectation("served scores vs sequential replay", "bit-identical",
                  all_identical ? "bit-identical" : "MISMATCH");
  db::expectation("/metrics exposition overhead (8 sessions)", "<= 2%",
                  desmine::util::fixed(overhead_pct, 2) + "% (" +
                      std::to_string(scrapes) + " scrapes)");

  const std::string out_path = db::artifact_dir() + "/BENCH_serve.json";
  std::ofstream out(out_path);
  out << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  db::dump_observability("serve");
  return all_identical && speedup_at_8 >= 3.0 ? 0 : 1;
}
