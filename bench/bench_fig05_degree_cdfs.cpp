// Figure 5 — CDFs of sensor in-degree and out-degree for the global
// subgraphs of Table I.
//
// Paper: 20-25% of sensors are "popular" (in-degree >= 100 of 127 possible)
// while most others have in-degree ~10; out-degree spreads evenly (10-35).
#include <iostream>

#include "common.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Figure 5: degree CDFs of global subgraphs ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);
  const auto& g = fw.graph();
  const std::size_t n = g.sensor_count();
  const std::size_t pop_thresh = db::popular_threshold(n);

  struct Band {
    double lo, hi;
    const char* label;
  };
  const Band bands[] = {{0, 60, "[0, 60)"},
                        {60, 70, "[60, 70)"},
                        {70, 80, "[70, 80)"},
                        {80, 90, "[80, 90)"},
                        {90, 100.5, "[90, 100]"}};

  for (const Band& band : bands) {
    const auto sub = g.filter_bleu(band.lo, band.hi);
    const auto active = sub.active_sensors();
    if (active.empty()) {
      std::cout << "band " << band.label << ": empty\n";
      continue;
    }
    std::vector<double> in_deg, out_deg;
    const auto ins = sub.in_degrees();
    const auto outs = sub.out_degrees();
    for (std::size_t v : active) {
      in_deg.push_back(static_cast<double>(ins[v]));
      out_deg.push_back(static_cast<double>(outs[v]));
    }
    du::Table t({"percentile", "in-degree", "out-degree"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
      t.add_row({du::fixed(p, 0), du::fixed(du::percentile(in_deg, p), 1),
                 du::fixed(du::percentile(out_deg, p), 1)});
    }
    std::cout << t.to_text(std::string("Fig 5: degree distribution, band ") +
                           band.label);

    const std::size_t popular = sub.popular_sensors(pop_thresh).size();
    std::cout << "  popular sensors (in-degree >= " << pop_thresh
              << "): " << popular << " of " << active.size() << " active ("
              << du::fixed(100.0 * popular / active.size(), 1) << "%)\n\n";
  }

  db::expectation("popular share per band", "~20-25% of sensors",
                  "see per-band popular percentages above");
  db::expectation("out-degree spread", "relatively even (10-35 of 127)",
                  "percentile spread above (rescaled to mini graph)");
  return 0;
}
