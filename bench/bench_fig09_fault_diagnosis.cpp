// Figure 9 — fault diagnosis with local subgraphs on the two anomalous days:
// broken relationships localize the fault to sensor clusters.
//
// Paper: on Nov 21 two clusters are problematic (localized anomaly); on
// Nov 28 almost all relationships break (severe, system-wide anomaly).
#include <iostream>

#include "common.h"
#include "core/anomaly.h"
#include "core/diagnosis.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Figure 9: fault diagnosis on anomalous days ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);
  const auto& g = fw.graph();

  // Wide valid band so intra-cluster edges are available for localization;
  // the paper diagnoses on the local subgraph of the detection band.
  dc::DetectorConfig cfg = fw.config().detector;
  cfg.valid_lo = 60.0;
  cfg.valid_hi = 100.5;
  const dc::AnomalyDetector detector(g, cfg);

  const std::size_t first_test_day = db::kPlantTrainDays + db::kPlantDevDays;
  const std::size_t test_days = plant.days - first_test_day;
  const auto result = detector.detect(
      fw.to_corpora(plant.days_slice(first_test_day, test_days)));
  const std::size_t windows_per_day = result.anomaly_scores.size() / test_days;

  // Local subgraph for clustering: same band minus popular sensors.
  const auto band = g.filter_bleu(60.0, 100.5);
  const auto local = band.without_sensors(
      band.popular_sensors(db::popular_threshold(g.sensor_count())));
  dc::DiagnosisConfig dcfg;
  dcfg.faulty_threshold = 0.3;
  const dc::FaultDiagnoser diagnoser(local, dcfg);

  for (const auto& anomaly : plant.anomalies) {
    const std::size_t day_offset = anomaly.day - first_test_day;
    // Worst window of the anomalous day.
    std::size_t worst = day_offset * windows_per_day;
    for (std::size_t w = worst; w < (day_offset + 1) * windows_per_day; ++w) {
      if (result.anomaly_scores[w] > result.anomaly_scores[worst]) worst = w;
    }
    const auto diag = diagnoser.diagnose(result, worst);

    std::cout << "\nday " << anomaly.day + 1 << " ("
              << (anomaly.components.empty()
                      ? "system-wide anomaly"
                      : "anomaly in components " +
                            [&] {
                              std::string s;
                              for (std::size_t c : anomaly.components) {
                                s += "c" + std::to_string(c) + " ";
                              }
                              return s;
                            }())
              << "), worst window score "
              << du::fixed(result.anomaly_scores[worst], 3) << ":\n";

    du::Table t({"cluster", "sensors", "broken/total edges", "fraction",
                 "faulty?"});
    for (std::size_t c = 0; c < diag.clusters.size(); ++c) {
      const auto& cluster = diag.clusters[c];
      if (cluster.sensors.empty()) continue;
      std::vector<std::string> names;
      for (std::size_t v : cluster.sensors) names.push_back(g.name(v));
      const bool faulty = std::find(diag.faulty.begin(), diag.faulty.end(),
                                    c) != diag.faulty.end();
      t.add_row({std::to_string(c), du::join(names, " "),
                 std::to_string(cluster.edges_broken) + "/" +
                     std::to_string(cluster.edges_total),
                 du::fixed(cluster.broken_fraction(), 2),
                 faulty ? "YES" : ""});
    }
    std::cout << t.to_text();
    std::cout << "  overall broken fraction: "
              << du::fixed(diag.overall_broken_fraction, 3) << "\n";
  }

  db::expectation("localized anomaly (day 21)",
                  "a subset of clusters circled as faulty (Fig. 9a)",
                  "faulty clusters contain the disturbed components c0/c1");
  db::expectation("severe anomaly (day 28)",
                  "almost all relationships broken (Fig. 9b)",
                  "higher overall broken fraction; most clusters faulty");
  return 0;
}
