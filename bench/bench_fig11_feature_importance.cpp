// Figure 11 — feature-importance analysis: (a) global subgraph of the SMART
// relationship graph (high in-degree = critical disk-health indicator) vs
// (b) the Random Forest importance ranking.
//
// Paper: the 5 high-in-degree features of the subgraph (192, 187, 198, 197,
// 5) all appear in the RF's top-10, confirming the unsupervised graph's
// feature-importance signal.
#include <algorithm>
#include <iostream>
#include <set>

#include "common.h"
#include "ml/random_forest.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;
namespace ml = desmine::ml;

int main() {
  std::cout << "=== Figure 11: feature importance (subgraph vs RF) ===\n";
  const dd::SmartDataset smart = dd::generate_smart(db::smart_config());
  const auto fw = db::smart_framework(smart);
  const auto& g = fw.graph();

  // ---- (a) subgraph in-degree ranking ----
  // The paper reads importance off the [80,90) band; if the mini models put
  // little mass there, widen to the strongest populated band.
  // The paper reads importance off the [80,90) band; at mini scale the
  // strong edges cluster near the top of the scale, so we rank over the
  // whole strong region [80,100] (see EXPERIMENTS.md).
  auto band = g.filter_bleu(80.0, 100.5);
  std::string band_label = "[80, 100]";
  const auto in_deg = band.in_degrees();
  std::vector<std::size_t> order(g.sensor_count());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return in_deg[a] > in_deg[b];
  });

  du::Table ta({"rank", "feature", "in-degree"});
  std::set<std::string> graph_top5;
  for (std::size_t r = 0; r < std::min<std::size_t>(5, order.size()); ++r) {
    ta.add_row({std::to_string(r + 1), g.name(order[r]),
                std::to_string(in_deg[order[r]])});
    graph_top5.insert(g.name(order[r]));
  }
  std::cout << ta.to_text("Fig 11(a): subgraph " + band_label +
                          " in-degree top-5");

  // ---- (b) Random Forest importance ranking ----
  // With only ~a dozen positive samples a single balanced subsample is
  // noisy; average the impurity importance over several resamples (the
  // paper notes its top features are stable "upon model retraining").
  const auto matrix = dd::to_labeled_matrix(smart);
  std::vector<double> importance(matrix.column_names.size(), 0.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    desmine::util::Rng rng(seed);
    const auto balanced = ml::balanced_indices(matrix.labels, rng);
    ml::RandomForest forest;
    ml::ForestConfig fcfg;
    fcfg.num_trees = 100;
    fcfg.seed = seed;
    forest.fit(matrix.rows, matrix.labels, fcfg, balanced);
    const auto imp = forest.feature_importance();
    for (std::size_t f = 0; f < imp.size(); ++f) importance[f] += imp[f] / 5.0;
  }
  std::vector<std::size_t> ranked(importance.size());
  for (std::size_t f = 0; f < ranked.size(); ++f) ranked[f] = f;
  std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });
  du::Table tb({"rank", "feature column", "importance"});
  std::set<std::string> rf_top10_bases;
  for (std::size_t r = 0; r < std::min<std::size_t>(10, ranked.size()); ++r) {
    const std::string& col = matrix.column_names[ranked[r]];
    tb.add_row({std::to_string(r + 1), col,
                du::fixed(importance[ranked[r]], 4)});
    // Normalize "smart_187_raw"/"smart_187_diff" -> "smart_187".
    rf_top10_bases.insert(col.substr(0, col.rfind('_')));
  }
  std::cout << tb.to_text("Fig 11(b): Random Forest importance top-10");

  // ---- overlap ----
  std::size_t overlap = 0;
  for (const auto& name : graph_top5) {
    overlap += rf_top10_bases.count(name) ? 1 : 0;
  }
  db::expectation("graph top-5 found in RF top-10", "5 of 5",
                  std::to_string(overlap) + " of " +
                      std::to_string(graph_top5.size()));
  db::expectation("expected key features", "192, 187, 198, 197, 5",
                  [&] {
                    std::string s;
                    for (const auto& n : graph_top5) s += n + " ";
                    return s;
                  }());
  return 0;
}
