// Ablation — which BLEU band of valid models detects best (§III-C).
//
// Paper: [80,90) is best; [90,100] fails (trivially translatable targets);
// weaker bands (<80) detect but with more false positives. We sweep the
// valid-model band and report anomalous-vs-normal score separation and a
// false-positive measure.
#include <iostream>

#include "common.h"
#include "core/anomaly.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Ablation: detection quality per BLEU band ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);

  const std::size_t first_test_day = db::kPlantTrainDays + db::kPlantDevDays;
  const std::size_t test_days = plant.days - first_test_day;
  const auto corpora =
      fw.to_corpora(plant.days_slice(first_test_day, test_days));

  struct Band {
    double lo, hi;
    const char* label;
  };
  const Band bands[] = {{0, 60, "[0, 60)"},    {60, 70, "[60, 70)"},
                        {70, 80, "[70, 80)"},  {80, 90, "[80, 90)"},
                        {90, 100.5, "[90, 100]"}, {60, 100.5, "[60, 100]"}};

  du::Table t({"band", "valid models", "mean score anomalous days",
               "mean score normal days", "separation",
               "false-positive rate (normal windows > 0.3)"});
  for (const Band& band : bands) {
    dc::DetectorConfig cfg = fw.config().detector;
    cfg.valid_lo = band.lo;
    cfg.valid_hi = band.hi;
    const dc::AnomalyDetector detector(fw.graph(), cfg);
    if (detector.valid_model_count() == 0) {
      t.add_row({band.label, "0", "-", "-", "-", "-"});
      continue;
    }
    const auto result = detector.detect(corpora);
    const std::size_t windows_per_day =
        result.anomaly_scores.size() / test_days;

    double anom = 0.0, norm = 0.0;
    std::size_t anom_n = 0, norm_n = 0, fp = 0;
    for (std::size_t d = 0; d < test_days; ++d) {
      const bool anomalous = plant.is_anomalous_day(first_test_day + d);
      for (std::size_t w = d * windows_per_day;
           w < (d + 1) * windows_per_day; ++w) {
        const double s = result.anomaly_scores[w];
        if (anomalous) {
          anom += s;
          ++anom_n;
        } else {
          norm += s;
          ++norm_n;
          fp += s > 0.3 ? 1 : 0;
        }
      }
    }
    anom /= static_cast<double>(anom_n);
    norm /= static_cast<double>(norm_n);
    t.add_row({band.label, std::to_string(detector.valid_model_count()),
               du::fixed(anom, 3), du::fixed(norm, 3),
               du::fixed(anom - norm, 3),
               du::fixed(static_cast<double>(fp) / norm_n, 3)});
  }
  std::cout << t.to_text();

  db::expectation("best band", "[80, 90)",
                  "strong separation with low false positives (see table; "
                  "the exact winner can shift at mini scale)");
  db::expectation("[90, 100]", "useless — scores too low to signal",
                  "smallest separation among populated bands");
  db::expectation("weak bands (<80)", "detect but with more false positives",
                  "false-positive column");
  return 0;
}
