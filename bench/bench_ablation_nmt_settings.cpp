// Ablation — NMT model settings (§III-A2).
//
// The paper fixes 2 LSTM layers, 64 hidden units, 64-dim embeddings, 1000
// steps, dropout 0.2, chosen for "good distinguishing ability while
// maintaining acceptable training time". This ablation quantifies that
// trade-off: for each setting we train one model on a *related* pair and one
// on an *unrelated* pair and report the BLEU separation (the quantity the
// framework actually consumes) against wall-clock cost.
#include <chrono>
#include <iostream>

#include "common.h"
#include "nmt/translation.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dm = desmine::nmt;
namespace dx = desmine::text;
namespace du = desmine::util;
using desmine::util::Rng;

namespace {

struct PairData {
  dx::Corpus train_src, train_tgt, dev_src, dev_tgt;
};

/// Related pair: deterministic word substitution. Unrelated pair: random
/// target words (same marginals).
void make_pairs(PairData& related, PairData& unrelated) {
  Rng rng(1);
  const std::vector<std::string> sw = {"sa", "sb", "sc", "sd"};
  const std::vector<std::string> tw = {"ta", "tb", "tc", "td"};
  auto fill = [&](dx::Corpus& src, dx::Corpus& rel, dx::Corpus& unrel,
                  std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      dx::Sentence s, r, u;
      for (std::size_t i = 0; i < 6; ++i) {
        const std::size_t w = rng.index(4);
        s.push_back(sw[w]);
        r.push_back(tw[w]);
        u.push_back(tw[rng.index(4)]);
      }
      src.push_back(s);
      rel.push_back(r);
      unrel.push_back(u);
    }
  };
  dx::Corpus dev_unrel_tgt;
  fill(related.train_src, related.train_tgt, unrelated.train_tgt, 96);
  unrelated.train_src = related.train_src;
  fill(related.dev_src, related.dev_tgt, unrelated.dev_tgt, 16);
  unrelated.dev_src = related.dev_src;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: NMT model settings (layers/hidden/steps) ===\n";
  PairData related, unrelated;
  make_pairs(related, unrelated);

  struct Setting {
    std::size_t layers, hidden, steps;
  };
  const Setting settings[] = {
      {1, 16, 150}, {1, 16, 600}, {1, 32, 300},  {1, 32, 600},
      {2, 32, 600}, {1, 64, 600}, {2, 64, 1000},
  };

  du::Table t({"layers", "hidden", "steps", "BLEU related", "BLEU unrelated",
               "separation", "runtime (s)"});
  for (const Setting& s : settings) {
    dm::TranslationConfig cfg;
    cfg.model.embedding_dim = s.hidden;
    cfg.model.hidden_dim = s.hidden;
    cfg.model.num_layers = s.layers;
    cfg.model.dropout = 0.1f;
    cfg.model.max_decode_length = 8;
    cfg.trainer.steps = s.steps;
    cfg.trainer.batch_size = 8;
    cfg.trainer.lr = 0.02f;

    const auto start = std::chrono::steady_clock::now();
    auto rel_model = dm::train_translation_model(related.train_src,
                                                 related.train_tgt, cfg, 11);
    auto unrel_model = dm::train_translation_model(
        unrelated.train_src, unrelated.train_tgt, cfg, 11);
    const double rel =
        rel_model.score(related.dev_src, related.dev_tgt).score;
    const double unrel =
        unrel_model.score(unrelated.dev_src, unrelated.dev_tgt).score;
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    t.add_row({std::to_string(s.layers), std::to_string(s.hidden),
               std::to_string(s.steps), du::fixed(rel, 1),
               du::fixed(unrel, 1), du::fixed(rel - unrel, 1),
               du::fixed(secs, 2)});
  }
  std::cout << t.to_text();

  db::expectation("paper's choice",
                  "2x64, 1000 steps: good distinguishing ability at "
                  "acceptable training time",
                  "separation saturates well before the largest setting — "
                  "small models already separate related from unrelated");
  return 0;
}
