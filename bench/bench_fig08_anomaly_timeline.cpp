// Figure 8 — anomaly-score timeline over the 17-day test window for global
// subgraphs at BLEU [80,90) and [90,100].
//
// Paper: the [80,90) band cleanly detects the day-21 and day-28 anomalies
// (scores near 0.8, normal days below 0.2, early-warning spikes on the
// preceding days); the [90,100] band stays flat and useless because its
// targets are trivially translatable.
#include <iostream>

#include "common.h"
#include "core/anomaly.h"
#include "core/online.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

namespace {

void run_band(const dc::Framework& fw, const dd::PlantDataset& plant,
              double lo, double hi, const std::string& label) {
  dc::DetectorConfig cfg = fw.config().detector;
  cfg.valid_lo = lo;
  cfg.valid_hi = hi;
  const dc::AnomalyDetector detector(fw.graph(), cfg);
  std::cout << "band " << label << ": " << detector.valid_model_count()
            << " valid models\n";
  if (detector.valid_model_count() == 0) {
    std::cout << "  (no models in band; skipping)\n\n";
    return;
  }

  const std::size_t first_test_day = db::kPlantTrainDays + db::kPlantDevDays;
  const std::size_t test_days = plant.days - first_test_day;
  const auto result = detector.detect(
      fw.to_corpora(plant.days_slice(first_test_day, test_days)));

  const std::size_t windows_per_day = result.anomaly_scores.size() / test_days;
  du::Table t({"day", "mean score", "max score", "label"});
  double normal_mean = 0.0, anomaly_mean = 0.0;
  std::size_t normal_n = 0, anomaly_n = 0;
  for (std::size_t d = 0; d < test_days; ++d) {
    std::vector<double> day_scores(
        result.anomaly_scores.begin() +
            static_cast<long>(d * windows_per_day),
        result.anomaly_scores.begin() +
            static_cast<long>((d + 1) * windows_per_day));
    const auto s = du::summarize(day_scores);
    const std::size_t abs_day = first_test_day + d;
    const bool anomalous = plant.is_anomalous_day(abs_day);
    t.add_row({std::to_string(abs_day + 1), du::fixed(s.mean, 3),
               du::fixed(s.max, 3),
               anomalous ? "ANOMALY (ground truth)" : ""});
    if (anomalous) {
      anomaly_mean += s.mean;
      ++anomaly_n;
    } else {
      normal_mean += s.mean;
      ++normal_n;
    }
  }
  std::cout << t.to_text("Fig 8: per-day anomaly scores, band " + label);
  if (anomaly_n > 0 && normal_n > 0) {
    std::cout << "  mean score on anomalous days: "
              << du::fixed(anomaly_mean / anomaly_n, 3)
              << " | on normal days: " << du::fixed(normal_mean / normal_n, 3)
              << " | separation: "
              << du::fixed((anomaly_mean / anomaly_n) -
                               (normal_mean / normal_n),
                           3)
              << "\n\n";
  }
}

/// Dropout variant (ISSUE 3): a healthy sensor starts emitting a state the
/// encrypter never saw (a plumbing fault, not a plant fault) for one normal
/// test day. Plain detection counts the sensor's broken pair models as
/// anomalies; degraded-mode detection floods the sensor out of the valid
/// set and keeps the normal day quiet.
void run_dropout(const dc::Framework& fw, const dd::PlantDataset& plant,
                 double lo, double hi) {
  dc::DetectorConfig cfg = fw.config().detector;
  cfg.valid_lo = lo;
  cfg.valid_hi = hi;
  cfg.min_coverage = 0.25;
  const dc::AnomalyDetector detector(fw.graph(), cfg);
  if (detector.valid_model_count() == 0) {
    std::cout << "dropout variant: no models in band; skipping\n\n";
    return;
  }

  const std::size_t first_test_day = db::kPlantTrainDays + db::kPlantDevDays;
  const std::size_t test_days = plant.days - first_test_day;
  dc::MultivariateSeries test = plant.days_slice(first_test_day, test_days);
  const std::size_t ticks = dc::series_length(test);
  const std::size_t per_day = ticks / test_days;

  // Fault a busy sensor across the first *normal* test day.
  std::size_t fault_day = 0;
  for (std::size_t d = 0; d < test_days; ++d) {
    if (!plant.is_anomalous_day(first_test_day + d)) {
      fault_day = d;
      break;
    }
  }
  const std::string victim = fw.encrypter().kept_sensors().front();
  for (auto& sensor : test) {
    if (sensor.name != victim) continue;
    for (std::size_t t = fault_day * per_day; t < (fault_day + 1) * per_day;
         ++t) {
      sensor.events[t] = "SENSOR_FAULT";  // unseen in training -> <unk>
    }
  }

  const auto corpora = fw.to_corpora(test);
  const auto plain = detector.detect(corpora);
  const dc::HealthMask mask = dc::window_health_mask(
      fw.encrypter(), fw.config().window, test, desmine::robust::HealthConfig{});
  const auto degraded =
      detector.detect(corpora, dc::DetectOptions{.unhealthy = &mask});

  const std::size_t windows_per_day = plain.anomaly_scores.size() / test_days;
  const auto day_mean = [&](const dc::DetectionResult& r, std::size_t d) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t w = d * windows_per_day; w < (d + 1) * windows_per_day;
         ++w) {
      if (r.degraded[w]) continue;  // no-verdict windows carry no score
      sum += r.anomaly_scores[w];
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  std::size_t degraded_windows = 0;
  double faultday_coverage = 0.0;
  for (std::size_t w = 0; w < degraded.degraded.size(); ++w) {
    if (degraded.degraded[w]) ++degraded_windows;
  }
  for (std::size_t w = fault_day * windows_per_day;
       w < (fault_day + 1) * windows_per_day; ++w) {
    faultday_coverage += degraded.coverage[w];
  }
  faultday_coverage /= static_cast<double>(windows_per_day);

  std::cout << "dropout variant: sensor '" << victim
            << "' floods (unseen states) on normal test day "
            << first_test_day + fault_day + 1 << "\n";
  du::Table t({"mode", "fault-day mean score", "fault-day coverage",
               "degraded windows"});
  t.add_row({"plain detect", du::fixed(day_mean(plain, fault_day), 3),
             du::fixed(1.0, 2), "0"});
  t.add_row({"degraded detect", du::fixed(day_mean(degraded, fault_day), 3),
             du::fixed(faultday_coverage, 2),
             std::to_string(degraded_windows)});
  std::cout << t.to_text("Fig 8 dropout variant, band [" + du::fixed(lo, 0) +
                         ", " + du::fixed(hi, 0) + ")");
  db::expectation(
      "degraded mode suppresses plumbing faults",
      "excluding the flooding sensor keeps the normal day's score near the "
      "other normal days instead of spiking on broken plumbing",
      "degraded-mode fault-day mean <= plain fault-day mean; coverage < 1 "
      "records what was excluded");
}

}  // namespace

int main() {
  std::cout << "=== Figure 8: anomaly detection timeline ===\n";
  db::enable_observability();
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);

  run_band(fw, plant, 80.0, 90.0, "[80, 90)");
  run_band(fw, plant, 90.0, 100.5, "[90, 100]");
  run_dropout(fw, plant, 80.0, 90.0);

  db::expectation("[80,90) band detects days 21 & 28",
                  "scores ~0.8 on anomalies, <0.2 normally, plus "
                  "early-warning spikes on preceding days",
                  "see per-day table: anomalous-day scores exceed normal-day "
                  "scores by a wide margin");
  db::expectation("[90,100] band fails",
                  "flat, too low to signal anomalies",
                  "smaller separation than [80,90) (trivially translatable "
                  "targets keep scoring high)");
  db::dump_observability("fig08");
  return 0;
}
