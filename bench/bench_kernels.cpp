// Micro-kernel benchmarks (google-benchmark): the numeric primitives the
// pipeline's cost is built from — GEMM, LSTM steps, BLEU scoring, greedy
// decoding, and Walktrap.
#include <benchmark/benchmark.h>

#include "graph/walktrap.h"
#include "nn/lstm.h"
#include "nmt/translation.h"
#include "tensor/matrix.h"
#include "text/bleu.h"
#include "util/rng.h"

namespace dt = desmine::tensor;
namespace dn = desmine::nn;
namespace dg = desmine::graph;
namespace dx = desmine::text;
using desmine::util::Rng;

static void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  dt::Matrix a(n, n), b(n, n), c(n, n);
  a.init_uniform(rng, 1.0f);
  b.init_uniform(rng, 1.0f);
  for (auto _ : state) {
    dt::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

static void BM_LstmStep(benchmark::State& state) {
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  dn::LstmStack lstm("l", hidden, hidden, 2, rng, 0.0f);
  dt::Matrix x(8, hidden, 0.1f);
  for (auto _ : state) {
    lstm.begin(8);
    for (int t = 0; t < 10; ++t) benchmark::DoNotOptimize(&lstm.step(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LstmStep)->Arg(24)->Arg(64);

static void BM_LstmTrainStep(benchmark::State& state) {
  // One teacher-forced forward+backward of a small seq2seq batch.
  desmine::nmt::Seq2SeqConfig cfg;
  cfg.embedding_dim = 24;
  cfg.hidden_dim = 24;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  desmine::nmt::Seq2SeqModel model(30, 30, cfg, Rng(3));
  std::vector<desmine::nmt::EncodedPair> pairs;
  Rng rng(4);
  for (int k = 0; k < 8; ++k) {
    desmine::nmt::EncodedPair p;
    for (int i = 0; i < 6; ++i) {
      p.source.push_back(4 + rng.uniform_int(0, 25));
      p.target.push_back(4 + rng.uniform_int(0, 25));
    }
    pairs.push_back(p);
  }
  std::vector<const desmine::nmt::EncodedPair*> batch;
  for (const auto& p : pairs) batch.push_back(&p);
  for (auto _ : state) {
    model.params().zero_grad();
    benchmark::DoNotOptimize(model.train_batch(batch));
  }
}
BENCHMARK(BM_LstmTrainStep);

static void BM_CorpusBleu(benchmark::State& state) {
  Rng rng(5);
  dx::Corpus cand, ref;
  for (int s = 0; s < 100; ++s) {
    dx::Sentence c, r;
    for (int i = 0; i < 20; ++i) {
      c.push_back("w" + std::to_string(rng.index(50)));
      r.push_back("w" + std::to_string(rng.index(50)));
    }
    cand.push_back(c);
    ref.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dx::corpus_bleu(cand, ref).score);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CorpusBleu);

static void BM_Walktrap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  dg::Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = (i / 8) == (j / 8);
      if (rng.bernoulli(same ? 0.7 : 0.02)) g.add_edge(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dg::walktrap(g).community_count);
  }
}
BENCHMARK(BM_Walktrap)->Arg(32)->Arg(64);

BENCHMARK_MAIN();
