// Micro-kernel benchmarks (google-benchmark): the numeric primitives the
// pipeline's cost is built from — GEMM, LSTM forward/BPTT, attention
// scoring, seq2seq train steps, an end-to-end train-pair, BLEU scoring, and
// Walktrap.
//
// Results go to bench_artifacts/BENCH_kernels.json (google-benchmark JSON)
// so successive runs form a perf trajectory; the metrics registry — which
// includes the tensor.workspace.* arena instruments — is dumped alongside
// as BENCH_kernels_metrics.json.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "graph/walktrap.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "nmt/translation.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"
#include "text/bleu.h"
#include "util/rng.h"

namespace dt = desmine::tensor;
namespace dn = desmine::nn;
namespace dg = desmine::graph;
namespace dx = desmine::text;
using desmine::util::Rng;

static void BM_Matmul(benchmark::State& state) {
  // Startup-default backend (auto-detected): the perf-trajectory anchor the
  // pre-dispatch BM_Matmul numbers compare against.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  dt::Matrix a(n, n), b(n, n), c(n, n);
  a.init_uniform(rng, 1.0f);
  b.init_uniform(rng, 1.0f);
  for (auto _ : state) {
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), b.view(),
             0.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

/// Pin `backend` for the benchmark body, restoring the startup default
/// (env override, else best available) afterwards so later benchmarks keep
/// measuring what the tools would run.
class BackendGuard {
 public:
  explicit BackendGuard(dt::kernels::Backend b) { dt::kernels::set_backend(b); }
  ~BackendGuard() { dt::kernels::select_backend("auto"); }
};

static void BM_Gemm(benchmark::State& state, dt::kernels::Backend backend) {
  // The backend column of the speedup table: same GEMM, explicit backend.
  if (!dt::kernels::backend_available(backend)) {
    state.SkipWithError("backend unavailable on this CPU/build");
    return;
  }
  const BackendGuard guard(backend);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  dt::Matrix a(n, n), b(n, n), c(n, n);
  a.init_uniform(rng, 1.0f);
  b.init_uniform(rng, 1.0f);
  for (auto _ : state) {
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), b.view(),
             0.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK_CAPTURE(BM_Gemm, scalar, dt::kernels::Backend::kScalar)
    ->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_Gemm, blocked, dt::kernels::Backend::kBlocked)
    ->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_Gemm, avx2, dt::kernels::Backend::kAvx2)
    ->Arg(64)->Arg(128)->Arg(256);

static void BM_GemmI8(benchmark::State& state) {
  // The int8 decode GEMM (dynamic per-row activation quantization +
  // int32 accumulation + dequant), on the startup-default backend.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  dt::Matrix a(n, n), w(n, n), c(n, n);
  a.init_uniform(rng, 1.0f);
  w.init_uniform(rng, 1.0f);
  const dt::QuantizedTensor wq = dt::quantize_absmax(w.view());
  for (auto _ : state) {
    c.zero();
    dt::gemm_i8_accum(a.view(), wq, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmI8)->Arg(64)->Arg(128)->Arg(256);

static void BM_LstmStep(benchmark::State& state) {
  // Forward-only stepping: the greedy-decode / encoder inner loop.
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  dn::LstmStack lstm("l", hidden, hidden, 2, rng, 0.0f);
  dt::Matrix x(8, hidden, 0.1f);
  for (auto _ : state) {
    lstm.begin(8);
    for (int t = 0; t < 10; ++t) {
      benchmark::DoNotOptimize(lstm.step(x).data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LstmStep)->Arg(24)->Arg(64);

static void BM_LstmStepBackend(benchmark::State& state,
                               dt::kernels::Backend backend) {
  // BM_LstmStep with an explicit backend column, for per-shape speedups.
  if (!dt::kernels::backend_available(backend)) {
    state.SkipWithError("backend unavailable on this CPU/build");
    return;
  }
  const BackendGuard guard(backend);
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  dn::LstmStack lstm("l", hidden, hidden, 2, rng, 0.0f);
  dt::Matrix x(8, hidden, 0.1f);
  for (auto _ : state) {
    lstm.begin(8);
    for (int t = 0; t < 10; ++t) {
      benchmark::DoNotOptimize(lstm.step(x).data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK_CAPTURE(BM_LstmStepBackend, scalar, dt::kernels::Backend::kScalar)
    ->Arg(24)->Arg(64);
BENCHMARK_CAPTURE(BM_LstmStepBackend, blocked, dt::kernels::Backend::kBlocked)
    ->Arg(24)->Arg(64);
BENCHMARK_CAPTURE(BM_LstmStepBackend, avx2, dt::kernels::Backend::kAvx2)
    ->Arg(24)->Arg(64);

static void BM_LstmBptt(benchmark::State& state) {
  // Full backpropagation through time over a 10-step sequence: the
  // gradient half of every training step.
  const auto hidden = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  constexpr int kSteps = 10;
  Rng rng(7);
  dn::LstmStack lstm("l", hidden, hidden, 2, rng, 0.0f);
  dn::ParamRegistry reg;
  lstm.register_params(reg);
  dt::Matrix x(kBatch, hidden, 0.1f);
  dt::Matrix dh(kBatch, hidden, 0.01f);
  dt::Workspace ws;
  for (auto _ : state) {
    ws.reset();
    lstm.begin(kBatch, nullptr, true, nullptr, &ws);
    for (int t = 0; t < kSteps; ++t) lstm.step(x);
    const std::vector<dt::ConstMatrixView> dh_top(kSteps, dh.view());
    reg.zero_grad();
    auto back = lstm.backward(dh_top);
    benchmark::DoNotOptimize(back.dx.front().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_LstmBptt)->Arg(24)->Arg(64);

static void BM_AttentionScore(benchmark::State& state) {
  // One attention step (score + softmax + context + h~) against a bound
  // encoding of `src_len` positions: the decoder's per-token overhead.
  const auto src_len = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kHidden = 64;
  constexpr std::size_t kBatch = 8;
  Rng rng(8);
  dn::LuongAttention attn("a", kHidden, rng);
  std::vector<dt::Matrix> enc;
  for (std::size_t s = 0; s < src_len; ++s) {
    enc.emplace_back(kBatch, kHidden);
    enc.back().init_uniform(rng, 0.5f);
  }
  dt::Matrix h_dec(kBatch, kHidden, 0.1f);
  dt::Workspace ws;
  for (auto _ : state) {
    ws.reset();
    attn.begin(&enc, kBatch, &ws);
    benchmark::DoNotOptimize(attn.step(h_dec).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src_len));
}
BENCHMARK(BM_AttentionScore)->Arg(6)->Arg(24);

static void BM_LstmTrainStep(benchmark::State& state) {
  // One teacher-forced forward+backward of a small seq2seq batch.
  desmine::nmt::Seq2SeqConfig cfg;
  cfg.embedding_dim = 24;
  cfg.hidden_dim = 24;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  desmine::nmt::Seq2SeqModel model(30, 30, cfg, Rng(3));
  std::vector<desmine::nmt::EncodedPair> pairs;
  Rng rng(4);
  for (int k = 0; k < 8; ++k) {
    desmine::nmt::EncodedPair p;
    for (int i = 0; i < 6; ++i) {
      p.source.push_back(4 + rng.uniform_int(0, 25));
      p.target.push_back(4 + rng.uniform_int(0, 25));
    }
    pairs.push_back(p);
  }
  std::vector<const desmine::nmt::EncodedPair*> batch;
  for (const auto& p : pairs) batch.push_back(&p);
  model.reserve_workspace(6, 6, 8);
  for (auto _ : state) {
    model.params().zero_grad();
    benchmark::DoNotOptimize(model.train_batch(batch));
  }
}
BENCHMARK(BM_LstmTrainStep);

static void BM_TrainPair(benchmark::State& state) {
  // End to end: vocabulary build + model init + full training run + greedy
  // BLEU scoring for one sensor pair — the miner's unit of work.
  Rng rng(9);
  dx::Corpus src, dst;
  for (int s = 0; s < 24; ++s) {
    dx::Sentence a, b;
    for (int i = 0; i < 6; ++i) {
      const std::size_t w = rng.index(12);
      a.push_back("s" + std::to_string(w));
      b.push_back("t" + std::to_string((w + s) % 12));
    }
    src.push_back(a);
    dst.push_back(b);
  }
  desmine::nmt::TranslationConfig cfg;
  cfg.model.embedding_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 30;
  cfg.trainer.batch_size = 8;
  dt::Workspace ws;
  for (auto _ : state) {
    ws.reset();
    auto model = desmine::nmt::train_translation_model(src, dst, cfg, 42,
                                                       nullptr, &ws);
    benchmark::DoNotOptimize(model.score(src, dst).score);
  }
}
BENCHMARK(BM_TrainPair);

static void BM_CorpusBleu(benchmark::State& state) {
  Rng rng(5);
  dx::Corpus cand, ref;
  for (int s = 0; s < 100; ++s) {
    dx::Sentence c, r;
    for (int i = 0; i < 20; ++i) {
      c.push_back("w" + std::to_string(rng.index(50)));
      r.push_back("w" + std::to_string(rng.index(50)));
    }
    cand.push_back(c);
    ref.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dx::corpus_bleu(cand, ref).score);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CorpusBleu);

static void BM_Walktrap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  dg::Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = (i / 8) == (j / 8);
      if (rng.bernoulli(same ? 0.7 : 0.02)) g.add_edge(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dg::walktrap(g).community_count);
  }
}
BENCHMARK(BM_Walktrap)->Arg(32)->Arg(64);

int main(int argc, char** argv) {
  // Console output for humans, JSON to the artifact dir for the perf
  // trajectory (injected as --benchmark_out so the library drives its own
  // file reporter), and a metrics dump so the tensor.workspace.* arena
  // stats land next to the timings they explain. An explicit
  // --benchmark_out on the command line wins.
  const std::string json_path =
      desmine::bench::artifact_dir() + "/BENCH_kernels.json";
  std::string out_flag = "--benchmark_out=" + json_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      user_out = true;
    }
  }
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!user_out) std::cout << "[bench] wrote " << json_path << "\n";
  desmine::bench::dump_observability("kernels");
  return 0;
}
