#include "common.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include <fstream>

#include "io/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/strings.h"

namespace desmine::bench {

data::PlantConfig full_plant_config() {
  data::PlantConfig cfg;
  // 128 sensors: 68 component + 6 global-mode + 48 rarely-changing + 6
  // constant. The large lazy share reproduces the paper's Fig. 3b finding
  // that ~40% of sensors have a vocabulary below 13 words.
  cfg.num_components = 17;
  cfg.sensors_per_component = 4;
  cfg.num_popular = 6;
  cfg.num_lazy = 48;
  cfg.num_constant = 6;
  cfg.days = 30;
  cfg.minutes_per_day = 1440;
  // Paper: anomalies on Nov 21 & 28 (days 20 & 27, 0-based); the 28th is
  // system-wide (Fig. 9b shows almost all relationships broken).
  cfg.anomalies = {{20, {0, 1}}, {27, {}}};
  cfg.precursors = true;
  cfg.noise = 0.005;
  cfg.seed = 2017;
  return cfg;
}

data::PlantConfig mini_plant_config() {
  data::PlantConfig cfg;
  // Mirror the full plant's sensor mix (≈40% rarely-changing) so the BLEU
  // histogram mass sits above 60 as in Fig. 4b.
  cfg.num_components = 3;
  cfg.sensors_per_component = 3;  // 9 component sensors
  cfg.num_popular = 2;
  cfg.num_lazy = 8;
  cfg.num_constant = 1;  // 20 total, 19 kept
  cfg.days = 30;
  cfg.minutes_per_day = 240;  // shortened "day" keeps 2-core runtime sane
  cfg.anomalies = {{20, {0, 1}}, {27, {}}};
  cfg.precursors = true;
  cfg.noise = 0.005;
  cfg.seed = 2017;
  return cfg;
}

data::SmartConfig smart_config() {
  data::SmartConfig cfg;
  cfg.num_drives = 24;  // paper: 24 disks with >10 months of data
  cfg.days = 120;       // last 4 months
  cfg.failure_fraction = 0.5;
  cfg.degradation_days = 14;
  cfg.failure_window_days = 30;  // failures land in the test month
  cfg.seed = 2018;
  return cfg;
}

core::FrameworkConfig plant_framework_config() {
  core::FrameworkConfig cfg;
  cfg.window.word_length = 5;
  cfg.window.word_stride = 1;
  cfg.window.sentence_length = 6;
  cfg.window.sentence_stride = 6;

  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.model.max_decode_length = 8;
  cfg.miner.translation.trainer.steps = 800;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 42;

  cfg.detector.valid_lo = 80.0;
  cfg.detector.valid_hi = 90.0;
  cfg.detector.tolerance = 10.0;
  return cfg;
}

core::FrameworkConfig smart_framework_config() {
  core::FrameworkConfig cfg;
  // §IV-C: word = 5 characters, sentence = 7 words, both strides 1.
  cfg.window.word_length = 5;
  cfg.window.word_stride = 1;
  cfg.window.sentence_length = 7;
  cfg.window.sentence_stride = 1;

  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.model.max_decode_length = 9;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 43;

  cfg.detector.valid_lo = 80.0;
  cfg.detector.valid_hi = 90.0;
  cfg.detector.tolerance = 10.0;
  return cfg;
}

std::size_t popular_threshold(std::size_t sensor_count) {
  // Paper: in-degree >= 100 with up to 127 sources (~79%).
  return static_cast<std::size_t>(
      std::ceil(0.79 * static_cast<double>(sensor_count - 1)));
}

std::string artifact_dir() {
  const std::string dir = "bench_artifacts";
  std::filesystem::create_directories(dir);
  return dir;
}

core::Framework plant_framework(const data::PlantDataset& plant) {
  const std::string path = artifact_dir() + "/plant_mvrg.bin";
  const core::FrameworkConfig cfg = plant_framework_config();
  if (std::filesystem::exists(path)) {
    std::cout << "[artifact] loading " << path << "\n";
    return io::load_framework(path, cfg);
  }
  std::cout << "[artifact] mining plant MVRG (first run; ~minutes)...\n";
  core::Framework fw(cfg);
  fw.fit(plant.days_slice(0, kPlantTrainDays),
         plant.days_slice(kPlantTrainDays, kPlantDevDays));
  io::save_framework(fw, path);
  std::cout << "[artifact] saved " << path << "\n";
  return fw;
}

namespace {

/// Pool per-drive language corpora: sentence lists are generated per drive
/// (no windows straddle drive boundaries) and concatenated; alignment across
/// features holds within each drive.
std::vector<core::SensorLanguage> smart_languages(
    const core::Framework& proto, const data::SmartDataset& smart,
    const core::SensorEncrypter& enc, const core::LanguageGenerator& gen,
    const std::map<int, core::Discretizer>& discretizers) {
  (void)proto;
  std::vector<core::SensorLanguage> languages;
  for (const std::string& name : enc.kept_sensors()) {
    core::SensorLanguage lang;
    lang.name = name;
    languages.push_back(std::move(lang));
  }
  for (const data::DriveRecord& drive : smart.drives) {
    const core::MultivariateSeries series =
        data::drive_to_series(smart, drive, discretizers);
    const core::MultivariateSeries train =
        core::slice(series, 0, kSmartTrainDays);
    const core::MultivariateSeries dev = core::slice(
        series, kSmartTrainDays, kSmartTrainDays + kSmartDevDays);
    const auto train_chars = enc.encode_all(train);
    const auto dev_chars = enc.encode_all(dev);
    for (std::size_t k = 0; k < languages.size(); ++k) {
      for (auto& s : gen.generate(train_chars[k])) {
        languages[k].train.push_back(std::move(s));
      }
      for (auto& s : gen.generate(dev_chars[k])) {
        languages[k].dev.push_back(std::move(s));
      }
    }
  }
  return languages;
}

}  // namespace

core::Framework smart_framework(const data::SmartDataset& smart) {
  const std::string path = artifact_dir() + "/smart_mvrg.bin";
  const core::FrameworkConfig cfg = smart_framework_config();
  if (std::filesystem::exists(path)) {
    std::cout << "[artifact] loading " << path << "\n";
    return io::load_framework(path, cfg);
  }
  std::cout << "[artifact] mining SMART MVRG (first run; ~minutes)...\n";

  // Fit discretizers and the encrypter on the training months of all drives,
  // then mine languages pooled across drives.
  const auto discretizers = data::fit_discretizers(smart, kSmartTrainDays);
  core::MultivariateSeries pooled_train;
  for (const data::DriveRecord& drive : smart.drives) {
    const auto series = data::drive_to_series(smart, drive, discretizers);
    const auto train = core::slice(series, 0, kSmartTrainDays);
    if (pooled_train.empty()) {
      pooled_train = train;
    } else {
      for (std::size_t k = 0; k < pooled_train.size(); ++k) {
        pooled_train[k].events.insert(pooled_train[k].events.end(),
                                      train[k].events.begin(),
                                      train[k].events.end());
      }
    }
  }

  core::Framework fw(cfg);
  const auto enc = core::SensorEncrypter::fit(pooled_train);
  const core::LanguageGenerator gen(cfg.window);
  const auto languages = smart_languages(fw, smart, enc, gen, discretizers);

  const core::RelationshipMiner miner(cfg.miner);
  core::MvrGraph graph = miner.mine(languages);
  fw.restore(enc, std::move(graph));
  io::save_framework(fw, path);
  std::cout << "[artifact] saved " << path << "\n";
  return fw;
}

std::vector<text::Corpus> smart_drive_corpora(const core::Framework& fw,
                                              const data::SmartDataset& smart,
                                              const data::DriveRecord& drive,
                                              std::size_t from_day) {
  const auto discretizers = data::fit_discretizers(smart, kSmartTrainDays);
  const auto series = data::drive_to_series(smart, drive, discretizers);
  const auto window =
      core::slice(series, from_day, drive.observed_days());
  return fw.to_corpora(window);
}

std::vector<double> smart_drive_scores(const core::Framework& fw,
                                       const data::SmartDataset& smart,
                                       const data::DriveRecord& drive,
                                       std::size_t from_day,
                                       const core::DetectorConfig& detector) {
  const auto corpora = smart_drive_corpora(fw, smart, drive, from_day);
  if (corpora.empty() || corpora.front().empty()) return {};
  const core::AnomalyDetector det(fw.graph(), detector);
  if (det.valid_model_count() == 0) return {};
  return det.detect(corpora).anomaly_scores;
}

bool sharp_increase(const std::vector<double>& scores, double jump) {
  if (scores.size() < 2) return false;
  // Rise above the drive's own early baseline: per-window increments can be
  // gradual when a detection window spans several days, so a single-step
  // test misses ramps the paper's daily plots show as sharp.
  const std::size_t base_n = std::min<std::size_t>(3, scores.size() - 1);
  double baseline = 0.0;
  for (std::size_t t = 0; t < base_n; ++t) baseline += scores[t];
  baseline /= static_cast<double>(base_n);
  double peak = scores.front();
  for (double s : scores) peak = std::max(peak, s);
  return peak - baseline >= jump;
}

void expectation(const std::string& what, const std::string& paper,
                 const std::string& measured) {
  std::cout << "  [" << what << "] paper: " << paper
            << " | measured: " << measured << "\n";
}

void print_cdf(const std::string& title, const std::vector<double>& samples,
               const std::vector<double>& probe_values) {
  util::Table t({"value", "P(X<=value)"});
  for (double v : probe_values) {
    t.add_row({util::fixed(v, 2), util::fixed(util::cdf_at(samples, v), 3)});
  }
  std::cout << t.to_text(title);
}

void enable_observability(const std::string& level) {
  obs::logger().set_level(obs::parse_level(level));
  obs::tracer().enable();
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot write " + path);
  out << content << "\n";
}

}  // namespace

void dump_observability(const std::string& bench_name) {
  const std::string metrics_path =
      artifact_dir() + "/BENCH_" + bench_name + "_metrics.json";
  const std::string trace_path =
      artifact_dir() + "/BENCH_" + bench_name + "_trace.json";
  write_file(metrics_path, obs::metrics().to_json());
  write_file(trace_path, obs::tracer().to_chrome_json());
  std::cout << "[obs] wrote " << metrics_path << " and " << trace_path
            << "\n";
}

}  // namespace desmine::bench
