// Figure 2 — discrete event sequences of two representative sensors on one
// normal day and one anomalous day.
//
// Paper: Sensor #4 shows periodic ON/OFF switching; Sensor #91 mostly stays
// OFF with occasional ON bursts; normal vs abnormal days are visually hard
// to distinguish. We print run-length-encoded state strips plus per-day
// state-change counts for a periodic component sensor and a lazy sensor.
#include <iostream>

#include "common.h"
#include "core/event.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;

namespace {

std::string run_length(const dc::EventSequence& events, std::size_t begin,
                       std::size_t end, std::size_t max_runs = 18) {
  std::string out;
  std::size_t runs = 0;
  std::size_t t = begin;
  while (t < end && runs < max_runs) {
    const std::string& state = events[t];
    std::size_t len = 0;
    while (t < end && events[t] == state) {
      ++len;
      ++t;
    }
    out += state + "x" + std::to_string(len) + " ";
    ++runs;
  }
  if (t < end) out += "...";
  return out;
}

std::size_t change_count(const dc::EventSequence& events, std::size_t begin,
                         std::size_t end) {
  std::size_t changes = 0;
  for (std::size_t t = begin + 1; t < end; ++t) {
    changes += events[t] != events[t - 1] ? 1 : 0;
  }
  return changes;
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: representative sensor event sequences ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::full_plant_config());
  const std::size_t day_len = plant.minutes_per_day;

  // A periodic component sensor (paper's Sensor #4) and a lazy sensor
  // (paper's Sensor #91).
  const dc::SensorSeries* periodic = nullptr;
  const dc::SensorSeries* lazy = nullptr;
  for (const auto& s : plant.series) {
    if (s.name == "c0.s0") periodic = &s;
    if (s.name == plant.lazy_names.front()) lazy = &s;
  }

  const std::size_t normal_day = 5;
  const std::size_t anomalous_day = 27;  // system-wide anomaly

  for (const auto* sensor : {periodic, lazy}) {
    std::cout << "\nsensor " << sensor->name
              << (sensor == periodic ? "  (periodic, like paper's #4)"
                                     : "  (rarely changing, like paper's #91)")
              << "\n";
    for (const auto& [label, day] :
         {std::pair<const char*, std::size_t>{"normal   day", normal_day},
          {"anomalous day", anomalous_day}}) {
      const std::size_t b = day * day_len;
      const std::size_t e = b + day_len;
      std::cout << "  " << label << " " << day + 1 << ": "
                << run_length(sensor->events, b, e) << "\n"
                << "    state changes: "
                << change_count(sensor->events, b, e) << "\n";
    }
  }

  db::expectation(
      "fig2", "normal vs abnormal days visually hard to distinguish",
      "per-day change counts are the same order of magnitude on both days");
  return 0;
}
