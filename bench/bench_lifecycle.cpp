// Continual-lifecycle drift soak (ISSUE 8 acceptance): a slow sensor drift
// is injected into a mini plant, the active graph is mined before the ramp,
// and the full loop runs offline — DriftMonitor verdicts per day, an
// incremental retrain of only the drifted pairs, and the shadow gate over
// the candidate — against a from-scratch remine of the same fresh data.
//
// Measured and recorded in bench_artifacts/BENCH_lifecycle.json:
//   * drift soak timeline — drifting/drifted edge counts per observed day
//   * retrain fraction — drifted edges / total edges (must stay < 25%)
//   * recovery — candidate vs remine alert rate on post-drift normal
//     traffic (gap must stay <= 0.05), and both must still fire on the
//     injected true-fault day
//   * wall time — incremental retrain vs from-scratch remine
//   * gate — the shadow gate passes on drifted-normal traffic and blocks
//     on the true-fault day
//   * shadow overhead — served windows/sec with the candidate shadow
//     armed (sample_rate 1.0, every window double-scored) vs unarmed
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "data/plant.h"
#include "io/serialize.h"
#include "lifecycle/controller.h"
#include "obs/json.h"
#include "serve/session_manager.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace dl = desmine::lifecycle;
namespace ds = desmine::serve;
using desmine::obs::JsonWriter;

namespace {

constexpr double kAlertThreshold = 0.4;
constexpr std::size_t kFaultDay = 22;      // injected true fault
constexpr std::size_t kRecoveryDay = 24;   // post-drift normal traffic

/// Two components x 3 kept sensors (30 pair models, 10 in the valid band)
/// plus one dropped constant; component 0 drifts over days 6-18 and day 22
/// carries a plant-wide fault. Mirrors tests/test_lifecycle.cpp.
dd::PlantConfig lifecycle_plant_config() {
  dd::PlantConfig cfg;
  cfg.num_components = 2;
  cfg.sensors_per_component = 3;
  cfg.num_popular = 0;
  cfg.num_lazy = 0;
  cfg.num_constant = 1;
  cfg.days = 26;
  cfg.minutes_per_day = 240;
  cfg.anomalies = {{kFaultDay, {}}};
  cfg.drifts = {{/*start_day=*/6, /*ramp_days=*/12, {0},
                 /*phase_fraction=*/0.8, /*delay_step=*/4}};
  cfg.precursors = false;
  cfg.noise = 0.005;
  cfg.seed = 11;
  return cfg;
}

dc::FrameworkConfig lifecycle_framework_config() {
  dc::FrameworkConfig cfg;
  cfg.window = {4, 1, 4, 4};
  cfg.miner.translation.model.embedding_dim = 16;
  cfg.miner.translation.model.hidden_dim = 16;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.trainer.steps = 400;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.seed = 3;
  cfg.miner.threads = 4;
  cfg.miner.checkpoint_path = db::artifact_dir() + "/lifecycle_mine.journal";
  cfg.detector.valid_lo = 55.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;
  cfg.detector.threads = 1;
  return cfg;
}

dl::LifecycleConfig lifecycle_config() {
  dl::LifecycleConfig cfg;
  cfg.drift.ewma_alpha = 0.3;
  cfg.drift.min_observations = 3;
  cfg.drift.hysteresis = 2;
  cfg.drift.drifting_drop = 5.0;
  cfg.drift.drifted_drop = 15.0;
  cfg.retrain.lr_factor = 0.5;
  cfg.retrain.steps = 600;
  cfg.retrain.journal_path = db::artifact_dir() + "/lifecycle_retrain.journal";
  cfg.retrain.warm_start_journal =
      db::artifact_dir() + "/lifecycle_mine.journal";
  cfg.shadow.sample_rate = 1.0;
  cfg.shadow.min_windows = 40;
  cfg.shadow.alert_threshold = kAlertThreshold;
  cfg.shadow.max_alert_rate = 0.4;
  cfg.shadow.min_agreement = 0.0;
  cfg.shadow.max_failures = 0;
  return cfg;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Fraction of one day's windows at or above the alert threshold.
double alert_rate(const dc::Framework& fw, const dd::PlantDataset& plant,
                  std::size_t day) {
  const auto r = fw.detect(plant.days_slice(day, 1));
  std::size_t alerts = 0;
  for (double s : r.anomaly_scores) alerts += s >= kAlertThreshold ? 1 : 0;
  return r.anomaly_scores.empty()
             ? 0.0
             : static_cast<double>(alerts) /
                   static_cast<double>(r.anomaly_scores.size());
}

ds::ServeConfig serve_config(const dc::FrameworkConfig& cfg,
                             const dl::LifecycleConfig& lcfg) {
  ds::ServeConfig scfg;
  scfg.detector = cfg.detector;
  scfg.workers = 2;
  scfg.max_batch = 8;
  // Scores are held unpolled until the end of a run and unpolled results
  // count toward the per-session pending budget.
  scfg.limits.max_pending_windows = 256;
  scfg.shadow = lcfg.shadow;
  return scfg;
}

struct ShadowRun {
  double windows_per_sec = 0.0;
  bool gate_passed = false;
  std::size_t sampled = 0;
  double shadow_alert_rate = 0.0;
};

/// Serve one plant day through a fresh SessionManager; when `candidate` is
/// non-empty the candidate shadow is armed first, so every delivered
/// window is scored twice (active + mirrored candidate).
ShadowRun run_served_day(const dc::Framework& fw, const ds::ServeConfig& scfg,
                         const dd::PlantDataset& plant, std::size_t day,
                         const std::string& candidate) {
  const dc::MultivariateSeries traffic = plant.days_slice(day, 1);
  ShadowRun out;
  const auto t0 = std::chrono::steady_clock::now();
  {
    ds::SessionManager manager(fw.graph(), fw.encrypter(),
                               fw.config().window, scfg);
    if (!candidate.empty()) manager.begin_shadow(candidate);
    const auto id = manager.open();
    const std::size_t ticks = traffic.front().events.size();
    for (std::size_t t = 0; t < ticks; ++t) {
      manager.ingest(id, tick_states(traffic, t));
    }
    manager.drain();
    std::size_t windows = 0;
    while (manager.poll(id)) ++windows;
    out.windows_per_sec =
        static_cast<double>(windows) /
        std::max(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count(),
                 1e-9);
    if (!candidate.empty()) {
      out.gate_passed = manager.shadow_gate_passed();
      if (const auto st = manager.shadow_status()) {
        out.sampled = st->sampled;
        out.shadow_alert_rate = st->alert_rate();
      }
      manager.rollback();  // bench only measures; never promotes
    }
  }
  return out;
}

}  // namespace

int main() {
  db::enable_observability("warn");
  const dd::PlantDataset plant = dd::generate_plant(lifecycle_plant_config());
  const dc::FrameworkConfig cfg = lifecycle_framework_config();
  const dl::LifecycleConfig lcfg = lifecycle_config();

  // Active graph: mined before the drift ramp starts.
  const auto t_mine = std::chrono::steady_clock::now();
  dc::Framework fw(cfg);
  fw.fit(plant.days_slice(0, 4), plant.days_slice(4, 2));
  const double mine_wall_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t_mine)
                                 .count();
  std::cout << "mined " << fw.graph().edges().size() << " edges in "
            << desmine::util::fixed(mine_wall_s, 1) << "s\n";

  JsonWriter json;
  json.begin_object().key("bench").value("lifecycle");
  json.key("alert_threshold").value(kAlertThreshold);
  json.key("edges_total")
      .value(static_cast<std::uint64_t>(fw.graph().edges().size()));

  // Drift soak: observe each ramp day, record the verdict timeline.
  dl::LifecycleController ctl(fw, lcfg);
  desmine::util::Table soak({"day", "windows", "mean score", "drifting",
                             "drifted"});
  json.key("drift_soak").begin_array();
  for (std::size_t day = 6; day <= 19; ++day) {
    const auto rep = ctl.observe(plant.days_slice(day, 1));
    soak.add_row({std::to_string(day), std::to_string(rep.windows),
                  desmine::util::fixed(rep.mean_score, 3),
                  std::to_string(rep.drifting), std::to_string(rep.drifted)});
    json.begin_object();
    json.key("day").value(static_cast<std::uint64_t>(day));
    json.key("windows").value(static_cast<std::uint64_t>(rep.windows));
    json.key("mean_score").value(rep.mean_score);
    json.key("drifting").value(static_cast<std::uint64_t>(rep.drifting));
    json.key("drifted").value(static_cast<std::uint64_t>(rep.drifted));
    json.end_object();
  }
  json.end_array();
  std::cout << soak.to_text("drift soak (component 0 ramps over days 6-18)");

  // Incremental retrain of only the drifted pairs, warm-started from the
  // miner's checkpoint sidecars.
  const std::string candidate_path =
      db::artifact_dir() + "/lifecycle_candidate.bin";
  const auto t_retrain = std::chrono::steady_clock::now();
  const auto cand_report = ctl.build_candidate(
      plant.days_slice(18, 3), plant.days_slice(21, 1), candidate_path);
  const double retrain_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_retrain)
          .count();
  const double retrain_fraction =
      static_cast<double>(cand_report.retrain.pairs.size()) /
      static_cast<double>(cand_report.edges_total);
  dc::FrameworkConfig overlay;
  overlay.detector = cfg.detector;
  const dc::Framework candidate =
      desmine::io::load_framework(candidate_path, overlay);

  // From-scratch remine of the same fresh data: the recovery reference.
  dc::FrameworkConfig remine_cfg = cfg;
  remine_cfg.miner.checkpoint_path.clear();
  const auto t_remine = std::chrono::steady_clock::now();
  dc::Framework remine(remine_cfg);
  remine.fit(plant.days_slice(18, 3), plant.days_slice(21, 1));
  const double remine_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_remine)
          .count();

  const double active_recovery = alert_rate(fw, plant, kRecoveryDay);
  const double cand_recovery = alert_rate(candidate, plant, kRecoveryDay);
  const double remine_recovery = alert_rate(remine, plant, kRecoveryDay);
  const double cand_fault = alert_rate(candidate, plant, kFaultDay);
  const double remine_fault = alert_rate(remine, plant, kFaultDay);
  const double recovery_gap = std::abs(cand_recovery - remine_recovery);

  desmine::util::Table recovery({"graph", "day-24 alert rate (normal)",
                                 "day-22 alert rate (fault)"});
  recovery.add_row({"active (stale)", desmine::util::fixed(active_recovery, 3),
                    desmine::util::fixed(alert_rate(fw, plant, kFaultDay), 3)});
  recovery.add_row({"candidate", desmine::util::fixed(cand_recovery, 3),
                    desmine::util::fixed(cand_fault, 3)});
  recovery.add_row({"remine", desmine::util::fixed(remine_recovery, 3),
                    desmine::util::fixed(remine_fault, 3)});
  std::cout << recovery.to_text("post-drift recovery vs from-scratch remine");

  // Shadow gate: must pass on drifted-normal traffic, must block on the
  // injected true-fault day.
  const ds::ServeConfig scfg = serve_config(cfg, lcfg);
  const ShadowRun gate_normal =
      run_served_day(fw, scfg, plant, 23, candidate_path);
  const ShadowRun gate_fault =
      run_served_day(fw, scfg, plant, kFaultDay, candidate_path);

  // Shadow overhead: windows/sec on the same served day with the shadow
  // unarmed vs armed at sample_rate 1.0. Best-of-3, alternating order.
  double off_wps = 0.0, on_wps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const ShadowRun off = run_served_day(fw, scfg, plant, 23, "");
    const ShadowRun on = run_served_day(fw, scfg, plant, 23, candidate_path);
    off_wps = std::max(off_wps, off.windows_per_sec);
    on_wps = std::max(on_wps, on.windows_per_sec);
  }
  const double shadow_overhead_pct =
      std::max(0.0, (off_wps - on_wps) / std::max(off_wps, 1e-9) * 100.0);

  json.key("drifted_edges")
      .value(static_cast<std::uint64_t>(cand_report.retrain.pairs.size()));
  json.key("retrained")
      .value(static_cast<std::uint64_t>(cand_report.retrain.retrained));
  json.key("retrain_failed")
      .value(static_cast<std::uint64_t>(cand_report.retrain.failed));
  json.key("retrain_fraction").value(retrain_fraction);
  json.key("mine_wall_s").value(mine_wall_s);
  json.key("retrain_wall_s").value(retrain_wall_s);
  json.key("remine_wall_s").value(remine_wall_s);
  json.key("retrain_speedup_vs_remine")
      .value(remine_wall_s / std::max(retrain_wall_s, 1e-9));
  json.key("alert_rates").begin_object();
  json.key("active_recovery_day").value(active_recovery);
  json.key("candidate_recovery_day").value(cand_recovery);
  json.key("remine_recovery_day").value(remine_recovery);
  json.key("candidate_fault_day").value(cand_fault);
  json.key("remine_fault_day").value(remine_fault);
  json.end_object();
  json.key("recovery_gap").value(recovery_gap);
  json.key("gate").begin_object();
  json.key("normal_day_passed").value(gate_normal.gate_passed);
  json.key("normal_day_sampled")
      .value(static_cast<std::uint64_t>(gate_normal.sampled));
  json.key("normal_day_shadow_alert_rate").value(gate_normal.shadow_alert_rate);
  json.key("fault_day_passed").value(gate_fault.gate_passed);
  json.key("fault_day_shadow_alert_rate").value(gate_fault.shadow_alert_rate);
  json.end_object();
  json.key("shadow_off_windows_per_sec").value(off_wps);
  json.key("shadow_on_windows_per_sec").value(on_wps);
  json.key("shadow_overhead_pct").value(shadow_overhead_pct);
  json.end_object();

  db::expectation("retrained fraction of edges", "< 25%",
                  desmine::util::fixed(retrain_fraction * 100.0, 1) + "% (" +
                      std::to_string(cand_report.retrain.pairs.size()) +
                      " of " + std::to_string(cand_report.edges_total) + ")");
  db::expectation("candidate vs remine alert-rate gap (day 24)", "<= 0.05",
                  desmine::util::fixed(recovery_gap, 3));
  db::expectation("candidate alert rate on true-fault day", ">= 0.9",
                  desmine::util::fixed(cand_fault, 3));
  db::expectation("incremental retrain vs remine wall time", "faster",
                  desmine::util::fixed(retrain_wall_s, 1) + "s vs " +
                      desmine::util::fixed(remine_wall_s, 1) + "s");
  db::expectation("shadow gate on drifted-normal day", "passes",
                  gate_normal.gate_passed ? "passed" : "BLOCKED");
  db::expectation("shadow gate on true-fault day", "blocks",
                  gate_fault.gate_passed ? "PASSED" : "blocked");
  db::expectation("shadow scoring overhead (sample_rate 1.0)", "reported",
                  desmine::util::fixed(shadow_overhead_pct, 1) + "%");

  const std::string out_path = db::artifact_dir() + "/BENCH_lifecycle.json";
  std::ofstream out(out_path);
  out << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  db::dump_observability("lifecycle");

  const bool ok = retrain_fraction < 0.25 && recovery_gap <= 0.05 &&
                  cand_fault >= 0.9 && gate_normal.gate_passed &&
                  !gate_fault.gate_passed;
  return ok ? 0 : 1;
}
