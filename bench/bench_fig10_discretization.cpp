// Figure 10 — the two feature-discretization schemes on representative SMART
// features: (a) zero-inflated SMART 187 -> binary indicator; (b) smooth
// SMART 9 (power-on hours) -> 20/40/60/80th-percentile quintiles.
#include <iostream>

#include "common.h"
#include "core/discretize.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dc = desmine::core;
namespace dd = desmine::data;
namespace du = desmine::util;

namespace {

std::vector<double> training_values(const dd::SmartDataset& smart, int id) {
  std::vector<double> out;
  for (const auto& drive : smart.drives) {
    const auto& vals = drive.values.at(id);
    const std::size_t limit =
        std::min<std::size_t>(db::kSmartTrainDays, vals.size());
    out.insert(out.end(), vals.begin(),
               vals.begin() + static_cast<long>(limit));
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Figure 10: feature discretization schemes ===\n";
  const dd::SmartDataset smart = dd::generate_smart(db::smart_config());

  // ---- (a) SMART 187: zero-inflated -> binary ----
  {
    const auto values = training_values(smart, 187);
    db::print_cdf("Fig 10(a): CDF of SMART 187 (reported uncorrectable)",
                  values, {0, 1, 2, 5, 10, 50});
    const auto scheme = dc::Discretizer::choose_scheme(values);
    const auto d = dc::Discretizer::fit(values, scheme);
    std::size_t zeros = 0;
    for (double v : values) zeros += v == 0.0 ? 1 : 0;
    db::expectation("scheme for 187",
                    "binary (most observations equal zero)",
                    scheme == dc::DiscretizationScheme::kBinary
                        ? "binary (" +
                              du::fixed(100.0 * zeros / values.size(), 1) +
                              "% zeros)"
                        : "quantile (UNEXPECTED)");
    du::Table t({"raw value", "category"});
    for (double v : {0.0, 1.0, 7.0}) {
      t.add_row({du::fixed(v, 0), d.discretize(v)});
    }
    std::cout << t.to_text();
  }

  // ---- (b) SMART 9: smooth -> quintile boundaries ----
  {
    const auto values = training_values(smart, 9);
    const auto cdf_probes = std::vector<double>{
        du::percentile(values, 10), du::percentile(values, 30),
        du::percentile(values, 50), du::percentile(values, 70),
        du::percentile(values, 90)};
    db::print_cdf("Fig 10(b): CDF of SMART 9 (power-on hours)", values,
                  cdf_probes);
    const auto scheme = dc::Discretizer::choose_scheme(values);
    const auto d = dc::Discretizer::fit(values, scheme);
    db::expectation("scheme for 9", "20/40/60/80th percentile boundaries",
                    scheme == dc::DiscretizationScheme::kQuantile
                        ? "quantile"
                        : "binary (UNEXPECTED)");
    du::Table t({"boundary", "value"});
    const char* names[] = {"20th", "40th", "60th", "80th"};
    for (std::size_t i = 0; i < d.boundaries().size(); ++i) {
      t.add_row({names[i], du::fixed(d.boundaries()[i], 1)});
    }
    std::cout << t.to_text();

    // Category balance on the training distribution.
    std::map<std::string, std::size_t> counts;
    for (double v : values) ++counts[d.discretize(v)];
    du::Table bt({"category", "fraction"});
    for (const auto& [label, count] : counts) {
      bt.add_row({label,
                  du::fixed(static_cast<double>(count) / values.size(), 3)});
    }
    std::cout << bt.to_text("category balance (expect ~0.2 each)");
  }
  return 0;
}
