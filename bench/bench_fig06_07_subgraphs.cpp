// Figures 6 & 7 — structure of the [80,90) global subgraph and of the local
// subgraphs at [80,90) and [90,100] after removing popular sensors.
//
// Paper: the global subgraph is densely connected around popular nodes
// (Fig. 6); local subgraphs decompose into mostly isolated clusters that
// match physical components (Fig. 7), with at most loose connectivity.
#include <iostream>
#include <map>

#include "common.h"
#include "graph/walktrap.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

namespace {

void analyze_local(const desmine::core::MvrGraph& local,
                   const dd::PlantDataset& plant, const std::string& label) {
  const auto dg = local.to_digraph();
  const auto communities = desmine::graph::walktrap(dg);

  // Cluster table with ground-truth purity.
  std::map<std::size_t, std::vector<std::size_t>> clusters;
  const auto active = local.active_sensors();
  for (std::size_t v : active) {
    clusters[communities.membership[v]].push_back(v);
  }

  du::Table t({"cluster", "size", "members", "dominant true component",
               "purity"});
  for (const auto& [cid, members] : clusters) {
    std::map<std::string, std::size_t> truth_count;
    std::vector<std::string> names;
    for (std::size_t v : members) {
      const std::string& name = local.name(v);
      names.push_back(name);
      const auto it = plant.component_of.find(name);
      ++truth_count[it == plant.component_of.end()
                        ? std::string("aux")
                        : "c" + std::to_string(it->second)];
    }
    std::string dominant;
    std::size_t best = 0;
    for (const auto& [comp, count] : truth_count) {
      if (count > best) {
        best = count;
        dominant = comp;
      }
    }
    t.add_row({std::to_string(cid), std::to_string(members.size()),
               du::join(names, " "), dominant,
               du::fixed(static_cast<double>(best) / members.size(), 2)});
  }
  std::cout << t.to_text("Fig 7: local subgraph " + label);

  // Isolation: edges between different clusters.
  std::size_t cross = 0;
  for (const auto& e : local.edges()) {
    cross += communities.membership[e.src] != communities.membership[e.dst]
                 ? 1
                 : 0;
  }
  std::cout << "  clusters: " << clusters.size() << ", cross-cluster edges: "
            << cross << " of " << local.edges().size()
            << " (paper: clusters mostly isolated, occasionally one "
               "connecting edge)\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Figures 6 & 7: global and local subgraph structure ===\n";
  const dd::PlantDataset plant = dd::generate_plant(db::mini_plant_config());
  const auto fw = db::plant_framework(plant);
  const auto& g = fw.graph();
  const std::size_t pop_thresh = db::popular_threshold(g.sensor_count());

  // ---- Fig 6: global subgraph at [80, 90) ----
  const auto global = g.filter_bleu(80.0, 90.0);
  const auto popular = global.popular_sensors(pop_thresh);
  std::cout << "Fig 6: global subgraph [80,90): "
            << global.active_sensors().size() << " sensors, "
            << global.edges().size() << " edges, " << popular.size()
            << " popular node(s):";
  for (std::size_t v : popular) std::cout << " " << g.name(v);
  std::cout << "\n  (DOT export available via MvrGraph::to_dot(); "
            << global.to_dot().size() << " bytes)\n\n";

  // ---- Fig 7: local subgraphs ----
  analyze_local(global.without_sensors(popular), plant, "[80, 90)");
  const auto strong = g.filter_bleu(90.0, 100.5);
  analyze_local(strong.without_sensors(strong.popular_sensors(pop_thresh)),
                plant, "[90, 100]");

  db::expectation("local clusters reflect system components",
                  "confirmed by domain experts",
                  "purity column vs generator ground truth above");
  return 0;
}
