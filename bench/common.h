// Shared setup for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper. The
// expensive artifact — the mined multivariate relationship graph with its
// hundreds of trained NMT models — is produced once and cached on disk via
// io::save_framework; whichever bench needs it first mines it, later benches
// reload it. All scales/settings used here are recorded in EXPERIMENTS.md.
//
// Scale note (see DESIGN.md §2): the paper's plant has 128 sensors sampled
// per minute for 30 days and trains 32.5k pair models on a cluster; this
// harness runs the same pipeline on a 17-sensor mini-plant with shorter days
// (240 min) and small NMT models so a 2-core container finishes in minutes.
#pragma once

#include <string>
#include <vector>

#include "core/framework.h"
#include "data/plant.h"
#include "data/smart.h"
#include "util/table.h"

namespace desmine::bench {

// ---- dataset scales ---------------------------------------------------------

/// Paper-scale plant for statistics-only benches (Figs. 2-3): 128 sensors,
/// 30 days x 1440 min, anomalies on days 21 & 28 (1-based).
data::PlantConfig full_plant_config();

/// Mining-scale plant for NMT benches: 17 sensors (12 component + 2 popular
/// + 2 lazy + 1 constant), 30 days x 240 min, same anomaly layout.
data::PlantConfig mini_plant_config();

/// SMART dataset for case study II: 24 drives x 120 days, failures in the
/// last month (the paper's train-2mo / dev-1mo / test-1mo split).
data::SmartConfig smart_config();

// ---- paper splits -----------------------------------------------------------

inline constexpr std::size_t kPlantTrainDays = 10;  // §III-A2
inline constexpr std::size_t kPlantDevDays = 3;
inline constexpr std::size_t kSmartTrainDays = 60;  // §IV-C (2 months)
inline constexpr std::size_t kSmartDevDays = 30;

// ---- pipeline configs -------------------------------------------------------

/// Window + NMT settings for the plant pipeline (mini scale).
core::FrameworkConfig plant_framework_config();

/// Window + NMT settings for the SMART pipeline (word=5, sentence=7,
/// strides 1, as in §IV-C).
core::FrameworkConfig smart_framework_config();

/// Popular-sensor in-degree threshold, scaled from the paper's 100-of-127
/// (~79% of potential sources) to the given graph size.
std::size_t popular_threshold(std::size_t sensor_count);

// ---- cached artifacts -------------------------------------------------------

/// Fitted plant framework: loads bench_artifacts/plant_mvrg.bin or mines it
/// (train days 0-9, dev days 10-12) and saves it.
core::Framework plant_framework(const data::PlantDataset& plant);

/// Fitted SMART framework over per-feature languages pooled across drives.
core::Framework smart_framework(const data::SmartDataset& smart);

/// Per-drive aligned test corpora (last month) for the SMART pipeline,
/// indexed like the framework's graph nodes.
std::vector<text::Corpus> smart_drive_corpora(const core::Framework& fw,
                                              const data::SmartDataset& smart,
                                              const data::DriveRecord& drive,
                                              std::size_t from_day);

/// Per-window anomaly scores of one drive from `from_day` to its last
/// observed day, using the given valid-model band.
std::vector<double> smart_drive_scores(const core::Framework& fw,
                                       const data::SmartDataset& smart,
                                       const data::DriveRecord& drive,
                                       std::size_t from_day,
                                       const core::DetectorConfig& detector);

/// The paper's disk-failure criterion: a sharp increase (>= `jump`) between
/// consecutive anomaly scores (§IV-D2 uses ~0.5 increments on daily scores).
bool sharp_increase(const std::vector<double>& scores, double jump);

// ---- output helpers ---------------------------------------------------------

/// Print a "paper expectation vs measured" line.
void expectation(const std::string& what, const std::string& paper,
                 const std::string& measured);

/// Render an empirical CDF as table rows (value, fraction).
void print_cdf(const std::string& title, const std::vector<double>& samples,
               const std::vector<double>& probe_values);

/// Directory where bench artifacts are cached.
std::string artifact_dir();

// ---- observability ----------------------------------------------------------

/// Turn on span tracing and raise logging to `level` for this bench process.
/// Call at the top of main, before any pipeline work.
void enable_observability(const std::string& level = "info");

/// Write the phase timings gathered while the bench ran:
///   bench_artifacts/BENCH_<name>_metrics.json  (metrics registry dump)
///   bench_artifacts/BENCH_<name>_trace.json    (chrome://tracing spans)
void dump_observability(const std::string& bench_name);

}  // namespace desmine::bench
