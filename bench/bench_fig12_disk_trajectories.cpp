// Figure 12 — anomaly-score trajectories of failed disks over their final
// month: (a) successfully detected disks show a sharp score increase right
// before the failure date; (b) undetected disks stay flat (high or low).
#include <iostream>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

namespace db = desmine::bench;
namespace dd = desmine::data;
namespace du = desmine::util;

int main() {
  std::cout << "=== Figure 12: per-disk anomaly-score trajectories ===\n";
  const dd::SmartDataset smart = dd::generate_smart(db::smart_config());
  const auto fw = db::smart_framework(smart);
  desmine::core::DetectorConfig dcfg = fw.config().detector;
  dcfg.valid_lo = 60.0;
  dcfg.valid_hi = 100.5;
  // See EXPERIMENTS.md: wider tolerance compensates pooled-vs-per-drive
  // BLEU shift so normal windows stay quiet.
  dcfg.tolerance = 25.0;

  // 10 days of pre-test context: see bench_table2 comment.
  const std::size_t from_day = db::kSmartTrainDays + db::kSmartDevDays - 10;
  std::vector<std::pair<std::string, std::vector<double>>> detected,
      missed;
  for (const auto& drive : smart.drives) {
    if (!drive.failed) continue;
    const auto scores =
        db::smart_drive_scores(fw, smart, drive, from_day, dcfg);
    if (scores.empty()) continue;
    (db::sharp_increase(scores, 0.3) ? detected : missed)
        .emplace_back(drive.serial, scores);
  }

  auto print_group = [](const std::string& title, const auto& group,
                        std::size_t limit) {
    std::cout << title << " (" << group.size() << " disks):\n";
    for (std::size_t i = 0; i < std::min(limit, group.size()); ++i) {
      std::string line = "  " + group[i].first + ": ";
      for (double s : group[i].second) line += du::fixed(s, 2) + " ";
      std::cout << line << "\n";
    }
  };
  print_group("Fig 12(a): detected disks", detected, 4);
  print_group("Fig 12(b): not-detected disks", missed, 4);

  const double recall =
      detected.empty() && missed.empty()
          ? 0.0
          : static_cast<double>(detected.size()) /
                static_cast<double>(detected.size() + missed.size());
  db::expectation("detected disks", "sharp increase (>=0.5) right before the "
                                    "failure date",
                  "trajectories in (a) end with a visible jump");
  db::expectation("not-detected disks", "flat scores (high or low)",
                  "trajectories in (b) stay level");
  db::expectation("recall", "58%", du::fixed(100.0 * recall, 0) + "%");
  return 0;
}
