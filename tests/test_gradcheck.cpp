// Numerical gradient checks for every backward implementation. These are
// the strongest property tests in the suite: any error in the manual
// backprop (LSTM BPTT, attention, embedding, linear) shows up as a relative
// error between analytic and central-difference gradients.
#include <gtest/gtest.h>

#include <vector>

#include "nn/embedding.h"
#include "nn/gradcheck.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nmt/seq2seq.h"
#include "util/rng.h"

namespace dn = desmine::nn;
namespace dt = desmine::tensor;
using desmine::util::Rng;

namespace {
constexpr double kTolerance = 3e-2;  // f32 forward, central differences
}

TEST(GradCheck, LinearWithXent) {
  Rng rng(1);
  dn::Linear lin("lin", 3, 5, rng, true, 0.5f);
  dn::ParamRegistry reg;
  lin.register_params(reg);

  dt::Matrix x(2, 3);
  x.init_uniform(rng, 1.0f);
  const std::vector<std::int32_t> targets = {1, 4};

  auto loss_fn = [&](bool accumulate) {
    const dt::Matrix logits = lin.forward(x);
    dt::Matrix dlogits;
    const auto res = dn::softmax_xent(logits, targets, dlogits, 0.5f);
    if (accumulate) lin.backward(x, dlogits);
    return res.loss_sum * 0.5;  // grad_scale 0.5 => loss reported scaled
  };

  const auto report = dn::gradient_check(reg, loss_fn, 6, 1e-2);
  EXPECT_GT(report.checked, 0u);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, EmbeddingThroughLinear) {
  Rng rng(2);
  dn::Embedding emb(6, 4, rng, 0.5f);
  dn::Linear lin("lin", 4, 3, rng, true, 0.5f);
  dn::ParamRegistry reg;
  emb.register_params(reg);
  lin.register_params(reg);

  const std::vector<std::int32_t> ids = {0, 5, 2, 0};
  const std::vector<std::int32_t> targets = {1, 2, 0, 2};

  auto loss_fn = [&](bool accumulate) {
    const dt::Matrix e = emb.forward(ids);
    const dt::Matrix logits = lin.forward(e);
    dt::Matrix dlogits;
    const auto res = dn::softmax_xent(logits, targets, dlogits, 1.0f);
    if (accumulate) {
      const dt::Matrix de = lin.backward(e, dlogits);
      emb.backward(ids, de);
    }
    return res.loss_sum;
  };

  const auto report = dn::gradient_check(reg, loss_fn, 6, 1e-2);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, SingleLayerLstmBptt) {
  Rng rng(3);
  dn::LstmStack lstm("l", 3, 4, 1, rng, 0.0f, 0.5f);
  dn::Linear head("head", 4, 3, rng, true, 0.5f);
  dn::ParamRegistry reg;
  lstm.register_params(reg);
  head.register_params(reg);

  const std::size_t T = 4, B = 2;
  std::vector<dt::Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) {
    dt::Matrix x(B, 3);
    x.init_uniform(rng, 1.0f);
    xs.push_back(x);
  }
  const std::vector<std::vector<std::int32_t>> targets = {
      {0, 1}, {2, 0}, {1, 1}, {0, 2}};

  auto loss_fn = [&](bool accumulate) {
    lstm.begin(B);
    double loss = 0.0;
    std::vector<dt::Matrix> hs(T), dlogits(T);
    for (std::size_t t = 0; t < T; ++t) {
      hs[t] = lstm.step(xs[t]);
      const dt::Matrix logits = head.forward(hs[t]);
      const auto res = dn::softmax_xent(logits, targets[t], dlogits[t], 1.0f);
      loss += res.loss_sum;
    }
    if (accumulate) {
      std::vector<dt::Matrix> dh(T);
      for (std::size_t t = 0; t < T; ++t) {
        dh[t] = head.backward(hs[t], dlogits[t]);
      }
      lstm.backward(dh);
    }
    return loss;
  };

  const auto report = dn::gradient_check(reg, loss_fn, 6, 1e-2);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, TwoLayerLstmBptt) {
  Rng rng(4);
  dn::LstmStack lstm("l", 2, 3, 2, rng, 0.0f, 0.5f);
  dn::Linear head("head", 3, 2, rng, true, 0.5f);
  dn::ParamRegistry reg;
  lstm.register_params(reg);
  head.register_params(reg);

  const std::size_t T = 3, B = 2;
  std::vector<dt::Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) {
    dt::Matrix x(B, 2);
    x.init_uniform(rng, 1.0f);
    xs.push_back(x);
  }
  const std::vector<std::vector<std::int32_t>> targets = {{0, 1}, {1, 0}, {1, 1}};

  auto loss_fn = [&](bool accumulate) {
    lstm.begin(B);
    double loss = 0.0;
    std::vector<dt::Matrix> hs(T), dlogits(T);
    for (std::size_t t = 0; t < T; ++t) {
      hs[t] = lstm.step(xs[t]);
      const dt::Matrix logits = head.forward(hs[t]);
      const auto res = dn::softmax_xent(logits, targets[t], dlogits[t], 1.0f);
      loss += res.loss_sum;
    }
    if (accumulate) {
      std::vector<dt::Matrix> dh(T);
      for (std::size_t t = 0; t < T; ++t) {
        dh[t] = head.backward(hs[t], dlogits[t]);
      }
      lstm.backward(dh);
    }
    return loss;
  };

  const auto report = dn::gradient_check(reg, loss_fn, 5, 1e-2);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, LstmFinalStateGradientPath) {
  // Exercises the dfinal path used when the encoder's last state seeds the
  // decoder: loss = <w, h_final> + <v, c_final>.
  Rng rng(5);
  dn::LstmStack lstm("l", 2, 3, 2, rng, 0.0f, 0.5f);
  dn::ParamRegistry reg;
  lstm.register_params(reg);

  const std::size_t T = 3, B = 1;
  std::vector<dt::Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) {
    dt::Matrix x(B, 2);
    x.init_uniform(rng, 1.0f);
    xs.push_back(x);
  }
  // Fixed weights for the final-state loss.
  std::vector<dt::Matrix> w, v;
  for (int l = 0; l < 2; ++l) {
    dt::Matrix wm(B, 3), vm(B, 3);
    wm.init_uniform(rng, 1.0f);
    vm.init_uniform(rng, 1.0f);
    w.push_back(wm);
    v.push_back(vm);
  }

  auto loss_fn = [&](bool accumulate) {
    lstm.begin(B);
    for (std::size_t t = 0; t < T; ++t) lstm.step(xs[t]);
    const dn::LstmState fin = lstm.state();
    double loss = 0.0;
    for (std::size_t l = 0; l < 2; ++l) {
      for (std::size_t i = 0; i < fin.h[l].size(); ++i) {
        loss += static_cast<double>(w[l].data()[i]) * fin.h[l].data()[i];
        loss += static_cast<double>(v[l].data()[i]) * fin.c[l].data()[i];
      }
    }
    if (accumulate) {
      std::vector<dt::Matrix> dh_top(T);  // empty: no per-step loss
      dn::LstmState dfinal;
      dfinal.h = w;
      dfinal.c = v;
      lstm.backward(dh_top, &dfinal);
    }
    return loss;
  };

  const auto report = dn::gradient_check(reg, loss_fn, 5, 1e-2);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, FullSeq2SeqWithAttention) {
  // End-to-end: embeddings, 2-layer encoder/decoder, attention, projection.
  // Dropout must be 0 for determinism.
  desmine::nmt::Seq2SeqConfig cfg;
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.num_layers = 2;
  cfg.dropout = 0.0f;
  cfg.init_scale = 0.4f;
  desmine::nmt::Seq2SeqModel model(7, 6, cfg, Rng(6));

  const std::vector<desmine::nmt::EncodedPair> pairs = {
      {{4, 5, 6, 4}, {4, 5, 4}},
      {{5, 5, 4, 6}, {5, 4, 5}},
  };
  std::vector<const desmine::nmt::EncodedPair*> batch = {&pairs[0], &pairs[1]};

  auto loss_fn = [&](bool accumulate) {
    return accumulate ? model.train_batch(batch) : model.evaluate_loss(batch);
  };

  const auto report = dn::gradient_check(model.params(), loss_fn, 4, 1e-2);
  EXPECT_GT(report.checked, 40u);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}

TEST(GradCheck, LstmBpttInExplicitWorkspace) {
  // Same network as TwoLayerLstmBptt, but every activation, logit buffer,
  // and per-step gradient lives in one caller-provided arena that is
  // rewound between evaluations — the exact memory discipline the seq2seq
  // hot path runs under. Any view-lifetime bug (a cache clobbered by a
  // scratch rewind, a stale slice surviving reset) breaks the check.
  Rng rng(11);
  dn::LstmStack lstm("l", 2, 3, 2, rng, 0.0f, 0.5f);
  dn::Linear head("head", 3, 2, rng, true, 0.5f);
  dn::ParamRegistry reg;
  lstm.register_params(reg);
  head.register_params(reg);

  const std::size_t T = 3, B = 2;
  std::vector<dt::Matrix> xs;
  for (std::size_t t = 0; t < T; ++t) {
    dt::Matrix x(B, 2);
    x.init_uniform(rng, 1.0f);
    xs.push_back(x);
  }
  const std::vector<std::vector<std::int32_t>> targets = {
      {0, 1}, {1, 0}, {1, 1}};

  dt::Workspace ws;
  auto loss_fn = [&](bool accumulate) {
    ws.reset();
    lstm.begin(B, nullptr, false, nullptr, &ws);
    double loss = 0.0;
    std::vector<dt::ConstMatrixView> hs(T);
    std::vector<dt::MatrixView> dlogits(T);
    for (std::size_t t = 0; t < T; ++t) {
      hs[t] = lstm.step(xs[t]);
      dlogits[t] = ws.alloc(B, 2);
      // Logits are transient: reclaimed as soon as dlogits is computed.
      const auto cp = ws.checkpoint();
      dt::MatrixView logits = ws.alloc(B, 2);
      head.forward_into(hs[t], logits);
      const auto res = dn::softmax_xent(logits, targets[t], dlogits[t], 1.0f);
      loss += res.loss_sum;
      ws.rewind(cp);
    }
    if (accumulate) {
      std::vector<dt::MatrixView> dh(T);
      for (std::size_t t = 0; t < T; ++t) {
        dh[t] = ws.alloc(B, 3);
        head.backward_into(hs[t], dlogits[t], dh[t]);
      }
      lstm.backward(dh);
    }
    return loss;
  };

  const auto report = dn::gradient_check(reg, loss_fn, 5, 1e-2);
  EXPECT_LT(report.max_rel_error, kTolerance) << report.worst_param;
}
