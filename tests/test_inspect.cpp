// Integration tests for the desmine_inspect exit-code contract (README.md):
//   0    artifact ok
//   1    corrupt/unreadable artifact
//   2    usage error
// The binary path is injected by CMake as DESMINE_INSPECT_PATH. The tests
// build real v3/v4 artifacts in-process, then drive the tool as a
// subprocess — the same way an operator or a CI integrity gate would.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/framework.h"
#include "data/plant.h"
#include "io/artifact_map.h"
#include "io/serialize.h"

namespace di = desmine::io;
namespace dc = desmine::core;
namespace dd = desmine::data;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_inspect_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Run desmine_inspect with `args`; returns {exit code, stdout}.
std::pair<int, std::string> run_inspect(const std::string& args) {
  const TempFile out("stdout.txt");
  const std::string cmd = std::string(DESMINE_INSPECT_PATH) + " " + args +
                          " >" + out.path + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  std::ifstream is(out.path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (status < 0 || !WIFEXITED(status)) return {-1, buf.str()};
  return {WEXITSTATUS(status), buf.str()};
}

/// One small fitted framework shared by every test.
const dc::Framework& fitted_framework() {
  static const dc::Framework* fw = [] {
    dd::PlantConfig pcfg;
    pcfg.num_components = 2;
    pcfg.sensors_per_component = 2;
    pcfg.num_popular = 0;
    pcfg.num_lazy = 0;
    pcfg.num_constant = 0;
    pcfg.days = 3;
    pcfg.minutes_per_day = 180;
    pcfg.anomalies = {};
    pcfg.precursors = false;
    pcfg.seed = 11;
    const auto plant = dd::generate_plant(pcfg);

    dc::FrameworkConfig fcfg;
    fcfg.window.word_length = 5;
    fcfg.window.word_stride = 1;
    fcfg.window.sentence_length = 5;
    fcfg.window.sentence_stride = 5;
    fcfg.miner.translation.model.embedding_dim = 12;
    fcfg.miner.translation.model.hidden_dim = 12;
    fcfg.miner.translation.model.num_layers = 1;
    fcfg.miner.translation.model.dropout = 0.0f;
    fcfg.miner.translation.trainer.steps = 40;
    fcfg.miner.translation.trainer.batch_size = 4;
    fcfg.miner.seed = 3;
    fcfg.detector.valid_lo = 0.0;
    fcfg.detector.valid_hi = 100.5;
    auto* out = new dc::Framework(fcfg);
    out->fit(plant.days_slice(0, 2), plant.days_slice(2, 1));
    return out;
  }();
  return *fw;
}

void flip_byte(const std::string& path, std::size_t at) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = buf.str();
  ASSERT_LT(at, bytes.size());
  bytes[at] = static_cast<char>(bytes[at] ^ 0x01);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(InspectCli, NoArgumentsIsUsageError) {
  EXPECT_EQ(run_inspect("").first, 2);
}

TEST(InspectCli, MissingFileIsRuntimeError) {
  EXPECT_EQ(run_inspect("--model /tmp/desmine_inspect_no_such_file.bin").first,
            1);
}

TEST(InspectCli, MappedArtifactTextDump) {
  const TempFile file("v4.bin");
  di::save_framework(fitted_framework(), file.path);
  const auto [code, out] = run_inspect("--model " + file.path);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("artifact v4 (mapped"), std::string::npos) << out;
  EXPECT_NE(out.find("header OK, TOC OK"), std::string::npos) << out;
}

TEST(InspectCli, MappedArtifactJsonDump) {
  const TempFile file("v4j.bin");
  di::save_framework(fitted_framework(), file.path);
  const auto [code, out] = run_inspect("--model " + file.path + " --json");
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("\"version\":4"), std::string::npos) << out;
  EXPECT_NE(out.find("\"layout\":\"mapped\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"edge_table\":["), std::string::npos) << out;
}

TEST(InspectCli, StreamArtifactDump) {
  const TempFile file("v3.bin");
  di::save_framework(fitted_framework(), file.path,
                     di::kStreamArtifactVersion);
  const auto [code, out] = run_inspect("--model " + file.path);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("artifact v3 (stream)"), std::string::npos) << out;
  EXPECT_NE(out.find("CRC trailer OK"), std::string::npos) << out;
}

TEST(InspectCli, CorruptTocFailsWithoutVerify) {
  const TempFile file("v4_badtoc.bin");
  di::save_framework(fitted_framework(), file.path);
  std::ifstream is(file.path, std::ios::binary | std::ios::ate);
  const std::size_t size = static_cast<std::size_t>(is.tellg());
  is.close();
  flip_byte(file.path, size - 8);  // inside the TOC
  EXPECT_EQ(run_inspect("--model " + file.path).first, 1);
}

TEST(InspectCli, WeightFlipCaughtOnlyByVerify) {
  const TempFile file("v4_badweights.bin");
  di::save_framework(fitted_framework(), file.path);
  std::size_t weights_at = 0;
  {
    const auto map = di::ArtifactMap::open(file.path);
    for (const di::EdgeEntry& e : map->edges()) {
      if (e.has_model) {
        weights_at = e.weights_off + 64;
        break;
      }
    }
  }
  ASSERT_GT(weights_at, 0u);
  flip_byte(file.path, weights_at);
  // Header + TOC are intact, so a plain dump succeeds (lazy CRCs)...
  EXPECT_EQ(run_inspect("--model " + file.path).first, 0);
  // ...but --verify sweeps every edge and must fail.
  EXPECT_EQ(run_inspect("--model " + file.path + " --verify").first, 1);
}

TEST(InspectCli, TruncatedArtifactIsRuntimeError) {
  const TempFile file("v4_trunc.bin");
  di::save_framework(fitted_framework(), file.path);
  std::ifstream is(file.path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();
  is.close();
  std::ofstream os(file.path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  os.close();
  EXPECT_EQ(run_inspect("--model " + file.path).first, 1);
}
