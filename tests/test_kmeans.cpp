// Tests for the K-Means baseline: clustering quality on blobs, k-means++
// determinism, anomaly thresholding.
#include <gtest/gtest.h>

#include <set>

#include "ml/kmeans.h"
#include "util/error.h"
#include "util/rng.h"

namespace ml = desmine::ml;
using desmine::util::Rng;

namespace {

/// Three well-separated Gaussian blobs in 2-D.
ml::FeatureMatrix blobs(std::size_t per_blob, Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  ml::FeatureMatrix rows;
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      rows.push_back({c[0] + rng.normal(0, 0.5), c[1] + rng.normal(0, 0.5)});
    }
  }
  return rows;
}

}  // namespace

TEST(KMeans, RecoversBlobCenters) {
  Rng rng(1);
  const auto rows = blobs(60, rng);
  ml::KMeans km;
  ml::KMeansConfig cfg;
  cfg.k = 3;
  km.fit(rows, cfg);
  ASSERT_EQ(km.centroids().size(), 3u);
  // Every centroid is within 1.0 of a true center and all three centers are
  // covered.
  std::set<int> covered;
  for (const auto& c : km.centroids()) {
    const double true_centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int k = 0; k < 3; ++k) {
      const double dx = c[0] - true_centers[k][0];
      const double dy = c[1] - true_centers[k][1];
      if (dx * dx + dy * dy < 1.0) covered.insert(k);
    }
  }
  EXPECT_EQ(covered.size(), 3u);
}

TEST(KMeans, AssignmentsConsistentWithinBlob) {
  Rng rng(2);
  const auto rows = blobs(40, rng);
  ml::KMeans km;
  ml::KMeansConfig cfg;
  cfg.k = 3;
  km.fit(rows, cfg);
  // Points of the same blob share a centroid.
  for (int blob = 0; blob < 3; ++blob) {
    const std::size_t base = static_cast<std::size_t>(blob) * 40;
    const std::size_t c0 = km.assign(rows[base]);
    for (std::size_t i = 1; i < 40; ++i) {
      EXPECT_EQ(km.assign(rows[base + i]), c0) << "blob " << blob;
    }
  }
}

TEST(KMeans, DeterministicForSameSeed) {
  Rng rng(3);
  const auto rows = blobs(30, rng);
  ml::KMeansConfig cfg;
  cfg.k = 3;
  cfg.seed = 9;
  ml::KMeans a, b;
  a.fit(rows, cfg);
  b.fit(rows, cfg);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(a.centroids()[c], b.centroids()[c]);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(4);
  const auto rows = blobs(40, rng);
  double prev = 1e18;
  for (std::size_t k : {1u, 2u, 3u, 6u}) {
    ml::KMeans km;
    ml::KMeansConfig cfg;
    cfg.k = k;
    km.fit(rows, cfg);
    const double inertia = km.inertia(rows);
    EXPECT_LE(inertia, prev + 1e-9) << "k=" << k;
    prev = inertia;
  }
}

TEST(KMeans, AnomalyThresholding) {
  Rng rng(5);
  const auto rows = blobs(50, rng);
  ml::KMeans km;
  ml::KMeansConfig cfg;
  cfg.k = 3;
  km.fit(rows, cfg);
  // Uncalibrated prediction is a contract violation.
  EXPECT_THROW(km.predict_anomaly(rows[0]), desmine::PreconditionError);

  km.calibrate_threshold(rows, 99.0);
  // In-distribution points pass, a far outlier is flagged.
  std::size_t flagged = 0;
  for (const auto& row : rows) flagged += km.predict_anomaly(row);
  EXPECT_LE(flagged, rows.size() / 20);
  EXPECT_EQ(km.predict_anomaly({50.0, 50.0}), 1);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  const ml::FeatureMatrix rows = {{0.0, 0.0}, {2.0, 4.0}, {4.0, 2.0}};
  ml::KMeans km;
  ml::KMeansConfig cfg;
  cfg.k = 1;
  km.fit(rows, cfg);
  EXPECT_NEAR(km.centroids()[0][0], 2.0, 1e-9);
  EXPECT_NEAR(km.centroids()[0][1], 2.0, 1e-9);
}

TEST(KMeans, InvalidConfigThrows) {
  ml::KMeans km;
  ml::KMeansConfig cfg;
  EXPECT_THROW(km.fit({}, cfg), desmine::PreconditionError);
  cfg.k = 5;
  EXPECT_THROW(km.fit({{1.0}, {2.0}}, cfg), desmine::PreconditionError);
  EXPECT_THROW(km.assign({1.0}), desmine::PreconditionError);
}
