// Tests for the generic digraph, connected components, modularity, and
// Walktrap community detection (including a planted-partition property test).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/digraph.h"
#include "graph/walktrap.h"
#include "util/error.h"
#include "util/rng.h"

namespace dg = desmine::graph;
using desmine::util::Rng;

TEST(Digraph, DegreesTracked) {
  dg::Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_THROW(g.add_edge(0, 9), desmine::PreconditionError);
  EXPECT_THROW(g.in_degree(9), desmine::PreconditionError);
}

TEST(Digraph, WeakComponentsIgnoreDirection) {
  dg::Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // 0,1,2 together despite mixed directions
  g.add_edge(3, 4);
  const auto comps = g.weak_components();
  ASSERT_EQ(comps.size(), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comps[0].size(), 3u);
  EXPECT_EQ(comps[1].size(), 2u);
  EXPECT_EQ(comps[2].size(), 1u);
  EXPECT_EQ(comps[2][0], 5u);
}

TEST(Digraph, UndirectedAdjacencySymmetrizes) {
  dg::Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 0, 3.0);
  const auto adj = g.undirected_adjacency();
  EXPECT_DOUBLE_EQ(adj[0][1], 5.0);
  EXPECT_DOUBLE_EQ(adj[1][0], 5.0);
  EXPECT_DOUBLE_EQ(adj[0][2], 0.0);
}

TEST(Digraph, DotExportContainsNodesAndEdges) {
  dg::Digraph g(2);
  g.add_edge(0, 1, 1.5);
  const std::string dot = g.to_dot({"alpha", "beta"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Modularity, PerfectSplitBeatsMerged) {
  // Two disjoint triangles.
  dg::Digraph g(6);
  for (std::size_t base : {0u, 3u}) {
    g.add_edge(base, base + 1);
    g.add_edge(base + 1, base + 2);
    g.add_edge(base + 2, base);
  }
  const std::vector<std::size_t> split = {0, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> merged = {0, 0, 0, 0, 0, 0};
  EXPECT_GT(dg::modularity(g, split), dg::modularity(g, merged));
  EXPECT_NEAR(dg::modularity(g, split), 0.5, 1e-9);
}

TEST(Modularity, RequiresFullMembership) {
  dg::Digraph g(3);
  EXPECT_THROW(dg::modularity(g, {0, 1}), desmine::PreconditionError);
}

TEST(Walktrap, EmptyGraph) {
  dg::Digraph g(0);
  const auto result = dg::walktrap(g);
  EXPECT_EQ(result.community_count, 0u);
}

TEST(Walktrap, SingletonsForEdgelessGraph) {
  dg::Digraph g(4);
  const auto result = dg::walktrap(g);
  EXPECT_EQ(result.membership.size(), 4u);
  std::set<std::size_t> ids(result.membership.begin(),
                            result.membership.end());
  EXPECT_EQ(ids.size(), 4u);  // nothing merged
}

TEST(Walktrap, RecoverTwoCliques) {
  // Two 4-cliques joined by a single bridge edge.
  dg::Digraph g(8);
  auto clique = [&](std::size_t base) {
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = i + 1; j < 4; ++j) {
        g.add_edge(base + i, base + j);
      }
    }
  };
  clique(0);
  clique(4);
  g.add_edge(3, 4);

  const auto result = dg::walktrap(g);
  EXPECT_EQ(result.community_count, 2u);
  // All of 0..3 together, all of 4..7 together, and apart from each other.
  for (std::size_t v = 1; v < 4; ++v) {
    EXPECT_EQ(result.membership[v], result.membership[0]);
  }
  for (std::size_t v = 5; v < 8; ++v) {
    EXPECT_EQ(result.membership[v], result.membership[4]);
  }
  EXPECT_NE(result.membership[0], result.membership[4]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Walktrap, PlantedPartitionProperty) {
  // 3 groups of 6 nodes; dense inside (p=0.9), sparse across (q=0.05).
  Rng rng(17);
  const std::size_t groups = 3, per = 6, n = groups * per;
  dg::Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = (i / per) == (j / per);
      if (rng.bernoulli(same ? 0.9 : 0.05)) g.add_edge(i, j);
    }
  }
  const auto result = dg::walktrap(g);

  // Purity: most common planted label per community covers almost all nodes.
  std::size_t correct = 0;
  for (std::size_t c = 0; c < result.community_count; ++c) {
    std::vector<std::size_t> count(groups, 0);
    std::size_t size = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (result.membership[v] == c) {
        ++count[v / per];
        ++size;
      }
    }
    if (size == 0) continue;
    correct += *std::max_element(count.begin(), count.end());
  }
  EXPECT_GE(correct, n - 2) << "community purity too low";
}

TEST(Walktrap, MembershipIdsAreContiguous) {
  dg::Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto result = dg::walktrap(g);
  std::set<std::size_t> ids(result.membership.begin(),
                            result.membership.end());
  EXPECT_EQ(ids.size(), result.community_count);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), result.community_count - 1);
}
