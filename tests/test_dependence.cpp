// Tests for the classical dependence measures (NMI, Cramér's V, lag scan).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dependence.h"
#include "util/error.h"
#include "util/rng.h"

namespace ml = desmine::ml;
using desmine::core::EventSequence;
using desmine::util::Rng;

namespace {

EventSequence random_binary(std::size_t n, Rng& rng) {
  EventSequence out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return out;
}

}  // namespace

TEST(Contingency, CountsAndMargins) {
  const EventSequence a = {"x", "x", "y", "y", "y"};
  const EventSequence b = {"p", "q", "q", "q", "q"};
  const ml::ContingencyTable t(a, b);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.total(), 5u);
  // Labels are sorted: rows {x, y}, cols {p, q}.
  EXPECT_EQ(t.count(0, 0), 1u);  // (x, p)
  EXPECT_EQ(t.count(0, 1), 1u);  // (x, q)
  EXPECT_EQ(t.count(1, 1), 3u);  // (y, q)
  EXPECT_EQ(t.row_total(1), 3u);
  EXPECT_EQ(t.col_total(1), 4u);
  EXPECT_THROW(t.count(2, 0), desmine::PreconditionError);
}

TEST(Contingency, MisalignedThrows) {
  EXPECT_THROW(ml::ContingencyTable({"a"}, {"b", "c"}),
               desmine::PreconditionError);
  EXPECT_THROW(ml::ContingencyTable({}, {}), desmine::PreconditionError);
}

TEST(Dependence, EntropyKnownValues) {
  EXPECT_DOUBLE_EQ(ml::entropy({"a", "a", "a"}), 0.0);
  EXPECT_NEAR(ml::entropy({"a", "b", "a", "b"}), std::log(2.0), 1e-12);
  EXPECT_NEAR(ml::entropy({"a", "b", "c"}), std::log(3.0), 1e-12);
}

TEST(Dependence, NmiIdenticalSequencesIsOne) {
  const EventSequence a = {"x", "y", "x", "y", "z", "x"};
  EXPECT_NEAR(ml::normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Dependence, NmiBijectiveRelabelingIsOne) {
  const EventSequence a = {"x", "y", "x", "y", "x"};
  const EventSequence b = {"1", "2", "1", "2", "1"};
  EXPECT_NEAR(ml::normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Dependence, NmiIndependentNearZero) {
  Rng rng(3);
  const auto a = random_binary(4000, rng);
  const auto b = random_binary(4000, rng);
  EXPECT_LT(ml::normalized_mutual_information(a, b), 0.01);
}

TEST(Dependence, NmiConstantSequenceIsZero) {
  const EventSequence constant(10, "c");
  const EventSequence varied = {"a", "b", "a", "b", "a", "b", "a", "b", "a",
                                "b"};
  EXPECT_DOUBLE_EQ(ml::normalized_mutual_information(constant, varied), 0.0);
  EXPECT_DOUBLE_EQ(ml::normalized_mutual_information(constant, constant), 0.0);
}

TEST(Dependence, NmiSymmetric) {
  Rng rng(4);
  const auto a = random_binary(500, rng);
  EventSequence b = a;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = "NOISE";
  EXPECT_NEAR(ml::normalized_mutual_information(a, b),
              ml::normalized_mutual_information(b, a), 1e-12);
}

TEST(Dependence, CramersVPerfectAssociationIsOne) {
  const EventSequence a = {"x", "y", "x", "y", "x", "y"};
  const EventSequence b = {"p", "q", "p", "q", "p", "q"};
  EXPECT_NEAR(ml::cramers_v(ml::ContingencyTable(a, b)), 1.0, 1e-12);
}

TEST(Dependence, CramersVIndependentNearZero) {
  Rng rng(5);
  const auto a = random_binary(4000, rng);
  const auto b = random_binary(4000, rng);
  EXPECT_LT(ml::cramers_v(ml::ContingencyTable(a, b)), 0.05);
}

TEST(Dependence, CramersVDegenerateTableIsZero) {
  const EventSequence constant(5, "c");
  const EventSequence varied = {"a", "b", "a", "b", "a"};
  EXPECT_DOUBLE_EQ(ml::cramers_v(ml::ContingencyTable(constant, varied)), 0.0);
}

TEST(Dependence, LagScanFindsTrueDelay) {
  // b leads a by exactly 4 ticks.
  Rng rng(6);
  const auto b = random_binary(2000, rng);
  EventSequence a(b.size(), "OFF");
  for (std::size_t t = 4; t < b.size(); ++t) a[t] = b[t - 4];

  EXPECT_LT(ml::lagged_nmi(a, b, 0), 0.1);
  EXPECT_NEAR(ml::lagged_nmi(a, b, 4), 1.0, 1e-9);
  const auto scan = ml::scan_lags(a, b, 10);
  EXPECT_EQ(scan.best_lag, 4u);
  EXPECT_GT(scan.best_nmi, 0.99);
}

TEST(Dependence, LagBoundsChecked) {
  const EventSequence a = {"x", "y"};
  EXPECT_THROW(ml::lagged_nmi(a, a, 2), desmine::PreconditionError);
  EXPECT_THROW(ml::scan_lags(a, a, 5), desmine::PreconditionError);
}
