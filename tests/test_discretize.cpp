// Tests for the §IV-C discretization schemes (Fig. 10) and the cumulative
// first-difference transform.
#include <gtest/gtest.h>

#include "core/discretize.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
using desmine::util::Rng;

TEST(Discretize, SchemeChoiceFollowsZeroFraction) {
  // 80% zeros -> binary (the error-counter case).
  std::vector<double> zero_heavy = {0, 0, 0, 0, 0, 0, 0, 0, 3, 7};
  EXPECT_EQ(dc::Discretizer::choose_scheme(zero_heavy),
            dc::DiscretizationScheme::kBinary);
  // Smooth positive values -> quantile.
  std::vector<double> smooth = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(dc::Discretizer::choose_scheme(smooth),
            dc::DiscretizationScheme::kQuantile);
  EXPECT_THROW(dc::Discretizer::choose_scheme({}),
               desmine::PreconditionError);
}

TEST(Discretize, BinaryScheme) {
  const auto d = dc::Discretizer::fit({0, 0, 0, 1},
                                      dc::DiscretizationScheme::kBinary);
  EXPECT_EQ(d.discretize(0.0), "zero");
  EXPECT_EQ(d.discretize(5.0), "nonzero");
  EXPECT_EQ(d.discretize(-2.0), "nonzero");
  EXPECT_TRUE(d.boundaries().empty());
}

TEST(Discretize, QuantileBoundariesAtPaperPercentiles) {
  std::vector<double> train;
  for (int i = 1; i <= 100; ++i) train.push_back(i);
  const auto d =
      dc::Discretizer::fit(train, dc::DiscretizationScheme::kQuantile);
  ASSERT_EQ(d.boundaries().size(), 4u);  // 20th/40th/60th/80th
  EXPECT_NEAR(d.boundaries()[0], 20.8, 0.5);
  EXPECT_NEAR(d.boundaries()[3], 80.2, 0.5);
}

TEST(Discretize, QuantileMapsToFiveCategories) {
  std::vector<double> train;
  for (int i = 1; i <= 100; ++i) train.push_back(i);
  const auto d =
      dc::Discretizer::fit(train, dc::DiscretizationScheme::kQuantile);
  EXPECT_EQ(d.discretize(1.0), "q0");
  EXPECT_EQ(d.discretize(30.0), "q1");
  EXPECT_EQ(d.discretize(50.0), "q2");
  EXPECT_EQ(d.discretize(70.0), "q3");
  EXPECT_EQ(d.discretize(99.0), "q4");
  EXPECT_EQ(d.discretize(1e9), "q4");    // beyond training range
  EXPECT_EQ(d.discretize(-1e9), "q0");
}

TEST(Discretize, QuantileIsMonotone) {
  Rng rng(4);
  std::vector<double> train;
  for (int i = 0; i < 500; ++i) train.push_back(rng.normal(10, 5));
  const auto d =
      dc::Discretizer::fit(train, dc::DiscretizationScheme::kQuantile);
  double prev = -1e18;
  std::string prev_label = "q0";
  for (double v = -10; v <= 30; v += 0.5) {
    const std::string label = d.discretize(v);
    EXPECT_GE(label, prev_label) << "non-monotone at " << v << " after "
                                 << prev;
    prev = v;
    prev_label = label;
  }
}

TEST(Discretize, QuantileBalancedOnTrainingData) {
  Rng rng(5);
  std::vector<double> train;
  for (int i = 0; i < 2000; ++i) train.push_back(rng.uniform(0, 1));
  const auto d = dc::Discretizer::fit_auto(train);
  EXPECT_EQ(d.scheme(), dc::DiscretizationScheme::kQuantile);
  std::map<std::string, int> counts;
  for (double v : train) ++counts[d.discretize(v)];
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [label, count] : counts) {
    EXPECT_NEAR(count / 2000.0, 0.2, 0.03) << label;
  }
}

TEST(Discretize, ApplyProducesEventSequence) {
  const auto d = dc::Discretizer::fit({0, 0, 0, 1},
                                      dc::DiscretizationScheme::kBinary);
  const auto seq = d.apply({0, 3, 0});
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], "zero");
  EXPECT_EQ(seq[1], "nonzero");
}

TEST(Discretize, DegenerateTrainingDistribution) {
  // All-equal training values: quantile boundaries collapse; everything must
  // still map to a single stable category.
  const auto d =
      dc::Discretizer::fit({5, 5, 5, 5}, dc::DiscretizationScheme::kQuantile);
  EXPECT_EQ(d.discretize(5.0), d.discretize(5.0));
  EXPECT_EQ(d.discretize(4.0), "q0");
  EXPECT_EQ(d.discretize(6.0), "q4");
}

TEST(Discretize, FirstDifference) {
  const auto diff = dc::first_difference({10, 12, 12, 20});
  ASSERT_EQ(diff.size(), 4u);
  EXPECT_DOUBLE_EQ(diff[0], 0.0);
  EXPECT_DOUBLE_EQ(diff[1], 2.0);
  EXPECT_DOUBLE_EQ(diff[2], 0.0);
  EXPECT_DOUBLE_EQ(diff[3], 8.0);
  EXPECT_TRUE(dc::first_difference({}).empty());
}
