// Round-trip tests for artifact serialization: matrices, vocabularies,
// translation models, relationship graphs, and whole-framework snapshots.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/framework.h"
#include "data/plant.h"
#include "io/artifact_map.h"
#include "io/serialize.h"
#include "util/error.h"
#include "util/rng.h"

namespace di = desmine::io;
namespace dc = desmine::core;
namespace dt = desmine::tensor;
namespace dx = desmine::text;
namespace dm = desmine::nmt;
namespace dd = desmine::data;
using desmine::util::Rng;

namespace {

/// Temp file path that cleans up on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_test_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Serialize, MatrixRoundTrip) {
  Rng rng(1);
  dt::Matrix m(5, 7);
  m.init_uniform(rng, 1.0f);
  std::stringstream ss;
  di::write_matrix(ss, m);
  const dt::Matrix back = di::read_matrix(ss);
  ASSERT_TRUE(back.same_shape(m));
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], m.data()[i]);
  }
}

TEST(Serialize, VocabularyRoundTripPreservesIds) {
  const auto v = dx::Vocabulary::build({{"zeta", "alpha", "mid"}});
  std::stringstream ss;
  di::write_vocabulary(ss, v);
  const auto back = di::read_vocabulary(ss);
  EXPECT_EQ(back.size(), v.size());
  for (std::size_t id = 0; id < v.size(); ++id) {
    EXPECT_EQ(back.token(static_cast<std::int32_t>(id)),
              v.token(static_cast<std::int32_t>(id)));
  }
  EXPECT_EQ(back.id("zeta"), v.id("zeta"));
}

TEST(Serialize, TranslationModelRoundTripSameOutputs) {
  dx::Corpus src = {{"sa", "sb", "sa", "sb"}, {"sb", "sa", "sb", "sa"}};
  dx::Corpus tgt = {{"ta", "tb", "ta", "tb"}, {"tb", "ta", "tb", "ta"}};
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 8;
  cfg.model.hidden_dim = 8;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 40;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);

  std::stringstream ss;
  di::write_translation_model(ss, model, cfg.model);
  auto back = di::read_translation_model(ss, di::kStreamArtifactVersion);

  for (const auto& sentence : src) {
    EXPECT_EQ(back.translate(sentence), model.translate(sentence));
  }
  EXPECT_DOUBLE_EQ(back.score(src, tgt).score, model.score(src, tgt).score);
}

TEST(Serialize, CorruptStreamThrows) {
  std::stringstream ss("not an artifact at all");
  EXPECT_THROW(di::read_matrix(ss), desmine::RuntimeError);
}

TEST(Serialize, EncrypterRoundTrip) {
  dc::MultivariateSeries series = {
      {"s1", {"ON", "OFF", "ON"}},
      {"s2", {"x", "x", "x"}},  // dropped
      {"s3", {"low", "high", "mid"}},
  };
  const auto enc = dc::SensorEncrypter::fit(series);
  std::stringstream ss;
  di::write_encrypter(ss, enc);
  const auto back = di::read_encrypter(ss);
  EXPECT_EQ(back.kept_sensors(), enc.kept_sensors());
  EXPECT_EQ(back.dropped_sensors(), enc.dropped_sensors());
  EXPECT_EQ(back.encode("s1", {"OFF", "ON", "???"}),
            enc.encode("s1", {"OFF", "ON", "???"}));
  EXPECT_EQ(back.cardinality("s3"), 3u);
}

TEST(Serialize, FrameworkSnapshotDetectsIdentically) {
  // Small pipeline: fit, snapshot, reload, compare detection output.
  dd::PlantConfig pcfg;
  pcfg.num_components = 2;
  pcfg.sensors_per_component = 2;
  pcfg.num_popular = 0;
  pcfg.num_lazy = 0;
  pcfg.num_constant = 1;
  pcfg.days = 4;
  pcfg.minutes_per_day = 180;
  pcfg.anomalies = {{3, {0}}};
  pcfg.precursors = false;
  pcfg.seed = 9;
  const auto plant = dd::generate_plant(pcfg);

  dc::FrameworkConfig fcfg;
  fcfg.window.word_length = 5;
  fcfg.window.word_stride = 1;
  fcfg.window.sentence_length = 5;
  fcfg.window.sentence_stride = 5;
  fcfg.miner.translation.model.embedding_dim = 12;
  fcfg.miner.translation.model.hidden_dim = 12;
  fcfg.miner.translation.model.num_layers = 1;
  fcfg.miner.translation.model.dropout = 0.0f;
  fcfg.miner.translation.trainer.steps = 60;
  fcfg.miner.translation.trainer.batch_size = 4;
  fcfg.miner.seed = 3;
  fcfg.detector.valid_lo = 0.0;
  fcfg.detector.valid_hi = 100.5;

  dc::Framework fw(fcfg);
  fw.fit(plant.days_slice(0, 2), plant.days_slice(2, 1));

  const TempFile file("framework.bin");
  di::save_framework(fw, file.path);
  dc::Framework loaded = di::load_framework(file.path, fcfg);

  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.graph().sensor_count(), fw.graph().sensor_count());
  EXPECT_EQ(loaded.graph().edges().size(), fw.graph().edges().size());
  for (std::size_t i = 0; i < fw.graph().edges().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.graph().edges()[i].bleu,
                     fw.graph().edges()[i].bleu);
  }

  const auto test_slice = plant.days_slice(3, 1);
  const auto r1 = fw.detect(test_slice);
  const auto r2 = loaded.detect(test_slice);
  ASSERT_EQ(r1.anomaly_scores.size(), r2.anomaly_scores.size());
  for (std::size_t t = 0; t < r1.anomaly_scores.size(); ++t) {
    EXPECT_DOUBLE_EQ(r1.anomaly_scores[t], r2.anomaly_scores[t]);
  }
}

namespace {

/// Tiny trained pair-model artifact on disk; the corruption tests below
/// mutate copies of it. Pair models go through the same crash-safe
/// write_artifact_file / read_artifact_file path as framework snapshots.
std::string make_pair_artifact(const std::string& path) {
  dx::Corpus src = {{"sa", "sb", "sa", "sb"}, {"sb", "sa", "sb", "sa"}};
  dx::Corpus tgt = {{"ta", "tb", "ta", "tb"}, {"tb", "ta", "tb", "ta"}};
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 8;
  cfg.model.hidden_dim = 8;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 30;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);
  di::save_pair_model(path, model, cfg.model);
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(Serialize, PairModelArtifactRoundTrip) {
  const TempFile file("pair_roundtrip.bin");
  const std::string bytes = make_pair_artifact(file.path);
  ASSERT_GT(bytes.size(), 16u);  // header + payload + CRC trailer
  auto back = di::load_pair_model(file.path);
  EXPECT_GT(back.src_vocab().size(), 0u);
}

TEST(Serialize, TruncatedArtifactAlwaysThrows) {
  const TempFile file("pair_truncate.bin");
  const std::string bytes = make_pair_artifact(file.path);

  // Truncation points: empty file, mid-magic, exactly the header, mid-body,
  // up to each byte of the CRC trailer. Every one must raise RuntimeError —
  // never a crash, never a silently short model.
  const std::vector<std::size_t> cuts = {
      0, 1, 4, 7, 8, bytes.size() / 2, bytes.size() - 9,
      bytes.size() - 8, bytes.size() - 4, bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    write_bytes(file.path, bytes.substr(0, cut));
    EXPECT_THROW(di::load_pair_model(file.path), desmine::RuntimeError)
        << "truncation at byte " << cut << " was not rejected";
  }
}

TEST(Serialize, BitFlippedArtifactAlwaysThrows) {
  const TempFile file("pair_bitflip.bin");
  const std::string bytes = make_pair_artifact(file.path);

  // Flip one random byte per round (fixed seed => reproducible failures).
  // Offsets 4..7 hold the version field and are excluded: a flip there can
  // legally downgrade the artifact to the pre-CRC v1/v2 format, which loads
  // without trailer verification by design.
  Rng rng(2024);
  for (int round = 0; round < 32; ++round) {
    std::size_t offset = 0;
    do {
      offset = rng.index(bytes.size());
    } while (offset >= 4 && offset < 8);
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(
        corrupt[offset] ^ static_cast<char>(rng.uniform_int(1, 255)));
    write_bytes(file.path, corrupt);
    EXPECT_THROW(di::load_pair_model(file.path), desmine::RuntimeError)
        << "byte flip at offset " << offset << " was not rejected";
  }
}

TEST(Serialize, CorruptFrameworkSnapshotThrows) {
  // The framework loader shares read_artifact_file: a flipped byte in a
  // saved snapshot must be caught by the CRC before any payload parsing.
  dd::PlantConfig pcfg;
  pcfg.num_components = 1;
  pcfg.sensors_per_component = 2;
  pcfg.num_popular = 0;
  pcfg.num_lazy = 0;
  pcfg.num_constant = 0;
  pcfg.days = 2;
  pcfg.minutes_per_day = 60;
  pcfg.anomalies.clear();
  pcfg.precursors = false;
  pcfg.seed = 9;
  const auto plant = dd::generate_plant(pcfg);

  dc::FrameworkConfig fcfg;
  fcfg.window.word_length = 5;
  fcfg.window.word_stride = 1;
  fcfg.window.sentence_length = 5;
  fcfg.window.sentence_stride = 5;
  fcfg.miner.translation.model.embedding_dim = 8;
  fcfg.miner.translation.model.hidden_dim = 8;
  fcfg.miner.translation.model.num_layers = 1;
  fcfg.miner.translation.model.dropout = 0.0f;
  fcfg.miner.translation.trainer.steps = 20;
  fcfg.miner.translation.trainer.batch_size = 4;
  fcfg.miner.seed = 3;
  dc::Framework fw(fcfg);
  fw.fit(plant.days_slice(0, 1), plant.days_slice(1, 1));

  const TempFile file("framework_corrupt.bin");
  di::save_framework(fw, file.path);
  // Flip a byte inside the first model edge's weight region — a position
  // guaranteed to be CRC-covered in the (default, v4) layout.
  std::size_t flip_at = 0;
  {
    const auto map = di::ArtifactMap::open(file.path);
    for (const di::EdgeEntry& e : map->edges()) {
      if (e.has_model) {
        flip_at = e.weights_off + e.weights_len / 2;
        break;
      }
    }
  }
  ASSERT_GT(flip_at, 0u);
  std::ifstream is(file.path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = buf.str();
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x40);
  write_bytes(file.path, bytes);
  EXPECT_THROW(di::load_framework(file.path, fcfg), desmine::RuntimeError);
}

TEST(Serialize, AtomicWriteLeavesExistingArtifactIntactOnFailure) {
  const TempFile file("pair_atomic.bin");
  const std::string bytes = make_pair_artifact(file.path);
  // Writing to a path whose parent directory vanished must throw and must
  // not disturb an existing artifact at a different path.
  EXPECT_THROW(
      di::write_artifact_file("/tmp/desmine_missing_dir/x/y.bin", "payload"),
      desmine::RuntimeError);
  auto back = di::load_pair_model(file.path);
  EXPECT_GT(back.src_vocab().size(), 0u);
}

TEST(Serialize, SaveUnfittedFrameworkThrows) {
  dc::Framework fw(dc::FrameworkConfig{});
  EXPECT_THROW(di::save_framework(fw, "/tmp/desmine_nope.bin"),
               desmine::PreconditionError);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW(di::load_framework("/tmp/desmine_does_not_exist.bin"),
               desmine::RuntimeError);
}

// ---------------------------------------------------------------------------
// Mapped (v4) model store: cross-version matrix, typed corruption errors,
// page sharing, heap fallback (DESIGN.md §15).
// ---------------------------------------------------------------------------

namespace {

/// One small fitted framework shared by the v4 tests (training dominates
/// test time; the artifact tests only need *a* graph with real models).
const dc::Framework& fitted_framework() {
  static const dc::Framework* fw = [] {
    dd::PlantConfig pcfg;
    pcfg.num_components = 2;
    pcfg.sensors_per_component = 2;
    pcfg.num_popular = 0;
    pcfg.num_lazy = 0;
    pcfg.num_constant = 0;
    pcfg.days = 4;
    pcfg.minutes_per_day = 180;
    pcfg.anomalies = {{3, {0}}};
    pcfg.precursors = false;
    pcfg.seed = 9;
    const auto plant = dd::generate_plant(pcfg);

    dc::FrameworkConfig fcfg;
    fcfg.window.word_length = 5;
    fcfg.window.word_stride = 1;
    fcfg.window.sentence_length = 5;
    fcfg.window.sentence_stride = 5;
    fcfg.miner.translation.model.embedding_dim = 12;
    fcfg.miner.translation.model.hidden_dim = 12;
    fcfg.miner.translation.model.num_layers = 1;
    fcfg.miner.translation.model.dropout = 0.0f;
    fcfg.miner.translation.trainer.steps = 60;
    fcfg.miner.translation.trainer.batch_size = 4;
    fcfg.miner.seed = 3;
    fcfg.detector.valid_lo = 0.0;
    fcfg.detector.valid_hi = 100.5;
    auto* out = new dc::Framework(fcfg);
    out->fit(plant.days_slice(0, 2), plant.days_slice(2, 1));
    return out;
  }();
  return *fw;
}

dc::MultivariateSeries v4_test_slice() {
  dd::PlantConfig pcfg;
  pcfg.num_components = 2;
  pcfg.sensors_per_component = 2;
  pcfg.num_popular = 0;
  pcfg.num_lazy = 0;
  pcfg.num_constant = 0;
  pcfg.days = 4;
  pcfg.minutes_per_day = 180;
  pcfg.anomalies = {{3, {0}}};
  pcfg.precursors = false;
  pcfg.seed = 9;
  return dd::generate_plant(pcfg).days_slice(3, 1);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// True when the CI heap-fallback job disables mmap process-wide; tests
/// that assert on the mapping itself adapt or skip.
bool forced_heap() {
  const char* v = std::getenv("DESMINE_FORCE_HEAP_FALLBACK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

}  // namespace

TEST(ArtifactV4, CrossVersionMatrixScoresBitIdentically) {
  // Every writable version must round-trip to bit-identical detection:
  // v1/v2 (no CRC), v3 (CRC trailer), v4 (mapped). IEEE-754 equality, not
  // tolerance — the weight bytes are the same bytes.
  const dc::Framework& fw = fitted_framework();
  const auto test_slice = v4_test_slice();
  const auto expect = fw.detect(test_slice);
  for (std::uint32_t version = 1; version <= di::kArtifactVersion; ++version) {
    const TempFile file("xver_v" + std::to_string(version) + ".bin");
    di::save_framework(fw, file.path, version);
    EXPECT_EQ(di::peek_artifact_version(file.path), version);
    dc::Framework loaded = di::load_framework(file.path, fw.config());
    const auto got = loaded.detect(test_slice);
    ASSERT_EQ(got.anomaly_scores.size(), expect.anomaly_scores.size())
        << "version " << version;
    for (std::size_t t = 0; t < expect.anomaly_scores.size(); ++t) {
      EXPECT_DOUBLE_EQ(got.anomaly_scores[t], expect.anomaly_scores[t])
          << "version " << version << " tick " << t;
    }
  }
}

TEST(ArtifactV4, MapExposesGraphStructure) {
  const dc::Framework& fw = fitted_framework();
  const TempFile file("v4_structure.bin");
  di::save_framework(fw, file.path);
  const auto map = di::ArtifactMap::open(file.path);
  EXPECT_EQ(map->mapped(), !forced_heap());
  EXPECT_EQ(map->sensor_names(), fw.graph().sensor_names());
  ASSERT_EQ(map->edges().size(), fw.graph().edges().size());
  EXPECT_EQ(map->encrypter().kept_sensors(), fw.encrypter().kept_sensors());
  EXPECT_EQ(map->window().word_length, fw.config().window.word_length);
  for (std::size_t i = 0; i < map->edges().size(); ++i) {
    const di::EdgeEntry& e = map->edges()[i];
    EXPECT_EQ(e.src, fw.graph().edges()[i].src);
    EXPECT_EQ(e.dst, fw.graph().edges()[i].dst);
    EXPECT_DOUBLE_EQ(e.bleu, fw.graph().edges()[i].bleu);
    if (e.has_model) {
      EXPECT_EQ(e.weights_off % di::kV4PageAlign, 0u);
      for (const di::ParamExtent& x : e.params) {
        EXPECT_EQ(x.off % di::kV4WeightAlign, 0u);
      }
    }
  }
}

TEST(ArtifactV4, TruncationRaisesTypedErrors) {
  const dc::Framework& fw = fitted_framework();
  const TempFile file("v4_truncate.bin");
  di::save_framework(fw, file.path);
  const std::string bytes = slurp(file.path);
  ASSERT_GT(bytes.size(), di::kV4HeaderSize);

  const std::vector<std::size_t> cuts = {0, 1, 16, di::kV4HeaderSize - 1,
                                         di::kV4HeaderSize, bytes.size() / 2,
                                         bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    write_bytes(file.path, bytes.substr(0, cut));
    try {
      di::ArtifactMap::open(file.path);
      FAIL() << "truncation at byte " << cut << " was not rejected";
    } catch (const di::ArtifactError& e) {
      EXPECT_EQ(e.section(), di::ArtifactError::Section::kTruncated)
          << "cut " << cut << ": " << e.what();
    }
  }
}

TEST(ArtifactV4, BitFlipsRaiseSectionTypedErrors) {
  const dc::Framework& fw = fitted_framework();
  const TempFile file("v4_bitflip.bin");
  di::save_framework(fw, file.path);
  const std::string clean = slurp(file.path);

  // Locate each section with a clean map, then corrupt them one at a time.
  std::size_t meta_at = 0, weights_at = 0, toc_at = 0;
  std::size_t flip_edge = 0;
  {
    const auto map = di::ArtifactMap::open(file.path);
    for (std::size_t i = 0; i < map->edges().size(); ++i) {
      const di::EdgeEntry& e = map->edges()[i];
      if (e.has_model) {
        flip_edge = i;
        meta_at = e.meta_off + e.meta_len / 2;
        weights_at = e.weights_off + 64;  // inside the first parameter
        break;
      }
    }
    toc_at = clean.size() - 8;  // inside the TOC (its tail is the last bytes)
  }
  ASSERT_GT(meta_at, 0u);
  ASSERT_GT(weights_at, 0u);

  const auto flipped = [&clean](std::size_t at) {
    std::string bytes = clean;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x01);
    return bytes;
  };

  // Header flip (inside the CRC-covered span): rejected at open.
  write_bytes(file.path, flipped(20));
  try {
    di::ArtifactMap::open(file.path);
    FAIL() << "header flip not rejected";
  } catch (const di::ArtifactError& e) {
    EXPECT_EQ(e.section(), di::ArtifactError::Section::kHeader);
  }

  // TOC flip: rejected at open.
  write_bytes(file.path, flipped(toc_at));
  try {
    di::ArtifactMap::open(file.path);
    FAIL() << "TOC flip not rejected";
  } catch (const di::ArtifactError& e) {
    EXPECT_EQ(e.section(), di::ArtifactError::Section::kToc);
  }

  // Meta flip: open succeeds (lazy), first materialization of that edge
  // throws kMeta; other edges stay servable.
  write_bytes(file.path, flipped(meta_at));
  {
    const auto map = di::ArtifactMap::open(file.path);
    try {
      map->materialize_edge(flip_edge);
      FAIL() << "meta flip not rejected";
    } catch (const di::ArtifactError& e) {
      EXPECT_EQ(e.section(), di::ArtifactError::Section::kMeta);
    }
  }

  // Weight-page flip: same lazy contract, kWeights.
  write_bytes(file.path, flipped(weights_at));
  {
    const auto map = di::ArtifactMap::open(file.path);
    try {
      map->materialize_edge(flip_edge);
      FAIL() << "weight flip not rejected";
    } catch (const di::ArtifactError& e) {
      EXPECT_EQ(e.section(), di::ArtifactError::Section::kWeights);
    }
  }
}

TEST(ArtifactV4, HeapFallbackIsBitIdentical) {
  const dc::Framework& fw = fitted_framework();
  const auto test_slice = v4_test_slice();
  const TempFile file("v4_heap.bin");
  di::save_framework(fw, file.path);

  di::ArtifactMapOptions opt;
  opt.force_heap = true;
  const auto map = di::ArtifactMap::open(file.path, opt);
  EXPECT_FALSE(map->mapped());
  dc::Framework loaded = map->materialize_framework(fw.config());
  const auto expect = fw.detect(test_slice);
  const auto got = loaded.detect(test_slice);
  ASSERT_EQ(got.anomaly_scores.size(), expect.anomaly_scores.size());
  for (std::size_t t = 0; t < expect.anomaly_scores.size(); ++t) {
    EXPECT_DOUBLE_EQ(got.anomaly_scores[t], expect.anomaly_scores[t]);
  }
}

TEST(ArtifactV4, MappedModelsRefuseTraining) {
  const dc::Framework& fw = fitted_framework();
  const TempFile file("v4_frozen.bin");
  di::save_framework(fw, file.path);
  const auto map = di::ArtifactMap::open(file.path);
  for (std::size_t i = 0; i < map->edges().size(); ++i) {
    if (!map->edges()[i].has_model) continue;
    const auto model = map->materialize_edge(i);
    EXPECT_FALSE(model->model().trainable());
    EXPECT_THROW(model->model().train_batch({}), desmine::PreconditionError);
    break;
  }
}

TEST(ArtifactV4, PairModelSidecarsStayStreamV3) {
  const TempFile file("v4_sidecar.bin");
  make_pair_artifact(file.path);
  EXPECT_EQ(di::peek_artifact_version(file.path), di::kStreamArtifactVersion);
}

#ifdef __linux__
namespace {

/// Sum one smaps field (kB) over every mapping of `path`.
std::size_t smaps_field_kb(const std::string& path, const std::string& field) {
  std::ifstream smaps("/proc/self/smaps");
  std::string line;
  bool in_target = false;
  std::size_t total = 0;
  while (std::getline(smaps, line)) {
    // Mapping headers look like "7f12...-7f34... r--s 00000000 08:01 ...";
    // field lines like "Shared_Clean:  4 kB". The address range in the first
    // token (and only there) contains '-'.
    const std::string first = line.substr(0, line.find(' '));
    if (first.find('-') != std::string::npos) {
      in_target = line.size() >= path.size() &&
                  line.compare(line.size() - path.size(), path.size(),
                               path) == 0;
      continue;
    }
    if (in_target && line.rfind(field + ":", 0) == 0) {
      std::istringstream fields(line.substr(field.size() + 1));
      std::size_t kb = 0;
      fields >> kb;
      total += kb;
    }
  }
  return total;
}

}  // namespace

TEST(ArtifactV4, TwoMapsShareCleanPages) {
  if (forced_heap()) GTEST_SKIP() << "mmap disabled via env";
  const dc::Framework& fw = fitted_framework();
  const TempFile file("v4_share.bin");
  di::save_framework(fw, file.path);

  const auto a = di::ArtifactMap::open(file.path);
  const auto b = di::ArtifactMap::open(file.path);
  ASSERT_TRUE(a->mapped());
  ASSERT_TRUE(b->mapped());
  // Touch every weight page through both maps (CRC sweep reads all bytes).
  for (std::size_t i = 0; i < a->edges().size(); ++i) {
    if (!a->edges()[i].has_model) continue;
    a->materialize_edge(i);
    b->materialize_edge(i);
  }
  // Read-only MAP_SHARED file pages: nothing may be private-dirty, and the
  // doubly-mapped weight pages must show up as shared in at least one
  // mapping — the kernel holds ONE physical copy for both maps.
  EXPECT_EQ(smaps_field_kb(file.path, "Private_Dirty"), 0u);
  EXPECT_GT(smaps_field_kb(file.path, "Shared_Clean"), 0u);
}
#endif  // __linux__
