// Round-trip tests for artifact serialization: matrices, vocabularies,
// translation models, relationship graphs, and whole-framework snapshots.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/framework.h"
#include "data/plant.h"
#include "io/serialize.h"
#include "util/error.h"
#include "util/rng.h"

namespace di = desmine::io;
namespace dc = desmine::core;
namespace dt = desmine::tensor;
namespace dx = desmine::text;
namespace dm = desmine::nmt;
namespace dd = desmine::data;
using desmine::util::Rng;

namespace {

/// Temp file path that cleans up on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_test_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Serialize, MatrixRoundTrip) {
  Rng rng(1);
  dt::Matrix m(5, 7);
  m.init_uniform(rng, 1.0f);
  std::stringstream ss;
  di::write_matrix(ss, m);
  const dt::Matrix back = di::read_matrix(ss);
  ASSERT_TRUE(back.same_shape(m));
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], m.data()[i]);
  }
}

TEST(Serialize, VocabularyRoundTripPreservesIds) {
  const auto v = dx::Vocabulary::build({{"zeta", "alpha", "mid"}});
  std::stringstream ss;
  di::write_vocabulary(ss, v);
  const auto back = di::read_vocabulary(ss);
  EXPECT_EQ(back.size(), v.size());
  for (std::size_t id = 0; id < v.size(); ++id) {
    EXPECT_EQ(back.token(static_cast<std::int32_t>(id)),
              v.token(static_cast<std::int32_t>(id)));
  }
  EXPECT_EQ(back.id("zeta"), v.id("zeta"));
}

TEST(Serialize, TranslationModelRoundTripSameOutputs) {
  dx::Corpus src = {{"sa", "sb", "sa", "sb"}, {"sb", "sa", "sb", "sa"}};
  dx::Corpus tgt = {{"ta", "tb", "ta", "tb"}, {"tb", "ta", "tb", "ta"}};
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 8;
  cfg.model.hidden_dim = 8;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 40;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);

  std::stringstream ss;
  di::write_translation_model(ss, model, cfg.model);
  auto back = di::read_translation_model(ss);

  for (const auto& sentence : src) {
    EXPECT_EQ(back.translate(sentence), model.translate(sentence));
  }
  EXPECT_DOUBLE_EQ(back.score(src, tgt).score, model.score(src, tgt).score);
}

TEST(Serialize, CorruptStreamThrows) {
  std::stringstream ss("not an artifact at all");
  EXPECT_THROW(di::read_matrix(ss), desmine::RuntimeError);
}

TEST(Serialize, EncrypterRoundTrip) {
  dc::MultivariateSeries series = {
      {"s1", {"ON", "OFF", "ON"}},
      {"s2", {"x", "x", "x"}},  // dropped
      {"s3", {"low", "high", "mid"}},
  };
  const auto enc = dc::SensorEncrypter::fit(series);
  std::stringstream ss;
  di::write_encrypter(ss, enc);
  const auto back = di::read_encrypter(ss);
  EXPECT_EQ(back.kept_sensors(), enc.kept_sensors());
  EXPECT_EQ(back.dropped_sensors(), enc.dropped_sensors());
  EXPECT_EQ(back.encode("s1", {"OFF", "ON", "???"}),
            enc.encode("s1", {"OFF", "ON", "???"}));
  EXPECT_EQ(back.cardinality("s3"), 3u);
}

TEST(Serialize, FrameworkSnapshotDetectsIdentically) {
  // Small pipeline: fit, snapshot, reload, compare detection output.
  dd::PlantConfig pcfg;
  pcfg.num_components = 2;
  pcfg.sensors_per_component = 2;
  pcfg.num_popular = 0;
  pcfg.num_lazy = 0;
  pcfg.num_constant = 1;
  pcfg.days = 4;
  pcfg.minutes_per_day = 180;
  pcfg.anomalies = {{3, {0}}};
  pcfg.precursors = false;
  pcfg.seed = 9;
  const auto plant = dd::generate_plant(pcfg);

  dc::FrameworkConfig fcfg;
  fcfg.window.word_length = 5;
  fcfg.window.word_stride = 1;
  fcfg.window.sentence_length = 5;
  fcfg.window.sentence_stride = 5;
  fcfg.miner.translation.model.embedding_dim = 12;
  fcfg.miner.translation.model.hidden_dim = 12;
  fcfg.miner.translation.model.num_layers = 1;
  fcfg.miner.translation.model.dropout = 0.0f;
  fcfg.miner.translation.trainer.steps = 60;
  fcfg.miner.translation.trainer.batch_size = 4;
  fcfg.miner.seed = 3;
  fcfg.detector.valid_lo = 0.0;
  fcfg.detector.valid_hi = 100.5;

  dc::Framework fw(fcfg);
  fw.fit(plant.days_slice(0, 2), plant.days_slice(2, 1));

  const TempFile file("framework.bin");
  di::save_framework(fw, file.path);
  dc::Framework loaded = di::load_framework(file.path, fcfg);

  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.graph().sensor_count(), fw.graph().sensor_count());
  EXPECT_EQ(loaded.graph().edges().size(), fw.graph().edges().size());
  for (std::size_t i = 0; i < fw.graph().edges().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.graph().edges()[i].bleu,
                     fw.graph().edges()[i].bleu);
  }

  const auto test_slice = plant.days_slice(3, 1);
  const auto r1 = fw.detect(test_slice);
  const auto r2 = loaded.detect(test_slice);
  ASSERT_EQ(r1.anomaly_scores.size(), r2.anomaly_scores.size());
  for (std::size_t t = 0; t < r1.anomaly_scores.size(); ++t) {
    EXPECT_DOUBLE_EQ(r1.anomaly_scores[t], r2.anomaly_scores[t]);
  }
}

namespace {

/// Tiny trained pair-model artifact on disk; the corruption tests below
/// mutate copies of it. Pair models go through the same crash-safe
/// write_artifact_file / read_artifact_file path as framework snapshots.
std::string make_pair_artifact(const std::string& path) {
  dx::Corpus src = {{"sa", "sb", "sa", "sb"}, {"sb", "sa", "sb", "sa"}};
  dx::Corpus tgt = {{"ta", "tb", "ta", "tb"}, {"tb", "ta", "tb", "ta"}};
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 8;
  cfg.model.hidden_dim = 8;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 30;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);
  di::save_pair_model(path, model, cfg.model);
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(Serialize, PairModelArtifactRoundTrip) {
  const TempFile file("pair_roundtrip.bin");
  const std::string bytes = make_pair_artifact(file.path);
  ASSERT_GT(bytes.size(), 16u);  // header + payload + CRC trailer
  auto back = di::load_pair_model(file.path);
  EXPECT_GT(back.src_vocab().size(), 0u);
}

TEST(Serialize, TruncatedArtifactAlwaysThrows) {
  const TempFile file("pair_truncate.bin");
  const std::string bytes = make_pair_artifact(file.path);

  // Truncation points: empty file, mid-magic, exactly the header, mid-body,
  // up to each byte of the CRC trailer. Every one must raise RuntimeError —
  // never a crash, never a silently short model.
  const std::vector<std::size_t> cuts = {
      0, 1, 4, 7, 8, bytes.size() / 2, bytes.size() - 9,
      bytes.size() - 8, bytes.size() - 4, bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    write_bytes(file.path, bytes.substr(0, cut));
    EXPECT_THROW(di::load_pair_model(file.path), desmine::RuntimeError)
        << "truncation at byte " << cut << " was not rejected";
  }
}

TEST(Serialize, BitFlippedArtifactAlwaysThrows) {
  const TempFile file("pair_bitflip.bin");
  const std::string bytes = make_pair_artifact(file.path);

  // Flip one random byte per round (fixed seed => reproducible failures).
  // Offsets 4..7 hold the version field and are excluded: a flip there can
  // legally downgrade the artifact to the pre-CRC v1/v2 format, which loads
  // without trailer verification by design.
  Rng rng(2024);
  for (int round = 0; round < 32; ++round) {
    std::size_t offset = 0;
    do {
      offset = rng.index(bytes.size());
    } while (offset >= 4 && offset < 8);
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(
        corrupt[offset] ^ static_cast<char>(rng.uniform_int(1, 255)));
    write_bytes(file.path, corrupt);
    EXPECT_THROW(di::load_pair_model(file.path), desmine::RuntimeError)
        << "byte flip at offset " << offset << " was not rejected";
  }
}

TEST(Serialize, CorruptFrameworkSnapshotThrows) {
  // The framework loader shares read_artifact_file: a flipped byte in a
  // saved snapshot must be caught by the CRC before any payload parsing.
  dd::PlantConfig pcfg;
  pcfg.num_components = 1;
  pcfg.sensors_per_component = 2;
  pcfg.num_popular = 0;
  pcfg.num_lazy = 0;
  pcfg.num_constant = 0;
  pcfg.days = 2;
  pcfg.minutes_per_day = 60;
  pcfg.anomalies.clear();
  pcfg.precursors = false;
  pcfg.seed = 9;
  const auto plant = dd::generate_plant(pcfg);

  dc::FrameworkConfig fcfg;
  fcfg.window.word_length = 5;
  fcfg.window.word_stride = 1;
  fcfg.window.sentence_length = 5;
  fcfg.window.sentence_stride = 5;
  fcfg.miner.translation.model.embedding_dim = 8;
  fcfg.miner.translation.model.hidden_dim = 8;
  fcfg.miner.translation.model.num_layers = 1;
  fcfg.miner.translation.model.dropout = 0.0f;
  fcfg.miner.translation.trainer.steps = 20;
  fcfg.miner.translation.trainer.batch_size = 4;
  fcfg.miner.seed = 3;
  dc::Framework fw(fcfg);
  fw.fit(plant.days_slice(0, 1), plant.days_slice(1, 1));

  const TempFile file("framework_corrupt.bin");
  di::save_framework(fw, file.path);
  std::ifstream is(file.path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = buf.str();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_bytes(file.path, bytes);
  EXPECT_THROW(di::load_framework(file.path, fcfg), desmine::RuntimeError);
}

TEST(Serialize, AtomicWriteLeavesExistingArtifactIntactOnFailure) {
  const TempFile file("pair_atomic.bin");
  const std::string bytes = make_pair_artifact(file.path);
  // Writing to a path whose parent directory vanished must throw and must
  // not disturb an existing artifact at a different path.
  EXPECT_THROW(
      di::write_artifact_file("/tmp/desmine_missing_dir/x/y.bin", "payload"),
      desmine::RuntimeError);
  auto back = di::load_pair_model(file.path);
  EXPECT_GT(back.src_vocab().size(), 0u);
}

TEST(Serialize, SaveUnfittedFrameworkThrows) {
  dc::Framework fw(dc::FrameworkConfig{});
  EXPECT_THROW(di::save_framework(fw, "/tmp/desmine_nope.bin"),
               desmine::PreconditionError);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW(di::load_framework("/tmp/desmine_does_not_exist.bin"),
               desmine::RuntimeError);
}
