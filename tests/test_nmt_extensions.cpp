// Tests for the NMT extensions: beam-search decoding, dot-attention variant
// (including its gradient check), LR decay, and dev-based early stopping.
#include <gtest/gtest.h>

#include "nmt/seq2seq.h"
#include "nmt/trainer.h"
#include "nmt/translation.h"
#include "nn/gradcheck.h"
#include "util/error.h"
#include "util/rng.h"

namespace dm = desmine::nmt;
namespace dx = desmine::text;
using desmine::util::Rng;

namespace {

dm::Seq2SeqConfig tiny_config() {
  dm::Seq2SeqConfig cfg;
  cfg.embedding_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  cfg.max_decode_length = 16;
  return cfg;
}

void make_corpus(std::size_t sentences, std::size_t length, dx::Corpus& src,
                 dx::Corpus& tgt, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> sw = {"sa", "sb", "sc", "sd"};
  const std::vector<std::string> tw = {"ta", "tb", "tc", "td"};
  for (std::size_t k = 0; k < sentences; ++k) {
    dx::Sentence s, t;
    for (std::size_t i = 0; i < length; ++i) {
      const std::size_t w = rng.index(sw.size());
      s.push_back(sw[w]);
      t.push_back(tw[w]);
    }
    src.push_back(s);
    tgt.push_back(t);
  }
}

}  // namespace

// ------------------------------------------------------------ beam search --

TEST(BeamSearch, WidthOneMatchesGreedy) {
  dx::Corpus src, tgt;
  make_corpus(64, 5, src, tgt, 1);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 400;
  cfg.trainer.batch_size = 8;
  cfg.trainer.lr = 0.02f;
  auto model = dm::train_translation_model(src, tgt, cfg, 3);

  for (std::size_t s = 0; s < 8; ++s) {
    const auto ids = model.src_vocab().encode(src[s]);
    EXPECT_EQ(model.model().translate_beam(ids, 1), model.model().translate(ids))
        << "sentence " << s;
  }
}

TEST(BeamSearch, WiderBeamNeverHurtsTrivially) {
  dx::Corpus src, tgt;
  make_corpus(96, 5, src, tgt, 2);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 700;
  cfg.trainer.batch_size = 12;
  cfg.trainer.lr = 0.02f;
  auto model = dm::train_translation_model(src, tgt, cfg, 7);

  dx::Corpus test_src, test_tgt;
  make_corpus(16, 5, test_src, test_tgt, 5);
  dx::Corpus greedy_out, beam_out;
  for (const auto& s : test_src) {
    const auto ids = model.src_vocab().encode(s);
    greedy_out.push_back(model.tgt_vocab().decode(model.model().translate(ids)));
    beam_out.push_back(
        model.tgt_vocab().decode(model.model().translate_beam(ids, 4)));
  }
  const double greedy_bleu =
      dx::corpus_bleu(greedy_out, test_tgt).score;
  const double beam_bleu = dx::corpus_bleu(beam_out, test_tgt).score;
  // Beam search optimizes sequence log-prob; on a near-deterministic task it
  // should be at least competitive with greedy.
  EXPECT_GE(beam_bleu, greedy_bleu - 5.0);
}

TEST(BeamSearch, RespectsMaxLengthAndValidatesArgs) {
  dx::Corpus src = {{"a", "b", "a", "b"}};
  dx::Corpus tgt = {{"x", "y", "x", "y"}};
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.model.max_decode_length = 3;
  cfg.trainer.steps = 5;
  cfg.trainer.batch_size = 1;
  auto model = dm::train_translation_model(src, tgt, cfg, 3);
  const auto ids = model.src_vocab().encode(src[0]);
  EXPECT_LE(model.model().translate_beam(ids, 3).size(), 3u);
  EXPECT_THROW(model.model().translate_beam({}, 2),
               desmine::PreconditionError);
  EXPECT_THROW(model.model().translate_beam(ids, 0),
               desmine::PreconditionError);
}

// --------------------------------------------------------- dot attention ---

TEST(DotAttention, TrainsAndGradChecks) {
  dm::Seq2SeqConfig cfg = tiny_config();
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.num_layers = 2;
  cfg.init_scale = 0.4f;
  cfg.attention = desmine::nn::AttentionScore::kDot;
  dm::Seq2SeqModel model(7, 6, cfg, Rng(6));

  const std::vector<dm::EncodedPair> pairs = {
      {{4, 5, 6, 4}, {4, 5, 4}},
      {{5, 5, 4, 6}, {5, 4, 5}},
  };
  std::vector<const dm::EncodedPair*> batch = {&pairs[0], &pairs[1]};
  auto loss_fn = [&](bool accumulate) {
    return accumulate ? model.train_batch(batch) : model.evaluate_loss(batch);
  };
  const auto report = desmine::nn::gradient_check(model.params(), loss_fn, 4,
                                                  1e-2);
  EXPECT_LT(report.max_rel_error, 3e-2) << report.worst_param;
}

TEST(DotAttention, LearnsSubstitutionTask) {
  dx::Corpus src, tgt;
  make_corpus(96, 5, src, tgt, 9);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.model.attention = desmine::nn::AttentionScore::kDot;
  cfg.trainer.steps = 800;
  cfg.trainer.batch_size = 12;
  cfg.trainer.lr = 0.02f;
  auto model = dm::train_translation_model(src, tgt, cfg, 10);
  dx::Corpus test_src, test_tgt;
  make_corpus(16, 5, test_src, test_tgt, 11);
  EXPECT_GT(model.score(test_src, test_tgt).score, 70.0);
}

// ----------------------------------------------------------- trainer -------

TEST(Trainer, LrDecaySchedule) {
  dx::Corpus src, tgt;
  make_corpus(32, 4, src, tgt, 12);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(13));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig cfg;
  cfg.steps = 60;
  cfg.batch_size = 4;
  cfg.lr = 0.02f;
  cfg.lr_decay_start = 20;
  cfg.lr_decay_every = 20;
  // Decay only changes optimizer internals; verify training still completes
  // and the loss is finite/decreasing overall.
  const auto history = dm::train(model, pairs, cfg, Rng(14));
  EXPECT_EQ(history.steps_run, 60u);
  EXPECT_LT(history.final_loss, history.losses.front());
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  dx::Corpus src, tgt;
  make_corpus(32, 4, src, tgt, 15);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(16));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  // Dev set from a *different* mapping: dev loss cannot improve for long,
  // so patience must fire well before the step budget.
  dx::Corpus dev_src, dev_tgt_wrong;
  make_corpus(8, 4, dev_src, dev_tgt_wrong, 17);
  for (auto& sentence : dev_tgt_wrong) {
    for (auto& word : sentence) word = "ta";  // degenerate references
  }
  const auto dev_pairs =
      dm::encode_pairs(sv, tv, dev_src, dev_tgt_wrong);

  dm::TrainerConfig cfg;
  cfg.steps = 2000;
  cfg.batch_size = 4;
  cfg.lr = 0.02f;
  cfg.eval_every = 10;
  cfg.patience = 3;
  const auto history = dm::train_with_dev(model, pairs, dev_pairs, cfg,
                                          Rng(18));
  EXPECT_LT(history.steps_run, 2000u) << "early stopping never fired";
  EXPECT_FALSE(history.dev_losses.empty());
  EXPECT_GT(history.best_dev_loss, 0.0);
}

TEST(Trainer, DevEvaluationRecordsHistory) {
  dx::Corpus src, tgt;
  make_corpus(32, 4, src, tgt, 19);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(20));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig cfg;
  cfg.steps = 40;
  cfg.batch_size = 4;
  cfg.eval_every = 10;
  cfg.patience = 100;  // never stop early
  const auto history = dm::train_with_dev(model, pairs, pairs, cfg, Rng(21));
  ASSERT_EQ(history.dev_losses.size(), 4u);
  EXPECT_EQ(history.dev_losses.front().first, 10u);
  EXPECT_EQ(history.dev_losses.back().first, 40u);
  // Training on the dev set itself: best dev loss improves over the first.
  EXPECT_LE(history.best_dev_loss, history.dev_losses.front().second);
}

TEST(Trainer, EarlyStoppingRequiresDevCorpus) {
  dx::Corpus src, tgt;
  make_corpus(8, 4, src, tgt, 22);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(23));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);
  dm::TrainerConfig cfg;
  cfg.eval_every = 5;
  EXPECT_THROW(dm::train_with_dev(model, pairs, {}, cfg, Rng(24)),
               desmine::PreconditionError);
}
