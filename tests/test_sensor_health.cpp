// Tests for the per-sensor health state machine driving degraded-mode
// detection: dropout, flooding, opt-in staleness, and hysteresis
// re-admission.
#include <gtest/gtest.h>

#include "robust/sensor_health.h"
#include "util/error.h"

using desmine::robust::HealthConfig;
using desmine::robust::SensorHealthTracker;
using desmine::robust::SensorState;

namespace {

SensorHealthTracker make_tracker(HealthConfig cfg) {
  return SensorHealthTracker({"a", "b"}, cfg);
}

SensorHealthTracker::Observation present(char value, bool unknown = false) {
  return {true, unknown, value};
}

constexpr SensorHealthTracker::Observation kMissing{false, false, 0};

}  // namespace

TEST(SensorHealth, StartsHealthyAndStaysHealthyOnCleanFeed) {
  auto tracker = make_tracker({});
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(tracker.observe(0, present(t % 2 == 0 ? 'x' : 'y')),
              SensorState::kHealthy);
  }
  EXPECT_EQ(tracker.unhealthy_count(), 0u);
  EXPECT_TRUE(tracker.unhealthy_sensors().empty());
}

TEST(SensorHealth, DropsAfterConsecutiveMissingTicks) {
  HealthConfig cfg;
  cfg.drop_after_missing = 3;
  auto tracker = make_tracker(cfg);
  tracker.observe(0, present('x'));
  EXPECT_EQ(tracker.observe(0, kMissing), SensorState::kHealthy);
  EXPECT_EQ(tracker.observe(0, kMissing), SensorState::kHealthy);
  EXPECT_EQ(tracker.observe(0, kMissing), SensorState::kDropped);
  EXPECT_FALSE(tracker.healthy(0));
  // The other sensor is unaffected.
  EXPECT_TRUE(tracker.healthy(1));
  EXPECT_EQ(tracker.unhealthy_sensors(), std::vector<std::size_t>{0});
}

TEST(SensorHealth, SparseGapsBelowThresholdNeverDrop) {
  HealthConfig cfg;
  cfg.drop_after_missing = 3;
  auto tracker = make_tracker(cfg);
  for (int t = 0; t < 50; ++t) {
    // Two-tick gaps, always interrupted by a real value.
    tracker.observe(0, kMissing);
    tracker.observe(0, kMissing);
    EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kHealthy) << t;
  }
}

TEST(SensorHealth, ReadmissionNeedsFullCleanStreak) {
  HealthConfig cfg;
  cfg.drop_after_missing = 2;
  cfg.readmit_after = 4;
  auto tracker = make_tracker(cfg);
  tracker.observe(0, kMissing);
  ASSERT_EQ(tracker.observe(0, kMissing), SensorState::kDropped);

  // Three clean ticks, then another dropout: streak resets.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kDropped);
  }
  tracker.observe(0, kMissing);
  tracker.observe(0, kMissing);  // dropped again
  // Now a full clean streak re-admits on exactly the 4th clean tick.
  EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kDropped);
  EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kDropped);
  EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kDropped);
  EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kHealthy);
}

TEST(SensorHealth, FloodingOnHighUnkRateAndRecovery) {
  HealthConfig cfg;
  cfg.max_unk_rate = 0.5;
  cfg.unk_window = 8;
  cfg.min_unk_samples = 4;
  cfg.readmit_after = 2;
  auto tracker = make_tracker(cfg);
  // Four straight <unk> ticks: rate 4/4 >= 0.5 once min samples reached.
  tracker.observe(0, present('?', true));
  tracker.observe(0, present('?', true));
  tracker.observe(0, present('?', true));
  EXPECT_EQ(tracker.observe(0, present('?', true)), SensorState::kFlooding);

  // Known values push the rate below 0.5; once the condition clears, the
  // clean streak re-admits.
  SensorState state = SensorState::kFlooding;
  for (int i = 0; i < 16; ++i) {
    state = tracker.observe(0, present('x'));
    if (state == SensorState::kHealthy) break;
  }
  EXPECT_EQ(state, SensorState::kHealthy);
}

TEST(SensorHealth, SingleLeadingUnkDoesNotFlood) {
  HealthConfig cfg;
  cfg.max_unk_rate = 0.5;
  cfg.unk_window = 8;
  cfg.min_unk_samples = 4;
  auto tracker = make_tracker(cfg);
  // One unseen state, then normal traffic: rate 1/4 < 0.5 at min samples.
  EXPECT_EQ(tracker.observe(0, present('?', true)), SensorState::kHealthy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kHealthy) << i;
  }
}

TEST(SensorHealth, StaleIsOptIn) {
  // Default stale_after = 0: a constant sensor never goes stale (many real
  // sensors are legitimately lazy).
  auto lax = make_tracker({});
  for (int t = 0; t < 200; ++t) {
    EXPECT_EQ(lax.observe(0, present('x')), SensorState::kHealthy);
  }

  HealthConfig cfg;
  cfg.stale_after = 5;
  cfg.readmit_after = 2;
  auto strict = make_tracker(cfg);
  SensorState state = SensorState::kHealthy;
  for (int t = 0; t < 6; ++t) state = strict.observe(0, present('x'));
  EXPECT_EQ(state, SensorState::kStale);
  // A change of value clears the condition; hysteresis then re-admits.
  EXPECT_EQ(strict.observe(0, present('y')), SensorState::kStale);
  EXPECT_EQ(strict.observe(0, present('z')), SensorState::kHealthy);
}

TEST(SensorHealth, GapKeepsChangeClockRunning) {
  HealthConfig cfg;
  cfg.stale_after = 4;
  cfg.drop_after_missing = 10;  // stay below the dropout threshold
  auto tracker = make_tracker(cfg);
  tracker.observe(0, present('x'));
  // Stuck at 'x' across a gap: the gap ticks still count toward staleness.
  tracker.observe(0, kMissing);
  tracker.observe(0, kMissing);
  tracker.observe(0, kMissing);
  EXPECT_EQ(tracker.observe(0, present('x')), SensorState::kStale);
}

TEST(SensorHealth, DroppedTakesPrecedenceOverFlooding) {
  HealthConfig cfg;
  cfg.drop_after_missing = 2;
  cfg.max_unk_rate = 0.1;
  cfg.unk_window = 4;
  cfg.min_unk_samples = 2;
  auto tracker = make_tracker(cfg);
  tracker.observe(0, present('?', true));
  tracker.observe(0, present('?', true));  // flooding
  ASSERT_EQ(tracker.state(0), SensorState::kFlooding);
  tracker.observe(0, kMissing);
  EXPECT_EQ(tracker.observe(0, kMissing), SensorState::kDropped);
}

TEST(SensorHealth, ValidatesConfigAndIndices) {
  HealthConfig bad;
  bad.drop_after_missing = 0;
  EXPECT_THROW(make_tracker(bad), desmine::PreconditionError);
  bad = {};
  bad.unk_window = 0;
  EXPECT_THROW(make_tracker(bad), desmine::PreconditionError);
  bad = {};
  bad.readmit_after = 0;
  EXPECT_THROW(make_tracker(bad), desmine::PreconditionError);
  bad = {};
  bad.max_unk_rate = 1.5;
  EXPECT_THROW(make_tracker(bad), desmine::PreconditionError);

  auto tracker = make_tracker({});
  EXPECT_THROW(tracker.observe(2, present('x')), desmine::PreconditionError);
  EXPECT_THROW(tracker.state(2), desmine::PreconditionError);
  EXPECT_EQ(tracker.sensor_count(), 2u);
  EXPECT_EQ(tracker.name(0), "a");
  EXPECT_EQ(tracker.name(1), "b");
}

TEST(SensorHealth, StateNamesRoundTrip) {
  EXPECT_EQ(desmine::robust::to_string(SensorState::kHealthy), "healthy");
  EXPECT_EQ(desmine::robust::to_string(SensorState::kStale), "stale");
  EXPECT_EQ(desmine::robust::to_string(SensorState::kDropped), "dropped");
  EXPECT_EQ(desmine::robust::to_string(SensorState::kFlooding), "flooding");
}
