// Tests for the telemetry plane (DESIGN.md §12): Prometheus text exposition
// (name sanitization, label escaping, cumulative `le` buckets terminated by
// +Inf, sliding-window summaries), SlidingHistogram epoch rotation, format
// validity under concurrent recording, the embedded HTTP listener, and
// end-to-end window traces through a live SessionManager — every scheduled
// window's trace must span queue -> batch_form -> decode -> reorder with no
// orphaned or unfinished spans.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.h"
#include "obs/http_exposition.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/session_manager.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dc = desmine::core;
namespace ds = desmine::serve;
namespace obs = desmine::obs;
namespace du = desmine::util;
using desmine::util::Rng;

namespace {

// --- Prometheus text-format lint -----------------------------------------

bool name_head(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool name_tail(char c) {
  return name_head(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool valid_metric_name(const std::string& name) {
  if (name.empty() || !name_head(name[0])) return false;
  for (const char c : name) {
    if (!name_tail(c)) return false;
  }
  return true;
}

/// Returns "" when `body` parses as Prometheus text format 0.0.4, otherwise
/// "line N: why". Purely syntactic (no bucket/count cross-checks), so it is
/// also valid on scrapes taken while writers are still recording.
std::string lint_prometheus(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  std::size_t n = 0;
  const auto fail = [&](const std::string& why) {
    return "line " + std::to_string(n) + ": " + why + " [" + line + "]";
  };
  while (std::getline(in, line)) {
    ++n;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, directive, name, kind;
      meta >> hash >> directive >> name >> kind;
      if (directive == "TYPE") {
        static const std::set<std::string> kinds = {
            "counter", "gauge", "histogram", "summary", "untyped"};
        if (!valid_metric_name(name)) return fail("bad TYPE metric name");
        if (kinds.count(kind) == 0) return fail("unknown TYPE kind");
      } else if (directive != "HELP") {
        return fail("unknown comment directive");
      }
      continue;
    }
    std::size_t i = 0;
    if (!name_head(line[i])) return fail("bad metric name start");
    while (i < line.size() && name_tail(line[i])) ++i;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        if (!name_head(line[i])) return fail("bad label name");
        while (i < line.size() && name_tail(line[i])) ++i;
        if (i >= line.size() || line[i] != '=') return fail("expected '='");
        ++i;
        if (i >= line.size() || line[i] != '"') return fail("expected '\"'");
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return fail("dangling escape");
            const char e = line[i + 1];
            if (e != '\\' && e != '"' && e != 'n') return fail("bad escape");
            i += 2;
          } else {
            ++i;
          }
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail("expected single space before value");
    }
    const std::string value = line.substr(i + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      try {
        std::size_t used = 0;
        (void)std::stod(value, &used);
        if (used != value.size()) return fail("trailing junk after value");
      } catch (const std::exception&) {
        return fail("unparseable sample value");
      }
    }
  }
  return "";
}

/// The `<base>_bucket{le="..."} v` samples of one histogram, in emission
/// order, with le parsed ("+Inf" -> infinity).
std::vector<std::pair<double, double>> bucket_samples(const std::string& body,
                                                      const std::string& base) {
  std::vector<std::pair<double, double>> out;
  const std::string prefix = base + "_bucket{le=\"";
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find('"', prefix.size());
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const double upper = le == "+Inf"
                             ? std::numeric_limits<double>::infinity()
                             : std::stod(le);
    out.emplace_back(upper, std::stod(line.substr(line.rfind(' ') + 1)));
  }
  return out;
}

/// Value of the unlabelled sample `name v`, when present.
std::optional<double> sample_value(const std::string& body,
                                   const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) != 0) continue;
    return std::stod(line.substr(name.size() + 1));
  }
  return std::nullopt;
}

// --- Serving fixture (shape mirrors test_serve) ---------------------------

/// Coupled pair (follow repeats lead 2 ticks later) plus a noise sensor.
dc::MultivariateSeries make_series(std::size_t ticks, std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    lead.push_back(state ? "ON" : "OFF");
    follow.push_back((t >= 2 && lead[t - 2] == "ON") ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          // Telemetry tests exercise plumbing, not model quality, and the
          // wide valid band below keeps every edge valid regardless of BLEU
          // — so training can be brief.
          c.miner.translation.trainer.steps = 60;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(300, 1), make_series(150, 2));
  }

  ds::ServeConfig serve_config() const {
    ds::ServeConfig s;
    s.detector = cfg.detector;
    s.workers = 2;
    s.max_batch = 8;
    // Tests ingest a whole series before polling; keep the budget above the
    // window count so blocking backpressure never engages.
    s.limits.max_pending_windows = 512;
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

// --- Exposition formatting ------------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("serve.window.latency_ms"),
            "desmine_serve_window_latency_ms");
  EXPECT_EQ(obs::prometheus_name("miner.pair.retries"),
            "desmine_miner_pair_retries");
  // Every character outside [A-Za-z0-9_] collapses to '_'.
  EXPECT_EQ(obs::prometheus_name("weird-name+x/y z"),
            "desmine_weird_name_x_y_z");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheus_escape_label("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prometheus, FormatLintOnHandBuiltRegistry) {
  obs::RegistrySnapshot reg;
  reg.counters["serve.ticks"] = 42;
  reg.gauges["serve.sessions"] = 3.0;
  obs::Histogram h;
  for (const double v : {0.5, 1.0, 2.0, 3.0, 70.0, 500.0, 500.0}) h.record(v);
  reg.histograms["serve.window.latency_ms"] = h.snapshot();

  obs::SlidingHistogram sliding(60.0, 6);
  for (int i = 1; i <= 10; ++i) sliding.record(static_cast<double>(i));
  std::map<std::string, obs::Histogram::Snapshot> recent;
  recent["serve.window.latency_ms"] = sliding.snapshot();

  const std::string text = obs::to_prometheus(reg, recent);
  EXPECT_EQ(lint_prometheus(text), "") << text;

  // Counter -> _total, gauge as-is, sliding -> _recent summary.
  EXPECT_EQ(sample_value(text, "desmine_serve_ticks_total"), 42.0);
  EXPECT_EQ(sample_value(text, "desmine_serve_sessions"), 3.0);
  EXPECT_NE(text.find("# TYPE desmine_serve_window_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE desmine_serve_window_latency_ms_recent summary"),
            std::string::npos);
  EXPECT_NE(
      text.find("desmine_serve_window_latency_ms_recent{quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_EQ(
      sample_value(text, "desmine_serve_window_latency_ms_recent_count"),
      10.0);
}

TEST(Prometheus, HistogramBucketsCumulativeAndInfTerminated) {
  obs::RegistrySnapshot reg;
  obs::Histogram h;
  for (const double v : {0.5, 1.0, 2.0, 3.0, 70.0, 500.0, 500.0}) h.record(v);
  reg.histograms["lat"] = h.snapshot();
  const std::string text = obs::to_prometheus(reg, {});

  const auto buckets = bucket_samples(text, "desmine_lat");
  ASSERT_GE(buckets.size(), 2u);
  for (std::size_t b = 1; b < buckets.size(); ++b) {
    EXPECT_LT(buckets[b - 1].first, buckets[b].first) << "le not increasing";
    EXPECT_LE(buckets[b - 1].second, buckets[b].second)
        << "cumulative counts not monotone";
  }
  EXPECT_TRUE(std::isinf(buckets.back().first)) << "missing +Inf bucket";
  EXPECT_EQ(buckets.back().second, 7.0);
  EXPECT_EQ(sample_value(text, "desmine_lat_count"), 7.0);
  EXPECT_EQ(sample_value(text, "desmine_lat_sum"), 1076.5);
}

// --- Sliding histograms ---------------------------------------------------

TEST(SlidingHistogramTest, EpochRotationAgesSamplesOut) {
  using Clock = obs::SlidingHistogram::Clock;
  obs::SlidingHistogram h(6.0, 3);  // 3 epochs of 2 s
  EXPECT_DOUBLE_EQ(h.window_s(), 6.0);
  EXPECT_EQ(h.epochs(), 3u);

  // Anchor well past the construction instant so epoch arithmetic never
  // clamps at the left edge.
  const Clock::time_point t0 = Clock::now() + std::chrono::hours(1);
  const auto s = [](double secs) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(secs));
  };

  h.record_at(t0, 5.0);
  obs::Histogram::Snapshot snap = h.snapshot_at(t0);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);

  h.record_at(t0 + s(3.0), 50.0);  // next epoch
  snap = h.snapshot_at(t0 + s(3.0));
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  EXPECT_DOUBLE_EQ(snap.sum, 55.0);

  // 6.5 s after t0 the first epoch has left the 6 s window; the 50 is still
  // inside it.
  snap = h.snapshot_at(t0 + s(6.5));
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 50.0);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);

  // Far past the window: empty.
  snap = h.snapshot_at(t0 + s(20.0));
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);

  // A record in an epoch whose ring slot held stale data must recycle the
  // slot, not merge with it (t0+12s maps to the same slot as t0 with 3
  // epochs of 2 s).
  h.record_at(t0 + s(12.0), 7.0);
  snap = h.snapshot_at(t0 + s(12.0));
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 7.0);
}

TEST(TelemetryRegistryTest, StableReferencesAndSnapshot) {
  obs::TelemetryRegistry reg;
  reg.configure(30.0, 5);
  obs::SlidingHistogram& a = reg.sliding("x");
  EXPECT_EQ(&a, &reg.sliding("x"));
  EXPECT_DOUBLE_EQ(a.window_s(), 30.0);
  EXPECT_EQ(a.epochs(), 5u);
  a.record(1.0);
  a.record(2.0);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps.at("x").count, 2u);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

// --- Scrape validity under concurrent recording ---------------------------

TEST(Telemetry, ScrapeStaysWellFormedWhileRecording) {
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 2000;
  du::ThreadPool pool(kWriters);
  std::vector<std::future<void>> futures;
  for (int w = 0; w < kWriters; ++w) {
    futures.push_back(pool.submit([] {
      obs::Histogram& h =
          obs::metrics().histogram("telemetry.test.concurrent");
      obs::SlidingHistogram& s =
          obs::telemetry().sliding("telemetry.test.concurrent");
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        const double v = static_cast<double>(i % 17) + 0.5;
        h.record(v);
        s.record(v);
      }
    }));
  }

  const auto still_running = [&] {
    for (auto& f : futures) {
      if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        return true;
      }
    }
    return false;
  };
  std::size_t scrapes = 0;
  do {
    const std::string text = obs::scrape_prometheus();
    ASSERT_EQ(lint_prometheus(text), "");
    ++scrapes;
  } while (still_running());
  EXPECT_GE(scrapes, 1u);

  const auto drained = du::ThreadPool::wait_all(futures);
  ASSERT_EQ(drained.failed, 0u) << drained.first_error;

  // Quiesced totals are exact.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter;
  EXPECT_EQ(
      obs::metrics().histogram("telemetry.test.concurrent").snapshot().count,
      expected);
  EXPECT_EQ(
      obs::telemetry().sliding("telemetry.test.concurrent").snapshot().count,
      expected);
}

// --- HTTP exposition + live SessionManager --------------------------------

TEST(ServeTelemetry, EndToEndScrapeOverHttp) {
  Fixture& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  const dc::MultivariateSeries series = make_series(60, 7);
  for (std::size_t t = 0; t < series.front().events.size(); ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  std::size_t polled = 0;
  while (manager.poll(id)) ++polled;
  ASSERT_GT(polled, 5u);

  obs::HttpExposition http;
  obs::mount_telemetry(http, [&manager] {
    return std::string("{\"uptime_s\": ") +
           std::to_string(manager.uptime_s()) + "}";
  });
  http.start(0);  // ephemeral port: no fixed-port race in CI
  ASSERT_TRUE(http.running());
  ASSERT_NE(http.port(), 0);

  const obs::HttpGetResult scrape = obs::http_get(http.port(), "/metrics");
  ASSERT_EQ(scrape.status, 200);
  EXPECT_EQ(lint_prometheus(scrape.body), "");
  // Serving cumulatives, the per-stage breakdown, and the sliding p99 must
  // all be on the wire.
  const auto scored =
      sample_value(scrape.body, "desmine_serve_windows_scored_total");
  ASSERT_TRUE(scored.has_value());
  EXPECT_GE(*scored, static_cast<double>(polled));
  EXPECT_NE(scrape.body.find("desmine_serve_stage_queue_ms_bucket"),
            std::string::npos);
  EXPECT_NE(scrape.body.find("desmine_serve_stage_reorder_ms_bucket"),
            std::string::npos);
  EXPECT_NE(
      scrape.body.find(
          "desmine_serve_window_latency_ms_recent{quantile=\"0.99\"}"),
      std::string::npos);
  const auto recent_count = sample_value(
      scrape.body, "desmine_serve_window_latency_ms_recent_count");
  ASSERT_TRUE(recent_count.has_value());
  EXPECT_GE(*recent_count, static_cast<double>(polled));

  const obs::HttpGetResult health = obs::http_get(http.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const obs::HttpGetResult status = obs::http_get(http.port(), "/statusz");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("uptime_s"), std::string::npos);

  EXPECT_EQ(obs::http_get(http.port(), "/nope").status, 404);

  http.stop();
  http.stop();  // idempotent
  EXPECT_FALSE(http.running());
}

// --- End-to-end window traces ---------------------------------------------

TEST(ServeTelemetry, WindowTraceCoversAllStagesNoOrphans) {
  obs::Tracer& tracer = obs::tracer();
  tracer.reset();
  tracer.enable();
  std::size_t polled = 0;
  {
    Fixture& f = fixture();
    ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                               f.cfg.window, f.serve_config());
    const std::uint64_t id = manager.open();
    const dc::MultivariateSeries series = make_series(60, 11);
    for (std::size_t t = 0; t < series.front().events.size(); ++t) {
      ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
                ds::IngestStatus::kAccepted);
    }
    manager.drain();
    while (manager.poll(id)) ++polled;
  }  // workers joined; every span closed
  tracer.disable();
  const std::vector<obs::SpanRecord> records = tracer.records();
  tracer.reset();
  ASSERT_GT(polled, 5u);

  // One finished root per delivered window.
  std::set<std::uint32_t> windows;
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    if (records[i].name != "serve.window") continue;
    EXPECT_TRUE(records[i].finished()) << "unfinished window span " << i;
    EXPECT_EQ(records[i].parent, obs::SpanRecord::kNoParent);
    windows.insert(i);
  }
  EXPECT_EQ(windows.size(), polled);

  // Every stage span parents to a window root (no orphans), finishes, and
  // each window carries exactly the four stages.
  std::map<std::uint32_t, std::set<std::string>> stages;
  for (const obs::SpanRecord& r : records) {
    if (r.name.rfind("serve.stage.", 0) != 0) continue;
    ASSERT_NE(r.parent, obs::SpanRecord::kNoParent)
        << "orphaned stage span " << r.name;
    ASSERT_EQ(windows.count(r.parent), 1u)
        << r.name << " not parented to a serve.window span";
    EXPECT_TRUE(r.finished()) << "unfinished stage span " << r.name;
    EXPECT_LE(r.start_ns, r.end_ns);
    EXPECT_TRUE(stages[r.parent].insert(r.name).second)
        << "duplicate stage " << r.name << " under window " << r.parent;
  }
  const std::set<std::string> want = {
      "serve.stage.queue", "serve.stage.batch_form", "serve.stage.decode",
      "serve.stage.reorder"};
  for (const std::uint32_t w : windows) {
    EXPECT_EQ(stages[w], want) << "window span " << w << " missing stages";
    // Stage intervals close inside the root.
    for (const obs::SpanRecord& r : records) {
      if (r.parent == w) {
        EXPECT_LE(r.end_ns, records[w].end_ns);
      }
    }
  }
}

}  // namespace
