// Full-pipeline integration tests reproducing the paper's qualitative
// findings at miniature scale: popular sensors attract in-degree, lazy
// sensors land in the top BLEU band, local subgraphs recover components,
// and the detector separates anomalous from normal days.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/diagnosis.h"
#include "core/framework.h"
#include "data/plant.h"
#include "graph/walktrap.h"

namespace dc = desmine::core;
namespace dd = desmine::data;

namespace {

dc::FrameworkConfig pipeline_config() {
  dc::FrameworkConfig cfg;
  cfg.window.word_length = 5;
  cfg.window.word_stride = 1;
  cfg.window.sentence_length = 6;
  cfg.window.sentence_stride = 6;

  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.model.max_decode_length = 8;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 7;

  cfg.detector.valid_lo = 0.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;
  return cfg;
}

struct Pipeline {
  dd::PlantDataset plant;
  dc::Framework framework;

  Pipeline()
      : plant(dd::generate_plant([] {
          dd::PlantConfig cfg;
          cfg.num_components = 2;
          cfg.sensors_per_component = 2;
          cfg.num_popular = 1;
          // At this miniature horizon (6 x 240 min) the default slow mode
          // period would leave the dev day single-valued; 30 divides both
          // component periods, so every source pins the mode phase.
          cfg.popular_period = 30;
          cfg.num_lazy = 1;
          cfg.num_constant = 1;
          cfg.days = 6;
          cfg.minutes_per_day = 240;
          cfg.anomalies = {{5, {0}}};
          cfg.precursors = false;
          cfg.noise = 0.004;
          cfg.seed = 31;
          return cfg;
        }())),
        framework(pipeline_config()) {
    framework.fit(plant.days_slice(0, 3), plant.days_slice(3, 1));
  }
};

Pipeline& shared() {
  static Pipeline p;
  return p;
}

}  // namespace

TEST(Integration, GraphCoversAllInformativeSensors) {
  auto& p = shared();
  const auto& g = p.framework.graph();
  // 4 component sensors + 1 popular + 1 lazy = 6 kept; constant dropped.
  EXPECT_EQ(g.sensor_count(), 6u);
  EXPECT_EQ(g.edges().size(), 6u * 5u);
}

TEST(Integration, PopularSensorAttractsHighBleuInEdges) {
  // The strictly periodic "mode" sensor must be easy to translate *into*
  // from anywhere — the paper's popular-sensor phenomenon (Fig. 5/6).
  // Within-component pairs are trivially strong, so the discriminating
  // comparison is against *cross-component* targets: the popular sensor
  // should be a better target than an unrelated component sensor.
  auto& p = shared();
  const auto& g = p.framework.graph();

  double popular_sum = 0.0, cross_sum = 0.0;
  std::size_t popular_n = 0, cross_n = 0;
  const std::string popular = p.plant.popular_names[0];
  for (const auto& e : g.edges()) {
    const std::string& src = g.name(e.src);
    const std::string& dst = g.name(e.dst);
    if (p.plant.component_of.count(src) == 0) continue;  // component sources
    if (dst == popular) {
      popular_sum += e.bleu;
      ++popular_n;
    } else if (p.plant.component_of.count(dst) != 0 &&
               p.plant.component_of.at(src) != p.plant.component_of.at(dst)) {
      cross_sum += e.bleu;
      ++cross_n;
    }
  }
  ASSERT_GT(popular_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(popular_sum / static_cast<double>(popular_n),
            cross_sum / static_cast<double>(cross_n))
      << "popular sensor should out-score cross-component targets";
}

TEST(Integration, LazySensorIsTriviallyTranslatable) {
  // Rarely-changing sensors produce near-constant languages: translating
  // into them scores near the top of the BLEU scale — the paper's [90,100]
  // pathology (§III-C).
  auto& p = shared();
  const auto& g = p.framework.graph();
  const std::string lazy = p.plant.lazy_names[0];
  double lazy_in_mean = 0.0;
  std::size_t n = 0;
  for (const auto& e : g.edges()) {
    if (g.name(e.dst) == lazy) {
      lazy_in_mean += e.bleu;
      ++n;
    }
  }
  lazy_in_mean /= static_cast<double>(n);
  EXPECT_GT(lazy_in_mean, 80.0);
}

TEST(Integration, LocalSubgraphClustersMatchComponents) {
  auto& p = shared();
  const auto& g = p.framework.graph();

  // Local subgraph: strong band minus popular/lazy sensors (mimics the
  // paper's popular-node removal, using ground truth names here).
  std::vector<std::size_t> remove;
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    const std::string& name = g.name(v);
    if (p.plant.component_of.count(name) == 0) remove.push_back(v);
  }
  const auto local = g.filter_bleu(60.0, 100.5).without_sensors(remove);

  const auto communities = desmine::graph::walktrap(local.to_digraph());
  // Nodes of the same component must co-cluster.
  std::map<std::size_t, std::vector<std::size_t>> by_component;
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    const auto it = p.plant.component_of.find(g.name(v));
    if (it != p.plant.component_of.end()) {
      by_component[it->second].push_back(v);
    }
  }
  for (const auto& [comp, nodes] : by_component) {
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_EQ(communities.membership[nodes[i]],
                communities.membership[nodes[0]])
          << "component " << comp << " split";
    }
  }
}

TEST(Integration, AnomalyDayScoresHigherThanNormalDay) {
  auto& p = shared();
  const auto result = p.framework.detect(p.plant.days_slice(4, 2));
  const std::size_t windows = result.anomaly_scores.size();
  ASSERT_GT(windows, 2u);
  const std::size_t half = windows / 2;
  double normal = 0.0, anomalous = 0.0;
  for (std::size_t t = 0; t < half; ++t) normal += result.anomaly_scores[t];
  for (std::size_t t = half; t < windows; ++t) {
    anomalous += result.anomaly_scores[t];
  }
  normal /= static_cast<double>(half);
  anomalous /= static_cast<double>(windows - half);
  EXPECT_GT(anomalous, normal);
  EXPECT_GT(anomalous, 0.05);  // something actually broke
}

TEST(Integration, DiagnosisPointsAtDisturbedComponent) {
  auto& p = shared();
  const auto& g = p.framework.graph();

  std::vector<std::size_t> remove;
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    if (p.plant.component_of.count(g.name(v)) == 0) remove.push_back(v);
  }
  const auto local = g.filter_bleu(0.0, 100.5).without_sensors(remove);
  dc::DiagnosisConfig dcfg;
  dcfg.faulty_threshold = 0.3;
  const dc::FaultDiagnoser diagnoser(local, dcfg);

  const auto result = p.framework.detect(p.plant.days_slice(4, 2));
  // Pick the worst window of the anomalous half.
  const std::size_t half = result.anomaly_scores.size() / 2;
  std::size_t worst = half;
  for (std::size_t t = half; t < result.anomaly_scores.size(); ++t) {
    if (result.anomaly_scores[t] > result.anomaly_scores[worst]) worst = t;
  }
  const auto diag = diagnoser.diagnose(result, worst);
  ASSERT_FALSE(diag.faulty.empty()) << "no faulty cluster found";
  // The top faulty cluster must contain a component-0 sensor.
  const auto& cluster = diag.clusters[diag.faulty[0]];
  bool has_c0 = false;
  for (std::size_t v : cluster.sensors) {
    const auto it = p.plant.component_of.find(g.name(v));
    if (it != p.plant.component_of.end() && it->second == 0) has_c0 = true;
  }
  EXPECT_TRUE(has_c0);
}

TEST(Integration, DetectionIsReproducible) {
  auto& p = shared();
  const auto r1 = p.framework.detect(p.plant.days_slice(4, 1));
  const auto r2 = p.framework.detect(p.plant.days_slice(4, 1));
  ASSERT_EQ(r1.anomaly_scores.size(), r2.anomaly_scores.size());
  for (std::size_t t = 0; t < r1.anomaly_scores.size(); ++t) {
    EXPECT_DOUBLE_EQ(r1.anomaly_scores[t], r2.anomaly_scores[t]);
  }
}
