// Chaos tests for the fault-tolerant serving layer (DESIGN.md §13).
//
// Every scenario arms the deterministic FaultInjector at a serve-side
// injection point (serve.decode / serve.model.load / serve.ingest) and
// asserts the blast radius stays contained: faulted edges quarantine
// behind their circuit breaker while every non-faulted score stays
// bit-identical (IEEE-754) to a sequential OnlineDetector replay, failed
// reloads keep the old generation serving, hot reloads under sustained
// ingest drop or misorder nothing, overload shedding never starves a
// session, and erase/drain racing concurrent ingest stays typed and clean
// (the TSan CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "core/online.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "serve/session_manager.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace ds = desmine::serve;
namespace dio = desmine::io;
namespace dr = desmine::robust;
using desmine::util::Rng;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// The process-wide injector is shared state: disarm on entry and exit so a
/// failing assertion never leaks faults into the next test.
struct ScopedFaults {
  ScopedFaults() { dr::FaultInjector::instance().clear(); }
  ~ScopedFaults() { dr::FaultInjector::instance().clear(); }
};

/// Temp artifact path that cleans up on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_test_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

/// Same coupled-pair-plus-noise shape as test_serve/test_online, so served
/// results can be replayed against OnlineDetector.
dc::MultivariateSeries make_series(std::size_t ticks, std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    lead.push_back(state ? "ON" : "OFF");
    follow.push_back((t >= 2 && lead[t - 2] == "ON") ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          c.miner.translation.trainer.steps = 150;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(600, 1), make_series(300, 2));
  }

  ds::ServeConfig serve_config() const {
    ds::ServeConfig s;
    s.detector = cfg.detector;
    s.workers = 2;
    s.max_batch = 8;
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Full per-window results from a sequential OnlineDetector replay — the
/// chaos tests need the broken sets, not just the scores, to recompute what
/// a window with one quarantined edge must score.
std::vector<dc::OnlineDetector::WindowResult> replay_windows(
    const Fixture& f, const dc::MultivariateSeries& series) {
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<dc::OnlineDetector::WindowResult> out;
  for (std::size_t t = 0; t < series.front().events.size(); ++t) {
    const auto r = online.push(tick_states(series, t));
    if (r) out.push_back(*r);
  }
  return out;
}

/// Drive `ticks` samples of `series` into `session`, asserting every tick
/// is accepted.
void feed(ds::SessionManager& manager, std::uint64_t session,
          const dc::MultivariateSeries& series, std::size_t ticks,
          std::size_t from = 0) {
  for (std::size_t t = from; t < ticks; ++t) {
    ASSERT_EQ(manager.ingest(session, tick_states(series, t)),
              ds::IngestStatus::kAccepted)
        << "tick " << t;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker supervision + circuit breaker

// A poisoned edge model (serve.decode throws on every batch of that edge)
// must quarantine behind its breaker while every other edge keeps scoring:
// no worker dies, every window is delivered with the faulted edge in its
// `failed` list, and the renormalized score is bit-identical to what the
// sequential replay's broken set implies for the surviving edges.
TEST(ServeFaults, PoisonedEdgeQuarantinesWhileOthersStayBitIdentical) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.circuit_open_after = 2;
  scfg.circuit_probe_after = 1u << 20;  // never half-open during this test
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, scfg);

  const auto gen = manager.registry().current();
  const std::size_t total = gen->edges.size();
  ASSERT_GE(total, 2u);
  const ds::EdgeModel& faulted = gen->edges.front();
  const std::pair<std::size_t, std::size_t> faulted_pair{faulted.src,
                                                         faulted.dst};
  const std::string key =
      std::to_string(faulted.src) + "->" + std::to_string(faulted.dst);

  ScopedFaults guard;
  dr::FaultInjector::instance().arm("serve.decode", key,
                                    dr::FaultAction::kThrow);
  const std::uint64_t opened_before =
      desmine::obs::metrics().counter("serve.circuit.opened").value();
  const std::uint64_t failures_before =
      desmine::obs::metrics().counter("serve.batch.failures").value();

  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTicks = 120;
  std::vector<dc::MultivariateSeries> series;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    series.push_back(make_series(kTicks, 50 + s));
    ids.push_back(manager.open());
  }
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(manager.ingest(ids[s], tick_states(series[s], t)),
                ds::IngestStatus::kAccepted);
    }
  }
  manager.drain();

  // The breaker opened after the configured failed batches, and at least
  // those batches surfaced as supervised (not fatal) failures.
  EXPECT_GE(desmine::obs::metrics().counter("serve.circuit.opened").value(),
            opened_before + 1);
  EXPECT_GE(desmine::obs::metrics().counter("serve.batch.failures").value(),
            failures_before + scfg.circuit_open_after);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto expected = replay_windows(f, series[s]);
    std::size_t next_index = 0;
    while (const auto r = manager.poll(ids[s])) {
      ASSERT_LT(next_index, expected.size());
      EXPECT_EQ(r->window_index, next_index);
      EXPECT_FALSE(r->shed);
      EXPECT_FALSE(r->degraded);  // 1 of N edges lost keeps quorum at N>=3
      ASSERT_EQ(r->failed.size(), 1u);
      EXPECT_EQ(r->failed.front(), faulted_pair);
      // Coverage and score renormalize over the surviving edges with the
      // exact divisions Session::finalize performs.
      EXPECT_EQ(bits(r->coverage), bits(static_cast<double>(total - 1) /
                                        static_cast<double>(total)));
      std::size_t broken = 0;
      for (const auto& pair : expected[next_index].broken) {
        if (pair != faulted_pair) ++broken;
      }
      EXPECT_EQ(bits(r->anomaly_score),
                bits(static_cast<double>(broken) /
                     static_cast<double>(total - 1)))
          << "session " << s << " window " << next_index;
      ++next_index;
    }
    EXPECT_EQ(next_index, expected.size()) << "session " << s;
  }

  // No worker died: the pool still scores fresh windows after the storm.
  const std::uint64_t late = manager.open();
  const auto late_series = make_series(40, 60);
  feed(manager, late, late_series, 40);
  manager.drain(late);
  std::size_t delivered = 0;
  while (const auto r = manager.poll(late)) {
    EXPECT_EQ(r->failed.size(), 1u);
    ++delivered;
  }
  EXPECT_EQ(delivered, replay_windows(f, late_series).size());
}

// ---------------------------------------------------------------------------
// Hot reload

TEST(ServeFaults, FailedReloadKeepsOldGenerationThenRetrySucceeds) {
  auto& f = fixture();
  TempFile file("serve_faults_reload.bin");
  dio::save_framework(f.framework, file.path);

  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  const auto series = make_series(120, 70);

  ScopedFaults guard;
  dr::FaultInjector::instance().arm("serve.model.load", std::int64_t{0},
                                    dr::FaultAction::kThrow, 1);
  EXPECT_THROW(manager.reload(file.path), desmine::RuntimeError);
  EXPECT_EQ(manager.generation(), 1u);  // old generation still serving

  feed(manager, id, series, 60);
  const std::uint64_t next = manager.reload(file.path);
  EXPECT_EQ(next, 2u);
  EXPECT_EQ(manager.generation(), 2u);
  feed(manager, id, series, 120, 60);
  manager.drain();

  // The artifact carries the same weights, so scores across the failed
  // reload AND the successful swap replay bit-identically.
  const auto expected = replay_windows(f, series);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_TRUE(r->failed.empty());
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());
}

// Reload while another thread streams ticks without pause: no window is
// dropped or misordered, every score is bit-identical to replay, and once
// the stream drains the retired generations' models have been released
// (the registry's weak refs all expired).
TEST(ServeFaults, HotReloadUnderSustainedIngestDropsAndReordersNothing) {
  auto& f = fixture();
  TempFile file("serve_faults_hot_reload.bin");
  dio::save_framework(f.framework, file.path);

  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  constexpr std::size_t kTicks = 240;
  const auto series = make_series(kTicks, 80);

  std::thread feeder([&] {
    for (std::size_t t = 0; t < kTicks; ++t) {
      ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
                ds::IngestStatus::kAccepted);
    }
  });
  // Two swaps mid-stream, each gated on the feeder having made progress so
  // windows are genuinely in flight on the generation being retired.
  for (const std::size_t gate : {std::size_t{60}, std::size_t{140}}) {
    while (manager.stats(id).ticks < gate) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    manager.reload(file.path);
  }
  feeder.join();
  manager.drain();
  EXPECT_EQ(manager.generation(), 3u);

  const auto expected = replay_windows(f, series);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);  // zero dropped, zero misordered
    EXPECT_FALSE(r->shed);
    EXPECT_TRUE(r->failed.empty());
    EXPECT_EQ(r->coverage, 1.0);
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());

  // Drain means no window references an old generation any more; the
  // scheduler drops its last edge states just after the final finalize, so
  // allow a brief grace period before requiring full release.
  for (int i = 0; i < 200 && manager.registry().retired_live() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(manager.registry().retired_live(), 0u);
}

// ---------------------------------------------------------------------------
// Overload shedding

// Under a decode slowdown (every batch stalls kDelayMillis) with a 1 ms
// queue deadline, flooded windows shed as counted no-verdict results — and
// once ingest is paced, the consecutive-shed guard forces forward progress:
// never more than `max_consecutive_shed` sheds in a row, and the windows
// that do score stay bit-identical to replay.
TEST(ServeFaults, SheddingUnderOverloadNeverStarvesTheSession) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.workers = 1;
  scfg.max_queue_delay_ms = 1.0;
  scfg.limits.max_consecutive_shed = 2;
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, scfg);
  const std::uint64_t id = manager.open();
  constexpr std::size_t kFloodTicks = 60;
  constexpr std::size_t kTicks = 100;
  const auto series = make_series(kTicks, 90);

  ScopedFaults guard;
  dr::FaultInjector::instance().arm("serve.decode", std::string("*"),
                                    dr::FaultAction::kDelay);

  // Phase 1 — flood: every tick lands before any window resolves, so the
  // backlog goes stale against the 1 ms deadline and sheds.
  feed(manager, id, series, kFloodTicks);
  manager.drain(id);
  // Phase 2 — paced: each window fully resolves before the next tick, so
  // the sheds_in_row_ guard is consulted with up-to-date counts and must
  // mark every third window unsheddable at worst.
  for (std::size_t t = kFloodTicks; t < kTicks; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
    manager.drain(id);
  }

  const auto expected = replay_windows(f, series);
  const std::size_t flood_windows =
      replay_windows(f, make_series(kFloodTicks, 90)).size();
  std::size_t next_index = 0;
  std::size_t shed = 0;
  std::size_t paced_scored = 0;
  std::size_t paced_consecutive_shed = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);  // shed results keep the order
    if (r->shed) {
      ++shed;
      EXPECT_EQ(r->anomaly_score, 0.0);  // counted no-verdict, not a late 0
      EXPECT_EQ(r->coverage, 0.0);
      if (next_index >= flood_windows) {
        EXPECT_LE(++paced_consecutive_shed, scfg.limits.max_consecutive_shed)
            << "starved at window " << next_index;
      }
    } else {
      EXPECT_EQ(r->coverage, 1.0);
      EXPECT_EQ(bits(r->anomaly_score),
                bits(expected[next_index].anomaly_score))
          << "window " << next_index;
      if (next_index >= flood_windows) {
        ++paced_scored;
        paced_consecutive_shed = 0;
      }
    }
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());  // every window delivered
  EXPECT_GT(shed, 0u);
  EXPECT_GT(paced_scored, 0u);  // forward progress despite sustained faults
  const auto stats = manager.stats(id);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.windows_delivered, expected.size());
}

TEST(ServeFaults, GlobalBudgetRejectsAtCapacityThenRecovers) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.workers = 1;
  scfg.max_global_pending = 1;
  scfg.limits.reject_when_full = true;
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, scfg);

  // Slow the first batches down so the single-window budget is visibly
  // saturated; cleared as soon as a reject is observed.
  ScopedFaults guard;
  dr::FaultInjector::instance().arm("serve.decode", std::string("*"),
                                    dr::FaultAction::kDelay);

  constexpr std::size_t kSessions = 2;
  constexpr std::size_t kTicks = 40;
  std::vector<dc::MultivariateSeries> series;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    series.push_back(make_series(kTicks, 95 + s));
    ids.push_back(manager.open());
  }

  std::size_t rejected = 0;
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      // A rejected tick is not consumed: retry the same sample until the
      // in-flight window drains and the budget frees up.
      while (manager.ingest(ids[s], tick_states(series[s], t)) ==
             ds::IngestStatus::kRejected) {
        ++rejected;
        dr::FaultInjector::instance().clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  manager.drain();
  EXPECT_GT(rejected, 0u);

  // Admission control must degrade throughput, never correctness.
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto expected = replay_windows(f, series[s]);
    std::size_t next_index = 0;
    while (const auto r = manager.poll(ids[s])) {
      ASSERT_LT(next_index, expected.size());
      EXPECT_EQ(r->window_index, next_index);
      EXPECT_FALSE(r->shed);
      EXPECT_EQ(bits(r->anomaly_score),
                bits(expected[next_index].anomaly_score))
          << "session " << s << " window " << next_index;
      ++next_index;
    }
    EXPECT_EQ(next_index, expected.size()) << "session " << s;
  }
}

// ---------------------------------------------------------------------------
// Lifecycle races (the TSan job runs this binary)

// erase() and drain() racing a hot ingest loop from another thread must
// resolve into the typed lifecycle statuses — kClosed, then
// PreconditionError once the session is forgotten — without perturbing a
// neighbour session's scores.
TEST(ServeFaults, EraseAndDrainRaceConcurrentIngest) {
  auto& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t victim = manager.open();
  const std::uint64_t survivor = manager.open();
  const auto victim_series = make_series(40, 100);
  const auto survivor_series = make_series(120, 101);

  std::atomic<bool> gone{false};
  std::thread ingester([&] {
    for (std::size_t i = 0; i < 200000 && !gone.load(); ++i) {
      try {
        // kClosed (close() landed, map entry still there) is a valid
        // terminal answer; keep pushing until the id disappears.
        manager.ingest(victim, tick_states(victim_series, i % 40));
      } catch (const desmine::PreconditionError&) {
        gone.store(true);
      }
      if (i % 64 == 0) std::this_thread::yield();
    }
  });
  std::thread drainer([&] {
    for (int i = 0; i < 50; ++i) {
      manager.drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  manager.erase(victim);
  gone.store(true);  // the ingester may still be mid-backpressure-wait
  ingester.join();
  drainer.join();
  EXPECT_EQ(manager.session_count(), 1u);
  EXPECT_THROW(manager.ingest(victim, tick_states(victim_series, 0)),
               desmine::PreconditionError);

  // The survivor's stream was never perturbed by the teardown next door.
  feed(manager, survivor, survivor_series, 120);
  manager.drain(survivor);
  const auto expected = replay_windows(f, survivor_series);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(survivor)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());
}

// ---------------------------------------------------------------------------
// Ingest-side faults

TEST(ServeFaults, IngestFaultIsScopedToOneTick) {
  auto& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const auto series = make_series(60, 110);

  ScopedFaults guard;

  // throw: the faulted tick is NOT consumed; retrying it keeps the stream's
  // window math aligned with an unfaulted replay.
  const std::uint64_t id = manager.open();
  dr::FaultInjector::instance().arm("serve.ingest",
                                    static_cast<std::int64_t>(id),
                                    dr::FaultAction::kThrow, 1);
  EXPECT_THROW(manager.ingest(id, tick_states(series, 0)),
               desmine::RuntimeError);
  feed(manager, id, series, 60);
  manager.drain(id);
  const auto expected = replay_windows(f, series);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());

  // drop: the tick reports accepted but vanishes before the assembler, like
  // a gap in the feed.
  const std::uint64_t dropped = manager.open();
  dr::FaultInjector::instance().arm("serve.ingest",
                                    static_cast<std::int64_t>(dropped),
                                    dr::FaultAction::kDrop, 1);
  EXPECT_EQ(manager.ingest(dropped, tick_states(series, 0)),
            ds::IngestStatus::kAccepted);
  EXPECT_EQ(manager.stats(dropped).ticks, 0u);
  EXPECT_EQ(manager.ingest(dropped, tick_states(series, 0)),
            ds::IngestStatus::kAccepted);
  EXPECT_EQ(manager.stats(dropped).ticks, 1u);
}
