// Parity tests between the cached training forward paths and the stateless
// inference paths (LstmStack::infer_step, LuongAttention::infer) that beam
// search relies on. Any divergence would make beam-search scores
// inconsistent with training likelihoods.
#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/lstm.h"
#include "util/error.h"
#include "util/rng.h"

namespace dn = desmine::nn;
namespace dt = desmine::tensor;
using desmine::util::Rng;

namespace {

dt::Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  dt::Matrix m(r, c);
  m.init_uniform(rng, 1.0f);
  return m;
}

void expect_equal(const dt::Matrix& a, const dt::Matrix& b, float tol) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "flat index " << i;
  }
}

}  // namespace

TEST(InferenceParity, LstmInferStepMatchesCachedStep) {
  Rng rng(1);
  dn::LstmStack lstm("l", 3, 5, 2, rng, 0.0f);

  std::vector<dt::Matrix> inputs;
  for (int t = 0; t < 6; ++t) inputs.push_back(random_matrix(2, 3, rng));

  // Cached path.
  lstm.begin(2);
  std::vector<dt::Matrix> cached;
  for (const auto& x : inputs) cached.push_back(lstm.step(x));

  // Stateless path.
  dn::LstmState state = lstm.zero_state(2);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const dt::Matrix h = lstm.infer_step(inputs[t], state);
    expect_equal(h, cached[t], 1e-6f);
  }
  // Final states agree too.
  const dn::LstmState cached_state = lstm.state();
  for (std::size_t l = 0; l < 2; ++l) {
    expect_equal(state.h[l], cached_state.h[l], 1e-6f);
    expect_equal(state.c[l], cached_state.c[l], 1e-6f);
  }
}

TEST(InferenceParity, LstmInferStepIndependentStates) {
  // Two hypotheses advanced through the same stack must not interfere.
  Rng rng(2);
  dn::LstmStack lstm("l", 2, 4, 1, rng, 0.0f);
  const auto xa = random_matrix(1, 2, rng);
  const auto xb = random_matrix(1, 2, rng);

  dn::LstmState sa = lstm.zero_state(1);
  dn::LstmState sb = lstm.zero_state(1);
  const dt::Matrix ha1 = lstm.infer_step(xa, sa);
  const dt::Matrix hb1 = lstm.infer_step(xb, sb);

  // Re-running hypothesis A from scratch gives the same result regardless of
  // interleaving with B.
  dn::LstmState sa2 = lstm.zero_state(1);
  const dt::Matrix ha1_again = lstm.infer_step(xa, sa2);
  expect_equal(ha1, ha1_again, 0.0f);
  expect_equal(sa.h[0], sa2.h[0], 0.0f);
}

TEST(InferenceParity, LstmInferStepValidatesShapes) {
  Rng rng(3);
  dn::LstmStack lstm("l", 2, 4, 2, rng, 0.0f);
  dn::LstmState state = lstm.zero_state(1);
  EXPECT_THROW(lstm.infer_step(dt::Matrix(1, 3), state),
               desmine::PreconditionError);
  dn::LstmState bad = lstm.zero_state(1);
  bad.h.pop_back();
  EXPECT_THROW(lstm.infer_step(dt::Matrix(1, 2), bad),
               desmine::PreconditionError);
}

TEST(InferenceParity, AttentionInferMatchesStep) {
  for (const auto score :
       {dn::AttentionScore::kGeneral, dn::AttentionScore::kDot}) {
    Rng rng(4);
    dn::LuongAttention attn("a", 4, rng, 0.3f, score);
    std::vector<dt::Matrix> enc;
    for (int s = 0; s < 3; ++s) enc.push_back(random_matrix(2, 4, rng));
    attn.begin(&enc, 2);

    const auto h1 = random_matrix(2, 4, rng);
    const auto h2 = random_matrix(2, 4, rng);

    // infer() must match step() and must not disturb the cache sequence.
    const dt::Matrix peek = attn.infer(h1);
    const dt::Matrix cached1 = attn.step(h1);
    expect_equal(peek, cached1, 1e-6f);
    const dt::Matrix peek2 = attn.infer(h2);
    const dt::Matrix cached2 = attn.step(h2);
    expect_equal(peek2, cached2, 1e-6f);

    // Backward still walks both cached steps (infer() recorded nothing).
    EXPECT_NO_THROW(attn.backward_step(dt::Matrix(2, 4, 0.1f)));
    EXPECT_NO_THROW(attn.backward_step(dt::Matrix(2, 4, 0.1f)));
    EXPECT_THROW(attn.backward_step(dt::Matrix(2, 4, 0.1f)),
                 desmine::PreconditionError);
  }
}

TEST(InferenceParity, AttentionInferRequiresBegin) {
  Rng rng(5);
  dn::LuongAttention attn("a", 4, rng);
  EXPECT_THROW(attn.infer(dt::Matrix(1, 4)), desmine::PreconditionError);
}
