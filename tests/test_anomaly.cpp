// Tests for Algorithm 2 (anomaly detection): valid-model banding, broken
// relationships, anomaly scores, alert matrices.
#include <gtest/gtest.h>

#include <memory>

#include "core/anomaly.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "robust/errors.h"
#include "tensor/kernels.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace dm = desmine::nmt;
namespace dx = desmine::text;
using desmine::util::Rng;

namespace {

// These fixtures train tiny models and assert on which edges land inside a
// ±5 BLEU validity window — behavior that is seed-deterministic only for a
// fixed kernel numerics. Pin the scalar reference backend so the assertions
// stay stable regardless of the host's auto-detected backend.
const bool kPinScalarBackend = [] {
  desmine::tensor::kernels::set_backend(
      desmine::tensor::kernels::Backend::kScalar);
  return true;
}();

/// Deterministic word-substitution corpora: target token mirrors the source
/// token index-for-index.
void make_corpus(std::size_t sentences, std::size_t length, dx::Corpus& src,
                 dx::Corpus& tgt, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> sw = {"sa", "sb", "sc"};
  const std::vector<std::string> tw = {"ta", "tb", "tc"};
  for (std::size_t k = 0; k < sentences; ++k) {
    dx::Sentence s, t;
    for (std::size_t i = 0; i < length; ++i) {
      const std::size_t w = rng.index(sw.size());
      s.push_back(sw[w]);
      t.push_back(tw[w]);
    }
    src.push_back(s);
    tgt.push_back(t);
  }
}

std::shared_ptr<dm::TranslationModel> trained_model(const dx::Corpus& src,
                                                    const dx::Corpus& tgt) {
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 32;
  cfg.model.hidden_dim = 32;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 700;
  cfg.trainer.batch_size = 12;
  cfg.trainer.lr = 0.02f;
  return std::make_shared<dm::TranslationModel>(
      dm::train_translation_model(src, tgt, cfg, 321));
}

struct Fixture {
  dc::MvrGraph graph{std::vector<std::string>{"src", "dst"}};
  dx::Corpus train_src, train_tgt;
  double dev_bleu = 0.0;
};

Fixture make_fixture() {
  Fixture f;
  make_corpus(96, 5, f.train_src, f.train_tgt, 1);
  auto model = trained_model(f.train_src, f.train_tgt);

  dx::Corpus dev_src, dev_tgt;
  make_corpus(12, 5, dev_src, dev_tgt, 2);
  f.dev_bleu = model->score(dev_src, dev_tgt).score;

  dc::MvrEdge e;
  e.src = 0;
  e.dst = 1;
  e.bleu = f.dev_bleu;
  e.model = model;
  f.graph.add_edge(e);
  return f;
}

}  // namespace

TEST(AnomalyDetector, ValidBandSelectsEdges) {
  const Fixture f = make_fixture();
  dc::DetectorConfig inside;
  inside.valid_lo = f.dev_bleu - 1.0;
  inside.valid_hi = f.dev_bleu + 1.0;
  EXPECT_EQ(dc::AnomalyDetector(f.graph, inside).valid_model_count(), 1u);

  dc::DetectorConfig outside;
  outside.valid_lo = 0.0;
  outside.valid_hi = 1.0;
  EXPECT_EQ(dc::AnomalyDetector(f.graph, outside).valid_model_count(), 0u);
}

TEST(AnomalyDetector, EdgeWithoutModelInBandThrows) {
  dc::MvrGraph g({"a", "b"});
  dc::MvrEdge e;
  e.src = 0;
  e.dst = 1;
  e.bleu = 85.0;  // in band, but no model attached
  g.add_edge(e);
  dc::DetectorConfig cfg;
  EXPECT_THROW(dc::AnomalyDetector(g, cfg), desmine::PreconditionError);
}

TEST(AnomalyDetector, NormalWindowsScoreLowBrokenWindowsScoreHigh) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.valid_lo = f.dev_bleu - 5.0;
  cfg.valid_hi = f.dev_bleu + 5.0;
  cfg.tolerance = 5.0;  // allow per-sentence BLEU jitter around the dev mean
  cfg.threads = 1;
  const dc::AnomalyDetector detector(f.graph, cfg);

  // Window 0: normal aligned pair. Window 1: target replaced by garbage —
  // the relationship must break.
  dx::Corpus win_src, win_tgt;
  make_corpus(2, 5, win_src, win_tgt, 3);
  win_tgt[1] = dx::Sentence(5, "tc");  // degenerate target
  if (win_src[1] == dx::Sentence(5, "sc")) win_src[1][0] = "sa";

  const auto result = detector.detect({win_src, win_tgt});
  ASSERT_EQ(result.anomaly_scores.size(), 2u);
  EXPECT_DOUBLE_EQ(result.anomaly_scores[0], 0.0);
  EXPECT_DOUBLE_EQ(result.anomaly_scores[1], 1.0);
  EXPECT_TRUE(result.broken_edges[0].empty());
  ASSERT_EQ(result.broken_edges[1].size(), 1u);
  EXPECT_EQ(result.broken_edges[1][0], 0u);
}

TEST(AnomalyDetector, EdgeBleuMatrixShape) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.valid_lo = 0.0;
  cfg.valid_hi = 101.0;
  cfg.threads = 1;
  const dc::AnomalyDetector detector(f.graph, cfg);
  dx::Corpus src, tgt;
  make_corpus(4, 5, src, tgt, 5);
  const auto result = detector.detect({src, tgt});
  ASSERT_EQ(result.edge_bleu.size(), 1u);
  EXPECT_EQ(result.edge_bleu[0].size(), 4u);
  for (double b : result.edge_bleu[0]) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 100.0);
  }
  // Result snapshots drop the model pointer (no accidental retention).
  EXPECT_EQ(result.valid_edges[0].model, nullptr);
}

TEST(AnomalyDetector, ToleranceSuppressesMarginalBreaks) {
  const Fixture f = make_fixture();
  dx::Corpus src, tgt;
  make_corpus(3, 5, src, tgt, 6);

  dc::DetectorConfig strict;
  strict.valid_lo = 0.0;
  strict.valid_hi = 101.0;
  strict.tolerance = 0.0;
  strict.threads = 1;
  const auto strict_result =
      dc::AnomalyDetector(f.graph, strict).detect({src, tgt});

  dc::DetectorConfig lenient = strict;
  lenient.tolerance = 100.0;  // nothing can fall 100 BLEU below training
  const auto lenient_result =
      dc::AnomalyDetector(f.graph, lenient).detect({src, tgt});

  double strict_sum = 0.0, lenient_sum = 0.0;
  for (double s : strict_result.anomaly_scores) strict_sum += s;
  for (double s : lenient_result.anomaly_scores) lenient_sum += s;
  EXPECT_DOUBLE_EQ(lenient_sum, 0.0);
  EXPECT_GE(strict_sum, lenient_sum);
}

TEST(AnomalyDetector, MisalignedTestCorporaThrow) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.valid_lo = 0.0;
  cfg.valid_hi = 101.0;
  const dc::AnomalyDetector detector(f.graph, cfg);
  dx::Corpus a, b;
  make_corpus(3, 5, a, b, 7);
  b.pop_back();
  EXPECT_THROW(detector.detect({a, b}), desmine::PreconditionError);
  EXPECT_THROW(detector.detect({}), desmine::PreconditionError);
}

TEST(AnomalyDetector, MisalignedCorpusCarriesTypedFields) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.valid_lo = 0.0;
  cfg.valid_hi = 101.0;
  const dc::AnomalyDetector detector(f.graph, cfg);
  dx::Corpus a, b;
  make_corpus(3, 5, a, b, 9);
  b.pop_back();
  try {
    detector.detect({a, b});
    FAIL() << "expected robust::MisalignedCorpus";
  } catch (const desmine::robust::MisalignedCorpus& e) {
    EXPECT_EQ(e.sensor(), "dst");  // graph node 1's name
    EXPECT_EQ(e.expected(), 3u);
    EXPECT_EQ(e.got(), 2u);
    EXPECT_NE(std::string(e.what()).find("dst"), std::string::npos);
  }
}

namespace {

/// Two edges sharing one trained model: a -> b (aligned target) and
/// a -> c (whatever corpus the test supplies for node c).
struct FanoutFixture {
  dc::MvrGraph graph{std::vector<std::string>{"a", "b", "c"}};
  double dev_bleu = 0.0;
};

FanoutFixture make_fanout_fixture() {
  FanoutFixture f;
  dx::Corpus train_src, train_tgt;
  make_corpus(96, 5, train_src, train_tgt, 1);
  auto model = trained_model(train_src, train_tgt);
  dx::Corpus dev_src, dev_tgt;
  make_corpus(12, 5, dev_src, dev_tgt, 2);
  f.dev_bleu = model->score(dev_src, dev_tgt).score;
  for (std::size_t dst : {std::size_t{1}, std::size_t{2}}) {
    dc::MvrEdge e;
    e.src = 0;
    e.dst = dst;
    e.bleu = f.dev_bleu;
    e.model = model;
    f.graph.add_edge(e);
  }
  return f;
}

/// Training is the expensive part; share one fan-out fixture across tests.
const FanoutFixture& fanout_fixture() {
  static const FanoutFixture f = make_fanout_fixture();
  return f;
}

dc::DetectorConfig fanout_config(const FanoutFixture& f) {
  dc::DetectorConfig cfg;
  cfg.valid_lo = f.dev_bleu - 5.0;
  cfg.valid_hi = f.dev_bleu + 5.0;
  cfg.tolerance = 5.0;
  cfg.threads = 1;
  return cfg;
}

/// Two windows: node b mirrors the source (healthy relationship), node c is
/// degenerate garbage (relationship a -> c breaks in every window).
void fanout_corpora(dx::Corpus& src, dx::Corpus& aligned, dx::Corpus& garbage) {
  make_corpus(2, 5, src, aligned, 3);
  for (std::size_t t = 0; t < src.size(); ++t) {
    if (src[t] == dx::Sentence(5, "sc")) src[t][0] = "sa";
    garbage.push_back(dx::Sentence(5, "tc"));
  }
}

}  // namespace

TEST(AnomalyDetector, HealthMaskExcludesAndRenormalizes) {
  const FanoutFixture& f = fanout_fixture();
  dc::DetectorConfig cfg = fanout_config(f);
  cfg.min_coverage = 0.2;
  const dc::AnomalyDetector detector(f.graph, cfg);
  ASSERT_EQ(detector.valid_model_count(), 2u);

  dx::Corpus src, aligned, garbage;
  fanout_corpora(src, aligned, garbage);

  // Unmasked: a->c is broken everywhere, a->b nowhere; a_t = 1/2.
  const auto plain = detector.detect({src, aligned, garbage});
  ASSERT_EQ(plain.anomaly_scores.size(), 2u);
  EXPECT_DOUBLE_EQ(plain.anomaly_scores[0], 0.5);
  EXPECT_DOUBLE_EQ(plain.anomaly_scores[1], 0.5);
  EXPECT_DOUBLE_EQ(plain.coverage[0], 1.0);
  EXPECT_EQ(plain.degraded[0], 0);

  // Excluding sensor c at window 1 removes a->c from that window's valid
  // set: the broken plumbing no longer masquerades as an anomaly and the
  // score renormalizes over the single survivor.
  const dc::HealthMask mask = {{}, {2}};
  const auto masked = detector.detect({src, aligned, garbage}, dc::DetectOptions{.unhealthy = &mask});
  EXPECT_DOUBLE_EQ(masked.anomaly_scores[0], 0.5);  // untouched window
  EXPECT_DOUBLE_EQ(masked.coverage[0], 1.0);
  EXPECT_DOUBLE_EQ(masked.anomaly_scores[1], 0.0);  // 0 broken / 1 surviving
  EXPECT_DOUBLE_EQ(masked.coverage[1], 0.5);
  EXPECT_EQ(masked.degraded[1], 0);  // 0.5 >= min_coverage 0.2
  EXPECT_TRUE(masked.broken_edges[1].empty());
  // The excluded edge was never scored at window 1.
  EXPECT_DOUBLE_EQ(masked.edge_bleu[1][1], 0.0);
  EXPECT_GT(plain.edge_bleu[0][1], 0.0);
}

TEST(AnomalyDetector, CoverageQuorumGatesVerdicts) {
  const FanoutFixture& f = fanout_fixture();
  dc::DetectorConfig cfg = fanout_config(f);
  cfg.min_coverage = 0.6;  // 1 of 2 surviving edges is below quorum
  const dc::AnomalyDetector detector(f.graph, cfg);

  dx::Corpus src, aligned, garbage;
  fanout_corpora(src, aligned, garbage);
  const dc::HealthMask mask = {{}, {2}};
  const auto result = detector.detect({src, aligned, garbage}, dc::DetectOptions{.unhealthy = &mask});
  EXPECT_EQ(result.degraded[0], 0);
  EXPECT_EQ(result.degraded[1], 1);
  // No verdict: a NaN-free placeholder, not a claim of "no anomaly".
  EXPECT_DOUBLE_EQ(result.anomaly_scores[1], 0.0);
  EXPECT_DOUBLE_EQ(result.coverage[1], 0.5);
}

TEST(AnomalyDetector, HealthMaskValidation) {
  const FanoutFixture& f = fanout_fixture();
  const dc::AnomalyDetector detector(f.graph, fanout_config(f));
  dx::Corpus src, aligned, garbage;
  fanout_corpora(src, aligned, garbage);

  const dc::HealthMask wrong_size = {{}};  // 1 entry for 2 windows
  EXPECT_THROW(detector.detect({src, aligned, garbage}, dc::DetectOptions{.unhealthy = &wrong_size}),
               desmine::PreconditionError);
  const dc::HealthMask bad_node = {{}, {7}};
  EXPECT_THROW(detector.detect({src, aligned, garbage}, dc::DetectOptions{.unhealthy = &bad_node}),
               desmine::PreconditionError);
}

TEST(AnomalyDetector, NoMaskLeavesCoverageFullAndVerdictsUngated) {
  const FanoutFixture& f = fanout_fixture();
  dc::DetectorConfig cfg = fanout_config(f);
  cfg.min_coverage = 1.0;  // would gate everything if a mask were supplied
  const dc::AnomalyDetector detector(f.graph, cfg);
  dx::Corpus src, aligned, garbage;
  fanout_corpora(src, aligned, garbage);
  const auto result = detector.detect({src, aligned, garbage});
  for (std::size_t t = 0; t < result.anomaly_scores.size(); ++t) {
    EXPECT_DOUBLE_EQ(result.coverage[t], 1.0);
    EXPECT_EQ(result.degraded[t], 0);
    EXPECT_DOUBLE_EQ(result.anomaly_scores[t], 0.5);
  }
}

TEST(AnomalyDetector, RejectsInvalidMinCoverage) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.min_coverage = 1.5;
  EXPECT_THROW(dc::AnomalyDetector(f.graph, cfg), desmine::PreconditionError);
  cfg.min_coverage = -0.1;
  EXPECT_THROW(dc::AnomalyDetector(f.graph, cfg), desmine::PreconditionError);
}

TEST(AnomalyDetector, NoValidModelsGivesZeroScores) {
  const Fixture f = make_fixture();
  dc::DetectorConfig cfg;
  cfg.valid_lo = 0.0;
  cfg.valid_hi = 0.5;  // excludes the only edge
  const dc::AnomalyDetector detector(f.graph, cfg);
  dx::Corpus src, tgt;
  make_corpus(2, 5, src, tgt, 8);
  const auto result = detector.detect({src, tgt});
  for (double s : result.anomaly_scores) EXPECT_DOUBLE_EQ(s, 0.0);
}
