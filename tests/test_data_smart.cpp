// Tests for the synthetic SMART generator: feature catalog shape (§IV-B),
// degradation behaviour, labeled-matrix layout, and discretizer plumbing.
#include <gtest/gtest.h>

#include <set>

#include "data/smart.h"
#include "util/error.h"

namespace dd = desmine::data;
namespace dc = desmine::core;

namespace {

dd::SmartConfig small_config() {
  dd::SmartConfig cfg;
  cfg.num_drives = 20;
  cfg.days = 60;
  cfg.failure_fraction = 0.3;
  cfg.degradation_days = 7;
  cfg.failure_window_days = 20;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

TEST(SmartCatalog, PaperCounts) {
  const auto& catalog = dd::smart_feature_catalog();
  EXPECT_EQ(catalog.size(), 20u);  // 20 raw features (§IV-B)
  std::size_t cumulative = 0, near_constant = 0;
  for (const auto& f : catalog) {
    cumulative += f.cumulative ? 1 : 0;
    near_constant += f.near_constant ? 1 : 0;
  }
  EXPECT_EQ(cumulative, 14u);     // 14 differenced for the baselines
  EXPECT_EQ(near_constant, 4u);   // 4 dropped by the framework (§IV-C)
  // Table III's five key features must exist and be error counters.
  for (int id : {5, 187, 192, 197, 198}) {
    bool found = false;
    for (const auto& f : catalog) {
      if (f.id == id) {
        EXPECT_TRUE(f.error_counter) << id;
        found = true;
      }
    }
    EXPECT_TRUE(found) << id;
  }
}

TEST(SmartGenerator, DriveCountsAndFailures) {
  const auto cfg = small_config();
  const auto ds = dd::generate_smart(cfg);
  EXPECT_EQ(ds.drives.size(), 20u);
  std::size_t failed = 0;
  for (const auto& d : ds.drives) failed += d.failed ? 1 : 0;
  EXPECT_EQ(failed, 6u);  // 30% of 20
}

TEST(SmartGenerator, FailedDrivesTruncatedInFailureWindow) {
  const auto cfg = small_config();
  const auto ds = dd::generate_smart(cfg);
  for (const auto& d : ds.drives) {
    if (d.failed) {
      EXPECT_EQ(d.failure_day, d.observed_days() - 1);
      EXPECT_GE(d.observed_days(), cfg.days - cfg.failure_window_days + 1);
      EXPECT_LE(d.observed_days(), cfg.days);
    } else {
      EXPECT_EQ(d.observed_days(), cfg.days);
    }
  }
}

TEST(SmartGenerator, Deterministic) {
  const auto a = dd::generate_smart(small_config());
  const auto b = dd::generate_smart(small_config());
  for (std::size_t i = 0; i < a.drives.size(); ++i) {
    EXPECT_EQ(a.drives[i].failed, b.drives[i].failed);
    EXPECT_EQ(a.drives[i].abrupt, b.drives[i].abrupt);
    EXPECT_EQ(a.drives[i].values.at(187), b.drives[i].values.at(187));
  }
}

TEST(SmartGenerator, AbruptFailuresHaveNoWarning) {
  auto cfg = small_config();
  cfg.abrupt_failure_fraction = 1.0;  // every failure is silent
  const auto ds = dd::generate_smart(cfg);
  for (const auto& d : ds.drives) {
    if (!d.failed) continue;
    EXPECT_TRUE(d.abrupt);
    // Error counters look healthy right up to the failure mark.
    const auto& pending = d.values.at(197);
    std::size_t nonzero = 0;
    for (double v : pending) nonzero += v > 0 ? 1 : 0;
    EXPECT_LT(static_cast<double>(nonzero) / pending.size(), 0.3) << d.serial;
  }
}

TEST(SmartGenerator, ErrorCountersRampBeforeFailure) {
  const auto ds = dd::generate_smart(small_config());
  for (const auto& d : ds.drives) {
    if (!d.failed || d.abrupt) continue;  // abrupt failures give no warning
    const auto& pending = d.values.at(197);
    const std::size_t last = d.observed_days() - 1;
    const std::size_t early = d.observed_days() / 2;
    EXPECT_GE(pending[last], pending[early]) << d.serial;
    // At least one Table III error feature is nonzero at failure.
    const double signal = d.values.at(197)[last] + d.values.at(187)[last] +
                          d.values.at(5)[last] + d.values.at(192)[last];
    EXPECT_GT(signal, 0.0) << d.serial;
  }
}

TEST(SmartGenerator, HealthyDrivesStayMostlyClean) {
  // smart_187 is cumulative; healthy drives should see *increments* only on
  // rare hiccup days.
  const auto ds = dd::generate_smart(small_config());
  for (const auto& d : ds.drives) {
    if (d.failed) continue;
    const auto deltas = dc::first_difference(d.values.at(187));
    std::size_t quiet_days = 0;
    for (double v : deltas) quiet_days += v == 0.0 ? 1 : 0;
    EXPECT_GT(static_cast<double>(quiet_days) / deltas.size(), 0.9)
        << d.serial;
  }
}

TEST(SmartGenerator, CumulativeFeaturesAreMonotone) {
  const auto ds = dd::generate_smart(small_config());
  for (const auto& d : ds.drives) {
    for (int id : {9, 241, 193, 5, 187}) {
      const auto& vals = d.values.at(id);
      for (std::size_t t = 1; t < vals.size(); ++t) {
        EXPECT_GE(vals[t], vals[t - 1]) << "feature " << id << " day " << t;
      }
    }
  }
}

TEST(SmartGenerator, LabeledMatrixShape) {
  const auto ds = dd::generate_smart(small_config());
  const auto m = dd::to_labeled_matrix(ds);
  EXPECT_EQ(m.column_names.size(), 34u);  // 20 raw + 14 diffs (§IV-B)
  ASSERT_FALSE(m.rows.empty());
  EXPECT_EQ(m.rows.front().size(), 34u);
  EXPECT_EQ(m.rows.size(), m.labels.size());
  EXPECT_EQ(m.rows.size(), m.drive_of_row.size());

  // One positive label per failed drive, on its last day.
  std::size_t positives = 0;
  for (int l : m.labels) positives += l;
  std::size_t failed = 0;
  for (const auto& d : ds.drives) failed += d.failed ? 1 : 0;
  EXPECT_EQ(positives, failed);
}

TEST(SmartGenerator, DiscretizersFollowPaperRules) {
  const auto ds = dd::generate_smart(small_config());
  const auto discs = dd::fit_discretizers(ds, 30);
  // 16 features survive (20 - 4 near-constant), as in §IV-C.
  EXPECT_EQ(discs.size(), 16u);
  // Zero-inflated error counter -> binary (Fig. 10a).
  EXPECT_EQ(discs.at(187).scheme(), dc::DiscretizationScheme::kBinary);
  // Smooth age counter -> quantile (Fig. 10b).
  EXPECT_EQ(discs.at(9).scheme(), dc::DiscretizationScheme::kQuantile);
  EXPECT_EQ(discs.count(10), 0u);  // near-constant dropped
}

TEST(SmartGenerator, DriveToSeriesAlignsWithDiscretizers) {
  const auto ds = dd::generate_smart(small_config());
  const auto discs = dd::fit_discretizers(ds, 30);
  const auto series = dd::drive_to_series(ds, ds.drives[0], discs);
  EXPECT_EQ(series.size(), discs.size());
  EXPECT_EQ(dc::series_length(series), ds.drives[0].observed_days());
  // Binary features produce only the two binary labels.
  for (const auto& sensor : series) {
    if (sensor.name == "smart_187") {
      std::set<std::string> states(sensor.events.begin(),
                                   sensor.events.end());
      for (const auto& s : states) {
        EXPECT_TRUE(s == "zero" || s == "nonzero") << s;
      }
    }
  }
}

TEST(SmartGenerator, UnknownFeatureThrows) {
  const auto ds = dd::generate_smart(small_config());
  EXPECT_THROW(ds.feature(9999), desmine::PreconditionError);
  EXPECT_EQ(ds.feature(187).name, "Reported Uncorrectable Errors");
}

TEST(SmartGenerator, InvalidConfigThrows) {
  auto cfg = small_config();
  cfg.failure_window_days = cfg.days + 1;
  EXPECT_THROW(dd::generate_smart(cfg), desmine::PreconditionError);
  cfg = small_config();
  cfg.num_drives = 0;
  EXPECT_THROW(dd::generate_smart(cfg), desmine::PreconditionError);
}
