// Tests for the serving layer (DESIGN.md §11): batched-vs-sequential
// bit-identity, multi-session replay equivalence, session isolation under
// flooding, backpressure/close semantics, the config JSON round-trip, and
// the deprecated detect() shim.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "core/anomaly.h"
#include "core/framework.h"
#include "core/online.h"
#include "io/config_json.h"
#include "nmt/translation.h"
#include "serve/session_manager.h"
#include "text/bleu.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace dm = desmine::nmt;
namespace ds = desmine::serve;
namespace dx = desmine::text;
namespace dio = desmine::io;
using desmine::util::Rng;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Coupled pair (follow repeats lead 2 ticks later) plus a noise sensor —
/// the same shape test_online uses, so serve results can be replayed
/// against OnlineDetector.
dc::MultivariateSeries make_series(std::size_t ticks, std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    lead.push_back(state ? "ON" : "OFF");
    follow.push_back((t >= 2 && lead[t - 2] == "ON") ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          c.miner.translation.trainer.steps = 150;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(600, 1), make_series(300, 2));
  }

  ds::ServeConfig serve_config() const {
    ds::ServeConfig s;
    s.detector = cfg.detector;
    s.workers = 2;
    s.max_batch = 8;
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Per-window anomaly scores from a sequential OnlineDetector replay.
std::vector<double> replay_scores(const Fixture& f,
                                  const dc::MultivariateSeries& series) {
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<double> scores;
  for (std::size_t t = 0; t < series.front().events.size(); ++t) {
    const auto r = online.push(tick_states(series, t));
    if (r) scores.push_back(r->anomaly_score);
  }
  return scores;
}

/// Ragged word-substitution corpus (every sentence a different length).
void make_ragged_corpus(std::size_t sentences, dx::Corpus& src,
                        dx::Corpus& tgt, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> sw = {"sa", "sb", "sc", "sd"};
  const std::vector<std::string> tw = {"ta", "tb", "tc", "td"};
  for (std::size_t k = 0; k < sentences; ++k) {
    const std::size_t length = 1 + (k % 12);
    dx::Sentence s, t;
    for (std::size_t i = 0; i < length; ++i) {
      const std::size_t w = rng.index(sw.size());
      s.push_back(sw[w]);
      t.push_back(tw[w]);
    }
    src.push_back(s);
    tgt.push_back(t);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Batched decode bit-identity

TEST(ScoreBatch, BitIdenticalToSequentialAcrossRaggedLengths) {
  dx::Corpus train_src, train_tgt;
  make_ragged_corpus(64, train_src, train_tgt, 11);
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.num_layers = 2;  // exercise the stacked-layer rewind path
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 150;
  cfg.trainer.batch_size = 8;
  dm::TranslationModel model =
      dm::train_translation_model(train_src, train_tgt, cfg, 77);

  dx::Corpus test_src, test_ref;
  make_ragged_corpus(40, test_src, test_ref, 12);

  // Sequential ground truth: greedy translate + sentence corpus BLEU.
  std::vector<dx::Sentence> seq_out;
  std::vector<double> seq_bleu;
  for (std::size_t i = 0; i < test_src.size(); ++i) {
    seq_out.push_back(model.translate(test_src[i]));
    seq_bleu.push_back(
        dx::corpus_bleu({seq_out.back()}, {test_ref[i]}, {}).score);
  }

  std::vector<const dx::Sentence*> sources, references;
  for (std::size_t i = 0; i < test_src.size(); ++i) {
    sources.push_back(&test_src[i]);
    references.push_back(&test_ref[i]);
  }
  const std::vector<dx::Sentence> batch_out = model.translate_batch(sources);
  const std::vector<double> batch_bleu =
      model.score_batch(sources, references);

  ASSERT_EQ(batch_out.size(), test_src.size());
  ASSERT_EQ(batch_bleu.size(), test_src.size());
  for (std::size_t i = 0; i < test_src.size(); ++i) {
    EXPECT_EQ(batch_out[i], seq_out[i]) << "sentence " << i;
    EXPECT_EQ(bits(batch_bleu[i]), bits(seq_bleu[i])) << "sentence " << i;
  }
}

TEST(ScoreBatch, DuplicateSourcesDecodeOnceAndFanOut) {
  dx::Corpus train_src, train_tgt;
  make_ragged_corpus(64, train_src, train_tgt, 13);
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 120;
  cfg.trainer.batch_size = 8;
  dm::TranslationModel model =
      dm::train_translation_model(train_src, train_tgt, cfg, 78);

  // Every sentence appears three times; the fan-out must reproduce the
  // sequential result at each slot.
  dx::Corpus base_src, base_ref;
  make_ragged_corpus(6, base_src, base_ref, 14);
  std::vector<const dx::Sentence*> sources;
  std::vector<dx::Sentence> expected;
  for (std::size_t rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < base_src.size(); ++i) {
      sources.push_back(&base_src[i]);
    }
  }
  for (const dx::Sentence* s : sources) expected.push_back(model.translate(*s));
  const std::vector<dx::Sentence> batch_out = model.translate_batch(sources);
  ASSERT_EQ(batch_out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch_out[i], expected[i]) << "slot " << i;
  }
}

// ---------------------------------------------------------------------------
// Serving layer

TEST(SessionManager, BatchedServeBitIdenticalToSequentialReplay) {
  auto& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kTicks = 120;
  std::vector<dc::MultivariateSeries> series;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    series.push_back(make_series(kTicks, 20 + s));
    ids.push_back(manager.open());
  }

  // Interleave ticks round-robin so windows from different sessions are
  // pending simultaneously and batch together.
  std::vector<std::vector<double>> served(kSessions);
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(manager.ingest(ids[s], tick_states(series[s], t)),
                ds::IngestStatus::kAccepted);
    }
  }
  manager.drain();
  for (std::size_t s = 0; s < kSessions; ++s) {
    std::size_t next_index = 0;
    while (const auto r = manager.poll(ids[s])) {
      EXPECT_EQ(r->window_index, next_index++);  // strictly in window order
      EXPECT_EQ(r->coverage, 1.0);
      EXPECT_FALSE(r->degraded);
      served[s].push_back(r->anomaly_score);
    }
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::vector<double> expected = replay_scores(f, series[s]);
    ASSERT_EQ(served[s].size(), expected.size()) << "session " << s;
    for (std::size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(bits(served[s][w]), bits(expected[w]))
          << "session " << s << " window " << w;
    }
  }
}

TEST(SessionManager, FloodingSessionNeverDegradesNeighbour) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.limits.max_pending_windows = 1;
  scfg.limits.reject_when_full = true;
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, scfg);

  const auto flood_series = make_series(200, 30);
  const auto good_series = make_series(200, 31);
  const std::uint64_t flood = manager.open();
  const std::uint64_t good = manager.open();

  // The flooding session never polls: once one window is complete and
  // unclaimed its budget (1) stays exhausted, so later ticks reject. The
  // well-behaved session polls after every tick and must never be
  // rejected or perturbed.
  std::size_t rejected = 0;
  std::vector<double> good_scores;
  for (std::size_t t = 0; t < 200; ++t) {
    const auto flood_status =
        manager.ingest(flood, tick_states(flood_series, t));
    if (flood_status == ds::IngestStatus::kRejected) ++rejected;
    ASSERT_EQ(manager.ingest(good, tick_states(good_series, t)),
              ds::IngestStatus::kAccepted)
        << t;
    manager.drain(good);
    while (const auto r = manager.poll(good)) {
      good_scores.push_back(r->anomaly_score);
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(manager.stats(flood).pending, 1u);

  const std::vector<double> expected = replay_scores(f, good_series);
  ASSERT_EQ(good_scores.size(), expected.size());
  for (std::size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(bits(good_scores[w]), bits(expected[w])) << "window " << w;
  }
}

TEST(SessionManager, CloseRefusesTicksButDeliversInflightWindows) {
  auto& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  const auto series = make_series(40, 32);
  const std::uint64_t id = manager.open();
  // Window span 7, stride 4: 20 ticks produce windows 0..3.
  for (std::size_t t = 0; t < 20; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.close(id);
  EXPECT_EQ(manager.ingest(id, tick_states(series, 20)),
            ds::IngestStatus::kClosed);
  manager.drain(id);
  std::size_t delivered = 0;
  while (const auto r = manager.poll(id)) {
    EXPECT_EQ(r->window_index, delivered);
    ++delivered;
  }
  EXPECT_EQ(delivered, 4u);
  EXPECT_EQ(manager.stats(id).windows_delivered, 4u);
  manager.erase(id);
  EXPECT_EQ(manager.session_count(), 0u);
  EXPECT_THROW(manager.ingest(id, tick_states(series, 0)),
               desmine::PreconditionError);
}

TEST(SessionManager, UnknownSessionThrows) {
  auto& f = fixture();
  ds::SessionManager manager(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.serve_config());
  EXPECT_THROW(manager.poll(99), desmine::PreconditionError);
  EXPECT_THROW(manager.close(99), desmine::PreconditionError);
}

// ---------------------------------------------------------------------------
// Config JSON

TEST(ConfigJson, RoundTripsEveryKnob) {
  dio::RunConfig c;
  c.framework.window = {6, 2, 10, 5};
  c.framework.miner.seed = 1234;
  c.framework.miner.threads = 3;
  c.framework.miner.pair_timeout_s = 2.5;
  c.framework.miner.checkpoint_path = "ckpt.jsonl";
  c.framework.miner.resume = true;
  c.framework.miner.retry.max_retries = 5;
  c.framework.miner.retry.jitter = 0.125;
  c.framework.miner.translation.model.hidden_dim = 48;
  c.framework.miner.translation.model.dropout = 0.25f;
  c.framework.miner.translation.model.attention =
      desmine::nn::AttentionScore::kDot;
  c.framework.miner.translation.trainer.steps = 333;
  c.framework.miner.translation.trainer.lr = 0.005f;
  c.framework.miner.translation.bleu.max_order = 3;
  c.framework.detector.valid_lo = 70.0;
  c.framework.detector.valid_hi = 95.0;
  c.framework.detector.tolerance = 1.25;
  c.framework.detector.min_coverage = 0.75;
  c.framework.detector.bleu.smooth = false;
  c.health.drop_after_missing = 7;
  c.health.max_unk_rate = 0.375;
  c.serve.workers = 4;
  c.serve.max_batch = 16;
  c.serve.decode_cache = 128;
  c.serve.limits.max_pending_windows = 9;
  c.serve.limits.reject_when_full = true;

  const std::string json = dio::run_config_to_json(c);
  const dio::RunConfig back = dio::run_config_from_json(json);

  EXPECT_EQ(back.framework.window.word_length, 6u);
  EXPECT_EQ(back.framework.window.word_stride, 2u);
  EXPECT_EQ(back.framework.window.sentence_length, 10u);
  EXPECT_EQ(back.framework.window.sentence_stride, 5u);
  EXPECT_EQ(back.framework.miner.seed, 1234u);
  EXPECT_EQ(back.framework.miner.threads, 3u);
  EXPECT_EQ(back.framework.miner.pair_timeout_s, 2.5);
  EXPECT_EQ(back.framework.miner.checkpoint_path, "ckpt.jsonl");
  EXPECT_TRUE(back.framework.miner.resume);
  EXPECT_EQ(back.framework.miner.retry.max_retries, 5u);
  EXPECT_EQ(back.framework.miner.retry.jitter, 0.125);
  EXPECT_EQ(back.framework.miner.translation.model.hidden_dim, 48u);
  EXPECT_EQ(back.framework.miner.translation.model.dropout, 0.25f);
  EXPECT_EQ(back.framework.miner.translation.model.attention,
            desmine::nn::AttentionScore::kDot);
  EXPECT_EQ(back.framework.miner.translation.trainer.steps, 333u);
  EXPECT_EQ(back.framework.miner.translation.trainer.lr, 0.005f);
  EXPECT_EQ(back.framework.miner.translation.bleu.max_order, 3u);
  EXPECT_EQ(back.framework.detector.valid_lo, 70.0);
  EXPECT_EQ(back.framework.detector.valid_hi, 95.0);
  EXPECT_EQ(back.framework.detector.tolerance, 1.25);
  EXPECT_EQ(back.framework.detector.min_coverage, 0.75);
  EXPECT_FALSE(back.framework.detector.bleu.smooth);
  EXPECT_EQ(back.health.drop_after_missing, 7u);
  EXPECT_EQ(back.health.max_unk_rate, 0.375);
  EXPECT_EQ(back.serve.workers, 4u);
  EXPECT_EQ(back.serve.max_batch, 16u);
  EXPECT_EQ(back.serve.decode_cache, 128u);
  EXPECT_EQ(back.serve.limits.max_pending_windows, 9u);
  EXPECT_TRUE(back.serve.limits.reject_when_full);
  // ServeConfig mirrors the detector section.
  EXPECT_EQ(back.serve.detector.tolerance, 1.25);

  // Re-emission is a fixed point: same document, byte for byte.
  EXPECT_EQ(dio::run_config_to_json(back), json);
}

TEST(ConfigJson, RejectsUnknownKeysNamingTheDottedPath) {
  try {
    dio::run_config_from_json(R"({"miner": {"trainer": {"stepz": 3}}})");
    FAIL() << "expected PreconditionError";
  } catch (const desmine::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("miner.trainer.stepz"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(dio::run_config_from_json(R"({"servee": {}})"),
               desmine::PreconditionError);
}

TEST(ConfigJson, ValidatesRangesNamingTheBadKey) {
  try {
    dio::run_config_from_json(R"({"detector": {"min_coverage": 2.0}})");
    FAIL() << "expected PreconditionError";
  } catch (const desmine::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("detector.min_coverage"),
              std::string::npos);
  }
  // valid_lo > valid_hi is a cross-field violation.
  EXPECT_THROW(dio::run_config_from_json(
                   R"({"detector": {"valid_lo": 95, "valid_hi": 90}})"),
               desmine::PreconditionError);
  EXPECT_THROW(
      dio::run_config_from_json(R"({"window": {"word_length": 0}})"),
      desmine::PreconditionError);
  EXPECT_THROW(
      dio::run_config_from_json(
          R"({"miner": {"model": {"attention": "additive"}}})"),
      desmine::PreconditionError);
  EXPECT_THROW(dio::run_config_from_json(R"({"serve": {"max_batch": 1.5}})"),
               desmine::PreconditionError);
}

TEST(ConfigJson, MalformedJsonNamesTheOffset) {
  try {
    dio::run_config_from_json("{\"window\": }");
    FAIL() << "expected RuntimeError";
  } catch (const desmine::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  // Trailing garbage after the document is rejected too.
  EXPECT_THROW(dio::run_config_from_json("{} x"), desmine::RuntimeError);
}

// ---------------------------------------------------------------------------
// Deprecated detect() shim

TEST(DetectOptions, DeprecatedPointerShimMatchesOptionsOverload) {
  auto& f = fixture();
  const auto series = make_series(80, 40);
  const auto corpora = f.framework.to_corpora(series);
  dc::AnomalyDetector detector(f.framework.graph(), f.cfg.detector);

  const std::size_t windows = corpora.front().size();
  dc::HealthMask mask(windows);
  mask[0] = {0};  // exclude sensor 0's edges from the first window

  dc::DetectOptions options;
  options.unhealthy = &mask;
  const dc::DetectionResult via_options = detector.detect(corpora, options);

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  const dc::DetectionResult via_shim = detector.detect(corpora, &mask);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

  ASSERT_EQ(via_shim.anomaly_scores.size(), via_options.anomaly_scores.size());
  for (std::size_t w = 0; w < via_shim.anomaly_scores.size(); ++w) {
    EXPECT_EQ(bits(via_shim.anomaly_scores[w]),
              bits(via_options.anomaly_scores[w]));
    EXPECT_EQ(via_shim.broken_edges[w], via_options.broken_edges[w]);
  }

  // The two-argument form defaults to strict detection (no mask).
  const dc::DetectionResult strict_default = detector.detect(corpora);
  const dc::DetectionResult strict_options =
      detector.detect(corpora, dc::DetectOptions{});
  ASSERT_EQ(strict_default.anomaly_scores.size(),
            strict_options.anomaly_scores.size());
  for (std::size_t w = 0; w < strict_default.anomaly_scores.size(); ++w) {
    EXPECT_EQ(bits(strict_default.anomaly_scores[w]),
              bits(strict_options.anomaly_scores[w]));
  }
}
