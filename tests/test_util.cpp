// Unit tests for desmine::util — RNG determinism, statistics, strings,
// tables, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace du = desmine::util;

// ---------------------------------------------------------------- Rng ------

TEST(Rng, SameSeedSameStream) {
  du::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  du::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  du::Rng master(7);
  du::Rng c1 = master.fork(5);
  du::Rng c2 = master.fork(5);
  EXPECT_EQ(c1.seed(), c2.seed());
  // fork does not advance the master stream
  du::Rng master2(7);
  du::Rng unused = master2.fork(99);
  (void)unused;
  EXPECT_EQ(master.uniform_int(0, 1 << 30), master2.uniform_int(0, 1 << 30));
}

TEST(Rng, ForkTagsDecorrelate) {
  du::Rng master(7);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t tag = 0; tag < 100; ++tag) {
    seeds.insert(master.fork(tag).seed());
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(Rng, UniformRange) {
  du::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  du::Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  du::Rng rng(11);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleFullPopulation) {
  du::Rng rng(11);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, PreconditionViolationsThrow) {
  du::Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 1), desmine::PreconditionError);
  EXPECT_THROW(rng.index(0), desmine::PreconditionError);
  EXPECT_THROW(rng.sample_without_replacement(3, 4),
               desmine::PreconditionError);
}

TEST(Rng, CategoricalrespectsWeights) {
  du::Rng rng(5);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

// --------------------------------------------------------------- stats -----

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(du::mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(du::mean({}), 0.0);
  EXPECT_NEAR(du::stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(du::stddev({5.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(du::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(du::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(du::percentile(xs, 50), 25.0);
  EXPECT_THROW(du::percentile({}, 50), desmine::PreconditionError);
}

TEST(Stats, EmpiricalCdfDistinctPoints) {
  const auto cdf = du::empirical_cdf({1, 1, 2, 3, 3, 3});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, CdfAt) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(du::cdf_at(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(du::cdf_at(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(du::cdf_at(xs, 4.0), 1.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  const auto h = du::histogram({-5, 0, 1, 5, 9.9, 15}, 0, 10, 5);
  ASSERT_EQ(h.counts.size(), 5u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.counts[0], 3u);  // -5 clamped, 0, 1
  EXPECT_EQ(h.counts[4], 2u);  // 9.9, 15 clamped
  EXPECT_EQ(h.counts[2], 1u);  // 5
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_NEAR(h.fraction(0), 0.5, 1e-12);
}

TEST(Stats, SummaryFields) {
  const auto s = du::summarize({4, 1, 3, 2});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_FALSE(du::to_string(s).empty());
}

// -------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = du::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = du::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinAndTrim) {
  EXPECT_EQ(du::join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(du::join({}, "-"), "");
  EXPECT_EQ(du::trim("  x y  "), "x y");
  EXPECT_EQ(du::trim("   "), "");
}

TEST(Strings, FixedPrecision) {
  EXPECT_EQ(du::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(du::fixed(2.0, 0), "2");
}

// --------------------------------------------------------------- table -----

TEST(Table, TextRenderingAligned) {
  du::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text("demo");
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  du::Table t({"a", "b"});
  t.add_row({"x,y", "q\"z"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"z\""), std::string::npos);
}

TEST(Table, RowPaddedToHeader) {
  du::Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_csv().find("only,,"), std::string::npos);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  du::ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  du::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ExceptionsPropagate) {
  du::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryTaskDespiteFailures) {
  // Fault isolation: tasks after a failure must still run; the aggregate
  // error reports how many failed, not just the first one.
  du::ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      ++ran;
      if (i % 10 == 3) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const desmine::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("10 of 100"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitAllCollectsAllExceptions) {
  du::ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([i] {
      if (i % 2 == 1) {
        throw std::runtime_error("failure " + std::to_string(i));
      }
    }));
  }
  const auto stats = du::ThreadPool::wait_all(futures);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 4u);
  // "First" is deterministic: vector order, not completion order.
  EXPECT_EQ(stats.first_error, "failure 1");
  ASSERT_TRUE(stats.first_exception);
  EXPECT_THROW(std::rethrow_exception(stats.first_exception),
               std::runtime_error);
}

TEST(ThreadPool, WaitAllOnAllSuccesses) {
  du::ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(pool.submit([] {}));
  const auto stats = du::ThreadPool::wait_all(futures);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(stats.first_error.empty());
  EXPECT_FALSE(stats.first_exception);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    du::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}
