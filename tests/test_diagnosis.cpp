// Tests for fault diagnosis: cluster extraction and broken-edge attribution.
// Uses hand-built DetectionResults so no NMT training is needed.
#include <gtest/gtest.h>

#include "core/diagnosis.h"
#include "core/mvr_graph.h"
#include "util/error.h"

namespace dc = desmine::core;

namespace {

/// Two 3-node clusters, densely connected inside, nothing across.
dc::MvrGraph clustered_graph() {
  dc::MvrGraph g({"a0", "a1", "a2", "b0", "b1", "b2"});
  auto edge = [](std::size_t s, std::size_t d) {
    dc::MvrEdge e;
    e.src = s;
    e.dst = d;
    e.bleu = 85.0;
    return e;
  };
  for (std::size_t base : {0u, 3u}) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (i != j) g.add_edge(edge(base + i, base + j));
      }
    }
  }
  return g;
}

/// Detection result over the same edges, with the given set broken at t=0.
dc::DetectionResult detection_for(const dc::MvrGraph& g,
                                  const std::vector<std::size_t>& broken) {
  dc::DetectionResult r;
  r.valid_edges = g.edges();
  for (auto& e : r.valid_edges) e.model.reset();
  r.anomaly_scores = {static_cast<double>(broken.size()) /
                      static_cast<double>(r.valid_edges.size())};
  r.broken_edges = {broken};
  r.edge_bleu.assign(r.valid_edges.size(), {80.0});
  return r;
}

}  // namespace

TEST(FaultDiagnoser, FindsTwoClusters) {
  const auto g = clustered_graph();
  const dc::FaultDiagnoser diagnoser(g);
  EXPECT_EQ(diagnoser.cluster_count(), 2u);
  const auto& m = diagnoser.membership();
  EXPECT_EQ(m[0], m[1]);
  EXPECT_EQ(m[1], m[2]);
  EXPECT_EQ(m[3], m[4]);
  EXPECT_NE(m[0], m[3]);
}

TEST(FaultDiagnoser, LocalizesFaultToBrokenCluster) {
  const auto g = clustered_graph();
  const dc::FaultDiagnoser diagnoser(g);

  // Break all six edges inside cluster A (indices 0..5 in edge order).
  const auto result = detection_for(g, {0, 1, 2, 3, 4, 5});
  const auto diag = diagnoser.diagnose(result, 0);

  ASSERT_EQ(diag.clusters.size(), 2u);
  ASSERT_EQ(diag.faulty.size(), 1u);
  const auto& faulty = diag.clusters[diag.faulty[0]];
  EXPECT_DOUBLE_EQ(faulty.broken_fraction(), 1.0);
  // The faulty cluster is the one containing node 0.
  EXPECT_NE(std::find(faulty.sensors.begin(), faulty.sensors.end(), 0u),
            faulty.sensors.end());
  EXPECT_NEAR(diag.overall_broken_fraction, 0.5, 1e-12);
}

TEST(FaultDiagnoser, SevereAnomalyFlagsAllClusters) {
  const auto g = clustered_graph();
  const dc::FaultDiagnoser diagnoser(g);
  std::vector<std::size_t> all(g.edges().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto diag = diagnoser.diagnose(detection_for(g, all), 0);
  EXPECT_EQ(diag.faulty.size(), 2u);
  EXPECT_DOUBLE_EQ(diag.overall_broken_fraction, 1.0);
}

TEST(FaultDiagnoser, NoBreaksNoFaults) {
  const auto g = clustered_graph();
  const dc::FaultDiagnoser diagnoser(g);
  const auto diag = diagnoser.diagnose(detection_for(g, {}), 0);
  EXPECT_TRUE(diag.faulty.empty());
  EXPECT_DOUBLE_EQ(diag.overall_broken_fraction, 0.0);
}

TEST(FaultDiagnoser, ThresholdControlsSensitivity) {
  const auto g = clustered_graph();
  // Break 2 of 6 edges in cluster A (fraction 1/3).
  const auto result = detection_for(g, {0, 1});

  dc::DiagnosisConfig strict;
  strict.faulty_threshold = 0.5;
  EXPECT_TRUE(dc::FaultDiagnoser(g, strict).diagnose(result, 0).faulty.empty());

  dc::DiagnosisConfig loose;
  loose.faulty_threshold = 0.25;
  EXPECT_EQ(dc::FaultDiagnoser(g, loose).diagnose(result, 0).faulty.size(), 1u);
}

TEST(FaultDiagnoser, FaultySortedByBrokenFraction) {
  const auto g = clustered_graph();
  // Cluster A: 4/6 broken; cluster B: 6/6 broken.
  const auto result = detection_for(g, {0, 1, 2, 3, 6, 7, 8, 9, 10, 11});
  dc::DiagnosisConfig cfg;
  cfg.faulty_threshold = 0.3;
  const auto diag = dc::FaultDiagnoser(g, cfg).diagnose(result, 0);
  ASSERT_EQ(diag.faulty.size(), 2u);
  EXPECT_GE(diag.clusters[diag.faulty[0]].broken_fraction(),
            diag.clusters[diag.faulty[1]].broken_fraction());
}

TEST(FaultDiagnoser, WindowOutOfRangeThrows) {
  const auto g = clustered_graph();
  const dc::FaultDiagnoser diagnoser(g);
  const auto result = detection_for(g, {});
  EXPECT_THROW(diagnoser.diagnose(result, 5), desmine::PreconditionError);
}
