// Tests for the synthetic plant generator: published marginals (cardinality,
// sampling), determinism, anomaly injection, component structure.
#include <gtest/gtest.h>

#include <set>

#include "core/encryption.h"
#include "data/plant.h"
#include "util/error.h"

namespace dd = desmine::data;
namespace dc = desmine::core;

namespace {

dd::PlantConfig small_config() {
  dd::PlantConfig cfg;
  cfg.num_components = 3;
  cfg.sensors_per_component = 3;
  cfg.num_popular = 1;
  cfg.num_lazy = 1;
  cfg.num_constant = 1;
  cfg.days = 4;
  cfg.minutes_per_day = 240;
  cfg.anomalies = {{2, {0}}};
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(PlantGenerator, ShapeMatchesConfig) {
  const auto cfg = small_config();
  const auto ds = dd::generate_plant(cfg);
  EXPECT_EQ(ds.series.size(), 3 * 3 + 1 + 1 + 1u);
  EXPECT_EQ(dc::series_length(ds.series), cfg.days * cfg.minutes_per_day);
  EXPECT_EQ(ds.component_of.size(), 9u);
  EXPECT_EQ(ds.popular_names.size(), 1u);
  EXPECT_EQ(ds.lazy_names.size(), 1u);
  EXPECT_EQ(ds.constant_names.size(), 1u);
}

TEST(PlantGenerator, Deterministic) {
  const auto a = dd::generate_plant(small_config());
  const auto b = dd::generate_plant(small_config());
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].events, b.series[s].events) << a.series[s].name;
  }
}

TEST(PlantGenerator, SeedChangesData) {
  auto cfg = small_config();
  const auto a = dd::generate_plant(cfg);
  cfg.seed = 6;
  const auto b = dd::generate_plant(cfg);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.series.size() && !any_diff; ++s) {
    any_diff = a.series[s].events != b.series[s].events;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PlantGenerator, ConstantSensorsAreConstant) {
  const auto ds = dd::generate_plant(small_config());
  for (const auto& sensor : ds.series) {
    const bool is_constant =
        std::find(ds.constant_names.begin(), ds.constant_names.end(),
                  sensor.name) != ds.constant_names.end();
    if (is_constant) {
      std::set<std::string> states(sensor.events.begin(),
                                   sensor.events.end());
      EXPECT_EQ(states.size(), 1u) << sensor.name;
    }
  }
}

TEST(PlantGenerator, EncryptionDropsExactlyConstantSensors) {
  const auto ds = dd::generate_plant(small_config());
  const auto enc = dc::SensorEncrypter::fit(ds.series);
  EXPECT_EQ(enc.dropped_sensors().size(), ds.constant_names.size());
}

TEST(PlantGenerator, CardinalityMostlyBinary) {
  dd::PlantConfig cfg;
  cfg.num_components = 8;  // includes a multi-level component (c % 12 == 4)
  cfg.sensors_per_component = 4;
  cfg.days = 2;
  cfg.minutes_per_day = 720;
  cfg.anomalies = {};
  const auto ds = dd::generate_plant(cfg);
  const auto enc = dc::SensorEncrypter::fit(ds.series);

  std::size_t binary = 0, total = 0, max_card = 0;
  for (const auto& name : enc.kept_sensors()) {
    const std::size_t card = enc.cardinality(name);
    ++total;
    binary += card == 2 ? 1 : 0;
    max_card = std::max(max_card, card);
  }
  // Paper: 97.6% binary, max 7. Our generator: mostly binary, tail <= 7.
  EXPECT_GT(static_cast<double>(binary) / total, 0.8);
  EXPECT_LE(max_card, 7u);
  EXPECT_GT(max_card, 2u);  // the multi-level component exists
}

TEST(PlantGenerator, AnomalyDayChangesDisturbedComponentOnly) {
  auto cfg = small_config();
  cfg.noise = 0.0;  // make the comparison exact
  cfg.precursors = false;
  const auto with = dd::generate_plant(cfg);
  cfg.anomalies = {};
  const auto without = dd::generate_plant(cfg);

  const std::size_t day_start = 2 * cfg.minutes_per_day;
  const std::size_t day_end = 3 * cfg.minutes_per_day;
  for (std::size_t s = 0; s < with.series.size(); ++s) {
    const auto& name = with.series[s].name;
    bool differs = false;
    for (std::size_t t = day_start; t < day_end; ++t) {
      if (with.series[s].events[t] != without.series[s].events[t]) {
        differs = true;
        break;
      }
    }
    const auto it = with.component_of.find(name);
    if (it != with.component_of.end() && it->second == 0) {
      EXPECT_TRUE(differs) << name << " should be disturbed";
    } else {
      EXPECT_FALSE(differs) << name << " should be untouched";
    }
  }
}

TEST(PlantGenerator, PrecursorDisturbsPrecedingEvening) {
  auto cfg = small_config();
  cfg.noise = 0.0;
  cfg.precursors = true;
  const auto with = dd::generate_plant(cfg);
  cfg.anomalies = {};
  const auto clean = dd::generate_plant(cfg);

  // Last quarter of day 1 (preceding the day-2 anomaly) must differ for
  // component 0.
  const std::size_t pre_start = 2 * cfg.minutes_per_day - cfg.minutes_per_day / 4;
  const std::size_t pre_end = 2 * cfg.minutes_per_day;
  bool differs = false;
  for (std::size_t s = 0; s < with.series.size() && !differs; ++s) {
    const auto it = with.component_of.find(with.series[s].name);
    if (it == with.component_of.end() || it->second != 0) continue;
    for (std::size_t t = pre_start; t < pre_end; ++t) {
      if (with.series[s].events[t] != clean.series[s].events[t]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(PlantGenerator, DaysSliceAndAnomalyLookup) {
  const auto ds = dd::generate_plant(small_config());
  const auto day2 = ds.days_slice(2, 1);
  EXPECT_EQ(dc::series_length(day2), ds.minutes_per_day);
  EXPECT_TRUE(ds.is_anomalous_day(2));
  EXPECT_FALSE(ds.is_anomalous_day(0));
}

TEST(PlantGenerator, SystemWideAnomalyDisturbsAllComponents) {
  auto cfg = small_config();
  cfg.noise = 0.0;
  cfg.precursors = false;
  cfg.anomalies = {{2, {}}};  // empty = system-wide
  const auto with = dd::generate_plant(cfg);
  cfg.anomalies = {};
  const auto clean = dd::generate_plant(cfg);

  const std::size_t day_start = 2 * cfg.minutes_per_day;
  const std::size_t day_end = 3 * cfg.minutes_per_day;
  for (std::size_t s = 0; s < with.series.size(); ++s) {
    const auto& name = with.series[s].name;
    if (with.component_of.count(name) == 0) continue;  // lazy/const/popular
    bool differs = false;
    for (std::size_t t = day_start; t < day_end; ++t) {
      if (with.series[s].events[t] != clean.series[s].events[t]) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << name;
  }
}

TEST(PlantGenerator, InvalidConfigThrows) {
  auto cfg = small_config();
  cfg.anomalies = {{99, {}}};
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
  cfg = small_config();
  cfg.anomalies = {{1, {7}}};
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
}

// ---------------------------------------------------------------------------
// Slow drift (DESIGN.md §14)

namespace {

dd::PlantConfig drift_config() {
  auto cfg = small_config();
  cfg.days = 5;
  cfg.anomalies = {};
  cfg.precursors = false;
  cfg.noise = 0.0;  // make the drifted-vs-undrifted diff purely drift-caused
  cfg.drifts = {{/*start_day=*/1, /*ramp_days=*/2, /*components=*/{0},
                 /*phase_fraction=*/0.5, /*delay_step=*/2}};
  return cfg;
}

/// Fraction of day `day`'s minutes where any component-`component` sensor
/// disagrees between the two datasets.
double day_mismatch(const dd::PlantDataset& a, const dd::PlantDataset& b,
                    std::size_t day, std::size_t component) {
  std::size_t diffs = 0, total = 0;
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    const auto it = a.component_of.find(a.series[s].name);
    if (it == a.component_of.end() || it->second != component) continue;
    for (std::size_t t = day * a.minutes_per_day;
         t < (day + 1) * a.minutes_per_day; ++t) {
      ++total;
      diffs += a.series[s].events[t] != b.series[s].events[t] ? 1 : 0;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(diffs) /
                                static_cast<double>(total);
}

}  // namespace

// The migration is monotone: nothing moves before start_day, the per-day
// divergence from an undrifted twin never decreases through the ramp, and it
// persists at full strength afterwards — the signature that distinguishes
// drift from a one-day injected fault.
TEST(PlantGenerator, DriftIsMonotoneAndConfinedToItsComponent) {
  const auto cfg = drift_config();
  const auto drifted = dd::generate_plant(cfg);
  auto clean_cfg = cfg;
  clean_cfg.drifts = {};
  const auto clean = dd::generate_plant(clean_cfg);

  EXPECT_EQ(day_mismatch(drifted, clean, 0, 0), 0.0);
  double prev = 0.0;
  for (std::size_t day = 1; day < cfg.days; ++day) {
    const double m = day_mismatch(drifted, clean, day, 0);
    EXPECT_GE(m, prev) << "day " << day;
    prev = m;
  }
  EXPECT_GT(prev, 0.0);  // the steady state really did migrate

  // Other components (and the popular/lazy/constant sensors) are untouched.
  EXPECT_EQ(day_mismatch(drifted, clean, cfg.days - 1, 1), 0.0);
  EXPECT_EQ(day_mismatch(drifted, clean, cfg.days - 1, 2), 0.0);
  for (std::size_t s = 0; s < drifted.series.size(); ++s) {
    if (drifted.component_of.count(drifted.series[s].name) != 0) continue;
    EXPECT_EQ(drifted.series[s].events, clean.series[s].events)
        << drifted.series[s].name;
  }
}

// Drift must not perturb the RNG streams: with drifts configured the output
// is still deterministic, and an undrifted config stays bit-identical to one
// that never heard of drift (noise on, to exercise the RNG paths).
TEST(PlantGenerator, DriftIsDeterministicAndLeavesNoiseStreamsAlone) {
  auto cfg = drift_config();
  cfg.noise = 0.01;
  const auto a = dd::generate_plant(cfg);
  const auto b = dd::generate_plant(cfg);
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].events, b.series[s].events) << a.series[s].name;
  }
  EXPECT_EQ(a.drifts.size(), 1u);
}

TEST(PlantGenerator, InvalidDriftConfigThrows) {
  auto cfg = drift_config();
  cfg.drifts[0].start_day = cfg.days;  // out of horizon
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
  cfg = drift_config();
  cfg.drifts[0].ramp_days = 0;
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
  cfg = drift_config();
  cfg.drifts[0].components = {9};
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
  cfg = drift_config();
  cfg.drifts[0].phase_fraction = 1.5;
  EXPECT_THROW(dd::generate_plant(cfg), desmine::PreconditionError);
}
