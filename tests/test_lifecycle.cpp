// End-to-end and chaos tests for the continual mining lifecycle
// (DESIGN.md §14): drift detection over a slow plant migration, incremental
// retraining of exactly the drifted pairs, and shadow-gated promotion with
// rollback in the serving layer.
//
// The shared fixture mines an active framework on the pre-drift days of a
// 26-day plant whose component 0 slowly migrates (phase slip + response
// delay ramping over days 6..17) and which suffers one injected true fault
// on day 22, observes the ramp through the LifecycleController, builds one
// candidate artifact, and remines a from-scratch reference on the same
// fresh days — the acceptance bar the candidate's precision is held to.
//
// The chaos half arms the deterministic FaultInjector at lifecycle.retrain
// and serve.shadow and proves a crashed retrain, a corrupt candidate
// artifact, and a poisoned candidate each leave the active generation
// bit-identical (IEEE-754) to an undisturbed replay.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/framework.h"
#include "core/mvr_graph.h"
#include "core/online.h"
#include "data/plant.h"
#include "io/artifact_map.h"
#include "io/config_json.h"
#include "io/serialize.h"
#include "lifecycle/controller.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "serve/session_manager.h"
#include "tensor/kernels.h"
#include "util/error.h"

namespace dc = desmine::core;
namespace dd = desmine::data;
namespace dl = desmine::lifecycle;
namespace ds = desmine::serve;
namespace dio = desmine::io;
namespace dr = desmine::robust;

namespace {

// The drift fixtures assert exact drifted-pair counts from seed-trained
// models — deterministic only under fixed kernel numerics. Pin the scalar
// reference backend before main() so the fixtures stay valid regardless of
// the machine's auto-detected backend (DESIGN.md §16).
const bool kPinScalarBackend = [] {
  desmine::tensor::kernels::set_backend(
      desmine::tensor::kernels::Backend::kScalar);
  return true;
}();

constexpr char kMineJournal[] = "/tmp/desmine_test_lifecycle_mine.journal";
constexpr char kRetrainJournal[] =
    "/tmp/desmine_test_lifecycle_retrain.journal";
constexpr char kCandidatePath[] = "/tmp/desmine_test_lifecycle_candidate.bin";

/// Alert threshold shared by batch alert rates and the shadow gate.
constexpr double kAlertThreshold = 0.4;

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// The process-wide injector is shared state: disarm on entry and exit so a
/// failing assertion never leaks faults into the next test.
struct ScopedFaults {
  ScopedFaults() { dr::FaultInjector::instance().clear(); }
  ~ScopedFaults() { dr::FaultInjector::instance().clear(); }
};

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_test_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

/// Two components of three sensors each; component 0 migrates slowly over
/// days 6..17 (phase slip 0.8 of a period plus a ramped response delay) and
/// day 22 is a system-wide true fault. Days 0..5 are the pre-drift training
/// regime, 18..21 the drifted-but-normal retrain regime, 23..25 the drifted
/// steady state the recovered detector is judged on.
dd::PlantConfig plant_config() {
  dd::PlantConfig cfg;
  cfg.num_components = 2;
  cfg.sensors_per_component = 3;
  cfg.num_popular = 0;
  cfg.num_lazy = 0;
  cfg.num_constant = 1;
  cfg.days = 26;
  cfg.minutes_per_day = 240;
  cfg.anomalies = {{22, {}}};
  cfg.drifts = {{/*start_day=*/6, /*ramp_days=*/12, /*components=*/{0},
                 /*phase_fraction=*/0.8, /*delay_step=*/4}};
  cfg.precursors = false;
  cfg.noise = 0.005;
  cfg.seed = 11;
  return cfg;
}

dc::FrameworkConfig framework_config() {
  dc::FrameworkConfig cfg;
  cfg.window = {4, 1, 4, 4};
  cfg.miner.translation.model.embedding_dim = 16;
  cfg.miner.translation.model.hidden_dim = 16;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.trainer.steps = 400;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.seed = 3;
  cfg.miner.threads = 4;
  // Checkpoint sidecars double as the retrainer's warm-start source.
  cfg.miner.checkpoint_path = kMineJournal;
  cfg.detector.valid_lo = 55.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;
  cfg.detector.threads = 1;
  return cfg;
}

dl::LifecycleConfig lifecycle_config() {
  dl::LifecycleConfig cfg;
  cfg.drift.ewma_alpha = 0.3;
  cfg.drift.min_observations = 3;
  cfg.drift.hysteresis = 2;
  cfg.drift.drifting_drop = 5.0;
  cfg.drift.drifted_drop = 15.0;
  cfg.retrain.lr_factor = 0.5;
  cfg.retrain.steps = 600;
  cfg.retrain.journal_path = kRetrainJournal;
  cfg.retrain.warm_start_journal = kMineJournal;
  cfg.shadow.sample_rate = 1.0;
  cfg.shadow.min_windows = 40;
  cfg.shadow.alert_threshold = kAlertThreshold;
  cfg.shadow.max_alert_rate = kAlertThreshold;
  cfg.shadow.min_agreement = 0.0;
  cfg.shadow.max_failures = 0;
  return cfg;
}

struct Fixture {
  dd::PlantConfig pcfg = plant_config();
  dd::PlantDataset plant = dd::generate_plant(pcfg);
  dc::FrameworkConfig cfg = framework_config();
  dc::Framework active{cfg};
  dl::LifecycleConfig lcfg = lifecycle_config();
  std::unique_ptr<dl::LifecycleController> controller;
  std::vector<dl::LifecycleController::PeriodReport> reports;
  dl::LifecycleController::CandidateReport candidate;
  std::unique_ptr<dc::Framework> remine;

  Fixture() {
    std::remove(kMineJournal);
    std::remove(kRetrainJournal);
    std::remove(kCandidatePath);
    active.fit(plant.days_slice(0, 4), plant.days_slice(4, 2));
    controller = std::make_unique<dl::LifecycleController>(active, lcfg);
    for (std::size_t day = 6; day <= 19; ++day) {
      reports.push_back(controller->observe(plant.days_slice(day, 1)));
    }
    candidate = controller->build_candidate(retrain_train(), retrain_dev(),
                                            kCandidatePath);
    // From-scratch reference on the same fresh normal-operation days — the
    // precision bar the incremental candidate must come within 5% of.
    dc::FrameworkConfig scratch = cfg;
    scratch.miner.checkpoint_path.clear();
    remine = std::make_unique<dc::Framework>(scratch);
    remine->fit(retrain_train(), retrain_dev());
  }

  dc::MultivariateSeries retrain_train() const {
    return plant.days_slice(18, 3);
  }
  dc::MultivariateSeries retrain_dev() const { return plant.days_slice(21, 1); }

  /// Fraction of one day's windows at or above the alert threshold.
  double alert_rate(const dc::Framework& fw, std::size_t day) const {
    const auto result = fw.detect(plant.days_slice(day, 1));
    std::size_t alerts = 0;
    for (const double s : result.anomaly_scores) {
      alerts += s >= kAlertThreshold ? 1 : 0;
    }
    return result.anomaly_scores.empty()
               ? 0.0
               : static_cast<double>(alerts) /
                     static_cast<double>(result.anomaly_scores.size());
  }

  ds::ServeConfig serve_config() const {
    ds::ServeConfig scfg;
    scfg.detector = cfg.detector;
    scfg.workers = 2;
    scfg.max_batch = 8;
    // The promotion test holds two full days of results unpolled; keep the
    // pending budget (which counts unpolled deliveries) out of the way.
    scfg.limits.max_pending_windows = 256;
    scfg.shadow = lcfg.shadow;
    return scfg;
  }

  /// True when the graph node belongs to the drifting component.
  bool in_component0(std::size_t node) const {
    return active.graph().sensor_names()[node].rfind("c0.", 0) == 0;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Sequential OnlineDetector replay on the ACTIVE generation — the
/// bit-identity reference for every scenario where promotion must not have
/// touched serving.
std::vector<dc::OnlineDetector::WindowResult> replay_windows(
    const Fixture& f, const dc::MultivariateSeries& series) {
  dc::OnlineDetector online(f.active.graph(), f.active.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<dc::OnlineDetector::WindowResult> out;
  for (std::size_t t = 0; t < series.front().events.size(); ++t) {
    const auto r = online.push(tick_states(series, t));
    if (r) out.push_back(*r);
  }
  return out;
}

void feed(ds::SessionManager& manager, std::uint64_t session,
          const dc::MultivariateSeries& series, std::size_t ticks,
          std::size_t from = 0) {
  for (std::size_t t = from; t < ticks; ++t) {
    ASSERT_EQ(manager.ingest(session, tick_states(series, t)),
              ds::IngestStatus::kAccepted)
        << "tick " << t;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Warm-start plumbing

// The retrainer's sidecar lookup must agree with the miner's pair
// enumeration, or warm starts silently load the wrong model.
TEST(Lifecycle, PairIndexMatchesMinerEnumeration) {
  const std::size_t n = 5;
  std::size_t expected = 0;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      EXPECT_EQ(dl::pair_index_of(src, dst, n), expected) << src << "->" << dst;
      ++expected;
    }
  }
  EXPECT_EQ(expected, n * (n - 1));
}

// ---------------------------------------------------------------------------
// Config round-trip (ISSUE 8 satellite)

TEST(Lifecycle, ConfigRoundTripCoversLifecycle) {
  dio::RunConfig rc;
  rc.lifecycle.drift.ewma_alpha = 0.3;
  rc.lifecycle.drift.min_observations = 5;
  rc.lifecycle.drift.hysteresis = 4;
  rc.lifecycle.drift.drifting_drop = 7.5;
  rc.lifecycle.drift.drifted_drop = 20.0;
  rc.lifecycle.drift.break_rate = 0.6;
  rc.lifecycle.drift.max_unk_rate = 0.125;
  rc.lifecycle.retrain.lr_factor = 0.25;
  rc.lifecycle.retrain.steps = 123;
  rc.lifecycle.retrain.journal_path = "/tmp/retrain.journal";
  rc.lifecycle.retrain.warm_start_journal = "/tmp/mine.journal";
  rc.lifecycle.shadow.sample_rate = 0.5;
  rc.lifecycle.shadow.min_windows = 17;
  rc.lifecycle.shadow.alert_threshold = 0.45;
  rc.lifecycle.shadow.max_alert_rate = 0.1;
  rc.lifecycle.shadow.min_agreement = 0.8;
  rc.lifecycle.shadow.max_failures = 2;

  const std::string text = dio::run_config_to_json(rc);
  const dio::RunConfig parsed = dio::run_config_from_json(text);
  EXPECT_EQ(parsed.lifecycle.drift.ewma_alpha, 0.3);
  EXPECT_EQ(parsed.lifecycle.drift.min_observations, 5u);
  EXPECT_EQ(parsed.lifecycle.drift.hysteresis, 4u);
  EXPECT_EQ(parsed.lifecycle.drift.drifting_drop, 7.5);
  EXPECT_EQ(parsed.lifecycle.drift.drifted_drop, 20.0);
  EXPECT_EQ(parsed.lifecycle.drift.break_rate, 0.6);
  EXPECT_EQ(parsed.lifecycle.drift.max_unk_rate, 0.125);
  EXPECT_EQ(parsed.lifecycle.retrain.lr_factor, 0.25);
  EXPECT_EQ(parsed.lifecycle.retrain.steps, 123u);
  EXPECT_EQ(parsed.lifecycle.retrain.journal_path, "/tmp/retrain.journal");
  EXPECT_EQ(parsed.lifecycle.retrain.warm_start_journal, "/tmp/mine.journal");
  EXPECT_EQ(parsed.lifecycle.shadow.min_windows, 17u);
  EXPECT_EQ(parsed.lifecycle.shadow.max_failures, 2u);

  // One config file drives both halves of the loop: the loader mirrors
  // lifecycle.shadow into the serving config.
  EXPECT_EQ(parsed.serve.shadow.sample_rate, 0.5);
  EXPECT_EQ(parsed.serve.shadow.alert_threshold, 0.45);
  EXPECT_EQ(parsed.serve.shadow.max_alert_rate, 0.1);
  EXPECT_EQ(parsed.serve.shadow.min_agreement, 0.8);

  // Byte-exact fixed point: emit(parse(emit(x))) == emit(x).
  EXPECT_EQ(dio::run_config_to_json(parsed), text);

  // Partial override files work: absent keys keep their defaults.
  const dio::RunConfig partial = dio::run_config_from_json(
      R"({"lifecycle": {"drift": {"drifted_drop": 30.0}}})");
  EXPECT_EQ(partial.lifecycle.drift.drifted_drop, 30.0);
  EXPECT_EQ(partial.lifecycle.drift.drifting_drop,
            dl::DriftConfig{}.drifting_drop);

  // Strict validation names the offending dotted key.
  try {
    dio::run_config_from_json(
        R"({"lifecycle": {"drift": {"ewma_alphaz": 0.1}}})");
    FAIL() << "unknown key must throw";
  } catch (const desmine::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("lifecycle.drift.ewma_alphaz"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(dio::run_config_from_json(
                   R"({"lifecycle": {"drift": {"ewma_alpha": 0.0}}})"),
               desmine::PreconditionError);
  EXPECT_THROW(
      dio::run_config_from_json(
          R"({"lifecycle": {"drift": {"drifting_drop": 40.0}}})"),
      desmine::PreconditionError);  // would exceed the default drifted_drop
  EXPECT_THROW(dio::run_config_from_json(
                   R"({"lifecycle": {"shadow": {"sample_rate": 0.0}}})"),
               desmine::PreconditionError);
}

// ---------------------------------------------------------------------------
// Drift monitor semantics (stats-only graph, no trained models needed)

// One anomalous period — however severe — must never flip an edge's
// verdict: the hysteresis streak requires consecutive agreeing periods, and
// recovery back to stable is damped the same way.
TEST(Lifecycle, DriftMonitorHysteresisResistsTransients) {
  dc::MvrGraph graph({"a", "b", "c"});
  graph.add_edge({0, 1, /*bleu=*/90.0, 0.0, nullptr});
  graph.add_edge({1, 0, /*bleu=*/30.0, 0.0, nullptr});  // below the band
  dc::DetectorConfig detector;
  detector.valid_lo = 55.0;
  detector.valid_hi = 100.5;

  dl::DriftConfig cfg;
  cfg.ewma_alpha = 1.0;  // latest observation wins: exact arithmetic below
  cfg.min_observations = 3;
  cfg.hysteresis = 2;
  cfg.drifting_drop = 5.0;
  cfg.drifted_drop = 15.0;
  dl::DriftMonitor monitor(graph, detector, cfg);
  ASSERT_EQ(monitor.edge_count(), 1u);  // the out-of-band edge is ignored
  EXPECT_EQ(monitor.edges().front().baseline, 90.0);

  const dl::EdgeObservation good{/*bleu=*/90.0, /*break_rate=*/0.0};
  const dl::EdgeObservation crashed{/*bleu=*/10.0, /*break_rate=*/1.0};

  // Before min_observations, even a sustained deficit cannot transition.
  monitor.observe({crashed});
  monitor.observe({crashed});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kStable);

  // Settle, then inject one true-fault period: the streak resets on the
  // next good period and the verdict never moves.
  monitor.observe({good});
  monitor.observe({good});
  monitor.observe({crashed});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kStable);
  monitor.observe({good});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kStable);

  // A sustained deficit >= drifted_drop commits after `hysteresis`
  // consecutive periods.
  const dl::EdgeObservation drifted{/*bleu=*/70.0, /*break_rate=*/0.0};
  monitor.observe({drifted});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kStable);
  monitor.observe({drifted});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kDrifted);
  EXPECT_EQ(monitor.drifted_pairs(),
            (std::vector<std::pair<std::size_t, std::size_t>>{{0, 1}}));

  // Recovery is damped by the same streak.
  monitor.observe({good});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kDrifted);
  monitor.observe({good});
  EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kStable);
}

// The break-rate and <unk>-rate side channels flag an edge as drifting even
// while its BLEU deficit is still inside drifting_drop.
TEST(Lifecycle, DriftMonitorBreakRateAndUnkSignals) {
  dc::MvrGraph graph({"a", "b"});
  graph.add_edge({0, 1, /*bleu=*/90.0, 0.0, nullptr});
  dc::DetectorConfig detector;
  detector.valid_lo = 55.0;
  detector.valid_hi = 100.5;

  dl::DriftConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.min_observations = 1;
  cfg.hysteresis = 1;
  cfg.break_rate = 0.5;
  cfg.max_unk_rate = 0.25;
  {
    dl::DriftMonitor monitor(graph, detector, cfg);
    monitor.observe({{/*bleu=*/90.0, /*break_rate=*/0.9}});
    EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kDrifting);
  }
  {
    dl::DriftMonitor monitor(graph, detector, cfg);
    monitor.observe({{/*bleu=*/90.0, /*break_rate=*/0.0}},
                    /*sensor_unk=*/{0.5, 0.0});
    EXPECT_EQ(monitor.edges().front().state, dl::DriftState::kDrifting);
    EXPECT_EQ(monitor.edges().front().unk_rate, 0.5);
  }
}

// ---------------------------------------------------------------------------
// The full loop on the slow-drift corpus

// Acceptance core: drift is detected in the migrated component only, the
// retrain touches < 25% of the edges (warm-started from the miner's
// checkpoint sidecars), and the candidate restores detection precision to
// within 5% of a from-scratch remine — while still alerting on the true
// fault day, so the loop never retrains itself into masking anomalies.
TEST(Lifecycle, FullLoopRecoversFromSlowDrift) {
  auto& f = fixture();

  // The monitor covers exactly the valid-band (within-component) edges.
  ASSERT_EQ(f.controller->monitor().edge_count(), 10u);

  // The early ramp is indistinguishable from normal traffic: nothing
  // drifts in the first observation periods (days 6..8).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.reports[i].drifting, 0u) << "day " << 6 + i;
    EXPECT_EQ(f.reports[i].drifted, 0u) << "day " << 6 + i;
  }
  // By the end of the ramp every migrated-component edge is drifted and no
  // other edge ever left stable.
  const auto drifted = f.controller->drifted_pairs();
  ASSERT_EQ(drifted.size(), 5u);
  EXPECT_EQ(f.reports.back().drifted, 5u);
  EXPECT_EQ(f.reports.back().drifting, 0u);
  for (const auto& [src, dst] : drifted) {
    EXPECT_TRUE(f.in_component0(src) && f.in_component0(dst))
        << src << "->" << dst;
  }

  // Incremental: fewer than a quarter of the edges were retrained, every
  // retrain succeeded, and every one warm-started from a mined sidecar.
  const auto& report = f.candidate.retrain;
  EXPECT_EQ(f.candidate.edges_total, 30u);
  EXPECT_LT(static_cast<double>(drifted.size()),
            0.25 * static_cast<double>(f.candidate.edges_total));
  EXPECT_EQ(report.retrained, 5u);
  EXPECT_EQ(report.failed, 0u);
  for (const auto& pair : report.pairs) {
    EXPECT_TRUE(pair.ok) << pair.error;
    EXPECT_TRUE(pair.warm_started) << pair.src << "->" << pair.dst;
    EXPECT_FALSE(pair.model_file.empty());
    EXPECT_TRUE(file_exists(pair.model_file)) << pair.model_file;
  }
  EXPECT_TRUE(file_exists(kRetrainJournal));

  // Load the candidate artifact exactly the way the serving layer does.
  dc::FrameworkConfig overlay;
  overlay.detector = f.cfg.detector;
  const dc::Framework candidate =
      dio::load_framework(kCandidatePath, overlay);

  // Day 24 is drifted steady state, no fault. The stale active graph
  // false-alarms heavily; the candidate is within 5% of the from-scratch
  // remine; and the remine itself confirms the drifted regime is normal
  // (a freshly-mined graph does not flag it).
  const double active_rate = f.alert_rate(f.active, 24);
  const double candidate_rate = f.alert_rate(candidate, 24);
  const double remine_rate = f.alert_rate(*f.remine, 24);
  EXPECT_GE(active_rate, 0.4);
  EXPECT_LE(remine_rate, 0.3);
  EXPECT_NEAR(candidate_rate, remine_rate, 0.05);

  // Recovery must not cost sensitivity: the candidate still fires hard on
  // the injected true fault, like the remine does.
  EXPECT_GE(f.alert_rate(candidate, 22), 0.9);
  EXPECT_GE(f.alert_rate(*f.remine, 22), 0.9);
}

// Serving half of the loop: arm the candidate, shadow-score a day of
// drifted-but-normal live traffic, pass the gate, promote — and prove the
// client-visible stream never dropped or misordered a window, pre-promotion
// scores are bit-identical to the active replay, post-promotion serving is
// quiet, and the retired generation's models drain to zero.
TEST(Lifecycle, ShadowGatedPromotionRestoresQuietServing) {
  auto& f = fixture();
  ds::SessionManager manager(f.active.graph(), f.active.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  const auto traffic = f.plant.days_slice(23, 2);  // day 23 then day 24
  const std::size_t day_ticks = f.pcfg.minutes_per_day;

  EXPECT_EQ(manager.begin_shadow(kCandidatePath), 2u);
  feed(manager, id, traffic, day_ticks);
  manager.drain();

  const auto status = manager.shadow_status();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->candidate_id, 2u);
  EXPECT_EQ(status->path, kCandidatePath);
  EXPECT_GE(status->sampled, f.lcfg.shadow.min_windows);
  EXPECT_EQ(status->failures, 0u);
  // The candidate is quiet on drifted-normal traffic while the active
  // generation false-alarms — the exact asymmetry the gate promotes on.
  EXPECT_LE(status->alert_rate(), f.lcfg.shadow.max_alert_rate);
  EXPECT_GT(status->active_alerts, status->candidate_alerts);
  ASSERT_TRUE(manager.shadow_gate_passed());

  EXPECT_EQ(manager.promote(), 2u);
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_FALSE(manager.shadow_status().has_value());

  feed(manager, id, traffic, 2 * day_ticks, day_ticks);
  manager.drain();

  // Zero dropped, zero misordered across the promotion; every window that
  // completed before the swap is bit-identical to the active replay.
  const auto expected = replay_windows(f, traffic);
  const std::size_t pre_promote =
      replay_windows(f, f.plant.days_slice(23, 1)).size();
  std::size_t next_index = 0;
  std::size_t post_windows = 0, post_alerts = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_FALSE(r->shed);
    if (next_index < pre_promote) {
      EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
          << "window " << next_index;
    } else if (next_index >= pre_promote + 2) {
      // Past the boundary windows, generation 2 serves: drifted steady
      // state scores quiet again.
      ++post_windows;
      post_alerts += r->anomaly_score >= kAlertThreshold ? 1 : 0;
    }
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());
  ASSERT_GT(post_windows, 0u);
  EXPECT_LE(static_cast<double>(post_alerts) /
                static_cast<double>(post_windows),
            0.35);
  EXPECT_EQ(manager.stats(id).shed, 0u);

  // The stream is drained, so the retired generation's models must be
  // released; the scheduler drops its last edge states just after the
  // final finalize, so allow a brief grace period.
  for (int i = 0; i < 200 && manager.registry().retired_live() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(manager.registry().retired_live(), 0u);
}

// During the injected true-fault day both generations alert heavily, the
// quietness gate fails, promote() refuses, and rollback leaves the active
// generation serving bit-identically — the loop can never promote itself
// into masking a live anomaly.
TEST(Lifecycle, GateBlocksPromotionDuringTrueFault) {
  auto& f = fixture();
  ds::SessionManager manager(f.active.graph(), f.active.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  const auto fault_day = f.plant.days_slice(22, 1);

  EXPECT_EQ(manager.begin_shadow(kCandidatePath), 2u);
  feed(manager, id, fault_day, fault_day.front().events.size());
  manager.drain();

  const auto status = manager.shadow_status();
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->sampled, f.lcfg.shadow.min_windows);
  EXPECT_GT(status->alert_rate(), 0.5);  // the candidate sees the fault too
  EXPECT_FALSE(manager.shadow_gate_passed());
  EXPECT_THROW(manager.promote(), desmine::PreconditionError);
  EXPECT_EQ(manager.generation(), 1u);

  EXPECT_EQ(manager.rollback(), kCandidatePath);
  EXPECT_FALSE(manager.shadow_status().has_value());
  EXPECT_THROW(manager.rollback(), desmine::PreconditionError);

  // Serving never left the active generation: bit-identical to replay.
  const auto expected = replay_windows(f, fault_day);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());
  EXPECT_EQ(manager.registry().retired_live(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos: crash, corruption, poison

// A retrain crash (injected kAbort = simulated process death) aborts the
// whole cycle before any candidate artifact exists: nothing for the serving
// layer to arm, the controller's active state is untouched.
TEST(Lifecycle, RetrainCrashLeavesNoCandidateArtifact) {
  auto& f = fixture();
  ScopedFaults guard;
  const auto drifted = f.controller->drifted_pairs();
  ASSERT_FALSE(drifted.empty());
  const std::string key = std::to_string(drifted.front().first) + "->" +
                          std::to_string(drifted.front().second);
  dr::FaultInjector::instance().arm("lifecycle.retrain", key,
                                    dr::FaultAction::kAbort, 1);

  TempFile out("lifecycle_crash.bin");
  EXPECT_THROW(f.controller->build_candidate(f.retrain_train(),
                                             f.retrain_dev(), out.path),
               dr::Interrupted);
  EXPECT_FALSE(file_exists(out.path));
  // The monitor still holds its verdicts: the cycle can simply be re-run.
  EXPECT_EQ(f.controller->drifted_pairs().size(), drifted.size());
}

// A single pair's retrain failure (injected throw) is contained: the pair
// keeps its old edge in the candidate, everything else retrains, and the
// artifact is still written.
TEST(Lifecycle, RetrainFailureKeepsOldEdge) {
  auto& f = fixture();
  ScopedFaults guard;
  const auto drifted = f.controller->drifted_pairs();
  ASSERT_GE(drifted.size(), 2u);
  const auto [fsrc, fdst] = drifted.front();
  dr::FaultInjector::instance().arm(
      "lifecycle.retrain", std::to_string(fsrc) + "->" + std::to_string(fdst),
      dr::FaultAction::kThrow, 1);

  TempFile out("lifecycle_partial.bin");
  const auto report =
      f.controller->build_candidate(f.retrain_train(), f.retrain_dev(),
                                    out.path);
  EXPECT_EQ(report.retrain.failed, 1u);
  EXPECT_EQ(report.retrain.retrained, drifted.size() - 1);

  double active_bleu = 0.0;
  for (const auto& e : f.active.graph().edges()) {
    if (e.src == fsrc && e.dst == fdst) active_bleu = e.bleu;
  }
  for (const auto& pair : report.retrain.pairs) {
    if (pair.src != fsrc || pair.dst != fdst) {
      EXPECT_TRUE(pair.ok) << pair.error;
      continue;
    }
    EXPECT_FALSE(pair.ok);
    EXPECT_FALSE(pair.error.empty());
  }

  // The failed pair's edge in the candidate is the active edge, verbatim.
  dc::FrameworkConfig overlay;
  overlay.detector = f.cfg.detector;
  const dc::Framework candidate = dio::load_framework(out.path, overlay);
  bool found = false;
  for (const auto& e : candidate.graph().edges()) {
    if (e.src == fsrc && e.dst == fdst) {
      EXPECT_EQ(bits(e.bleu), bits(active_bleu));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// A corrupt candidate artifact must never arm a scorer: begin_shadow throws
// on the CRC check, no shadow state appears, and serving stays bit-identical
// on the untouched generation.
TEST(Lifecycle, CorruptCandidateArtifactNeverArms) {
  auto& f = fixture();
  TempFile corrupt("lifecycle_corrupt.bin");
  {
    std::ifstream in(kCandidatePath, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 64u);
    // Flip a bit inside a CRC-covered weight region (the candidate is a v4
    // mapped artifact; a blind mid-file flip could land in CRC-exempt
    // alignment padding). Weight CRCs verify lazily on materialization, so
    // this also proves begin_shadow's eager verify_all sweep.
    std::size_t flip_at = bytes.size() / 2;
    {
      const auto map = dio::ArtifactMap::open(kCandidatePath);
      for (const dio::EdgeEntry& e : map->edges()) {
        if (e.has_model) {
          flip_at = e.weights_off + e.weights_len / 2;
          break;
        }
      }
    }
    bytes[flip_at] ^= 0x40;
    std::ofstream out(corrupt.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  ds::SessionManager manager(f.active.graph(), f.active.encrypter(),
                             f.cfg.window, f.serve_config());
  EXPECT_THROW(manager.begin_shadow(corrupt.path), desmine::RuntimeError);
  EXPECT_FALSE(manager.shadow_status().has_value());
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_THROW(manager.promote(), desmine::PreconditionError);

  const std::uint64_t id = manager.open();
  const auto series = f.plant.days_slice(2, 1);
  feed(manager, id, series, 120);
  manager.drain();
  const auto expected = replay_windows(f, f.plant.days_slice(2, 1));
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_GT(next_index, 0u);
}

// A poisoned candidate (every shadow decode throws) accumulates failures,
// fails the gate, and rolls back — with live serving never perturbed: the
// injected point sits entirely on the shadow path.
TEST(Lifecycle, PoisonedCandidateFailsGateAndRollsBack) {
  auto& f = fixture();
  ds::SessionManager manager(f.active.graph(), f.active.encrypter(),
                             f.cfg.window, f.serve_config());
  const std::uint64_t id = manager.open();
  const auto series = f.plant.days_slice(2, 1);  // clean pre-drift day

  EXPECT_EQ(manager.begin_shadow(kCandidatePath), 2u);
  ScopedFaults guard;
  dr::FaultInjector::instance().arm("serve.shadow", std::string("*"),
                                    dr::FaultAction::kThrow);
  feed(manager, id, series, series.front().events.size());
  manager.drain();

  const auto status = manager.shadow_status();
  ASSERT_TRUE(status.has_value());
  EXPECT_GT(status->failures, 0u);
  EXPECT_FALSE(manager.shadow_gate_passed());
  EXPECT_THROW(manager.promote(), desmine::PreconditionError);
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_EQ(manager.rollback(), kCandidatePath);

  // The poison never reached the client-visible stream.
  const auto expected = replay_windows(f, series);
  std::size_t next_index = 0;
  while (const auto r = manager.poll(id)) {
    ASSERT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_TRUE(r->failed.empty());
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  EXPECT_EQ(next_index, expected.size());
  EXPECT_EQ(manager.registry().retired_live(), 0u);
}
