// Tests for the baseline learners: decision tree, random forest (incl.
// feature importance and class balancing), one-class SVM, and metrics.
#include <gtest/gtest.h>

#include <numeric>

#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/ocsvm.h"
#include "ml/random_forest.h"
#include "util/error.h"
#include "util/rng.h"

namespace ml = desmine::ml;
using desmine::util::Rng;

namespace {

/// Linearly separable 2-D blobs: class = (x0 > 0).
void make_blobs(std::size_t n, ml::FeatureMatrix& rows,
                std::vector<int>& labels, Rng& rng, double margin = 1.0) {
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const double cx = label == 1 ? margin : -margin;
    rows.push_back({cx + rng.normal(0, 0.3), rng.normal(0, 1.0)});
    labels.push_back(label);
  }
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

}  // namespace

// ----------------------------------------------------------- metrics -------

TEST(Metrics, ConfusionAndDerived) {
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const std::vector<int> preds = {1, 1, 0, 0, 0, 1};
  const auto c = ml::confusion(labels, preds);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_NEAR(c.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(c.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, EmptyDenominatorsAreZero) {
  ml::Confusion c;
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
  EXPECT_THROW(ml::confusion({1}, {}), desmine::PreconditionError);
}

// ----------------------------------------------------------- tree ----------

TEST(DecisionTree, FitsSeparableData) {
  Rng rng(1);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  make_blobs(200, rows, labels, rng);
  ml::DecisionTree tree;
  ml::TreeConfig cfg;
  Rng tree_rng(2);
  tree.fit(rows, labels, all_indices(rows.size()), cfg, tree_rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    correct += tree.predict(rows[i]) == labels[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / rows.size(), 0.95);
}

TEST(DecisionTree, PureLeafWhenSingleClass) {
  ml::FeatureMatrix rows = {{0.0}, {1.0}, {2.0}};
  std::vector<int> labels = {1, 1, 1};
  ml::DecisionTree tree;
  ml::TreeConfig cfg;
  Rng rng(3);
  tree.fit(rows, labels, all_indices(3), cfg, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_proba({5.0}), 1.0);
}

TEST(DecisionTree, DepthLimitRespected) {
  Rng rng(4);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({rng.uniform(0, 1)});
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);  // unlearnable noise
  }
  ml::DecisionTree tree;
  ml::TreeConfig cfg;
  cfg.max_depth = 1;
  Rng tree_rng(5);
  tree.fit(rows, labels, all_indices(rows.size()), cfg, tree_rng);
  EXPECT_LE(tree.node_count(), 3u);  // root + two children at most
}

TEST(DecisionTree, ImportanceConcentratesOnInformativeFeature) {
  Rng rng(6);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    // Feature 1 is informative; features 0 and 2 are noise.
    rows.push_back({rng.normal(0, 1), label == 1 ? 2.0 + rng.normal(0, 0.2)
                                                 : -2.0 + rng.normal(0, 0.2),
                    rng.normal(0, 1)});
    labels.push_back(label);
  }
  ml::DecisionTree tree;
  ml::TreeConfig cfg;
  Rng tree_rng(7);
  tree.fit(rows, labels, all_indices(rows.size()), cfg, tree_rng);
  const auto& imp = tree.feature_importance();
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
}

// ----------------------------------------------------------- forest --------

TEST(RandomForest, BeatsChanceOnSeparableData) {
  Rng rng(8);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  make_blobs(400, rows, labels, rng);
  ml::RandomForest forest;
  ml::ForestConfig cfg;
  cfg.num_trees = 30;
  forest.fit(rows, labels, cfg);
  EXPECT_EQ(forest.tree_count(), 30u);

  ml::FeatureMatrix test_rows;
  std::vector<int> test_labels;
  make_blobs(100, test_rows, test_labels, rng);
  const auto c = ml::confusion(test_labels, forest.predict_all(test_rows));
  EXPECT_GT(c.accuracy(), 0.95);
}

TEST(RandomForest, ImportanceNormalizedAndRanked) {
  Rng rng(9);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.normal(0, 1),
                    label == 1 ? 1.5 + rng.normal(0, 0.3)
                               : -1.5 + rng.normal(0, 0.3),
                    rng.normal(0, 1)});
    labels.push_back(label);
  }
  ml::RandomForest forest;
  ml::ForestConfig cfg;
  cfg.num_trees = 25;
  forest.fit(rows, labels, cfg);
  const auto imp = forest.feature_importance();
  double sum = 0.0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(forest.ranked_features()[0], 1u);
}

TEST(RandomForest, DeterministicForSameSeed) {
  Rng rng(10);
  ml::FeatureMatrix rows;
  std::vector<int> labels;
  make_blobs(100, rows, labels, rng);
  ml::ForestConfig cfg;
  cfg.num_trees = 10;
  cfg.seed = 77;
  ml::RandomForest f1, f2;
  f1.fit(rows, labels, cfg);
  f2.fit(rows, labels, cfg);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(f1.predict_proba(row), f2.predict_proba(row));
  }
}

TEST(RandomForest, BalancedIndicesEqualizeClasses) {
  std::vector<int> labels(100, 0);
  for (int i = 0; i < 10; ++i) labels[static_cast<std::size_t>(i)] = 1;
  Rng rng(11);
  const auto idx = ml::balanced_indices(labels, rng);
  EXPECT_EQ(idx.size(), 20u);
  std::size_t ones = 0;
  for (std::size_t i : idx) ones += labels[i];
  EXPECT_EQ(ones, 10u);
}

TEST(RandomForest, BalancedIndicesNoPositivesThrows) {
  std::vector<int> labels(10, 0);
  Rng rng(12);
  EXPECT_THROW(ml::balanced_indices(labels, rng), desmine::PreconditionError);
}

// ----------------------------------------------------------- oc-svm --------

TEST(OneClassSvm, SeparatesOutliersFromCluster) {
  Rng rng(13);
  ml::FeatureMatrix train;
  for (int i = 0; i < 150; ++i) {
    train.push_back({rng.normal(0, 1), rng.normal(0, 1)});
  }
  ml::OneClassSvm svm;
  ml::OcSvmConfig cfg;
  cfg.nu = 0.1;
  svm.fit(train, cfg);
  EXPECT_GT(svm.support_vector_count(), 0u);

  // Inliers near the training cloud are mostly accepted.
  std::size_t inlier_accepted = 0;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.normal(0, 0.5), rng.normal(0, 0.5)};
    inlier_accepted += svm.predict_anomaly(x) == 0 ? 1 : 0;
  }
  EXPECT_GT(inlier_accepted, 40u);

  // Far-away points are flagged anomalous.
  std::size_t outlier_flagged = 0;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {8.0 + rng.normal(0, 0.3),
                                   8.0 + rng.normal(0, 0.3)};
    outlier_flagged += svm.predict_anomaly(x) == 1 ? 1 : 0;
  }
  EXPECT_GT(outlier_flagged, 45u);
}

TEST(OneClassSvm, NuBoundsTrainingOutlierFraction) {
  Rng rng(14);
  ml::FeatureMatrix train;
  for (int i = 0; i < 200; ++i) {
    train.push_back({rng.normal(0, 1), rng.normal(0, 1)});
  }
  ml::OneClassSvm svm;
  ml::OcSvmConfig cfg;
  cfg.nu = 0.2;
  svm.fit(train, cfg);
  std::size_t rejected = 0;
  for (const auto& row : train) rejected += svm.predict_anomaly(row);
  // ν is an upper bound on the training rejection fraction (allow slack for
  // the approximate solver).
  EXPECT_LE(static_cast<double>(rejected) / train.size(), 0.3);
}

TEST(OneClassSvm, StandardizationMakesScalesComparable) {
  // A feature measured in huge units must not dominate the kernel.
  Rng rng(15);
  ml::FeatureMatrix train;
  for (int i = 0; i < 120; ++i) {
    train.push_back({rng.normal(0, 1) * 1e6, rng.normal(0, 1)});
  }
  ml::OneClassSvm svm;
  ml::OcSvmConfig cfg;
  svm.fit(train, cfg);
  // An outlier in the *small-scale* feature should still be flagged.
  EXPECT_EQ(svm.predict_anomaly({0.0, 50.0}), 1);
}

TEST(OneClassSvm, UnfittedAndBadConfigThrow) {
  ml::OneClassSvm svm;
  EXPECT_THROW(svm.decision({1.0}), desmine::PreconditionError);
  ml::OcSvmConfig bad;
  bad.nu = 0.0;
  EXPECT_THROW(svm.fit({{1.0}}, bad), desmine::PreconditionError);
  EXPECT_THROW(svm.fit({}, ml::OcSvmConfig{}), desmine::PreconditionError);
}
