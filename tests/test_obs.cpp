// Unit tests for desmine::obs — logger level filtering and sinks, metrics
// correctness under concurrent writers, span nesting, and JSON export.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace obs = desmine::obs;
namespace du = desmine::util;

namespace {

/// Collects records in memory so tests can assert on what got through.
class CaptureSink : public obs::Sink {
 public:
  void write(const obs::LogRecord& record) override {
    records.push_back(record);
  }
  std::vector<obs::LogRecord> records;
};

/// Minimal recursive-descent JSON validity checker (no value semantics —
/// just "would a real parser accept this"). Lets the export tests assert
/// round-trippable output without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Restores the global logger to its default state when a test exits.
class LoggerGuard {
 public:
  ~LoggerGuard() {
    obs::logger().set_level(obs::Level::kInfo);
    obs::logger().set_sink(std::make_shared<obs::StderrSink>());
  }
};

}  // namespace

// ---------------------------------------------------------------- json -----

TEST(Json, WriterProducesValidDocuments) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("name").value("de\"smine\n");
  w.key("pi").value(3.25);
  w.key("n").value(std::uint64_t{42});
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("items").begin_array().value(1.0).value(2.0).end_array();
  w.key("nested").begin_object().key("x").value(1.0).end_object();
  w.end_object();
  EXPECT_TRUE(JsonChecker(w.str()).valid()) << w.str();
  EXPECT_NE(w.str().find("\\\""), std::string::npos);
  EXPECT_NE(w.str().find("\\n"), std::string::npos);
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// -------------------------------------------------------------- logger -----

TEST(Logger, LevelFiltering) {
  LoggerGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  obs::logger().set_sink(sink);
  obs::logger().set_level(obs::Level::kWarn);

  obs::logger().debug("below threshold");
  obs::logger().info("below threshold");
  obs::logger().warn("at threshold");
  obs::logger().error("above threshold");

  ASSERT_EQ(sink->records.size(), 2u);
  EXPECT_EQ(sink->records[0].message, "at threshold");
  EXPECT_EQ(sink->records[1].level, obs::Level::kError);

  obs::logger().set_level(obs::Level::kOff);
  obs::logger().error("dropped entirely");
  EXPECT_EQ(sink->records.size(), 2u);
}

TEST(Logger, MacrosRespectRuntimeLevel) {
  LoggerGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  obs::logger().set_sink(sink);
  obs::logger().set_level(obs::Level::kInfo);

  DESMINE_LOG_DEBUG("filtered", {obs::kv("k", 1)});
  DESMINE_LOG_INFO("kept", {obs::kv("k", 2), obs::kv("s", "str")});

  ASSERT_EQ(sink->records.size(), 1u);
  EXPECT_EQ(sink->records[0].message, "kept");
  ASSERT_EQ(sink->records[0].fields.size(), 2u);
  EXPECT_EQ(sink->records[0].fields[0].key, "k");
  EXPECT_EQ(sink->records[0].fields[0].value, "2");
  EXPECT_EQ(sink->records[0].fields[1].value, "str");
}

TEST(Logger, KvFormatsTypes) {
  EXPECT_EQ(obs::kv("a", 3).value, "3");
  EXPECT_EQ(obs::kv("a", std::size_t{7}).value, "7");
  EXPECT_EQ(obs::kv("a", true).value, "true");
  EXPECT_EQ(obs::kv("a", "text").value, "text");
  EXPECT_EQ(obs::kv("a", 2.5).value, "2.5");
}

TEST(Logger, TextFormatContainsFields) {
  obs::LogRecord record;
  record.level = obs::Level::kWarn;
  record.message = "something happened";
  record.fields = {obs::kv("sensor", "s1"), obs::kv("v", 1.5),
                   obs::kv("note", "two words")};
  record.time = std::chrono::system_clock::now();

  const std::string line = obs::format_text(record);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("something happened"), std::string::npos);
  EXPECT_NE(line.find("sensor=s1"), std::string::npos);
  EXPECT_NE(line.find("v=1.5"), std::string::npos);
  // Values with spaces are quoted.
  EXPECT_NE(line.find("note=\"two words\""), std::string::npos);
}

TEST(Logger, JsonLinesSinkEmitsValidJson) {
  LoggerGuard guard;
  std::ostringstream out;
  obs::logger().set_sink(std::make_shared<obs::JsonLinesSink>(out));
  obs::logger().set_level(obs::Level::kDebug);
  obs::logger().debug("structured \"record\"",
                      {obs::kv("pair", 12), obs::kv("bleu", 86.5)});

  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing newline
  EXPECT_TRUE(JsonChecker(line).valid()) << line;
  EXPECT_NE(line.find("\"level\":\"debug\""), std::string::npos);
  EXPECT_NE(line.find("\"pair\":\"12\""), std::string::npos);
}

TEST(Logger, ConcurrentLoggingKeepsAllRecords) {
  LoggerGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  obs::logger().set_sink(sink);
  obs::logger().set_level(obs::Level::kInfo);

  du::ThreadPool pool(4);
  pool.parallel_for(64, [](std::size_t i) {
    obs::logger().info("worker message", {obs::kv("i", i)});
  });
  EXPECT_EQ(sink->records.size(), 64u);
}

TEST(Logger, ParseLevelRoundTrip) {
  for (obs::Level l : {obs::Level::kTrace, obs::Level::kDebug,
                       obs::Level::kInfo, obs::Level::kWarn,
                       obs::Level::kError, obs::Level::kOff}) {
    EXPECT_EQ(obs::parse_level(obs::level_name(l)), l);
  }
  EXPECT_THROW(obs::parse_level("loud"), desmine::PreconditionError);
}

// ------------------------------------------------------------- metrics -----

TEST(Metrics, CounterUnderConcurrentWriters) {
  obs::Counter& c = obs::metrics().counter("test.counter.concurrent");
  c.reset();
  du::ThreadPool pool(8);
  pool.parallel_for(8, [&](std::size_t) {
    for (int i = 0; i < 10000; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Metrics, GaugeSetAndBalancedAdds) {
  obs::Gauge& g = obs::metrics().gauge("test.gauge.balanced");
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  du::ThreadPool pool(4);
  pool.parallel_for(32, [&](std::size_t) {
    for (int i = 0; i < 500; ++i) {
      g.add(1.0);
      g.add(-1.0);
    }
  });
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Metrics, HistogramBasics) {
  obs::Histogram& h = obs::metrics().histogram("test.hist.basics");
  h.reset();
  for (double v : {0.5, 1.0, 2.0, 4.0, 100.0}) h.record(v);

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 107.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 21.5);
  // The p50 upper-bound estimate must bracket the true median (2.0).
  EXPECT_GE(snap.quantile(0.5), 2.0);
  EXPECT_LE(snap.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
}

TEST(Metrics, HistogramQuantileInterpolation) {
  // A single-valued distribution must report that value at every quantile:
  // the estimate interpolates within the bucket and clamps to [min, max],
  // so it cannot drift to the bucket's upper bound (100 lands in the
  // (64, 128] bucket — the old upper-bound estimator answered 128).
  obs::Histogram single;
  for (int i = 0; i < 1000; ++i) single.record(100.0);
  const auto one = single.snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(one.quantile(q), 100.0) << "q=" << q;
  }

  // Two bucket-separated values: interpolated quantiles stay inside each
  // value's own bucket and the endpoints are exact.
  obs::Histogram two;
  for (int i = 0; i < 50; ++i) two.record(2.0);
  for (int i = 0; i < 50; ++i) two.record(1000.0);
  const auto snap = two.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
  EXPECT_LE(snap.quantile(0.25), obs::Histogram::bucket_upper(
                                     obs::Histogram::bucket_of(2.0)));
  EXPECT_GE(snap.quantile(0.25), snap.min);
  EXPECT_GT(snap.quantile(0.95), obs::Histogram::bucket_upper(
                                     obs::Histogram::bucket_of(2.0)));
  EXPECT_LE(snap.quantile(0.95), snap.max);
}

TEST(Metrics, HistogramBucketsMonotonic) {
  for (std::size_t b = 1; b + 1 < obs::Histogram::kBuckets; ++b) {
    EXPECT_LT(obs::Histogram::bucket_upper(b - 1),
              obs::Histogram::bucket_upper(b));
    // A value at a bucket's upper bound lands in that bucket.
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_upper(b)), b);
  }
  EXPECT_EQ(obs::Histogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0u);
}

TEST(Metrics, HistogramUnderConcurrentWriters) {
  obs::Histogram& h = obs::metrics().histogram("test.hist.concurrent");
  h.reset();
  constexpr int kPerTask = 1000;
  du::ThreadPool pool(8);
  pool.parallel_for(16, [&](std::size_t t) {
    for (int i = 0; i < kPerTask; ++i) {
      h.record(static_cast<double>(t + 1));
    }
  });
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 16u * kPerTask);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 16.0);
  double expected_sum = 0.0;
  for (int t = 1; t <= 16; ++t) expected_sum += t * kPerTask;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(Metrics, RegistryReturnsStableInstances) {
  obs::Counter& a = obs::metrics().counter("test.registry.same");
  obs::Counter& b = obs::metrics().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, JsonDumpIsValidAndNamed) {
  obs::metrics().counter("test.dump.counter").inc(2);
  obs::metrics().gauge("test.dump.gauge").set(1.5);
  obs::metrics().histogram("test.dump.hist").record(3.0);

  const std::string json = obs::metrics().to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.dump.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.dump.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.dump.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string text = obs::metrics().to_text();
  EXPECT_NE(text.find("test.dump.counter"), std::string::npos);
  EXPECT_NE(text.find("test.dump.hist"), std::string::npos);
}

TEST(Metrics, ThreadPoolReportsQueueMetrics) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t submitted_before =
      m.counter("threadpool.tasks_submitted").value();
  const std::uint64_t completed_before =
      m.counter("threadpool.tasks_completed").value();
  {
    du::ThreadPool pool(2);
    pool.parallel_for(32, [](std::size_t) {});
  }
  EXPECT_EQ(m.counter("threadpool.tasks_submitted").value(),
            submitted_before + 32);
  EXPECT_EQ(m.counter("threadpool.tasks_completed").value(),
            completed_before + 32);
  EXPECT_DOUBLE_EQ(m.gauge("threadpool.queue_depth").value(), 0.0);
  EXPECT_GE(m.histogram("threadpool.queue_wait_us").snapshot().count, 32u);
}

// --------------------------------------------------------------- trace -----

namespace {

const obs::SpanRecord& find_span(const std::vector<obs::SpanRecord>& records,
                                 const std::string& name) {
  for (const auto& r : records) {
    if (r.name == name) return r;
  }
  ADD_FAILURE() << "span not found: " << name;
  static obs::SpanRecord missing;
  return missing;
}

}  // namespace

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::tracer().disable();
  obs::tracer().reset();
  {
    obs::Span outer("outer");
    EXPECT_FALSE(outer.active());
  }
  EXPECT_TRUE(obs::tracer().records().empty());
}

TEST(Trace, SpansNestOnOneThread) {
  obs::tracer().reset();
  obs::tracer().enable();
  {
    obs::Span root("root");
    {
      obs::Span child("child", {obs::kv("k", "v")});
      { obs::Span grandchild("grandchild"); }
    }
    { obs::Span sibling("sibling"); }
  }
  obs::tracer().disable();

  const auto records = obs::tracer().records();
  ASSERT_EQ(records.size(), 4u);
  const auto& root = find_span(records, "root");
  const auto& child = find_span(records, "child");
  const auto& grandchild = find_span(records, "grandchild");
  const auto& sibling = find_span(records, "sibling");

  EXPECT_EQ(root.parent, obs::SpanRecord::kNoParent);
  EXPECT_EQ(records[child.parent].name, "root");
  EXPECT_EQ(records[grandchild.parent].name, "child");
  EXPECT_EQ(records[sibling.parent].name, "root");
  ASSERT_EQ(child.attrs.size(), 1u);
  EXPECT_EQ(child.attrs[0].key, "k");

  // Children are contained in their parent's interval.
  EXPECT_GE(child.start_ns, root.start_ns);
  EXPECT_LE(child.end_ns, root.end_ns);
  EXPECT_GE(grandchild.start_ns, child.start_ns);
  EXPECT_LE(grandchild.end_ns, child.end_ns);
}

TEST(Trace, AnnotateAttachesFieldsOnClose) {
  obs::tracer().reset();
  obs::tracer().enable();
  {
    obs::Span span("annotated");
    span.annotate(obs::kv("bleu", 91.25));
  }
  obs::tracer().disable();
  const auto records = obs::tracer().records();
  const auto& span = find_span(records, "annotated");
  ASSERT_EQ(span.attrs.size(), 1u);
  EXPECT_EQ(span.attrs[0].key, "bleu");
}

TEST(Trace, PoolWorkerSpansCarryTheirThread) {
  obs::tracer().reset();
  obs::tracer().enable();
  {
    obs::Span root("root");
    du::ThreadPool pool(2);
    pool.parallel_for(4, [](std::size_t i) {
      obs::Span work("work", {obs::kv("i", i)});
    });
  }
  obs::tracer().disable();

  const auto records = obs::tracer().records();
  ASSERT_EQ(records.size(), 5u);
  const auto& root = find_span(records, "root");
  for (const auto& r : records) {
    if (r.name != "work") continue;
    // Pool workers run on other threads; their spans are roots of those
    // threads' tracks, not children of "root".
    EXPECT_NE(r.thread_id, root.thread_id);
    EXPECT_EQ(r.parent, obs::SpanRecord::kNoParent);
  }
}

TEST(Trace, ExportsAreValidJson) {
  obs::tracer().reset();
  obs::tracer().enable();
  {
    obs::Span root("fit");
    { obs::Span child("encrypt", {obs::kv("sensors", 17)}); }
    { obs::Span child("mine"); }
  }
  obs::tracer().disable();

  const std::string chrome = obs::tracer().to_chrome_json();
  EXPECT_TRUE(JsonChecker(chrome).valid()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"fit\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  const std::string tree = obs::tracer().to_tree_json();
  EXPECT_TRUE(JsonChecker(tree).valid()) << tree;
  // "encrypt" and "mine" nest under "fit" in the tree.
  const auto fit_pos = tree.find("\"fit\"");
  const auto children_pos = tree.find("\"children\"", fit_pos);
  const auto encrypt_pos = tree.find("\"encrypt\"", fit_pos);
  EXPECT_NE(children_pos, std::string::npos);
  EXPECT_NE(encrypt_pos, std::string::npos);
  EXPECT_LT(children_pos, encrypt_pos);
}

TEST(Trace, ScopedTimerFeedsPhaseHistogram) {
  obs::Histogram& h = obs::metrics().histogram("phase.test-phase.wall_ms");
  h.reset();
  { obs::ScopedTimer timer("test-phase"); }
  { obs::ScopedTimer timer("test-phase"); }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_GE(snap.sum, 0.0);
}
