// Tests for language sequence generation (§II-A2), including parameterized
// property tests over window configurations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/language.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;

TEST(Language, WordsWithUnitStrideOverlap) {
  dc::WindowConfig cfg;
  cfg.word_length = 3;
  cfg.word_stride = 1;
  cfg.sentence_length = 2;
  cfg.sentence_stride = 2;
  const dc::LanguageGenerator gen(cfg);
  const auto words = gen.to_words("abcde");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "abc");
  EXPECT_EQ(words[1], "bcd");
  EXPECT_EQ(words[2], "cde");
}

TEST(Language, WordsWithLargerStride) {
  dc::WindowConfig cfg;
  cfg.word_length = 2;
  cfg.word_stride = 3;
  const dc::LanguageGenerator gen(cfg);
  const auto words = gen.to_words("abcdefgh");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "ab");
  EXPECT_EQ(words[1], "de");
  EXPECT_EQ(words[2], "gh");
}

TEST(Language, ShortInputYieldsNothing) {
  dc::WindowConfig cfg;
  cfg.word_length = 10;
  const dc::LanguageGenerator gen(cfg);
  EXPECT_TRUE(gen.to_words("abc").empty());
  EXPECT_TRUE(gen.generate("abc").empty());
  EXPECT_EQ(gen.sentence_count(3), 0u);
}

TEST(Language, SentencesNonOverlappingByDefault) {
  dc::WindowConfig cfg;
  cfg.word_length = 1;
  cfg.word_stride = 1;
  cfg.sentence_length = 3;
  cfg.sentence_stride = 3;
  const dc::LanguageGenerator gen(cfg);
  const auto sentences = gen.generate("abcdefgh");  // 8 words -> 2 sentences
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sentences[1], (std::vector<std::string>{"d", "e", "f"}));
}

TEST(Language, SlidingSentencesIncreaseDetectionGranularity) {
  dc::WindowConfig cfg;
  cfg.word_length = 1;
  cfg.sentence_length = 3;
  cfg.sentence_stride = 1;
  const dc::LanguageGenerator gen(cfg);
  // 6 words, window 3, stride 1 -> 4 sentences (the paper's finer mode).
  EXPECT_EQ(gen.generate("abcdef").size(), 4u);
}

TEST(Language, PaperDefaultsProduce72SentencesPerDay) {
  // §III-A1: word=10 chars, stride 1; sentence=20 words, stride 20.
  // 1440 minutes/day -> 1431 words -> 71 full sentences from one day; the
  // paper counts 72 per day over a continuous month (word windows straddle
  // day boundaries). Verify both views.
  const dc::LanguageGenerator gen(dc::WindowConfig{});
  EXPECT_EQ(gen.sentence_count(1440), 71u);
  // 30 continuous days: (43200 - 10 + 1) = 43191 words -> 2159 sentences,
  // i.e. just under 72 per day.
  EXPECT_EQ(gen.sentence_count(30 * 1440), 2159u);
  EXPECT_NEAR(static_cast<double>(gen.sentence_count(30 * 1440)) / 30.0, 72.0,
              1.0);
}

TEST(Language, VocabularySizeCountsDistinctWords) {
  dc::WindowConfig cfg;
  cfg.word_length = 2;
  cfg.word_stride = 1;
  const dc::LanguageGenerator gen(cfg);
  // Words: ab, ba, ab, ba -> 2 distinct.
  EXPECT_EQ(gen.vocabulary_size("ababa"), 2u);
  // Constant stream has a single word.
  EXPECT_EQ(gen.vocabulary_size("aaaaa"), 1u);
}

TEST(Language, InvalidConfigThrows) {
  dc::WindowConfig cfg;
  cfg.word_length = 0;
  EXPECT_THROW(dc::LanguageGenerator{cfg}, desmine::PreconditionError);
  cfg = {};
  cfg.sentence_stride = 0;
  EXPECT_THROW(dc::LanguageGenerator{cfg}, desmine::PreconditionError);
}

// ------------------------- parameterized property tests ---------------------

struct WindowCase {
  std::size_t word_len, word_stride, sent_len, sent_stride, chars;
};

class WindowSweep : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowSweep, SentenceCountFormulaMatchesGeneration) {
  const WindowCase& wc = GetParam();
  dc::WindowConfig cfg;
  cfg.word_length = wc.word_len;
  cfg.word_stride = wc.word_stride;
  cfg.sentence_length = wc.sent_len;
  cfg.sentence_stride = wc.sent_stride;
  const dc::LanguageGenerator gen(cfg);

  desmine::util::Rng rng(wc.chars);
  std::string chars;
  for (std::size_t i = 0; i < wc.chars; ++i) {
    chars.push_back(static_cast<char>('a' + rng.index(3)));
  }
  const auto sentences = gen.generate(chars);
  EXPECT_EQ(sentences.size(), gen.sentence_count(wc.chars));
  for (const auto& s : sentences) {
    EXPECT_EQ(s.size(), wc.sent_len);
    for (const auto& w : s) EXPECT_EQ(w.size(), wc.word_len);
  }
}

TEST_P(WindowSweep, SentencesAreTimeAlignedSlicesOfTheStream) {
  // Sentence k, word 0 must start at char k*sent_stride*word_stride — the
  // alignment property that makes per-sensor corpora parallel.
  const WindowCase& wc = GetParam();
  dc::WindowConfig cfg;
  cfg.word_length = wc.word_len;
  cfg.word_stride = wc.word_stride;
  cfg.sentence_length = wc.sent_len;
  cfg.sentence_stride = wc.sent_stride;
  const dc::LanguageGenerator gen(cfg);

  std::string chars;
  for (std::size_t i = 0; i < wc.chars; ++i) {
    chars.push_back(static_cast<char>('a' + (i % 26)));
  }
  const auto sentences = gen.generate(chars);
  for (std::size_t k = 0; k < sentences.size(); ++k) {
    const std::size_t start = k * wc.sent_stride * wc.word_stride;
    EXPECT_EQ(sentences[k][0], chars.substr(start, wc.word_len));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Windows, WindowSweep,
    ::testing::Values(WindowCase{10, 1, 20, 20, 1440},
                      WindowCase{5, 1, 7, 1, 200},
                      WindowCase{3, 2, 4, 4, 300},
                      WindowCase{1, 1, 5, 5, 50},
                      WindowCase{8, 8, 3, 3, 500},
                      WindowCase{2, 1, 2, 1, 10}));
