// Conformance suite for the dispatched compute-kernel backends (ISSUE 10,
// DESIGN.md §16). Every backend is checked against the scalar reference:
// blocked must be bit-identical, AVX2 satisfies the documented tolerance
// contract for GEMM and the LSTM gate fusion while staying bit-exact for
// axpy / row bias / softmax / argmax, and the int8 decode path is accepted
// by score tolerance + argmax-decode identity against f32.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/gradcheck.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nmt/translation.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "text/vocabulary.h"
#include "util/error.h"
#include "util/rng.h"

namespace dt = desmine::tensor;
namespace dk = desmine::tensor::kernels;
namespace dn = desmine::nn;
using desmine::PreconditionError;
using desmine::util::Rng;

namespace {

/// Pin `b` for a test body and restore the startup default on scope exit so
/// tests cannot leak a backend choice into each other.
class BackendGuard {
 public:
  explicit BackendGuard(dk::Backend b) { dk::set_backend(b); }
  ~BackendGuard() { dk::select_backend("auto"); }
};

dt::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                         float scale = 1.0f) {
  dt::Matrix m(rows, cols);
  m.init_uniform(rng, scale);
  return m;
}

/// Double-precision naive GEMM: the order-independent ground truth the
/// scalar reference is compared against (within f32 rounding).
dt::Matrix naive_gemm(dt::Transpose ta, dt::Transpose tb, float alpha,
                      const dt::Matrix& a, const dt::Matrix& b, float beta,
                      const dt::Matrix& out_prev) {
  const std::size_t m =
      ta == dt::Transpose::kNo ? a.rows() : a.cols();
  const std::size_t k =
      ta == dt::Transpose::kNo ? a.cols() : a.rows();
  const std::size_t n =
      tb == dt::Transpose::kNo ? b.cols() : b.rows();
  dt::Matrix out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta == dt::Transpose::kNo ? a(i, kk) : a(kk, i);
        const float bv = tb == dt::Transpose::kNo ? b(kk, j) : b(j, kk);
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      const double prev = beta == 0.0f ? 0.0 : out_prev(i, j);
      out(i, j) = static_cast<float>(static_cast<double>(alpha) * acc +
                                     static_cast<double>(beta) * prev);
    }
  }
  return out;
}

void expect_close(const dt::Matrix& got, const dt::Matrix& want, double rel,
                  double abs, const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      const double g = got(i, j);
      const double w = want(i, j);
      const double tol = abs + rel * std::abs(w);
      ASSERT_NEAR(g, w, tol) << what << " at (" << i << "," << j << ")";
    }
  }
}

void expect_bitwise_equal(const dt::Matrix& got, const dt::Matrix& want,
                          const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  ASSERT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)),
            0)
      << what << " is not bit-identical";
}

struct GemmCase {
  dt::Transpose ta, tb;
  std::size_t m, k, n;
  float alpha, beta;
};

/// Ragged shapes (no multiple-of-vector-width dimensions) plus square and
/// degenerate cases; exercises the AVX2 tail loops.
const std::vector<GemmCase> kGemmCases = {
    {dt::Transpose::kNo, dt::Transpose::kNo, 1, 1, 1, 1.0f, 0.0f},
    {dt::Transpose::kNo, dt::Transpose::kNo, 3, 7, 5, 1.0f, 0.0f},
    {dt::Transpose::kNo, dt::Transpose::kNo, 8, 17, 9, 0.5f, 1.0f},
    {dt::Transpose::kNo, dt::Transpose::kNo, 33, 33, 33, -2.0f, 0.7f},
    {dt::Transpose::kTrans, dt::Transpose::kNo, 5, 11, 4, 1.0f, 0.0f},
    {dt::Transpose::kTrans, dt::Transpose::kNo, 16, 24, 13, 1.0f, 1.0f},
    {dt::Transpose::kNo, dt::Transpose::kTrans, 6, 13, 7, 1.0f, 1.0f},
    {dt::Transpose::kNo, dt::Transpose::kTrans, 24, 9, 24, 0.25f, 0.0f},
    {dt::Transpose::kTrans, dt::Transpose::kTrans, 7, 5, 9, 1.0f, 0.0f},
    {dt::Transpose::kTrans, dt::Transpose::kTrans, 12, 31, 10, -1.0f, 1.0f},
};

/// Storage shapes for operand matrices given the logical (m x k) x (k x n).
void operand_shapes(const GemmCase& c, std::size_t* ar, std::size_t* ac,
                    std::size_t* br, std::size_t* bc) {
  *ar = c.ta == dt::Transpose::kNo ? c.m : c.k;
  *ac = c.ta == dt::Transpose::kNo ? c.k : c.m;
  *br = c.tb == dt::Transpose::kNo ? c.k : c.n;
  *bc = c.tb == dt::Transpose::kNo ? c.n : c.k;
}

dt::Matrix run_gemm_case(const GemmCase& c, const dt::Matrix& a,
                         const dt::Matrix& b, const dt::Matrix& out_prev,
                         dk::Backend backend) {
  const BackendGuard guard(backend);
  dt::Matrix out = out_prev;
  dt::gemm(c.ta, c.tb, c.alpha, a.view(), b.view(), c.beta, out.view());
  return out;
}

}  // namespace

TEST(Gemm, ScalarMatchesNaiveReference) {
  Rng rng(101);
  for (const GemmCase& c : kGemmCases) {
    std::size_t ar, ac, br, bc;
    operand_shapes(c, &ar, &ac, &br, &bc);
    const dt::Matrix a = random_matrix(ar, ac, rng);
    const dt::Matrix b = random_matrix(br, bc, rng);
    const dt::Matrix prev = random_matrix(c.m, c.n, rng);
    const dt::Matrix want = naive_gemm(c.ta, c.tb, c.alpha, a, b, c.beta, prev);
    const dt::Matrix got = run_gemm_case(c, a, b, prev, dk::Backend::kScalar);
    expect_close(got, want, 1e-5, 1e-6,
                 "scalar gemm m=" + std::to_string(c.m) +
                     " k=" + std::to_string(c.k) + " n=" + std::to_string(c.n));
  }
}

TEST(Gemm, BlockedBitIdenticalToScalar) {
  Rng rng(102);
  for (const GemmCase& c : kGemmCases) {
    std::size_t ar, ac, br, bc;
    operand_shapes(c, &ar, &ac, &br, &bc);
    const dt::Matrix a = random_matrix(ar, ac, rng);
    const dt::Matrix b = random_matrix(br, bc, rng);
    const dt::Matrix prev = random_matrix(c.m, c.n, rng);
    const dt::Matrix want = run_gemm_case(c, a, b, prev, dk::Backend::kScalar);
    const dt::Matrix got = run_gemm_case(c, a, b, prev, dk::Backend::kBlocked);
    expect_bitwise_equal(got, want,
                         "blocked gemm m=" + std::to_string(c.m) +
                             " k=" + std::to_string(c.k) +
                             " n=" + std::to_string(c.n));
  }
}

TEST(Gemm, Avx2WithinToleranceOfScalar) {
  if (!dk::backend_available(dk::Backend::kAvx2)) {
    GTEST_SKIP() << "AVX2 backend unavailable on this CPU/build";
  }
  Rng rng(103);
  for (const GemmCase& c : kGemmCases) {
    std::size_t ar, ac, br, bc;
    operand_shapes(c, &ar, &ac, &br, &bc);
    const dt::Matrix a = random_matrix(ar, ac, rng);
    const dt::Matrix b = random_matrix(br, bc, rng);
    const dt::Matrix prev = random_matrix(c.m, c.n, rng);
    const dt::Matrix want = run_gemm_case(c, a, b, prev, dk::Backend::kScalar);
    const dt::Matrix got = run_gemm_case(c, a, b, prev, dk::Backend::kAvx2);
    expect_close(got, want, 1e-5, 1e-5,
                 "avx2 gemm m=" + std::to_string(c.m) +
                     " k=" + std::to_string(c.k) + " n=" + std::to_string(c.n));
  }
}

TEST(Gemm, OffsetViewsIntoSharedBuffer) {
  // Views carved out of one arena-like buffer at odd (vector-misaligned)
  // offsets — the Workspace usage pattern — must agree with owned matrices.
  Rng rng(104);
  const std::size_t m = 9, k = 13, n = 11;
  std::vector<float> arena(3 + m * k + 5 + k * n + 7 + m * n, 0.0f);
  float* a_ptr = arena.data() + 3;
  float* b_ptr = a_ptr + m * k + 5;
  float* c_ptr = b_ptr + k * n + 7;
  dt::Matrix a_owned = random_matrix(m, k, rng);
  dt::Matrix b_owned = random_matrix(k, n, rng);
  std::memcpy(a_ptr, a_owned.data(), m * k * sizeof(float));
  std::memcpy(b_ptr, b_owned.data(), k * n * sizeof(float));

  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    dt::Matrix want(m, n);
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a_owned.view(),
             b_owned.view(), 0.0f, want.view());
    const dt::MatrixView out_view(c_ptr, m, n);
    out_view.zero();
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f,
             dt::ConstMatrixView(a_ptr, m, k), dt::ConstMatrixView(b_ptr, k, n),
             0.0f, out_view);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(out_view(i, j), want(i, j))
            << dk::backend_name(backend) << " offset-view mismatch at (" << i
            << "," << j << ")";
      }
    }
  }
}

TEST(Gemm, BetaZeroOverwritesNanAndInf) {
  // Documented semantic: beta == 0 zeroes the output first, so prior
  // NaN/Inf never leak through 0 * NaN.
  Rng rng(105);
  const dt::Matrix a = random_matrix(4, 6, rng);
  const dt::Matrix b = random_matrix(6, 5, rng);
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    dt::Matrix out(4, 5);
    out.fill(std::numeric_limits<float>::quiet_NaN());
    out(1, 1) = std::numeric_limits<float>::infinity();
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), b.view(),
             0.0f, out.view());
    for (std::size_t i = 0; i < out.rows(); ++i) {
      for (std::size_t j = 0; j < out.cols(); ++j) {
        ASSERT_TRUE(std::isfinite(out(i, j)))
            << dk::backend_name(backend) << " leaked non-finite at (" << i
            << "," << j << ")";
      }
    }
  }
}

TEST(Gemm, DeprecatedShimsMatchGemm) {
  // One release of source compatibility: the four pre-gemm entry points are
  // exact aliases of the corresponding gemm calls.
  Rng rng(106);
  const dt::Matrix a = random_matrix(5, 7, rng);
  const dt::Matrix b = random_matrix(7, 6, rng);
  const dt::Matrix at = a.transposed();
  const dt::Matrix bt = b.transposed();
  const dt::Matrix seed = random_matrix(5, 6, rng);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  dt::Matrix got(5, 6);
  dt::matmul(a.view(), b.view(), got.view());
  dt::Matrix want(5, 6);
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), b.view(),
           0.0f, want.view());
  expect_bitwise_equal(got, want, "matmul");

  got = seed;
  dt::matmul_accum(a.view(), b.view(), got.view());
  want = seed;
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), b.view(),
           1.0f, want.view());
  expect_bitwise_equal(got, want, "matmul_accum");

  got = seed;
  dt::matmul_transA_accum(at.view(), b.view(), got.view());
  want = seed;
  dt::gemm(dt::Transpose::kTrans, dt::Transpose::kNo, 1.0f, at.view(),
           b.view(), 1.0f, want.view());
  expect_bitwise_equal(got, want, "matmul_transA_accum");

  got = seed;
  dt::matmul_transB_accum(a.view(), bt.view(), got.view());
  want = seed;
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kTrans, 1.0f, a.view(),
           bt.view(), 1.0f, want.view());
  expect_bitwise_equal(got, want, "matmul_transB_accum");
#pragma GCC diagnostic pop
}

TEST(Elementwise, BitExactAcrossAllBackends) {
  // axpy, row bias, and softmax carry a bit-exact contract in EVERY
  // backend, including AVX2.
  Rng rng(107);
  const dt::Matrix x = random_matrix(7, 19, rng);
  const dt::Matrix y0 = random_matrix(7, 19, rng);
  const dt::Matrix bias = random_matrix(1, 19, rng);
  const dt::Matrix logits = random_matrix(7, 19, rng, 4.0f);

  dt::Matrix axpy_ref, bias_ref, soft_ref;
  bool first = true;
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    dt::Matrix y = y0;
    dt::axpy(0.37f, x.view(), y.view());
    dt::Matrix biased = x;
    dt::add_row_bias(biased.view(), bias.view());
    dt::Matrix soft = logits;
    dt::softmax_rows(soft.view());
    if (first) {
      axpy_ref = y;
      bias_ref = biased;
      soft_ref = soft;
      first = false;
      // Softmax rows must sum to 1.
      for (std::size_t i = 0; i < soft.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < soft.cols(); ++j) sum += soft(i, j);
        EXPECT_NEAR(sum, 1.0, 1e-5);
      }
    } else {
      const std::string name = dk::backend_name(backend);
      expect_bitwise_equal(y, axpy_ref, name + " axpy");
      expect_bitwise_equal(biased, bias_ref, name + " add_row_bias");
      expect_bitwise_equal(soft, soft_ref, name + " softmax_rows");
    }
  }
}

TEST(Elementwise, ArgmaxRowsIdenticalTieBreaking) {
  // Strict `>`: the first maximum wins in every backend, including exact
  // ties placed across vector-lane boundaries.
  dt::Matrix m(3, 17);
  m.fill(-1.0f);
  m(0, 4) = 2.0f;
  m(0, 12) = 2.0f;  // tie: index 4 must win
  m(1, 0) = 5.0f;   // max in lane 0
  m(2, 16) = 0.5f;  // max in the ragged tail
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    std::vector<std::int32_t> out(3, -1);
    dt::argmax_rows(m.view(), out.data());
    EXPECT_EQ(out[0], 4) << dk::backend_name(backend);
    EXPECT_EQ(out[1], 0) << dk::backend_name(backend);
    EXPECT_EQ(out[2], 16) << dk::backend_name(backend);
  }

  // Randomized agreement with a reference scan.
  Rng rng(108);
  const dt::Matrix r = random_matrix(32, 37, rng);
  std::vector<std::int32_t> ref(32, -1);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < r.cols(); ++j) {
      if (r(i, j) > r(i, best)) best = j;
    }
    ref[i] = static_cast<std::int32_t>(best);
  }
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    std::vector<std::int32_t> out(32, -1);
    dt::argmax_rows(r.view(), out.data());
    EXPECT_EQ(out, ref) << dk::backend_name(backend);
  }
}

TEST(LstmGates, FusionContractAcrossBackends) {
  Rng rng(109);
  const std::size_t batch = 5, hidden = 13;  // ragged on purpose
  const dt::Matrix z = random_matrix(batch, 4 * hidden, rng, 3.0f);
  const dt::Matrix c_prev = random_matrix(batch, hidden, rng);

  struct GateResult {
    dt::Matrix i, f, g, o, c, tanh_c, h;
  };
  auto run = [&](dk::Backend backend) {
    const BackendGuard guard(backend);
    GateResult r{dt::Matrix(batch, hidden), dt::Matrix(batch, hidden),
                 dt::Matrix(batch, hidden), dt::Matrix(batch, hidden),
                 dt::Matrix(batch, hidden), dt::Matrix(batch, hidden),
                 dt::Matrix(batch, hidden)};
    const dt::LstmGateViews out{r.i.view(), r.f.view(), r.g.view(),
                                r.o.view(), r.c.view(), r.tanh_c.view(),
                                r.h.view()};
    dt::lstm_gate_fusion(z.view(), c_prev.view(), out);
    return r;
  };

  const GateResult scalar = run(dk::Backend::kScalar);
  // Scalar output obeys the gate equations.
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const auto sigmoid = [](double v) { return 1.0 / (1.0 + std::exp(-v)); };
      const double i = sigmoid(z(b, j));
      const double f = sigmoid(z(b, hidden + j));
      const double g = std::tanh(z(b, 2 * hidden + j));
      const double o = sigmoid(z(b, 3 * hidden + j));
      const double c = f * c_prev(b, j) + i * g;
      ASSERT_NEAR(scalar.i(b, j), i, 1e-6);
      ASSERT_NEAR(scalar.c(b, j), c, 1e-5);
      ASSERT_NEAR(scalar.h(b, j), o * std::tanh(c), 1e-5);
    }
  }

  const GateResult blocked = run(dk::Backend::kBlocked);
  expect_bitwise_equal(blocked.c, scalar.c, "blocked gate c");
  expect_bitwise_equal(blocked.h, scalar.h, "blocked gate h");
  expect_bitwise_equal(blocked.tanh_c, scalar.tanh_c, "blocked gate tanh_c");

  if (dk::backend_available(dk::Backend::kAvx2)) {
    const GateResult avx2 = run(dk::Backend::kAvx2);
    expect_close(avx2.i, scalar.i, 1e-5, 1e-6, "avx2 gate i");
    expect_close(avx2.f, scalar.f, 1e-5, 1e-6, "avx2 gate f");
    expect_close(avx2.g, scalar.g, 1e-5, 1e-6, "avx2 gate g");
    expect_close(avx2.o, scalar.o, 1e-5, 1e-6, "avx2 gate o");
    expect_close(avx2.c, scalar.c, 1e-5, 1e-6, "avx2 gate c");
    expect_close(avx2.h, scalar.h, 1e-5, 1e-6, "avx2 gate h");
  }
}

TEST(LstmGates, CellMayAliasCPrev) {
  // `out.c` aliasing `c_prev` (in-place inference stepping) must produce
  // the same values as the non-aliased call.
  Rng rng(110);
  const std::size_t batch = 4, hidden = 9;
  const dt::Matrix z = random_matrix(batch, 4 * hidden, rng, 2.0f);
  const dt::Matrix c0 = random_matrix(batch, hidden, rng);
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    dt::Matrix i(batch, hidden), f(batch, hidden), g(batch, hidden),
        o(batch, hidden), c_sep(batch, hidden), tc(batch, hidden),
        h_sep(batch, hidden);
    dt::lstm_gate_fusion(z.view(), c0.view(),
                         {i.view(), f.view(), g.view(), o.view(), c_sep.view(),
                          tc.view(), h_sep.view()});

    dt::Matrix c_alias = c0;
    dt::Matrix h_alias(batch, hidden);
    dt::lstm_gate_fusion(z.view(), c_alias.view(),
                         {i.view(), f.view(), g.view(), o.view(),
                          c_alias.view(), tc.view(), h_alias.view()});
    expect_bitwise_equal(c_alias, c_sep,
                         std::string(dk::backend_name(backend)) + " aliased c");
    expect_bitwise_equal(h_alias, h_sep,
                         std::string(dk::backend_name(backend)) + " aliased h");
  }
}

TEST(Quantize, AbsmaxProperties) {
  Rng rng(111);
  const dt::Matrix m = random_matrix(6, 11, rng, 2.5f);
  const dt::QuantizedTensor q = dt::quantize_absmax(m.view());
  ASSERT_EQ(q.rows, m.rows());
  ASSERT_EQ(q.cols, m.cols());
  float absmax = 0.0f;
  for (std::size_t i = 0; i < m.size(); ++i) {
    absmax = std::max(absmax, std::abs(m.data()[i]));
  }
  EXPECT_FLOAT_EQ(q.scale, absmax / 127.0f);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    EXPECT_GE(q.data[i], -127);
    EXPECT_LE(q.data[i], 127);
    // Round-trip error is bounded by half a quantization step.
    EXPECT_NEAR(static_cast<float>(q.data[i]) * q.scale, m.data()[i],
                q.scale * 0.5f + 1e-7f);
  }

  // All-zero tensor: scale stays 1 (no division by zero), data all zero.
  const dt::Matrix zeros(3, 4);
  const dt::QuantizedTensor qz = dt::quantize_absmax(zeros.view());
  EXPECT_FLOAT_EQ(qz.scale, 1.0f);
  for (const std::int8_t v : qz.data) EXPECT_EQ(v, 0);
}

TEST(Quantize, GemmI8ToleranceAndBackendIdentity) {
  Rng rng(112);
  const std::size_t m = 9, k = 33, n = 14;
  const dt::Matrix a = random_matrix(m, k, rng);
  const dt::Matrix w = random_matrix(k, n, rng);
  const dt::QuantizedTensor wq = dt::quantize_absmax(w.view());

  dt::Matrix f32(m, n);
  {
    const BackendGuard guard(dk::Backend::kScalar);
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a.view(), w.view(),
             0.0f, f32.view());
  }

  dt::Matrix ref;
  bool first = true;
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    dt::Matrix got(m, n);
    dt::gemm_i8_accum(a.view(), wq, got.view());
    if (first) {
      ref = got;
      first = false;
      // Relative Frobenius error vs f32 bounded by the quantization grid.
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        const double d = got.data()[i] - f32.data()[i];
        num += d * d;
        den += static_cast<double>(f32.data()[i]) * f32.data()[i];
      }
      EXPECT_LT(std::sqrt(num / den), 0.05)
          << "int8 GEMM drifted from f32 beyond the quantization budget";
    } else {
      expect_bitwise_equal(got, ref, std::string(dk::backend_name(backend)) +
                                         " gemm_i8_accum");
    }
  }
}

TEST(Quantize, Int8ArgmaxDecodeIdentity) {
  // The ISSUE 10 acceptance gate: greedy decodes under the int8 path must
  // reproduce >= 99% of the f32 argmax decisions on a trained model.
  const BackendGuard guard(dk::Backend::kScalar);  // deterministic training
  Rng rng(9);
  desmine::text::Corpus src, dst;
  for (int s = 0; s < 24; ++s) {
    desmine::text::Sentence a, b;
    for (int i = 0; i < 6; ++i) {
      const std::size_t w = rng.index(12);
      a.push_back("s" + std::to_string(w));
      b.push_back("t" + std::to_string((w + s) % 12));
    }
    src.push_back(a);
    dst.push_back(b);
  }
  desmine::nmt::TranslationConfig cfg;
  cfg.model.embedding_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.num_layers = 1;
  cfg.model.dropout = 0.0f;
  cfg.trainer.steps = 60;
  cfg.trainer.batch_size = 8;
  auto model = desmine::nmt::train_translation_model(src, dst, cfg, 42);

  std::size_t total = 0, identical = 0;
  for (const desmine::text::Sentence& s : src) {
    model.set_decode_precision(dt::Precision::kF32);
    const desmine::text::Sentence f32 = model.translate(s);
    model.set_decode_precision(dt::Precision::kInt8);
    const desmine::text::Sentence i8 = model.translate(s);
    const std::size_t len = std::max(f32.size(), i8.size());
    for (std::size_t t = 0; t < len; ++t) {
      ++total;
      if (t < f32.size() && t < i8.size() && f32[t] == i8[t]) ++identical;
    }
  }
  ASSERT_GT(total, 0u);
  const double identity =
      static_cast<double>(identical) / static_cast<double>(total);
  EXPECT_GE(identity, 0.99) << identical << "/" << total
                            << " tokens identical";
}

TEST(GradCheck, LstmBpttUnderEveryF32Backend) {
  // The analytic backprop must stay correct whichever backend computed the
  // forward caches — catches any backend whose forward drifts far enough to
  // break the gradient contract.
  for (const dk::Backend backend : dk::available_backends()) {
    const BackendGuard guard(backend);
    Rng rng(3);
    dn::LstmStack lstm("l", 3, 4, 1, rng, 0.0f, 0.5f);
    dn::Linear head("head", 4, 3, rng, true, 0.5f);
    dn::ParamRegistry reg;
    lstm.register_params(reg);
    head.register_params(reg);

    const std::size_t T = 4, B = 2;
    std::vector<dt::Matrix> xs;
    for (std::size_t t = 0; t < T; ++t) {
      dt::Matrix x(B, 3);
      x.init_uniform(rng, 1.0f);
      xs.push_back(x);
    }
    const std::vector<std::vector<std::int32_t>> targets = {
        {0, 1}, {2, 0}, {1, 1}, {0, 2}};

    auto loss_fn = [&](bool accumulate) {
      lstm.begin(B);
      double loss = 0.0;
      std::vector<dt::Matrix> hs(T), dlogits(T);
      for (std::size_t t = 0; t < T; ++t) {
        hs[t] = lstm.step(xs[t]);
        const dt::Matrix logits = head.forward(hs[t]);
        const auto res = dn::softmax_xent(logits, targets[t], dlogits[t], 1.0f);
        loss += res.loss_sum;
      }
      if (accumulate) {
        std::vector<dt::Matrix> dh(T);
        for (std::size_t t = 0; t < T; ++t) {
          dh[t] = head.backward(hs[t], dlogits[t]);
        }
        lstm.backward(dh);
      }
      return loss;
    };

    const auto report = dn::gradient_check(reg, loss_fn, 6, 1e-2);
    EXPECT_GT(report.checked, 0u);
    EXPECT_LT(report.max_rel_error, 3e-2)
        << dk::backend_name(backend) << ": " << report.worst_param;
  }
}

TEST(KernelConfig, NamesParseAndApply) {
  dk::Backend b = dk::Backend::kAvx2;
  EXPECT_TRUE(dk::parse_backend("scalar", &b));
  EXPECT_EQ(b, dk::Backend::kScalar);
  EXPECT_TRUE(dk::parse_backend("blocked", &b));
  EXPECT_EQ(b, dk::Backend::kBlocked);
  EXPECT_TRUE(dk::parse_backend("avx2", &b));
  EXPECT_EQ(b, dk::Backend::kAvx2);
  b = dk::Backend::kScalar;
  EXPECT_FALSE(dk::parse_backend("sse9", &b));
  EXPECT_EQ(b, dk::Backend::kScalar);  // left alone on unknown

  dt::Precision p = dt::Precision::kInt8;
  EXPECT_TRUE(dt::parse_precision("f32", &p));
  EXPECT_EQ(p, dt::Precision::kF32);
  EXPECT_TRUE(dt::parse_precision("int8", &p));
  EXPECT_EQ(p, dt::Precision::kInt8);
  EXPECT_FALSE(dt::parse_precision("fp16", &p));
  EXPECT_EQ(p, dt::Precision::kInt8);

  EXPECT_STREQ(dk::backend_name(dk::Backend::kScalar), "scalar");
  EXPECT_STREQ(dt::precision_name(dt::Precision::kInt8), "int8");

  // Scalar is always available and listed first.
  const std::vector<dk::Backend> avail = dk::available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), dk::Backend::kScalar);
  EXPECT_TRUE(dk::backend_available(dk::Backend::kScalar));
  EXPECT_TRUE(dk::backend_available(dk::Backend::kBlocked));

  // apply_kernel_config selects the backend and returns the precision.
  const dk::Backend before = dk::active_backend();
  dk::KernelConfig cfg;
  cfg.kernels = "scalar";
  cfg.precision = "int8";
  EXPECT_EQ(dk::apply_kernel_config(cfg), dt::Precision::kInt8);
  EXPECT_EQ(dk::active_backend(), dk::Backend::kScalar);

  cfg.kernels = "auto";
  cfg.precision = "f32";
  EXPECT_EQ(dk::apply_kernel_config(cfg), dt::Precision::kF32);
  EXPECT_EQ(dk::active_backend(), before);

  cfg.kernels = "not-a-backend";
  EXPECT_THROW(dk::apply_kernel_config(cfg), PreconditionError);
  cfg.kernels = "auto";
  cfg.precision = "fp64";
  EXPECT_THROW(dk::apply_kernel_config(cfg), PreconditionError);
  EXPECT_EQ(dk::active_backend(), before);  // failed applies leave state

  // set_backend round-trips through every available backend.
  for (const dk::Backend avail_b : dk::available_backends()) {
    dk::set_backend(avail_b);
    EXPECT_EQ(dk::active_backend(), avail_b);
  }
  dk::select_backend("auto");
  EXPECT_EQ(dk::active_backend(), before);
}
