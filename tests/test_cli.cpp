// Integration tests for the desmine_cli exit-code contract (README.md):
//   0    success
//   1    runtime failure
//   2    usage error
//   3    training completed but some pairs permanently failed
//   4    detection completed degraded (windows below the coverage quorum)
// The CLI binary path is injected by CMake as DESMINE_CLI_PATH; faults are
// injected into the spawned process via the DESMINE_FAULTS environment
// variable (see robust::FaultInjector).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_cli_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Run the CLI with `args` (and an optional DESMINE_FAULTS value for the
/// child only) and return its exit code; -1 if it died on a signal.
int run_cli(const std::string& args, const std::string& faults = "") {
  std::string cmd;
  if (!faults.empty()) cmd += "DESMINE_FAULTS='" + faults + "' ";
  cmd += std::string(DESMINE_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// Tiny plant CSVs shared by the train tests (generated once).
struct Corpora {
  TempFile train{"train.csv"};
  TempFile dev{"dev.csv"};
  Corpora() {
    EXPECT_EQ(run_cli("generate --out " + train.path +
                      " --days 2 --minutes 40 --seed 7 --components 1"),
              0);
    EXPECT_EQ(run_cli("generate --out " + dev.path +
                      " --days 1 --minutes 40 --seed 8 --components 1"),
              0);
  }
};

Corpora& corpora() {
  static Corpora c;
  return c;
}

/// train invocation small enough for an integration test.
std::string tiny_train_args(const std::string& out) {
  return "train --train " + corpora().train.path + " --dev " +
         corpora().dev.path + " --out " + out +
         " --word 3 --sentence 4 --sentence-stride 4"
         " --embedding 8 --hidden 8 --layers 1 --dropout 0"
         " --steps 5 --batch 4 --threads 1 --max-retries 1";
}

}  // namespace

TEST(CliExitCodes, NoArgumentsIsUsageError) { EXPECT_EQ(run_cli(""), 2); }

TEST(CliExitCodes, UnknownCommandIsUsageError) {
  EXPECT_EQ(run_cli("frobnicate"), 2);
}

TEST(CliExitCodes, MissingOptionValueIsUsageError) {
  EXPECT_EQ(run_cli("generate --out"), 2);
}

TEST(CliExitCodes, MissingRequiredOptionIsUsageError) {
  EXPECT_EQ(run_cli("generate"), 2);
}

TEST(CliExitCodes, ResumeWithoutCheckpointIsUsageError) {
  const TempFile model("resume_model.bin");
  EXPECT_EQ(run_cli(tiny_train_args(model.path) + " --resume"), 2);
}

TEST(CliExitCodes, MissingInputFileIsRuntimeError) {
  EXPECT_EQ(run_cli("detect --model /tmp/desmine_cli_no_such_model.bin "
                    "--test /tmp/desmine_cli_no_such_test.csv"),
            1);
}

TEST(CliExitCodes, GenerateSucceeds) {
  const TempFile csv("gen.csv");
  EXPECT_EQ(run_cli("generate --out " + csv.path + " --days 1 --minutes 40"),
            0);
}

TEST(CliExitCodes, CleanTrainingSucceeds) {
  const TempFile model("ok_model.bin");
  EXPECT_EQ(run_cli(tiny_train_args(model.path)), 0);
  // The artifact is loadable afterwards.
  EXPECT_EQ(run_cli("inspect --model " + model.path), 0);
}

TEST(CliExitCodes, PermanentPairFailureExitsThreeButSavesArtifact) {
  const TempFile model("faulty_model.bin");
  // Pair 1 throws on every attempt -> permanently failed -> exit 3; the
  // artifact must still be written with the surviving edges.
  EXPECT_EQ(run_cli(tiny_train_args(model.path), "miner.pair:1=throw"), 3);
  EXPECT_EQ(run_cli("inspect --model " + model.path), 0);
}

TEST(CliExitCodes, TransientFaultIsRetriedToSuccess) {
  const TempFile model("retry_model.bin");
  EXPECT_EQ(run_cli(tiny_train_args(model.path), "miner.pair:1=throw*1"), 0);
}

namespace {

/// One trained artifact + clean test series shared by the detect tests.
struct DetectFixture {
  TempFile model{"detect_model.bin"};
  TempFile test{"detect_test.csv"};
  DetectFixture() {
    EXPECT_EQ(run_cli(tiny_train_args(model.path)), 0);
    EXPECT_EQ(run_cli("generate --out " + test.path +
                      " --days 1 --minutes 40 --seed 9 --components 1"),
              0);
  }
};

DetectFixture& detect_fixture() {
  static DetectFixture f;
  return f;
}

/// Detect invocation with a wide-open band so edges always qualify.
std::string detect_args(const std::string& test_csv) {
  return "detect --model " + detect_fixture().model.path + " --test " +
         test_csv + " --lo 0 --hi 100.5";
}

/// Copy `src` to `dst`, inserting a ragged "BAD" row after `after_rows`
/// data rows.
void corrupt_csv(const std::string& src, const std::string& dst,
                 std::size_t after_rows) {
  std::ifstream in(src);
  std::ofstream out(dst);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    out << line << "\n";
    if (++n == after_rows + 1) out << "BAD\n";  // +1 skips the header
  }
}

}  // namespace

TEST(CliExitCodes, StrictDetectOnCleanSeriesSucceeds) {
  EXPECT_EQ(run_cli(detect_args(detect_fixture().test.path)), 0);
}

TEST(CliExitCodes, MalformedRowInStrictModeIsRuntimeError) {
  TempFile bad("detect_bad.csv");
  corrupt_csv(detect_fixture().test.path, bad.path, 20);
  EXPECT_EQ(run_cli(detect_args(bad.path)), 1);
}

TEST(CliExitCodes, DegradedCleanRunSucceeds) {
  EXPECT_EQ(run_cli(detect_args(detect_fixture().test.path) + " --degraded"),
            0);
}

TEST(CliExitCodes, DegradedQuarantineRunExitsFour) {
  TempFile bad("detect_hole.csv");
  TempFile journal("detect_hole.quarantine.jsonl");
  corrupt_csv(detect_fixture().test.path, bad.path, 20);
  // The quarantined row blanks a mid-stream tick for every sensor: windows
  // covering it lose all edges, fall below the quorum, and the run reports
  // "completed degraded".
  EXPECT_EQ(run_cli(detect_args(bad.path) +
                    " --degraded --on-bad-row quarantine --quarantine " +
                    journal.path),
            4);
  std::ifstream in(journal.path);
  EXPECT_TRUE(in.good());  // journal was written
}

TEST(CliExitCodes, SkipModeDetectSucceedsDespiteBadRow) {
  TempFile bad("detect_skip.csv");
  corrupt_csv(detect_fixture().test.path, bad.path, 20);
  // Skipping removes the tick for every sensor, so alignment (and strict
  // scoring) survives.
  EXPECT_EQ(run_cli(detect_args(bad.path) + " --on-bad-row skip"), 0);
}

TEST(CliExitCodes, BadOnBadRowValueIsUsageError) {
  EXPECT_EQ(run_cli(detect_args(detect_fixture().test.path) +
                    " --on-bad-row bogus"),
            2);
}

TEST(CliExitCodes, ModelLoadFaultIsRuntimeError) {
  EXPECT_EQ(run_cli(detect_args(detect_fixture().test.path),
                    "model.load:0=throw"),
            1);
}
