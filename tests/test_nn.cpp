// Unit tests for the nn layers: shapes, determinism, loss values, optimizer
// behaviour, and LSTM state handling.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/param.h"
#include "util/error.h"
#include "util/rng.h"

namespace dn = desmine::nn;
namespace dt = desmine::tensor;
using desmine::util::Rng;

// ----------------------------------------------------------- registry ------

TEST(ParamRegistry, CountsAndZeroGrad) {
  dn::Param a("a", 2, 3), b("b", 1, 4);
  a.grad.fill(1.0f);
  b.grad.fill(2.0f);
  dn::ParamRegistry reg;
  reg.add(&a);
  reg.add(&b);
  EXPECT_EQ(reg.scalar_count(), 10u);
  EXPECT_GT(reg.grad_norm(), 0.0);
  reg.zero_grad();
  EXPECT_DOUBLE_EQ(reg.grad_norm(), 0.0);
}

TEST(ParamRegistry, ClipGradNorm) {
  dn::Param a("a", 1, 4);
  a.grad.fill(3.0f);  // norm = 6
  dn::ParamRegistry reg;
  reg.add(&a);
  reg.clip_grad_norm(3.0);
  EXPECT_NEAR(reg.grad_norm(), 3.0, 1e-5);
  // Clipping below the max is a no-op.
  reg.clip_grad_norm(100.0);
  EXPECT_NEAR(reg.grad_norm(), 3.0, 1e-5);
}

// ----------------------------------------------------------- embedding -----

TEST(Embedding, LookupMatchesTable) {
  Rng rng(1);
  dn::Embedding emb(10, 4, rng);
  const auto out = emb.forward({3, 7, 3});
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out(0, c), emb.table().value(3, c));
    EXPECT_FLOAT_EQ(out(2, c), emb.table().value(3, c));
    EXPECT_FLOAT_EQ(out(1, c), emb.table().value(7, c));
  }
}

TEST(Embedding, BackwardAccumulatesPerId) {
  Rng rng(1);
  dn::Embedding emb(5, 2, rng);
  dt::Matrix grad = dt::Matrix::from_rows({{1, 2}, {10, 20}, {100, 200}});
  emb.backward({0, 0, 4}, grad);
  EXPECT_FLOAT_EQ(emb.table().grad(0, 0), 11.0f);  // two rows hit id 0
  EXPECT_FLOAT_EQ(emb.table().grad(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(4, 1), 200.0f);
  EXPECT_FLOAT_EQ(emb.table().grad(2, 0), 0.0f);
}

TEST(Embedding, RejectsOutOfRangeIds) {
  Rng rng(1);
  dn::Embedding emb(5, 2, rng);
  EXPECT_THROW(emb.forward({5}), desmine::PreconditionError);
  EXPECT_THROW(emb.forward({-1}), desmine::PreconditionError);
}

// ----------------------------------------------------------- linear --------

TEST(Linear, ForwardComputesXWPlusB) {
  Rng rng(2);
  dn::Linear lin("lin", 2, 3, rng);
  lin.weight().value = dt::Matrix::from_rows({{1, 0, 2}, {0, 1, 3}});
  lin.bias().value = dt::Matrix::from_rows({{10, 20, 30}});
  const auto y = lin.forward(dt::Matrix::from_rows({{1, 2}}));
  EXPECT_FLOAT_EQ(y(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 38.0f);
}

TEST(Linear, NoBiasOption) {
  Rng rng(2);
  dn::Linear lin("lin", 2, 2, rng, /*with_bias=*/false);
  dn::ParamRegistry reg;
  lin.register_params(reg);
  EXPECT_EQ(reg.params().size(), 1u);
}

TEST(Linear, BackwardShapes) {
  Rng rng(2);
  dn::Linear lin("lin", 3, 4, rng);
  const auto x = dt::Matrix(2, 3, 1.0f);
  const auto dy = dt::Matrix(2, 4, 1.0f);
  const auto dx = lin.backward(x, dy);
  EXPECT_EQ(dx.rows(), 2u);
  EXPECT_EQ(dx.cols(), 3u);
  EXPECT_GT(lin.weight().grad.squared_norm(), 0.0);
  EXPECT_GT(lin.bias().grad.squared_norm(), 0.0);
}

// ----------------------------------------------------------- loss ----------

TEST(Loss, UniformLogitsGiveLogV) {
  dt::Matrix logits(1, 4, 0.0f);
  dt::Matrix dlogits;
  const auto res = dn::softmax_xent(logits, {2}, dlogits, 1.0f);
  EXPECT_NEAR(res.loss_sum, std::log(4.0), 1e-6);
  EXPECT_EQ(res.token_count, 1u);
  // Gradient: p - onehot.
  EXPECT_NEAR(dlogits(0, 2), 0.25 - 1.0, 1e-6);
  EXPECT_NEAR(dlogits(0, 0), 0.25, 1e-6);
}

TEST(Loss, PaddedTargetsSkipped) {
  dt::Matrix logits(3, 4, 0.0f);
  dt::Matrix dlogits;
  const auto res = dn::softmax_xent(logits, {1, -1, 2}, dlogits, 1.0f);
  EXPECT_EQ(res.token_count, 2u);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(dlogits(1, c), 0.0f);
}

TEST(Loss, GradScaleApplied) {
  dt::Matrix logits(1, 2, 0.0f);
  dt::Matrix dlogits;
  dn::softmax_xent(logits, {0}, dlogits, 0.5f);
  EXPECT_NEAR(dlogits(0, 0), 0.5 * (0.5 - 1.0), 1e-6);
}

TEST(Loss, ArgmaxRows) {
  const auto logits = dt::Matrix::from_rows({{0, 5, 1}, {9, 2, 3}});
  const auto ids = dn::argmax_rows(logits);
  EXPECT_EQ(ids[0], 1);
  EXPECT_EQ(ids[1], 0);
}

// ----------------------------------------------------------- adam ----------

TEST(Adam, DescendsQuadratic) {
  // Minimize f(x) = x^2 via Adam; gradient = 2x.
  dn::Param p("x", 1, 1);
  p.value(0, 0) = 5.0f;
  dn::ParamRegistry reg;
  reg.add(&p);
  dn::AdamConfig cfg;
  cfg.lr = 0.1f;
  dn::Adam adam(reg, cfg);
  for (int i = 0; i < 500; ++i) {
    p.grad(0, 0) = 2.0f * p.value(0, 0);
    adam.step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-2f);
  EXPECT_EQ(adam.steps_taken(), 500u);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, |first step| ~= lr regardless of gradient scale.
  dn::Param p("x", 1, 1);
  dn::ParamRegistry reg;
  reg.add(&p);
  dn::AdamConfig cfg;
  cfg.lr = 0.05f;
  dn::Adam adam(reg, cfg);
  p.grad(0, 0) = 123.0f;
  adam.step();
  EXPECT_NEAR(std::abs(p.value(0, 0)), 0.05f, 1e-3f);
}

// ----------------------------------------------------------- lstm ----------

TEST(Lstm, OutputShapesAndSteps) {
  Rng rng(3);
  dn::LstmStack lstm("l", 4, 8, 2, rng, 0.0f);
  lstm.begin(3);
  for (int t = 0; t < 5; ++t) {
    const auto& h = lstm.step(dt::Matrix(3, 4, 0.1f));
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 8u);
  }
  EXPECT_EQ(lstm.steps(), 5u);
  const auto state = lstm.state();
  EXPECT_EQ(state.h.size(), 2u);
  EXPECT_EQ(state.c.size(), 2u);
}

TEST(Lstm, DeterministicForSameSeed) {
  Rng rng1(7), rng2(7);
  dn::LstmStack a("l", 2, 4, 1, rng1, 0.0f);
  dn::LstmStack b("l", 2, 4, 1, rng2, 0.0f);
  a.begin(1);
  b.begin(1);
  const auto& ha = a.step(dt::Matrix(1, 2, 0.5f));
  const auto& hb = b.step(dt::Matrix(1, 2, 0.5f));
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_FLOAT_EQ(ha.data()[i], hb.data()[i]);
  }
}

TEST(Lstm, InitialStateCarriesOver) {
  Rng rng(9);
  dn::LstmStack lstm("l", 2, 4, 1, rng, 0.0f);
  lstm.begin(1);
  lstm.step(dt::Matrix(1, 2, 1.0f));
  const auto mid = lstm.state();

  // Restarting from `mid` must reproduce continuing the sequence.
  Rng rng2(9);
  dn::LstmStack twin("l", 2, 4, 1, rng2, 0.0f);
  twin.begin(1);
  twin.step(dt::Matrix(1, 2, 1.0f));
  const auto& h_cont = twin.step(dt::Matrix(1, 2, -1.0f));

  lstm.begin(1, &mid);
  const auto& h_resume = lstm.step(dt::Matrix(1, 2, -1.0f));
  for (std::size_t i = 0; i < h_cont.size(); ++i) {
    EXPECT_NEAR(h_resume.data()[i], h_cont.data()[i], 1e-6f);
  }
}

TEST(Lstm, HiddenStaysBounded) {
  Rng rng(4);
  dn::LstmStack lstm("l", 3, 6, 2, rng, 0.0f);
  lstm.begin(2);
  for (int t = 0; t < 50; ++t) {
    const auto& h = lstm.step(dt::Matrix(2, 3, 5.0f));
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_LE(std::abs(h.data()[i]), 1.0f);  // |o * tanh(c)| <= 1
    }
  }
}

TEST(Lstm, BackwardRequiresMatchingSteps) {
  Rng rng(4);
  dn::LstmStack lstm("l", 2, 3, 1, rng, 0.0f);
  lstm.begin(1);
  lstm.step(dt::Matrix(1, 2, 0.0f));
  std::vector<dt::Matrix> dh(2);  // wrong: 2 grads for 1 step
  EXPECT_THROW(lstm.backward(dh), desmine::PreconditionError);
}

TEST(Lstm, DropoutRequiresRng) {
  Rng rng(4);
  dn::LstmStack lstm("l", 2, 3, 1, rng, 0.5f);
  EXPECT_THROW(lstm.begin(1, nullptr, /*train=*/true, nullptr),
               desmine::PreconditionError);
}

TEST(Lstm, DropoutOffAtInference) {
  Rng rng(4);
  dn::LstmStack lstm("l", 2, 3, 1, rng, 0.5f);
  // No rng needed when train=false even with dropout configured.
  lstm.begin(1, nullptr, /*train=*/false);
  EXPECT_NO_THROW(lstm.step(dt::Matrix(1, 2, 1.0f)));
}

// ----------------------------------------------------------- attention -----

TEST(Attention, OutputShapeAndAlignmentSimplex) {
  Rng rng(5);
  dn::LuongAttention attn("a", 4, rng);
  std::vector<dt::Matrix> enc;
  for (int s = 0; s < 3; ++s) {
    dt::Matrix e(2, 4);
    e.init_uniform(rng, 1.0f);
    enc.push_back(e);
  }
  attn.begin(&enc, 2);
  const auto out = attn.step(dt::Matrix(2, 4, 0.3f));
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 4u);
  const auto& align = attn.alignment(0);
  for (std::size_t b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_GE(align(b, s), 0.0f);
      sum += align(b, s);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Attention, BackwardStepOrderEnforced) {
  Rng rng(5);
  dn::LuongAttention attn("a", 2, rng);
  std::vector<dt::Matrix> enc = {dt::Matrix(1, 2, 0.1f)};
  attn.begin(&enc, 1);
  attn.step(dt::Matrix(1, 2, 0.2f));
  EXPECT_NO_THROW(attn.backward_step(dt::Matrix(1, 2, 1.0f)));
  EXPECT_THROW(attn.backward_step(dt::Matrix(1, 2, 1.0f)),
               desmine::PreconditionError);
}

TEST(Attention, AttendsToMatchingPosition) {
  // With Wa = I and one encoder position equal to h_dec, that position
  // should get the largest alignment weight.
  Rng rng(6);
  dn::LuongAttention attn("a", 3, rng);
  // Identity Wa.
  dn::ParamRegistry reg;
  attn.register_params(reg);
  dt::Matrix& wa = reg.params()[0]->value;
  wa.zero();
  for (std::size_t i = 0; i < 3; ++i) wa(i, i) = 1.0f;

  std::vector<dt::Matrix> enc = {
      dt::Matrix::from_rows({{-1.0f, -1.0f, -1.0f}}),
      dt::Matrix::from_rows({{2.0f, 2.0f, 2.0f}}),
      dt::Matrix::from_rows({{0.0f, 0.0f, 0.0f}}),
  };
  attn.begin(&enc, 1);
  attn.step(dt::Matrix::from_rows({{2.0f, 2.0f, 2.0f}}));
  const auto& align = attn.alignment(0);
  EXPECT_GT(align(0, 1), align(0, 0));
  EXPECT_GT(align(0, 1), align(0, 2));
}
