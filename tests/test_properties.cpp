// Cross-module property tests, mostly parameterized sweeps (TEST_P), that
// pin down invariants no single-module unit test covers:
//  * BLEU: identity, boundedness, candidate-degradation monotonicity
//  * MVRG: band partition completeness, subgraph monotonicity
//  * detector: tolerance monotonicity on synthetic scores
//  * discretizer: quantile balance across distribution shapes
//  * serialization: round-trip across model configurations
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/discretize.h"
#include "core/mvr_graph.h"
#include "io/serialize.h"
#include "nmt/translation.h"
#include "text/bleu.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace dx = desmine::text;
namespace dm = desmine::nmt;
namespace di = desmine::io;
using desmine::util::Rng;

// ------------------------------------------------- BLEU degradation --------

class BleuDegradation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BleuDegradation, MoreCorruptionNeverHelps) {
  // Progressively corrupting the candidate must not increase BLEU (checked
  // on average over positions, allowing tiny non-monotonic steps from
  // n-gram clipping by requiring a strictly lower score after heavy
  // corruption).
  Rng rng(GetParam());
  dx::Sentence reference;
  for (int i = 0; i < 20; ++i) {
    reference.push_back("w" + std::to_string(rng.index(6)));
  }
  dx::Sentence cand = reference;
  const double clean = dx::sentence_bleu(cand, reference).score;

  // Corrupt 25% of tokens.
  dx::Sentence quarter = reference;
  for (std::size_t i = 0; i < quarter.size(); i += 4) quarter[i] = "XXX";
  const double some = dx::sentence_bleu(quarter, reference).score;

  // Corrupt 75% of tokens.
  dx::Sentence heavy = reference;
  for (std::size_t i = 0; i < heavy.size(); ++i) {
    if (i % 4 != 0) heavy[i] = "XXX";
  }
  const double lots = dx::sentence_bleu(heavy, reference).score;

  EXPECT_DOUBLE_EQ(clean, 100.0);
  EXPECT_LT(some, clean);
  EXPECT_LT(lots, some);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BleuDegradation,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------- MVRG partitions ---------

class MvrBands : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvrBands, BandPartitionCoversAllEdgesOnce) {
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.index(6);
  std::vector<std::string> names;
  for (std::size_t v = 0; v < n; ++v) names.push_back("s" + std::to_string(v));
  dc::MvrGraph g(names);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      dc::MvrEdge e;
      e.src = i;
      e.dst = j;
      e.bleu = rng.uniform(0.0, 100.0);
      g.add_edge(e);
    }
  }

  // The paper's five bands partition [0, 100].
  const double cuts[] = {0, 60, 70, 80, 90, 100.5};
  std::size_t total = 0;
  for (int b = 0; b < 5; ++b) {
    total += g.filter_bleu(cuts[b], cuts[b + 1]).edges().size();
  }
  EXPECT_EQ(total, g.edges().size());

  // Monotonicity: widening a band never loses edges.
  EXPECT_GE(g.filter_bleu(50, 100.5).edges().size(),
            g.filter_bleu(60, 90).edges().size());

  // Removing sensors only removes edges.
  const auto local = g.without_sensors({0, 1});
  EXPECT_LE(local.edges().size(), g.edges().size());
  for (const auto& e : local.edges()) {
    EXPECT_NE(e.src, 0u);
    EXPECT_NE(e.dst, 1u);
  }

  // Degree conservation: sum of in-degrees == sum of out-degrees == edges.
  const auto in = g.in_degrees();
  const auto out = g.out_degrees();
  EXPECT_EQ(std::accumulate(in.begin(), in.end(), std::size_t{0}),
            g.edges().size());
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
            g.edges().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvrBands, ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------- quantile balance --------

struct DistCase {
  const char* name;
  std::uint64_t seed;
  int shape;  // 0 uniform, 1 normal, 2 exponential-ish, 3 lumpy
};

class QuantileBalance : public ::testing::TestWithParam<DistCase> {};

TEST_P(QuantileBalance, TrainingMassBalancedAcrossBuckets) {
  const DistCase& param = GetParam();
  Rng rng(param.seed);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) {
    switch (param.shape) {
      case 0: xs.push_back(rng.uniform(0, 10)); break;
      case 1: xs.push_back(rng.normal(5, 2)); break;
      case 2: xs.push_back(-std::log(1.0 - rng.uniform(0.0, 0.999))); break;
      default: xs.push_back(std::floor(rng.uniform(0, 40)) / 4.0); break;
    }
  }
  const auto d =
      dc::Discretizer::fit(xs, dc::DiscretizationScheme::kQuantile);
  std::map<std::string, int> counts;
  for (double x : xs) ++counts[d.discretize(x)];
  for (const auto& [label, count] : counts) {
    // Each of the five buckets holds roughly 20% (±8 points: lumpy
    // distributions put repeated values on one side of a boundary).
    EXPECT_NEAR(count / 3000.0, 0.2, 0.08) << param.name << " " << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QuantileBalance,
                         ::testing::Values(DistCase{"uniform", 1, 0},
                                           DistCase{"normal", 2, 1},
                                           DistCase{"exponential", 3, 2},
                                           DistCase{"lumpy", 4, 3}));

// ------------------------------------------------- serialization sweep -----

struct ModelCase {
  std::size_t hidden, layers;
  desmine::nn::AttentionScore score;
};

class SerializeSweep : public ::testing::TestWithParam<ModelCase> {};

TEST_P(SerializeSweep, TranslationModelRoundTrips) {
  const ModelCase& param = GetParam();
  dx::Corpus src = {{"a", "b", "a"}, {"b", "a", "b"}};
  dx::Corpus tgt = {{"x", "y", "x"}, {"y", "x", "y"}};
  dm::TranslationConfig cfg;
  cfg.model.embedding_dim = param.hidden;
  cfg.model.hidden_dim = param.hidden;
  cfg.model.num_layers = param.layers;
  cfg.model.dropout = 0.0f;
  cfg.model.attention = param.score;
  cfg.trainer.steps = 25;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);

  std::stringstream ss;
  di::write_translation_model(ss, model, cfg.model);
  auto back = di::read_translation_model(ss, di::kStreamArtifactVersion);
  for (const auto& sentence : src) {
    EXPECT_EQ(back.translate(sentence), model.translate(sentence));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SerializeSweep,
    ::testing::Values(
        ModelCase{8, 1, desmine::nn::AttentionScore::kGeneral},
        ModelCase{12, 2, desmine::nn::AttentionScore::kGeneral},
        ModelCase{16, 3, desmine::nn::AttentionScore::kGeneral},
        ModelCase{8, 1, desmine::nn::AttentionScore::kDot},
        ModelCase{12, 2, desmine::nn::AttentionScore::kDot}));
