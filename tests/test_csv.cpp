// Tests for CSV event-series ingestion/egress.
#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"
#include "util/error.h"

namespace di = desmine::io;
namespace dc = desmine::core;

TEST(Csv, ParsesBasicSeries) {
  std::istringstream in("s1,s2\nON,idle\nOFF,busy\nON,idle\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "s1");
  EXPECT_EQ(series[1].name, "s2");
  EXPECT_EQ(dc::series_length(series), 3u);
  EXPECT_EQ(series[0].events[1], "OFF");
  EXPECT_EQ(series[1].events[2], "idle");
}

TEST(Csv, SkipsTimestampColumn) {
  std::istringstream in(
      "timestamp,s1\n2017-11-01T00:00,ON\n2017-11-01T00:01,OFF\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "s1");
  EXPECT_EQ(series[0].events.size(), 2u);
}

TEST(Csv, HandlesQuotedFields) {
  std::istringstream in(
      "\"sensor, one\",s2\n\"status, 1\",\"say \"\"hi\"\"\"\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "sensor, one");
  EXPECT_EQ(series[0].events[0], "status, 1");
  EXPECT_EQ(series[1].events[0], "say \"hi\"");
}

TEST(Csv, SkipsBlankLinesAndCarriageReturns) {
  std::istringstream in("s1\r\nON\r\n\r\nOFF\r\n");
  const auto series = di::parse_series_csv(in);
  EXPECT_EQ(series[0].events.size(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  std::istringstream in("s1,s2\nON\n");
  EXPECT_THROW(di::parse_series_csv(in), desmine::RuntimeError);
}

TEST(Csv, RejectsEmptyInput) {
  std::istringstream empty("");
  EXPECT_THROW(di::parse_series_csv(empty), desmine::RuntimeError);
  std::istringstream only_timestamp("timestamp\n1\n");
  EXPECT_THROW(di::parse_series_csv(only_timestamp), desmine::RuntimeError);
}

TEST(Csv, RoundTrip) {
  dc::MultivariateSeries series = {
      {"a,b", {"x", "y,z", "w\"q\""}},
      {"plain", {"1", "2", "3"}},
  };
  std::ostringstream out;
  di::write_series_csv(out, series);
  std::istringstream in(out.str());
  const auto back = di::parse_series_csv(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "a,b");
  EXPECT_EQ(back[0].events, series[0].events);
  EXPECT_EQ(back[1].events, series[1].events);
}

TEST(Csv, FileIoErrors) {
  EXPECT_THROW(di::read_series_csv("/nonexistent/dir/x.csv"),
               desmine::RuntimeError);
  EXPECT_THROW(
      di::write_series_csv("/nonexistent/dir/x.csv", dc::MultivariateSeries{}),
      desmine::RuntimeError);
}
