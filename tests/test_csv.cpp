// Tests for CSV event-series ingestion/egress: strict parsing, RFC-4180
// edge cases, and the tolerant skip/quarantine modes feeding degraded-mode
// detection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "io/csv.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "util/crc32.h"
#include "util/error.h"

namespace di = desmine::io;
namespace dc = desmine::core;
namespace dr = desmine::robust;

namespace {

/// Temp file path that cleans up on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_csv_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(Csv, ParsesBasicSeries) {
  std::istringstream in("s1,s2\nON,idle\nOFF,busy\nON,idle\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "s1");
  EXPECT_EQ(series[1].name, "s2");
  EXPECT_EQ(dc::series_length(series), 3u);
  EXPECT_EQ(series[0].events[1], "OFF");
  EXPECT_EQ(series[1].events[2], "idle");
}

TEST(Csv, SkipsTimestampColumn) {
  std::istringstream in(
      "timestamp,s1\n2017-11-01T00:00,ON\n2017-11-01T00:01,OFF\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "s1");
  EXPECT_EQ(series[0].events.size(), 2u);
}

TEST(Csv, HandlesQuotedFields) {
  std::istringstream in(
      "\"sensor, one\",s2\n\"status, 1\",\"say \"\"hi\"\"\"\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "sensor, one");
  EXPECT_EQ(series[0].events[0], "status, 1");
  EXPECT_EQ(series[1].events[0], "say \"hi\"");
}

TEST(Csv, SkipsBlankLinesAndCarriageReturns) {
  std::istringstream in("s1\r\nON\r\n\r\nOFF\r\n");
  const auto series = di::parse_series_csv(in);
  EXPECT_EQ(series[0].events.size(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  std::istringstream in("s1,s2\nON\n");
  EXPECT_THROW(di::parse_series_csv(in), desmine::RuntimeError);
}

TEST(Csv, RejectsEmptyInput) {
  std::istringstream empty("");
  EXPECT_THROW(di::parse_series_csv(empty), desmine::RuntimeError);
  std::istringstream only_timestamp("timestamp\n1\n");
  EXPECT_THROW(di::parse_series_csv(only_timestamp), desmine::RuntimeError);
}

TEST(Csv, RoundTrip) {
  dc::MultivariateSeries series = {
      {"a,b", {"x", "y,z", "w\"q\""}},
      {"plain", {"1", "2", "3"}},
  };
  std::ostringstream out;
  di::write_series_csv(out, series);
  std::istringstream in(out.str());
  const auto back = di::parse_series_csv(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "a,b");
  EXPECT_EQ(back[0].events, series[0].events);
  EXPECT_EQ(back[1].events, series[1].events);
}

TEST(Csv, FileIoErrors) {
  EXPECT_THROW(di::read_series_csv("/nonexistent/dir/x.csv"),
               desmine::RuntimeError);
  EXPECT_THROW(
      di::write_series_csv("/nonexistent/dir/x.csv", dc::MultivariateSeries{}),
      desmine::RuntimeError);
}

TEST(Csv, StripsUtf8BomFromHeader) {
  std::istringstream in("\xEF\xBB\xBFs1,s2\nON,idle\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "s1");
  EXPECT_EQ(series[0].events[0], "ON");
}

TEST(Csv, MissingTrailingNewlineStillParsesLastRow) {
  std::istringstream in("s1,s2\nON,idle\nOFF,busy");
  const auto series = di::parse_series_csv(in);
  EXPECT_EQ(dc::series_length(series), 2u);
  EXPECT_EQ(series[1].events[1], "busy");
}

TEST(Csv, CrlfWithQuotedEmbeddedCommasAndQuotes) {
  std::istringstream in(
      "\xEF\xBB\xBFtimestamp,\"s,1\",s2\r\n"
      "t0,\"a,b\",\"say \"\"hi\"\"\"\r\n"
      "t1,plain,\"\"\r\n");
  const auto series = di::parse_series_csv(in);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "s,1");
  EXPECT_EQ(series[0].events[0], "a,b");
  EXPECT_EQ(series[1].events[0], "say \"hi\"");
  EXPECT_EQ(series[1].events[1], "");
}

TEST(Csv, SkipModeDropsMalformedTicks) {
  std::istringstream in("s1,s2\nON,idle\nBAD\nOFF,busy\nA,B,C\nON,idle\n");
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kSkip;
  di::CsvReport report;
  const auto series = di::parse_series_csv(in, opts, &report);
  EXPECT_EQ(dc::series_length(series), 3u);  // both bad ticks gone
  EXPECT_EQ(report.rows_total, 5u);
  EXPECT_EQ(report.rows_ok, 3u);
  EXPECT_EQ(report.rows_bad, 2u);
  EXPECT_EQ(report.bad_row_numbers, (std::vector<std::size_t>{3, 5}));
  EXPECT_TRUE(report.missing_ticks.empty());  // skip mode keeps no holes
}

TEST(Csv, QuarantineModeKeepsTicksAndJournalsRows) {
  TempFile journal("quarantine.jsonl");
  std::istringstream in("s1,s2\nON,idle\nBAD\nOFF,busy\n");
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kQuarantine;
  opts.quarantine_path = journal.path;
  di::CsvReport report;
  const auto series = di::parse_series_csv(in, opts, &report);

  // The tick survives with empty cells, so the timeline stays aligned.
  ASSERT_EQ(dc::series_length(series), 3u);
  EXPECT_EQ(series[0].events[1], "");
  EXPECT_EQ(series[1].events[1], "");
  EXPECT_EQ(report.missing_ticks, (std::vector<std::size_t>{1}));
  EXPECT_EQ(report.rows_bad, 1u);

  // Journal: one self-checksummed JSON record per quarantined row.
  const auto lines = read_lines(journal.path);
  ASSERT_EQ(lines.size(), 1u);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(dr::parse_flat_json(lines[0], fields));
  EXPECT_EQ(fields.at("row"), "3");
  EXPECT_EQ(fields.at("expected_fields"), "2");
  EXPECT_EQ(fields.at("got_fields"), "1");
  EXPECT_EQ(fields.at("line"), "BAD");
  EXPECT_EQ(fields.at("crc32"),
            std::to_string(desmine::util::crc32("BAD")));
}

TEST(Csv, QuarantineWithoutPathCountsButDoesNotJournal) {
  std::istringstream in("s1\nON\nBAD,ROW\nOFF\n");
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kQuarantine;
  di::CsvReport report;
  const auto series = di::parse_series_csv(in, opts, &report);
  EXPECT_EQ(dc::series_length(series), 3u);
  EXPECT_EQ(report.missing_ticks, (std::vector<std::size_t>{1}));
}

TEST(Csv, MaxBadRowsOverflowAborts) {
  std::istringstream in("s1,s2\nBAD\nBAD\nBAD\nOK,OK\n");
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kSkip;
  opts.max_bad_rows = 2;
  EXPECT_THROW(di::parse_series_csv(in, opts), desmine::RuntimeError);
}

TEST(Csv, StrictModeIgnoresMaxBadRows) {
  // kThrow aborts on the first malformed row regardless of the budget.
  std::istringstream in("s1,s2\nBAD\n");
  di::CsvOptions opts;
  opts.max_bad_rows = 100;
  EXPECT_THROW(di::parse_series_csv(in, opts), desmine::RuntimeError);
}

TEST(Csv, InjectedRowFaultTreatsRowAsMalformed) {
  auto& injector = dr::FaultInjector::instance();
  injector.clear();
  injector.arm("csv.row", 3, dr::FaultAction::kDrop, 1);
  std::istringstream in("s1,s2\nON,idle\nOFF,busy\nON,idle\n");
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kSkip;
  di::CsvReport report;
  const auto series = di::parse_series_csv(in, opts, &report);
  injector.clear();
  // Row 3 (the second data row) was forced malformed and skipped.
  EXPECT_EQ(dc::series_length(series), 2u);
  EXPECT_EQ(report.bad_row_numbers, (std::vector<std::size_t>{3}));
  EXPECT_EQ(series[0].events, (dc::EventSequence{"ON", "ON"}));
}

TEST(Csv, InjectedRowFaultCanThrow) {
  auto& injector = dr::FaultInjector::instance();
  injector.clear();
  injector.arm("csv.row", 2, dr::FaultAction::kThrow, 1);
  std::istringstream in("s1\nON\n");
  EXPECT_THROW(di::parse_series_csv(in, di::CsvOptions{}),
               desmine::RuntimeError);
  injector.clear();
}

TEST(Csv, TenThousandRowMalformedCorpusSmoke) {
  // Generated corpus: every 7th row is ragged. Quarantine mode must absorb
  // all of it, keep the timeline aligned, and journal every bad row.
  TempFile journal("smoke.jsonl");
  std::ostringstream gen;
  gen << "s1,s2\n";
  std::size_t expected_bad = 0;
  for (std::size_t r = 0; r < 10000; ++r) {
    if (r % 7 == 3) {
      gen << "only_one_field\n";
      ++expected_bad;
    } else {
      gen << (r % 2 == 0 ? "ON" : "OFF") << ",v" << r % 5 << "\n";
    }
  }
  std::istringstream in(gen.str());
  di::CsvOptions opts;
  opts.on_bad_row = di::OnBadRow::kQuarantine;
  opts.max_bad_rows = 10000;
  opts.quarantine_path = journal.path;
  di::CsvReport report;
  const auto series = di::parse_series_csv(in, opts, &report);

  EXPECT_EQ(report.rows_total, 10000u);
  EXPECT_EQ(report.rows_bad, expected_bad);
  EXPECT_EQ(report.rows_ok, 10000u - expected_bad);
  EXPECT_EQ(dc::series_length(series), 10000u);  // every tick preserved
  EXPECT_EQ(report.missing_ticks.size(), expected_bad);
  const auto lines = read_lines(journal.path);
  ASSERT_EQ(lines.size(), expected_bad);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(dr::parse_flat_json(lines.back(), fields));
  EXPECT_EQ(fields.at("line"), "only_one_field");
}
