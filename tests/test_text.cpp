// Unit and property tests for the vocabulary and BLEU implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "text/bleu.h"
#include "text/vocabulary.h"
#include "util/error.h"
#include "util/rng.h"

namespace dx = desmine::text;

// ----------------------------------------------------------- vocabulary ----

TEST(Vocabulary, SpecialsReserved) {
  dx::Vocabulary v;
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.token(dx::Vocabulary::kPad), "<pad>");
  EXPECT_EQ(v.token(dx::Vocabulary::kUnk), "<unk>");
  EXPECT_EQ(v.token(dx::Vocabulary::kBos), "<s>");
  EXPECT_EQ(v.token(dx::Vocabulary::kEos), "</s>");
}

TEST(Vocabulary, BuildAssignsInsertionOrder) {
  const dx::Corpus corpus = {{"bb", "aa"}, {"aa", "cc"}};
  const auto v = dx::Vocabulary::build(corpus);
  EXPECT_EQ(v.size(), 7u);
  EXPECT_EQ(v.id("bb"), 4);
  EXPECT_EQ(v.id("aa"), 5);
  EXPECT_EQ(v.id("cc"), 6);
}

TEST(Vocabulary, UnknownMapsToUnk) {
  const auto v = dx::Vocabulary::build({{"x"}});
  EXPECT_EQ(v.id("never-seen"), dx::Vocabulary::kUnk);
  EXPECT_FALSE(v.contains("never-seen"));
  EXPECT_TRUE(v.contains("x"));
}

TEST(Vocabulary, EncodeDecodeRoundTrip) {
  const auto v = dx::Vocabulary::build({{"a", "b", "c"}});
  const auto ids = v.encode({"c", "a", "zzz"});
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[2], dx::Vocabulary::kUnk);
  const auto back = v.decode(ids);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], "c");
  EXPECT_EQ(back[2], "<unk>");
}

TEST(Vocabulary, DecodeSkipsStructuralSpecials) {
  const auto v = dx::Vocabulary::build({{"a"}});
  const auto s = v.decode({dx::Vocabulary::kBos, 4, dx::Vocabulary::kEos,
                           dx::Vocabulary::kPad});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "a");
}

TEST(Vocabulary, TokenRangeChecked) {
  dx::Vocabulary v;
  EXPECT_THROW(v.token(99), desmine::PreconditionError);
  EXPECT_THROW(v.token(-1), desmine::PreconditionError);
}

// ----------------------------------------------------------- BLEU ----------

TEST(Bleu, PerfectTranslationScores100) {
  const dx::Sentence s = {"a", "b", "c", "d", "e"};
  const auto b = dx::sentence_bleu(s, s);
  EXPECT_NEAR(b.score, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.brevity_penalty, 1.0);
  for (double p : b.precisions) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(Bleu, CompletelyWrongScoresNearZero) {
  const dx::Sentence cand = {"x", "y", "z", "w"};
  const dx::Sentence ref = {"a", "b", "c", "d"};
  dx::BleuOptions opts;
  opts.smooth = false;
  EXPECT_DOUBLE_EQ(dx::sentence_bleu(cand, ref, opts).score, 0.0);
  // Smoothed score is small but positive.
  opts.smooth = true;
  const double s = dx::sentence_bleu(cand, ref, opts).score;
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 40.0);  // +1 smoothing floors short sentences around 30
}

TEST(Bleu, BrevityPenaltyAppliedForShortCandidates) {
  const dx::Sentence ref = {"a", "b", "c", "d", "e", "f"};
  const dx::Sentence cand = {"a", "b", "c"};
  const auto b = dx::sentence_bleu(cand, ref);
  EXPECT_LT(b.brevity_penalty, 1.0);
  EXPECT_NEAR(b.brevity_penalty, std::exp(1.0 - 6.0 / 3.0), 1e-12);
}

TEST(Bleu, NoBrevityPenaltyForLongCandidates) {
  const dx::Sentence ref = {"a", "b", "c"};
  const dx::Sentence cand = {"a", "b", "c", "d", "e"};
  EXPECT_DOUBLE_EQ(dx::sentence_bleu(cand, ref).brevity_penalty, 1.0);
}

TEST(Bleu, ModifiedPrecisionClipsRepeats) {
  // Candidate repeating a reference word must not inflate precision
  // (the classic "the the the" example from the BLEU paper).
  const dx::Sentence cand = {"the", "the", "the", "the"};
  const dx::Sentence ref = {"the", "cat", "sat", "there"};
  dx::BleuOptions opts;
  opts.max_order = 1;
  opts.smooth = false;
  const auto b = dx::sentence_bleu(cand, ref, opts);
  EXPECT_NEAR(b.precisions[0], 0.25, 1e-12);  // clipped to 1 occurrence
}

TEST(Bleu, CorpusLevelAggregatesOverSentences) {
  const dx::Corpus cands = {{"a", "b", "c", "d"}, {"x", "x", "x", "x"}};
  const dx::Corpus refs = {{"a", "b", "c", "d"}, {"a", "b", "c", "d"}};
  const auto whole = dx::corpus_bleu(cands, refs);
  const auto perfect = dx::corpus_bleu({cands[0]}, {refs[0]});
  EXPECT_LT(whole.score, perfect.score);
  EXPECT_GT(whole.score, 0.0);
}

TEST(Bleu, EmptyCorpusScoresZero) {
  const auto b = dx::corpus_bleu({}, {});
  EXPECT_DOUBLE_EQ(b.score, 0.0);
}

TEST(Bleu, MisalignedCorporaThrow) {
  EXPECT_THROW(dx::corpus_bleu({{"a"}}, {}), desmine::PreconditionError);
}

TEST(Bleu, MoreOverlapScoresHigher) {
  const dx::Sentence ref = {"a", "b", "c", "d", "e", "f", "g", "h"};
  const dx::Sentence close = {"a", "b", "c", "d", "e", "f", "x", "y"};
  const dx::Sentence far = {"a", "x", "c", "y", "e", "z", "g", "w"};
  EXPECT_GT(dx::sentence_bleu(close, ref).score,
            dx::sentence_bleu(far, ref).score);
}

TEST(Bleu, ScoreIsBounded) {
  desmine::util::Rng rng(9);
  const std::vector<std::string> alphabet = {"a", "b", "c"};
  for (int trial = 0; trial < 50; ++trial) {
    dx::Sentence cand, ref;
    const std::size_t cl = 1 + rng.index(10);
    const std::size_t rl = 1 + rng.index(10);
    for (std::size_t i = 0; i < cl; ++i) cand.push_back(alphabet[rng.index(3)]);
    for (std::size_t i = 0; i < rl; ++i) ref.push_back(alphabet[rng.index(3)]);
    const auto b = dx::sentence_bleu(cand, ref);
    EXPECT_GE(b.score, 0.0);
    EXPECT_LE(b.score, 100.0 + 1e-9);
  }
}

TEST(Bleu, ShortSentencesBelowMaxOrderStillScore) {
  // 2-token sentences have no 3-/4-grams; smoothing must keep the geometric
  // mean finite (this is the sensor-language case with tiny sentences).
  const dx::Sentence s = {"a", "b"};
  const auto b = dx::sentence_bleu(s, s);
  EXPECT_GT(b.score, 50.0);
  EXPECT_LE(b.score, 100.0);
}
