// Tests for the robustness subsystem: CRC32, retry policy, deadlines, fault
// injection, the checkpoint journal, and the miner's fault isolation /
// crash-resume behavior (ISSUE 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/miner.h"
#include "core/mvr_graph.h"
#include "obs/metrics.h"
#include "robust/checkpoint.h"
#include "robust/deadline.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "robust/retry.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace dr = desmine::robust;
namespace du = desmine::util;
namespace dx = desmine::text;
using desmine::util::Rng;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_robust_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    // Best-effort cleanup of checkpoint sidecars.
    const std::string dir = dr::checkpoint_model_dir(path);
    for (std::size_t p = 0; p < 64; ++p) {
      std::remove(dr::checkpoint_model_file(path, p).c_str());
    }
    std::remove(dir.c_str());
  }
};

/// n perfectly correlated sensor languages: every sensor renders the same
/// underlying index sequence in its own token alphabet, so every directional
/// pair is a learnable word-substitution task.
std::vector<dc::SensorLanguage> make_languages(std::size_t n,
                                               std::uint64_t seed) {
  const std::size_t train_sentences = 24, dev_sentences = 6, len = 4;
  Rng rng(seed);
  std::vector<dc::SensorLanguage> langs(n);
  for (std::size_t k = 0; k < n; ++k) {
    langs[k].name = "s" + std::to_string(k);
  }
  const auto emit = [&](bool dev, std::size_t count) {
    for (std::size_t s = 0; s < count; ++s) {
      std::vector<std::size_t> idx(len);
      for (auto& v : idx) v = rng.index(4);
      for (std::size_t k = 0; k < n; ++k) {
        dx::Sentence sent;
        for (const auto v : idx) {
          sent.push_back("w" + std::to_string(k) + "_" + std::to_string(v));
        }
        (dev ? langs[k].dev : langs[k].train).push_back(sent);
      }
    }
  };
  emit(false, train_sentences);
  emit(true, dev_sentences);
  return langs;
}

dc::MinerConfig tiny_miner(std::uint64_t seed = 42) {
  dc::MinerConfig cfg;
  cfg.translation.model.embedding_dim = 8;
  cfg.translation.model.hidden_dim = 8;
  cfg.translation.model.num_layers = 1;
  cfg.translation.model.dropout = 0.0f;
  cfg.translation.model.max_decode_length = 6;
  cfg.translation.trainer.steps = 20;
  cfg.translation.trainer.batch_size = 4;
  cfg.translation.trainer.lr = 0.02f;
  cfg.seed = seed;
  cfg.threads = 1;
  return cfg;
}

std::map<std::pair<std::size_t, std::size_t>, double> bleu_by_pair(
    const dc::MvrGraph& g) {
  std::map<std::pair<std::size_t, std::size_t>, double> out;
  for (const auto& e : g.edges()) out[{e.src, e.dst}] = e.bleu;
  return out;
}

/// Every miner test disarms the process-wide injector on both sides so a
/// failing test cannot poison its neighbors.
class RobustMiner : public ::testing::Test {
 protected:
  void SetUp() override { dr::FaultInjector::instance().clear(); }
  void TearDown() override { dr::FaultInjector::instance().clear(); }
};

}  // namespace

// ------------------------------------------------------------------ crc32 --

TEST(Crc32, KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(du::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(du::crc32(""), 0u);
}

TEST(Crc32, DetectsSingleByteChange) {
  const std::string a = "the quick brown fox";
  std::string b = a;
  b[5] ^= 0x01;
  EXPECT_NE(du::crc32(a), du::crc32(b));
}

// ------------------------------------------------------------ retry policy --

TEST(RetryPolicy, FirstAttemptHasNoDelay) {
  dr::RetryPolicy policy;
  policy.base_delay_ms = 100.0;
  Rng rng(1);
  EXPECT_EQ(policy.delay_ms(0, rng), 0.0);
}

TEST(RetryPolicy, ZeroBaseNeverSleeps) {
  dr::RetryPolicy policy;  // base_delay_ms defaults to 0
  Rng rng(1);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(policy.delay_ms(r, rng), 0.0);
}

TEST(RetryPolicy, ExponentialGrowthAndCap) {
  dr::RetryPolicy policy;
  policy.base_delay_ms = 100.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 350.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, rng), 100.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(2, rng), 200.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(3, rng), 350.0);  // capped, not 400
  EXPECT_DOUBLE_EQ(policy.delay_ms(8, rng), 350.0);
}

TEST(RetryPolicy, JitterStaysInBoundsAndIsDeterministic) {
  dr::RetryPolicy policy;
  policy.base_delay_ms = 100.0;
  policy.jitter = 0.25;
  Rng a(7), b(7);
  for (std::size_t r = 1; r <= 6; ++r) {
    const double d = policy.delay_ms(r, a);
    const double unjittered = std::min(
        policy.base_delay_ms * std::pow(policy.multiplier, double(r - 1)),
        policy.max_delay_ms);
    EXPECT_GE(d, unjittered * 0.75);
    EXPECT_LE(d, unjittered * 1.25);
    EXPECT_DOUBLE_EQ(d, policy.delay_ms(r, b));  // same seed, same schedule
  }
}

// ---------------------------------------------------------------- deadline --

TEST(Deadline, UnlimitedNeverExpires) {
  const dr::Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_NO_THROW(d.check("work"));
}

TEST(Deadline, GenerousBudgetDoesNotTrip) {
  const dr::Deadline d(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_NO_THROW(d.check("work"));
}

TEST(Deadline, TinyBudgetExpiresAndThrowsTyped) {
  const dr::Deadline d(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(d.expired());
  try {
    d.check("pair training");
    FAIL() << "expected DeadlineExceeded";
  } catch (const dr::DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("pair training"), std::string::npos);
  }
  // DeadlineExceeded is a RuntimeError, so generic handlers still catch it.
  EXPECT_THROW(d.check("x"), desmine::RuntimeError);
}

// ---------------------------------------------------------- fault injector --

TEST_F(RobustMiner, InjectorFiresOnExactKeyOnly) {
  auto& inj = dr::FaultInjector::instance();
  inj.arm("p", 3, dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("p", 2), dr::FaultAction::kNone);
  EXPECT_EQ(inj.fire("q", 3), dr::FaultAction::kNone);
  EXPECT_EQ(inj.fire("p", 3), dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("p", 3), dr::FaultAction::kThrow);  // unlimited
}

TEST_F(RobustMiner, InjectorWildcardAndTimes) {
  auto& inj = dr::FaultInjector::instance();
  inj.arm("p", -1, dr::FaultAction::kDiverge, 2);
  EXPECT_EQ(inj.fire("p", 11), dr::FaultAction::kDiverge);
  EXPECT_EQ(inj.fire("p", 99), dr::FaultAction::kDiverge);
  EXPECT_EQ(inj.fire("p", 11), dr::FaultAction::kNone);  // exhausted
}

TEST_F(RobustMiner, InjectorDisarmedIsSilent) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_FALSE(inj.any_armed());
  EXPECT_EQ(inj.fire("anything", 0), dr::FaultAction::kNone);
}

TEST_F(RobustMiner, InjectorSpecParsing) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("a:1=throw;b:*=diverge*2, c:5=abort"), 3u);
  EXPECT_EQ(inj.fire("a", 1), dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("b", 123), dr::FaultAction::kDiverge);
  EXPECT_EQ(inj.fire("c", 5), dr::FaultAction::kAbort);
  EXPECT_EQ(inj.fire("c", 4), dr::FaultAction::kNone);
}

TEST_F(RobustMiner, InjectorSpecParsesDropAction) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("detect.push:2=drop*2"), 1u);
  EXPECT_EQ(inj.fire("detect.push", 2), dr::FaultAction::kDrop);
  EXPECT_EQ(inj.fire("detect.push", 2), dr::FaultAction::kDrop);
  EXPECT_EQ(inj.fire("detect.push", 2), dr::FaultAction::kNone);  // spent
  EXPECT_EQ(inj.fire("detect.push", 1), dr::FaultAction::kNone);
}

TEST_F(RobustMiner, InjectorRejectsMalformedSpecs) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_THROW(inj.arm_from_spec("nonsense"), desmine::PreconditionError);
  EXPECT_THROW(inj.arm_from_spec("a:1=explode"), desmine::PreconditionError);
  EXPECT_THROW(inj.arm_from_spec("a:=throw"), desmine::PreconditionError);
  EXPECT_THROW(inj.arm_from_spec("a:1=throw*x"), desmine::PreconditionError);
}

TEST_F(RobustMiner, InjectorStringKeysTargetEdges) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("serve.decode:3->7=throw*2"), 1u);
  EXPECT_EQ(inj.fire("serve.decode", "2->7"), dr::FaultAction::kNone);
  EXPECT_EQ(inj.fire("serve.decode", "3->7"), dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("serve.decode", "3->7"), dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("serve.decode", "3->7"), dr::FaultAction::kNone);
}

TEST_F(RobustMiner, InjectorCanonicalizesNumericKeys) {
  auto& inj = dr::FaultInjector::instance();
  // "03" and integer 3 name the same key; int fire matches string arming
  // and vice versa.
  EXPECT_EQ(inj.arm_from_spec("p:03=throw"), 1u);
  EXPECT_EQ(inj.fire("p", 3), dr::FaultAction::kThrow);
  EXPECT_EQ(inj.fire("p", "3"), dr::FaultAction::kThrow);
  inj.clear();
  inj.arm("q", std::int64_t{5}, dr::FaultAction::kDrop);
  EXPECT_EQ(inj.fire("q", "5"), dr::FaultAction::kDrop);
}

TEST_F(RobustMiner, InjectorWildcardMatchesStringAndIntKeys) {
  auto& inj = dr::FaultInjector::instance();
  inj.arm("serve.decode", std::string("*"), dr::FaultAction::kDelay, 2);
  EXPECT_EQ(inj.fire("serve.decode", "a->b"), dr::FaultAction::kDelay);
  EXPECT_EQ(inj.fire("serve.decode", 17), dr::FaultAction::kDelay);
  EXPECT_EQ(inj.fire("serve.decode", "a->b"), dr::FaultAction::kNone);
}

TEST_F(RobustMiner, InjectorSpecParsesDelayAction) {
  auto& inj = dr::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("serve.ingest:*=delay*1"), 1u);
  EXPECT_EQ(inj.fire("serve.ingest", 1), dr::FaultAction::kDelay);
  EXPECT_EQ(inj.fire("serve.ingest", 1), dr::FaultAction::kNone);
}

// ----------------------------------------------------------- flat JSON -----

TEST(FlatJson, ParsesTypicalRecord) {
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(dr::parse_flat_json(
      R"({"type":"pair","pair":3,"ok":true,"bleu":91.25,"error":"a \"b\"\nc"})",
      kv));
  EXPECT_EQ(kv.at("type"), "pair");
  EXPECT_EQ(kv.at("pair"), "3");
  EXPECT_EQ(kv.at("ok"), "true");
  EXPECT_EQ(kv.at("bleu"), "91.25");
  EXPECT_EQ(kv.at("error"), "a \"b\"\nc");
}

TEST(FlatJson, RejectsMalformedInput) {
  std::map<std::string, std::string> kv;
  EXPECT_FALSE(dr::parse_flat_json("", kv));
  EXPECT_FALSE(dr::parse_flat_json("not json", kv));
  EXPECT_FALSE(dr::parse_flat_json(R"({"type":"pair","pair":)", kv));
  EXPECT_FALSE(dr::parse_flat_json(R"({"unterminated":"str)", kv));
}

// ------------------------------------------------------ checkpoint journal --

TEST(Checkpoint, MissingFileLoadsEmpty) {
  const auto state = dr::load_checkpoint("/tmp/desmine_robust_nope.jsonl");
  EXPECT_FALSE(state.exists);
  EXPECT_FALSE(state.has_header);
  EXPECT_TRUE(state.completed.empty());
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const TempFile file("journal_roundtrip.jsonl");
  // A value with no short decimal representation: %.12g would lose bits,
  // the bleu_bits field must not.
  const double tricky_bleu = 100.0 / 3.0 + 1e-13;
  {
    dr::CheckpointJournal journal(file.path, /*append=*/false);
    journal.write_header(0xDEADBEEF, 6);
    dr::PairRecord ok;
    ok.pair_index = 2;
    ok.src = 0;
    ok.dst = 1;
    ok.ok = true;
    ok.bleu = tricky_bleu;
    ok.runtime_s = 0.125;
    ok.steps = 20;
    ok.attempts = 2;
    ok.model_file = "/tmp/whatever.bin";
    journal.append(ok);
    dr::PairRecord bad;
    bad.pair_index = 4;
    bad.src = 1;
    bad.dst = 2;
    bad.ok = false;
    bad.attempts = 3;
    bad.error = "diverged at step 3: loss = inf";
    journal.append(bad);
  }
  const auto state = dr::load_checkpoint(file.path);
  EXPECT_TRUE(state.exists);
  EXPECT_TRUE(state.has_header);
  EXPECT_EQ(state.fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(state.pair_count, 6u);
  EXPECT_EQ(state.failed_records, 1u);
  EXPECT_EQ(state.skipped_lines, 0u);
  ASSERT_EQ(state.completed.size(), 1u);
  const dr::PairRecord& back = state.completed.at(2);
  EXPECT_EQ(back.src, 0u);
  EXPECT_EQ(back.dst, 1u);
  EXPECT_EQ(back.bleu, tricky_bleu);  // exact, not approximately equal
  EXPECT_EQ(back.runtime_s, 0.125);
  EXPECT_EQ(back.steps, 20u);
  EXPECT_EQ(back.attempts, 2u);
  EXPECT_EQ(back.model_file, "/tmp/whatever.bin");
}

TEST(Checkpoint, TruncatedTrailingLineIsSkippedNotFatal) {
  const TempFile file("journal_truncated.jsonl");
  {
    dr::CheckpointJournal journal(file.path, false);
    journal.write_header(1, 2);
    dr::PairRecord rec;
    rec.pair_index = 0;
    rec.src = 0;
    rec.dst = 1;
    rec.ok = true;
    rec.bleu = 50.0;
    journal.append(rec);
  }
  // Simulate a crash mid-append: a partial record with no trailing newline.
  {
    std::ofstream os(file.path, std::ios::app | std::ios::binary);
    os << R"({"type":"pair","pair":1,"ok":tr)";
  }
  const auto state = dr::load_checkpoint(file.path);
  EXPECT_TRUE(state.has_header);
  EXPECT_EQ(state.completed.size(), 1u);
  EXPECT_EQ(state.completed.count(0), 1u);
  EXPECT_EQ(state.skipped_lines, 1u);
}

TEST(Checkpoint, AppendModePreservesExistingRecords) {
  const TempFile file("journal_append.jsonl");
  {
    dr::CheckpointJournal journal(file.path, false);
    journal.write_header(9, 4);
    dr::PairRecord rec;
    rec.pair_index = 0;
    rec.src = 0;
    rec.dst = 1;
    rec.ok = true;
    rec.bleu = 10.0;
    journal.append(rec);
  }
  {
    dr::CheckpointJournal journal(file.path, true);
    dr::PairRecord rec;
    rec.pair_index = 1;
    rec.src = 1;
    rec.dst = 0;
    rec.ok = true;
    rec.bleu = 20.0;
    journal.append(rec);
  }
  const auto state = dr::load_checkpoint(file.path);
  EXPECT_EQ(state.fingerprint, 9u);
  EXPECT_EQ(state.completed.size(), 2u);
}

// ------------------------------------------------- miner fault isolation ---

TEST_F(RobustMiner, InjectedFaultsAreIsolatedToTheirPairs) {
  const auto languages = make_languages(3, 5);  // 6 ordered pairs

  // Reference run: no faults.
  const dc::MvrGraph clean =
      dc::RelationshipMiner(tiny_miner()).mine(languages);
  ASSERT_EQ(clean.edges().size(), 6u);
  ASSERT_TRUE(clean.failures().empty());
  const auto clean_bleu = bleu_by_pair(clean);

  // Pair 0 always throws; pair 3 always diverges (poisoned learning rate).
  auto& inj = dr::FaultInjector::instance();
  inj.arm("miner.pair", 0, dr::FaultAction::kThrow);
  inj.arm("miner.pair", 3, dr::FaultAction::kDiverge);

  auto& failed = desmine::obs::metrics().counter("miner.pair.failed");
  const auto failed_before = failed.value();

  dc::MinerConfig cfg = tiny_miner();
  cfg.retry.max_retries = 1;
  const dc::MvrGraph graph = dc::RelationshipMiner(cfg).mine(languages);

  // mine() completed despite two poisoned pairs.
  EXPECT_EQ(graph.edges().size(), 4u);
  ASSERT_EQ(graph.failures().size(), 2u);
  EXPECT_EQ(failed.value() - failed_before, 2u);
  for (const auto& f : graph.failures()) {
    EXPECT_EQ(f.attempts, 2u);  // first attempt + one retry
    EXPECT_FALSE(f.reason.empty());
  }

  // The surviving pairs trained from untouched forked seeds: their BLEU is
  // bit-identical to the clean run.
  const auto faulty_bleu = bleu_by_pair(graph);
  for (const auto& [pair, bleu] : faulty_bleu) {
    ASSERT_EQ(clean_bleu.count(pair), 1u);
    EXPECT_EQ(bleu, clean_bleu.at(pair));
  }
}

TEST_F(RobustMiner, TransientFaultIsRetriedToSuccess) {
  const auto languages = make_languages(3, 5);
  auto& inj = dr::FaultInjector::instance();
  inj.arm("miner.pair", 2, dr::FaultAction::kThrow, /*times=*/1);

  auto& retries = desmine::obs::metrics().counter("miner.pair.retries");
  const auto retries_before = retries.value();

  dc::MinerConfig cfg = tiny_miner();
  cfg.retry.max_retries = 2;
  const dc::MvrGraph graph = dc::RelationshipMiner(cfg).mine(languages);

  EXPECT_EQ(graph.edges().size(), 6u);
  EXPECT_TRUE(graph.failures().empty());
  EXPECT_GE(retries.value() - retries_before, 1u);
}

TEST_F(RobustMiner, DeadlineFailsPairsWithoutRetry) {
  const auto languages = make_languages(3, 5);
  dc::MinerConfig cfg = tiny_miner();
  cfg.pair_timeout_s = 1e-9;  // expires on the first training step
  cfg.retry.max_retries = 3;
  const dc::MvrGraph graph = dc::RelationshipMiner(cfg).mine(languages);

  EXPECT_TRUE(graph.edges().empty());
  ASSERT_EQ(graph.failures().size(), 6u);
  for (const auto& f : graph.failures()) {
    EXPECT_EQ(f.attempts, 1u) << "deadline overruns must not be retried";
    EXPECT_NE(f.reason.find("deadline"), std::string::npos) << f.reason;
  }
}

// ---------------------------------------------------- crash-resume parity ---

TEST_F(RobustMiner, CrashThenResumeYieldsBitIdenticalGraph) {
  const auto languages = make_languages(3, 5);

  // Reference: one uninterrupted run.
  const dc::MvrGraph reference =
      dc::RelationshipMiner(tiny_miner()).mine(languages);
  const auto reference_bleu = bleu_by_pair(reference);

  const TempFile checkpoint("resume.jsonl");

  // Crash run: abort right after pair 2 is journaled (threads=1 keeps the
  // pair order deterministic).
  auto& inj = dr::FaultInjector::instance();
  inj.arm("miner.pair.done", 2, dr::FaultAction::kAbort, 1);
  dc::MinerConfig crash_cfg = tiny_miner();
  crash_cfg.checkpoint_path = checkpoint.path;
  EXPECT_THROW(dc::RelationshipMiner(crash_cfg).mine(languages),
               dr::Interrupted);
  inj.clear();

  const auto journaled = dr::load_checkpoint(checkpoint.path);
  EXPECT_EQ(journaled.completed.size(), 3u);  // pairs 0..2 survived

  // Resume: skip the journaled pairs, train the rest.
  auto& skipped =
      desmine::obs::metrics().counter("checkpoint.pairs_skipped");
  const auto skipped_before = skipped.value();

  dc::MinerConfig resume_cfg = tiny_miner();
  resume_cfg.checkpoint_path = checkpoint.path;
  resume_cfg.resume = true;
  std::size_t resumed_events = 0;
  resume_cfg.on_pair = [&](const dc::PairEvent& e) {
    if (e.resumed) ++resumed_events;
  };
  const dc::MvrGraph resumed =
      dc::RelationshipMiner(resume_cfg).mine(languages);

  EXPECT_EQ(skipped.value() - skipped_before, 3u);
  EXPECT_EQ(resumed_events, 3u);
  EXPECT_TRUE(resumed.failures().empty());
  ASSERT_EQ(resumed.edges().size(), 6u);
  const auto resumed_bleu = bleu_by_pair(resumed);
  for (const auto& [pair, bleu] : reference_bleu) {
    ASSERT_EQ(resumed_bleu.count(pair), 1u);
    EXPECT_EQ(resumed_bleu.at(pair), bleu)
        << "pair (" << pair.first << ", " << pair.second
        << ") BLEU must be bit-identical after resume";
  }

  // The restored edges carry usable models (reloaded from the sidecars).
  for (const auto& e : resumed.edges()) {
    EXPECT_TRUE(e.model != nullptr);
  }
}

TEST_F(RobustMiner, ResumeRefusesForeignCheckpoint) {
  const auto languages = make_languages(3, 5);
  const TempFile checkpoint("foreign.jsonl");
  {
    dr::CheckpointJournal journal(checkpoint.path, false);
    journal.write_header(/*fingerprint=*/12345, 6);
  }
  dc::MinerConfig cfg = tiny_miner();
  cfg.checkpoint_path = checkpoint.path;
  cfg.resume = true;
  EXPECT_THROW(dc::RelationshipMiner(cfg).mine(languages),
               desmine::RuntimeError);
}

TEST_F(RobustMiner, CorruptSidecarModelTriggersRetrainNotFailure) {
  const auto languages = make_languages(3, 6);
  const TempFile checkpoint("sidecar.jsonl");

  dc::MinerConfig cfg = tiny_miner();
  cfg.checkpoint_path = checkpoint.path;
  const dc::MvrGraph first = dc::RelationshipMiner(cfg).mine(languages);
  const auto first_bleu = bleu_by_pair(first);

  // Corrupt one sidecar artifact; resume must retrain that pair (same seed,
  // same BLEU) instead of failing or loading garbage weights.
  {
    std::ofstream os(dr::checkpoint_model_file(checkpoint.path, 1),
                     std::ios::trunc | std::ios::binary);
    os << "garbage";
  }
  dc::MinerConfig resume_cfg = tiny_miner();
  resume_cfg.checkpoint_path = checkpoint.path;
  resume_cfg.resume = true;
  const dc::MvrGraph resumed =
      dc::RelationshipMiner(resume_cfg).mine(languages);
  ASSERT_EQ(resumed.edges().size(), 6u);
  const auto resumed_bleu = bleu_by_pair(resumed);
  for (const auto& [pair, bleu] : first_bleu) {
    EXPECT_EQ(resumed_bleu.at(pair), bleu);
  }
}
