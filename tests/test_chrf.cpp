// Tests for the chrF character n-gram F-score.
#include <gtest/gtest.h>

#include "text/chrf.h"
#include "util/error.h"

namespace dx = desmine::text;

TEST(Chrf, IdentityScores100) {
  const dx::Sentence s = {"abcde", "fghij", "klmno"};
  const auto r = dx::sentence_chrf(s, s);
  EXPECT_NEAR(r.score, 100.0, 1e-9);
  EXPECT_NEAR(r.precision, 1.0, 1e-12);
  EXPECT_NEAR(r.recall, 1.0, 1e-12);
}

TEST(Chrf, DisjointAlphabetsScoreZero) {
  const dx::Sentence cand = {"aaaaa", "aaaaa"};
  const dx::Sentence ref = {"bbbbb", "bbbbb"};
  EXPECT_DOUBLE_EQ(dx::sentence_chrf(cand, ref).score, 0.0);
}

TEST(Chrf, PartialWordMatchScoresBetweenBounds) {
  // One flipped character inside a 10-char word: BLEU-style exact word
  // matching sees a total miss; chrF must credit the 9 shared characters.
  const dx::Sentence ref = {"aaaaaaaaaa"};
  const dx::Sentence cand = {"aaaaabaaaa"};
  const auto r = dx::sentence_chrf(cand, ref);
  EXPECT_GT(r.score, 30.0);
  EXPECT_LT(r.score, 100.0);
}

TEST(Chrf, MoreOverlapScoresHigher) {
  const dx::Sentence ref = {"abcabc", "defdef"};
  const dx::Sentence close = {"abcabc", "defxef"};
  const dx::Sentence far = {"abxxxc", "dxxxef"};
  EXPECT_GT(dx::sentence_chrf(close, ref).score,
            dx::sentence_chrf(far, ref).score);
}

TEST(Chrf, RecallWeightingPenalizesShortCandidates) {
  // A too-short candidate has high precision but low recall; with beta=2
  // (recall-heavy) its score must be lower than the full-length candidate's.
  const dx::Sentence ref = {"abcdefgh", "ijklmnop"};
  const dx::Sentence full = {"abcdefgh", "ijklmnxp"};
  const dx::Sentence half = {"abcdefgh"};
  // Pad the half candidate to align corpora sizes: compare as corpora of 1.
  const auto full_score = dx::corpus_chrf({full}, {ref}).score;
  const auto half_score = dx::corpus_chrf({half}, {ref}).score;
  EXPECT_GT(full_score, half_score);
}

TEST(Chrf, BoundedAndValidated) {
  const dx::Sentence a = {"abc"}, b = {"abd"};
  const auto r = dx::sentence_chrf(a, b);
  EXPECT_GE(r.score, 0.0);
  EXPECT_LE(r.score, 100.0);
  EXPECT_THROW(dx::corpus_chrf({{"a"}}, {}), desmine::PreconditionError);
  dx::ChrfOptions bad;
  bad.beta = 0.0;
  EXPECT_THROW(dx::sentence_chrf(a, b, bad), desmine::PreconditionError);
  EXPECT_DOUBLE_EQ(dx::corpus_chrf({}, {}).score, 0.0);
}

TEST(Chrf, ShortSentencesUseAvailableOrders) {
  // 2-char strings have no 3..6-grams; the mean must use orders 1-2 only,
  // not dilute with empty orders.
  const dx::Sentence s = {"ab"};
  EXPECT_NEAR(dx::sentence_chrf(s, s).score, 100.0, 1e-9);
}
