// Tests for the count-based word-translation baseline.
#include <gtest/gtest.h>

#include "nmt/word_baseline.h"
#include "util/error.h"
#include "util/rng.h"

namespace dm = desmine::nmt;
namespace dx = desmine::text;
using desmine::util::Rng;

TEST(WordBaseline, LearnsDeterministicSubstitution) {
  dx::Corpus src, tgt;
  Rng rng(1);
  const std::vector<std::string> sw = {"a", "b", "c"};
  const std::vector<std::string> tw = {"x", "y", "z"};
  for (int k = 0; k < 50; ++k) {
    dx::Sentence s, t;
    for (int i = 0; i < 6; ++i) {
      const std::size_t w = rng.index(3);
      s.push_back(sw[w]);
      t.push_back(tw[w]);
    }
    src.push_back(s);
    tgt.push_back(t);
  }
  const auto model = dm::WordBaseline::fit(src, tgt);
  EXPECT_EQ(model.max_position(), 6u);
  // Perfect on the deterministic mapping.
  EXPECT_NEAR(model.score(src, tgt).score, 100.0, 1e-9);
  EXPECT_EQ(model.translate({"a", "c", "b"}),
            (dx::Sentence{"x", "z", "y"}));
}

TEST(WordBaseline, UnseenSourceFallsBackToMarginal) {
  const dx::Corpus src = {{"a", "a"}, {"a", "b"}};
  const dx::Corpus tgt = {{"x", "x"}, {"x", "y"}};
  const auto model = dm::WordBaseline::fit(src, tgt);
  // "q" never seen at position 0: falls back to the positional mode "x".
  const auto out = model.translate({"q", "q"});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "x");
  EXPECT_EQ(out[1], "x");  // marginal at position 1 is {x:1, y:1} -> ties to x
}

TEST(WordBaseline, OutputClampedToTrainedPositions) {
  const dx::Corpus src = {{"a", "b"}};
  const dx::Corpus tgt = {{"x", "y"}};
  const auto model = dm::WordBaseline::fit(src, tgt);
  EXPECT_EQ(model.translate({"a", "b", "a", "b"}).size(), 2u);
  EXPECT_EQ(model.translate({"a"}).size(), 1u);
}

TEST(WordBaseline, CannotCaptureContextualMappings) {
  // Target depends on the *previous* source word — invisible to a
  // position-wise model, so it must do poorly. (This is precisely the gap
  // the seq2seq model fills; see bench_ablation_scorers.)
  Rng rng(2);
  dx::Corpus src, tgt;
  for (int k = 0; k < 200; ++k) {
    dx::Sentence s, t;
    std::string prev = "a";
    for (int i = 0; i < 6; ++i) {
      const std::string cur = rng.bernoulli(0.5) ? "a" : "b";
      s.push_back(cur);
      t.push_back(prev == "a" ? "x" : "y");  // depends on s[i-1]
      prev = cur;
    }
    src.push_back(s);
    tgt.push_back(t);
  }
  const auto model = dm::WordBaseline::fit(src, tgt);
  dx::Corpus test_src, test_tgt;
  for (int k = 0; k < 30; ++k) {
    dx::Sentence s, t;
    std::string prev = "a";
    for (int i = 0; i < 6; ++i) {
      const std::string cur = rng.bernoulli(0.5) ? "a" : "b";
      s.push_back(cur);
      t.push_back(prev == "a" ? "x" : "y");
      prev = cur;
    }
    test_src.push_back(s);
    test_tgt.push_back(t);
  }
  EXPECT_LT(model.score(test_src, test_tgt).score, 80.0);
}

TEST(WordBaseline, ValidatesInputs) {
  EXPECT_THROW(dm::WordBaseline::fit({}, {}), desmine::PreconditionError);
  EXPECT_THROW(dm::WordBaseline::fit({{"a"}}, {}),
               desmine::PreconditionError);
  const auto model = dm::WordBaseline::fit({{"a"}}, {{"x"}});
  EXPECT_THROW(model.score({{"a"}}, {}), desmine::PreconditionError);
}
