// End-to-end tests of the Framework facade on a small synthetic plant:
// fit -> graph -> detect, plus corpus alignment plumbing.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "data/plant.h"
#include "util/error.h"

namespace dc = desmine::core;
namespace dd = desmine::data;

namespace {

/// Small-but-real pipeline settings: tiny NMT models, short sentences.
dc::FrameworkConfig fast_config() {
  dc::FrameworkConfig cfg;
  cfg.window.word_length = 5;
  cfg.window.word_stride = 1;
  cfg.window.sentence_length = 6;
  cfg.window.sentence_stride = 6;

  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.model.max_decode_length = 8;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 99;

  cfg.detector.valid_lo = 0.0;  // all models valid in the small test
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;
  return cfg;
}

dd::PlantConfig plant_config() {
  dd::PlantConfig cfg;
  cfg.num_components = 2;
  cfg.sensors_per_component = 2;
  cfg.num_popular = 0;
  cfg.num_lazy = 0;
  cfg.num_constant = 1;
  cfg.days = 6;
  cfg.minutes_per_day = 240;
  cfg.anomalies = {{5, {0}}};
  cfg.precursors = false;
  cfg.noise = 0.004;
  cfg.seed = 123;
  return cfg;
}

struct Pipeline {
  dd::PlantDataset plant;
  dc::Framework framework;

  Pipeline() : plant(dd::generate_plant(plant_config())),
               framework(fast_config()) {
    // Days 0-2 train, day 3 dev; days 4-5 test (anomaly on day 5).
    framework.fit(plant.days_slice(0, 3), plant.days_slice(3, 1));
  }
};

Pipeline& shared_pipeline() {
  static Pipeline p;  // fit once; reused across tests (read-only)
  return p;
}

}  // namespace

TEST(Framework, RequiresFitBeforeUse) {
  dc::Framework fw(fast_config());
  EXPECT_FALSE(fw.fitted());
  EXPECT_THROW(fw.graph(), desmine::PreconditionError);
  EXPECT_THROW(fw.encrypter(), desmine::PreconditionError);
  EXPECT_THROW(fw.detect({}), desmine::PreconditionError);
}

TEST(Framework, FitBuildsCompleteDirectedGraph) {
  auto& p = shared_pipeline();
  const auto& g = p.framework.graph();
  // 4 informative sensors -> 12 directed edges; constant sensor dropped.
  EXPECT_EQ(g.sensor_count(), 4u);
  EXPECT_EQ(g.edges().size(), 12u);
  EXPECT_EQ(p.framework.encrypter().dropped_sensors().size(), 1u);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.bleu, 0.0);
    EXPECT_LE(e.bleu, 100.0);
    EXPECT_NE(e.model, nullptr);
    EXPECT_GT(e.runtime_seconds, 0.0);
  }
}

TEST(Framework, WithinComponentBleuExceedsCrossComponent) {
  auto& p = shared_pipeline();
  const auto& g = p.framework.graph();
  double within_sum = 0.0, cross_sum = 0.0;
  std::size_t within_n = 0, cross_n = 0;
  for (const auto& e : g.edges()) {
    const auto cs = p.plant.component_of.at(g.name(e.src));
    const auto cd = p.plant.component_of.at(g.name(e.dst));
    if (cs == cd) {
      within_sum += e.bleu;
      ++within_n;
    } else {
      cross_sum += e.bleu;
      ++cross_n;
    }
  }
  ASSERT_GT(within_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(within_sum / within_n, cross_sum / cross_n)
      << "same-component sensors must translate better";
}

TEST(Framework, CorporaAlignedAcrossSensors) {
  auto& p = shared_pipeline();
  const auto corpora = p.framework.to_corpora(p.plant.days_slice(4, 2));
  ASSERT_EQ(corpora.size(), 4u);
  for (const auto& c : corpora) {
    EXPECT_EQ(c.size(), corpora.front().size());
    for (const auto& s : c) EXPECT_EQ(s.size(), 6u);
  }
}

TEST(Framework, DetectsInjectedAnomaly) {
  auto& p = shared_pipeline();
  // Test on days 4 (normal) and 5 (component-0 anomaly).
  const auto result = p.framework.detect(p.plant.days_slice(4, 2));
  const std::size_t windows = result.anomaly_scores.size();
  ASSERT_GT(windows, 2u);

  // First half of windows = day 4 (normal); second half = day 5 (anomalous).
  double normal = 0.0, anomalous = 0.0;
  const std::size_t half = windows / 2;
  for (std::size_t t = 0; t < half; ++t) normal += result.anomaly_scores[t];
  for (std::size_t t = half; t < windows; ++t) {
    anomalous += result.anomaly_scores[t];
  }
  normal /= static_cast<double>(half);
  anomalous /= static_cast<double>(windows - half);
  EXPECT_GT(anomalous, normal)
      << "anomaly windows must break more relationships";
}

TEST(Framework, DetectMissingSensorThrows) {
  auto& p = shared_pipeline();
  dc::MultivariateSeries incomplete = {
      p.plant.series.front()};  // only one sensor
  EXPECT_THROW(p.framework.detect(incomplete), desmine::PreconditionError);
}

TEST(Framework, FitRequiresTwoInformativeSensors) {
  dc::Framework fw(fast_config());
  dc::MultivariateSeries only_constant = {
      {"c", dc::EventSequence(500, "OFF")},
      {"d", dc::EventSequence(500, "ON")},
  };
  EXPECT_THROW(fw.fit(only_constant, only_constant),
               desmine::PreconditionError);
}
