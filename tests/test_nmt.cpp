// Tests for the seq2seq NMT stack: training convergence on synthetic
// translation tasks, determinism, and the high-level TranslationModel API.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nmt/seq2seq.h"
#include "nmt/trainer.h"
#include "nmt/translation.h"
#include "text/bleu.h"
#include "util/error.h"
#include "util/rng.h"

namespace dm = desmine::nmt;
namespace dx = desmine::text;
using desmine::util::Rng;

namespace {

dm::Seq2SeqConfig tiny_config() {
  dm::Seq2SeqConfig cfg;
  cfg.embedding_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  cfg.max_decode_length = 16;
  return cfg;
}

/// Build a deterministic word-substitution task: target word = f(source
/// word), sentence-aligned. An NMT model must drive loss near zero on it.
void make_substitution_corpus(std::size_t sentences, std::size_t length,
                              dx::Corpus& src, dx::Corpus& tgt,
                              std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> s_words = {"sa", "sb", "sc", "sd"};
  const std::vector<std::string> t_words = {"ta", "tb", "tc", "td"};
  for (std::size_t k = 0; k < sentences; ++k) {
    dx::Sentence s, t;
    for (std::size_t i = 0; i < length; ++i) {
      const std::size_t w = rng.index(s_words.size());
      s.push_back(s_words[w]);
      t.push_back(t_words[w]);
    }
    src.push_back(s);
    tgt.push_back(t);
  }
}

}  // namespace

TEST(Seq2Seq, LossDecreasesDuringTraining) {
  dx::Corpus src, tgt;
  make_substitution_corpus(64, 5, src, tgt, 1);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(11));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig tc;
  tc.steps = 800;
  tc.batch_size = 8;
  tc.lr = 0.02f;
  const auto history = dm::train(model, pairs, tc, Rng(12));
  ASSERT_EQ(history.losses.size(), 800u);
  const double early = history.losses[5];
  EXPECT_LT(history.final_loss, early * 0.5);
}

TEST(Seq2Seq, LearnsWordSubstitution) {
  dx::Corpus src, tgt;
  make_substitution_corpus(96, 5, src, tgt, 2);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 800;
  cfg.trainer.batch_size = 12;
  cfg.trainer.lr = 0.02f;
  auto model = dm::train_translation_model(src, tgt, cfg, 99);

  // Score on freshly generated sentences from the same distribution.
  dx::Corpus test_src, test_tgt;
  make_substitution_corpus(16, 5, test_src, test_tgt, 3);
  const auto bleu = model.score(test_src, test_tgt);
  EXPECT_GT(bleu.score, 80.0) << "substitution task should be learnable";
}

TEST(Seq2Seq, UnrelatedTargetScoresLower) {
  // Property at the heart of the paper: related streams must out-score
  // unrelated ones under identical settings.
  dx::Corpus src, tgt;
  make_substitution_corpus(96, 5, src, tgt, 4);

  // Unrelated target: random words, same vocabulary sizes.
  Rng rng(5);
  dx::Corpus noise_tgt;
  const std::vector<std::string> t_words = {"ta", "tb", "tc", "td"};
  for (const auto& s : src) {
    dx::Sentence t;
    for (std::size_t i = 0; i < s.size(); ++i) {
      t.push_back(t_words[rng.index(t_words.size())]);
    }
    noise_tgt.push_back(t);
  }

  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 600;
  cfg.trainer.batch_size = 12;
  cfg.trainer.lr = 0.02f;

  auto related = dm::train_translation_model(src, tgt, cfg, 7);
  auto unrelated = dm::train_translation_model(src, noise_tgt, cfg, 7);

  dx::Corpus dev_src, dev_tgt;
  make_substitution_corpus(16, 5, dev_src, dev_tgt, 6);
  Rng rng2(8);
  dx::Corpus dev_noise;
  for (const auto& s : dev_src) {
    dx::Sentence t;
    for (std::size_t i = 0; i < s.size(); ++i) {
      t.push_back(t_words[rng2.index(t_words.size())]);
    }
    dev_noise.push_back(t);
  }

  const double bleu_related = related.score(dev_src, dev_tgt).score;
  const double bleu_unrelated = unrelated.score(dev_src, dev_noise).score;
  EXPECT_GT(bleu_related, bleu_unrelated + 20.0);
}

TEST(Seq2Seq, TrainingIsDeterministic) {
  dx::Corpus src, tgt;
  make_substitution_corpus(32, 4, src, tgt, 10);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 30;
  cfg.trainer.batch_size = 4;

  auto m1 = dm::train_translation_model(src, tgt, cfg, 77);
  auto m2 = dm::train_translation_model(src, tgt, cfg, 77);
  const auto out1 = m1.translate(src[0]);
  const auto out2 = m2.translate(src[0]);
  EXPECT_EQ(out1, out2);
  EXPECT_DOUBLE_EQ(m1.score(src, tgt).score, m2.score(src, tgt).score);
}

TEST(Seq2Seq, DifferentSeedsGiveDifferentModels) {
  dx::Corpus src, tgt;
  make_substitution_corpus(32, 4, src, tgt, 10);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 5;
  cfg.trainer.batch_size = 4;
  auto m1 = dm::train_translation_model(src, tgt, cfg, 1);
  auto m2 = dm::train_translation_model(src, tgt, cfg, 2);
  // Underfit models almost surely diverge in loss.
  const auto p1 = dm::encode_pairs(m1.src_vocab(), m1.tgt_vocab(), src, tgt);
  const auto p2 = dm::encode_pairs(m2.src_vocab(), m2.tgt_vocab(), src, tgt);
  std::vector<const dm::EncodedPair*> b1, b2;
  for (const auto& p : p1) b1.push_back(&p);
  for (const auto& p : p2) b2.push_back(&p);
  EXPECT_NE(m1.model().evaluate_loss(b1), m2.model().evaluate_loss(b2));
}

TEST(Seq2Seq, TranslateEmptySentenceThrows) {
  dx::Corpus src = {{"a", "b"}};
  dx::Corpus tgt = {{"x", "y"}};
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 2;
  cfg.trainer.batch_size = 2;
  auto model = dm::train_translation_model(src, tgt, cfg, 3);
  EXPECT_THROW(model.translate({}), desmine::PreconditionError);
}

TEST(Seq2Seq, GreedyDecodeRespectsMaxLength) {
  dx::Corpus src = {{"a", "b", "a", "b"}};
  dx::Corpus tgt = {{"x", "y", "x", "y"}};
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.model.max_decode_length = 3;
  cfg.trainer.steps = 2;
  cfg.trainer.batch_size = 1;
  auto model = dm::train_translation_model(src, tgt, cfg, 3);
  EXPECT_LE(model.translate(src[0]).size(), 3u);
}

TEST(Seq2Seq, BucketedTrainingHandlesMixedLengths) {
  dx::Corpus src = {{"a", "b"}, {"a", "b", "a"}, {"b", "a"}, {"b", "a", "b"}};
  dx::Corpus tgt = {{"x", "y"}, {"x", "y", "x"}, {"y", "x"}, {"y", "x", "y"}};
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 20;
  cfg.trainer.batch_size = 3;
  EXPECT_NO_THROW(dm::train_translation_model(src, tgt, cfg, 4));
}

TEST(Seq2Seq, RejectsEmptyTrainingCorpus) {
  dm::TranslationConfig cfg;
  EXPECT_THROW(dm::train_translation_model({}, {}, cfg, 1),
               desmine::PreconditionError);
}

TEST(Seq2Seq, UnknownSourceTokensHandled) {
  dx::Corpus src, tgt;
  make_substitution_corpus(16, 4, src, tgt, 20);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 10;
  cfg.trainer.batch_size = 4;
  auto model = dm::train_translation_model(src, tgt, cfg, 5);
  // A sentence of never-seen tokens maps to <unk> ids and must not throw.
  EXPECT_NO_THROW(model.translate({"zz", "qq", "zz", "qq"}));
}

// ------------------------------------------------------ divergence guard ----

TEST(Divergence, AbsurdLearningRateTripsGuardEarly) {
  dx::Corpus src, tgt;
  make_substitution_corpus(64, 5, src, tgt, 1);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(11));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig tc;
  tc.steps = 500;
  tc.batch_size = 8;
  tc.lr = 1e6f;  // guaranteed numerical blow-up
  try {
    dm::train(model, pairs, tc, Rng(12));
    FAIL() << "training with lr=1e6 should diverge";
  } catch (const dm::TrainDivergence& e) {
    // Fail fast: the guard must trip long before the step budget is spent.
    EXPECT_GT(e.step(), 0u);
    EXPECT_LT(e.step(), 50u) << e.what();
    EXPECT_EQ(e.history().diverged_at_step, e.step());
    EXPECT_LE(e.history().steps_run, e.step());
    EXPECT_FALSE(std::string(e.what()).empty());
  }
}

TEST(Divergence, HistoryRecordsLossesUpToTrip) {
  dx::Corpus src, tgt;
  make_substitution_corpus(32, 4, src, tgt, 7);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(3));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig tc;
  tc.steps = 200;
  tc.batch_size = 4;
  tc.lr = 1e6f;
  try {
    dm::train(model, pairs, tc, Rng(4));
    FAIL() << "expected TrainDivergence";
  } catch (const dm::TrainDivergence& e) {
    // The history carries every loss recorded before (and including) the
    // offending step, so callers can log the trajectory.
    EXPECT_EQ(e.history().losses.size(), e.step());
  }
}

TEST(Divergence, GuardDisabledRunsFullBudget) {
  dx::Corpus src, tgt;
  make_substitution_corpus(16, 4, src, tgt, 9);
  const auto sv = dx::Vocabulary::build(src);
  const auto tv = dx::Vocabulary::build(tgt);
  dm::Seq2SeqModel model(sv.size(), tv.size(), tiny_config(), Rng(5));
  const auto pairs = dm::encode_pairs(sv, tv, src, tgt);

  dm::TrainerConfig tc;
  tc.steps = 30;
  tc.batch_size = 4;
  tc.lr = 0.01f;
  tc.divergence_factor = 0.0;  // disabled: a healthy run is unaffected
  const auto history = dm::train(model, pairs, tc, Rng(6));
  EXPECT_EQ(history.steps_run, 30u);
  EXPECT_EQ(history.diverged_at_step, 0u);
}

TEST(Divergence, HealthyTrainingNeverTrips) {
  dx::Corpus src, tgt;
  make_substitution_corpus(32, 4, src, tgt, 13);
  dm::TranslationConfig cfg;
  cfg.model = tiny_config();
  cfg.trainer.steps = 100;
  cfg.trainer.batch_size = 4;
  cfg.trainer.lr = 0.01f;
  // Default divergence_factor stays armed; a normal run must not trip it.
  EXPECT_NO_THROW(dm::train_translation_model(src, tgt, cfg, 21));
}
