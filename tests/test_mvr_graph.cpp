// Tests for the multivariate relationship graph: BLEU-band subgraphs,
// popular-sensor extraction, local subgraphs, degree bookkeeping.
#include <gtest/gtest.h>

#include "core/mvr_graph.h"
#include "util/error.h"

namespace dc = desmine::core;

namespace {

dc::MvrGraph sample_graph() {
  dc::MvrGraph g({"s0", "s1", "s2", "s3"});
  auto edge = [](std::size_t a, std::size_t b, double bleu) {
    dc::MvrEdge e;
    e.src = a;
    e.dst = b;
    e.bleu = bleu;
    return e;
  };
  g.add_edge(edge(0, 1, 85.0));
  g.add_edge(edge(1, 0, 88.0));
  g.add_edge(edge(0, 2, 92.0));
  g.add_edge(edge(2, 0, 55.0));
  g.add_edge(edge(1, 2, 80.0));
  g.add_edge(edge(3, 0, 89.9));
  return g;
}

}  // namespace

TEST(MvrGraph, BasicAccessors) {
  const auto g = sample_graph();
  EXPECT_EQ(g.sensor_count(), 4u);
  EXPECT_EQ(g.edges().size(), 6u);
  EXPECT_EQ(g.name(3), "s3");
  EXPECT_THROW(g.name(4), desmine::PreconditionError);
}

TEST(MvrGraph, RejectsBadEdges) {
  dc::MvrGraph g({"a", "b"});
  dc::MvrEdge self;
  self.src = 0;
  self.dst = 0;
  EXPECT_THROW(g.add_edge(self), desmine::PreconditionError);
  dc::MvrEdge oob;
  oob.src = 0;
  oob.dst = 5;
  EXPECT_THROW(g.add_edge(oob), desmine::PreconditionError);
}

TEST(MvrGraph, FilterBleuHalfOpenRange) {
  const auto g = sample_graph();
  const auto band = g.filter_bleu(80.0, 90.0);
  // Edges with bleu in [80, 90): 85, 88, 80, 89.9 — not 92, not 55.
  EXPECT_EQ(band.edges().size(), 4u);
  for (const auto& e : band.edges()) {
    EXPECT_GE(e.bleu, 80.0);
    EXPECT_LT(e.bleu, 90.0);
  }
  // Node set is preserved (indices stable), only edges filtered.
  EXPECT_EQ(band.sensor_count(), 4u);
}

TEST(MvrGraph, ActiveSensorsExcludeIsolated) {
  const auto g = sample_graph();
  const auto band = g.filter_bleu(90.0, 100.1);
  // Only the 0->2 edge (92) survives: active nodes are {0, 2}.
  const auto active = band.active_sensors();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 0u);
  EXPECT_EQ(active[1], 2u);
}

TEST(MvrGraph, DegreesCountDirectedEdges) {
  const auto g = sample_graph();
  const auto in = g.in_degrees();
  const auto out = g.out_degrees();
  EXPECT_EQ(in[0], 3u);   // from s1, s2, s3
  EXPECT_EQ(out[0], 2u);  // to s1, s2
  EXPECT_EQ(in[3], 0u);
  EXPECT_EQ(out[3], 1u);
}

TEST(MvrGraph, PopularSensorsByInDegree) {
  const auto g = sample_graph();
  const auto popular = g.popular_sensors(3);
  ASSERT_EQ(popular.size(), 1u);
  EXPECT_EQ(popular[0], 0u);
  EXPECT_EQ(g.popular_sensors(99).size(), 0u);
  EXPECT_EQ(g.popular_sensors(0).size(), 4u);
}

TEST(MvrGraph, WithoutSensorsDropsIncidentEdges) {
  const auto g = sample_graph();
  const auto local = g.without_sensors({0});
  // Only 1->2 survives.
  ASSERT_EQ(local.edges().size(), 1u);
  EXPECT_EQ(local.edges()[0].src, 1u);
  EXPECT_EQ(local.edges()[0].dst, 2u);
  EXPECT_EQ(local.sensor_count(), 4u);
}

TEST(MvrGraph, GlobalThenLocalSubgraphComposition) {
  // The paper's local subgraph: filter to a band, then remove popular nodes.
  const auto g = sample_graph();
  const auto band = g.filter_bleu(80.0, 90.0);
  // Within the band, node 0 has in-degree 2 (from s1 and s3) — popular at
  // threshold 2; removing it leaves only the 1->2 edge.
  const auto local = band.without_sensors(band.popular_sensors(2));
  ASSERT_EQ(local.edges().size(), 1u);  // only 1->2 at 80
  EXPECT_EQ(local.edges()[0].bleu, 80.0);
}

TEST(MvrGraph, ToDigraphPreservesStructure) {
  const auto g = sample_graph();
  const auto dg = g.to_digraph();
  EXPECT_EQ(dg.node_count(), 4u);
  EXPECT_EQ(dg.edge_count(), 6u);
  EXPECT_EQ(dg.in_degree(0), 3u);
}

TEST(MvrGraph, DotContainsSensorNames) {
  const auto dot = sample_graph().to_dot();
  EXPECT_NE(dot.find("s0"), std::string::npos);
  EXPECT_NE(dot.find("s3"), std::string::npos);
}
