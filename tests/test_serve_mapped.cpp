// Serving from the mapped (v4) model store (DESIGN.md §15).
//
// A SessionManager opened on a v4 artifact must score bit-identically
// (IEEE-754) to one built from the in-memory graph, while keeping weight
// residency under the configured LRU budget: resident_edges/resident_bytes
// gauges never exceed the cap after an acquire, evictions are counted, and
// in-flight batches keep scoring through an eviction (shared_ptr safety).
// The 32-session soak is the acceptance gate: tight budget, sustained
// ingest, zero dropped windows. Hot reload of a v4 artifact is a remap —
// the old generation's map stays pinned until its last window drains.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/online.h"
#include "io/artifact_map.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "serve/residency.h"
#include "serve/session_manager.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
namespace ds = desmine::serve;
namespace dio = desmine::io;
namespace dobs = desmine::obs;
using desmine::util::Rng;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Temp artifact path that cleans up on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path("/tmp/desmine_test_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

/// Same coupled-pair-plus-noise shape as test_serve_faults, so served
/// results can be replayed against OnlineDetector.
dc::MultivariateSeries make_series(std::size_t ticks, std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    lead.push_back(state ? "ON" : "OFF");
    follow.push_back((t >= 2 && lead[t - 2] == "ON") ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;
  TempFile artifact{"serve_mapped_model.bin"};

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          c.miner.translation.trainer.steps = 150;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(600, 1), make_series(300, 2));
    dio::save_framework(framework, artifact.path);  // default = v4 mapped
  }

  ds::ServeConfig serve_config() const {
    ds::ServeConfig s;
    s.detector = cfg.detector;
    s.workers = 2;
    s.max_batch = 8;
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

/// Sequential OnlineDetector replay: the serving ground truth.
std::vector<dc::OnlineDetector::WindowResult> replay_windows(
    const Fixture& f, const dc::MultivariateSeries& series) {
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<dc::OnlineDetector::WindowResult> out;
  for (std::size_t t = 0; t < series.front().events.size(); ++t) {
    const auto r = online.push(tick_states(series, t));
    if (r) out.push_back(*r);
  }
  return out;
}

/// Poll every window of `session`, asserting scores bit-match the replay.
std::size_t poll_and_check(ds::SessionManager& manager, std::uint64_t session,
                           const std::vector<dc::OnlineDetector::WindowResult>&
                               expected) {
  std::size_t next_index = 0;
  while (const auto r = manager.poll(session)) {
    EXPECT_LT(next_index, expected.size());
    EXPECT_EQ(r->window_index, next_index);
    EXPECT_FALSE(r->shed);
    EXPECT_TRUE(r->failed.empty());
    EXPECT_EQ(bits(r->anomaly_score), bits(expected[next_index].anomaly_score))
        << "window " << next_index;
    ++next_index;
  }
  return next_index;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bit-identical serving

TEST(ServeMapped, MappedSessionScoresBitIdenticallyToHeapSession) {
  auto& f = fixture();
  ds::SessionManager manager(f.artifact.path, f.serve_config());
  EXPECT_EQ(manager.registry().current()->edges.size(),
            f.framework.graph().edges().size());
  ASSERT_NE(manager.registry().current()->residency, nullptr);

  const auto series = make_series(160, 40);
  const auto expected = replay_windows(f, series);
  const std::uint64_t id = manager.open();
  for (std::size_t t = 0; t < 160; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());
}

TEST(ServeMapped, HeapFallbackEnvServesIdentically) {
  auto& f = fixture();
  ::setenv("DESMINE_FORCE_HEAP_FALLBACK", "1", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("DESMINE_FORCE_HEAP_FALLBACK"); }
  } guard;
  ds::SessionManager manager(f.artifact.path, f.serve_config());
  ASSERT_NE(manager.registry().current()->residency, nullptr);
  EXPECT_FALSE(manager.registry().current()->residency->map()->mapped());

  const auto series = make_series(120, 41);
  const auto expected = replay_windows(f, series);
  const std::uint64_t id = manager.open();
  for (std::size_t t = 0; t < 120; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());
}

// ---------------------------------------------------------------------------
// LRU residency

TEST(ServeMapped, ResidencyEdgeBudgetEvictsAndStaysUnderCap) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.resident_edges = 2;  // graph has 6 model edges — forces churn
  ds::SessionManager manager(f.artifact.path, scfg);
  const auto residency = manager.registry().current()->residency;
  ASSERT_NE(residency, nullptr);
  ASSERT_GT(f.framework.graph().edges().size(), 2u);

  const auto series = make_series(120, 42);
  const auto expected = replay_windows(f, series);
  const std::uint64_t id = manager.open();
  for (std::size_t t = 0; t < 120; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();

  // Zero dropped windows AND bit-identical scores through the churn —
  // evicting an edge while a batch holds its shared_ptr must be safe.
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());

  const auto stats = residency->stats();
  EXPECT_LE(stats.resident_edges, 2u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(dobs::metrics().gauge("serve.model.resident_edges").value(),
            static_cast<double>(stats.resident_edges));
  EXPECT_GE(dobs::metrics().counter("serve.model.evictions").value(),
            stats.evictions);
}

TEST(ServeMapped, ResidencyByteBudgetRespected) {
  auto& f = fixture();
  // Budget: exactly two edges' worth of bytes, measured from the TOC.
  std::uint64_t two_edges = 0;
  {
    const auto map = dio::ArtifactMap::open(f.artifact.path);
    std::size_t counted = 0;
    for (std::size_t i = 0; i < map->edges().size() && counted < 2; ++i) {
      if (!map->edges()[i].has_model) continue;
      two_edges += map->edge_cost_bytes(i);
      ++counted;
    }
    ASSERT_EQ(counted, 2u);
  }
  ds::ServeConfig scfg = f.serve_config();
  scfg.resident_bytes = two_edges;
  ds::SessionManager manager(f.artifact.path, scfg);
  const auto residency = manager.registry().current()->residency;

  const auto series = make_series(100, 43);
  const auto expected = replay_windows(f, series);
  const std::uint64_t id = manager.open();
  for (std::size_t t = 0; t < 100; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());

  const auto stats = residency->stats();
  EXPECT_LE(stats.resident_bytes, two_edges);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(dobs::metrics().gauge("serve.model.resident_bytes").value(),
            static_cast<double>(two_edges));
}

// ---------------------------------------------------------------------------
// Acceptance soak: 32 sessions, tight budget, zero dropped windows

TEST(ServeMapped, SoakThirtyTwoSessionsUnderBudgetZeroDrops) {
  auto& f = fixture();
  ds::ServeConfig scfg = f.serve_config();
  scfg.resident_edges = 2;
  ds::SessionManager manager(f.artifact.path, scfg);
  const auto residency = manager.registry().current()->residency;

  constexpr std::size_t kSessions = 32;
  constexpr std::size_t kTicks = 60;
  std::vector<dc::MultivariateSeries> series;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    series.push_back(make_series(kTicks, 100 + s));
    ids.push_back(manager.open());
  }
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(manager.ingest(ids[s], tick_states(series[s], t)),
                ds::IngestStatus::kAccepted)
          << "session " << s << " tick " << t;
    }
  }
  manager.drain();

  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto expected = replay_windows(f, series[s]);
    EXPECT_EQ(poll_and_check(manager, ids[s], expected), expected.size())
        << "session " << s << " dropped windows";
  }
  const auto stats = residency->stats();
  EXPECT_LE(stats.resident_edges, 2u);
  EXPECT_GT(stats.evictions, 0u);  // the budget actually bit
  EXPECT_GT(stats.hits, 0u);       // ...and the LRU still served from cache
}

// ---------------------------------------------------------------------------
// Hot reload is a remap

TEST(ServeMapped, ReloadOfMappedArtifactSwapsGenerations) {
  auto& f = fixture();
  ds::SessionManager manager(f.artifact.path, f.serve_config());
  const auto gen1 = manager.registry().current();
  ASSERT_NE(gen1->residency, nullptr);

  const std::uint64_t id = manager.open();
  const auto series = make_series(120, 44);
  const auto expected = replay_windows(f, series);
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }

  // Republish the same framework as a fresh v4 artifact and remap.
  TempFile next("serve_mapped_reload.bin");
  dio::save_framework(f.framework, next.path);
  const std::uint64_t new_gen = manager.reload(next.path);
  EXPECT_GT(new_gen, gen1->id);
  const auto gen2 = manager.registry().current();
  ASSERT_NE(gen2->residency, nullptr);
  EXPECT_NE(gen2->residency, gen1->residency);  // distinct map + cache

  for (std::size_t t = 60; t < 120; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  // Same weights on both sides of the swap → every window still bit-matches.
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());
}

TEST(ServeMapped, ReloadAcrossLayoutsHeapToMapped) {
  auto& f = fixture();
  // Start from a v3 stream artifact (heap generation), hot-swap to v4.
  TempFile v3("serve_mapped_v3.bin");
  dio::save_framework(f.framework, v3.path, dio::kStreamArtifactVersion);
  ds::SessionManager manager(v3.path, f.serve_config());
  EXPECT_EQ(manager.registry().current()->residency, nullptr);

  const std::uint64_t id = manager.open();
  const auto series = make_series(120, 45);
  const auto expected = replay_windows(f, series);
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.reload(f.artifact.path);  // v4: the new generation maps
  ASSERT_NE(manager.registry().current()->residency, nullptr);
  for (std::size_t t = 60; t < 120; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());
}

TEST(ServeMapped, CorruptMappedReloadKeepsOldGenerationServing) {
  auto& f = fixture();
  ds::SessionManager manager(f.artifact.path, f.serve_config());
  const std::uint64_t gen_before = manager.generation();

  // A v4 artifact with a flipped TOC byte must be rejected at remap time.
  TempFile bad("serve_mapped_corrupt.bin");
  {
    std::ifstream is(f.artifact.path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();
    bytes[bytes.size() - 8] = static_cast<char>(bytes[bytes.size() - 8] ^ 1);
    std::ofstream os(bad.path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(manager.reload(bad.path), desmine::RuntimeError);
  EXPECT_EQ(manager.generation(), gen_before);
  EXPECT_FALSE(manager.last_reload_error().empty());

  // Old generation still serves.
  const auto series = make_series(60, 46);
  const auto expected = replay_windows(f, series);
  const std::uint64_t id = manager.open();
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(manager.ingest(id, tick_states(series, t)),
              ds::IngestStatus::kAccepted);
  }
  manager.drain();
  EXPECT_EQ(poll_and_check(manager, id, expected), expected.size());
}
