// Unit tests for the matrix kernel, including property tests that check the
// transpose-variant GEMMs against the naive definition.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/rng.h"

namespace dt = desmine::tensor;
using desmine::util::Rng;

namespace {

dt::Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  dt::Matrix m(r, c);
  m.init_uniform(rng, 1.0f);
  return m;
}

dt::Matrix naive_matmul(const dt::Matrix& a, const dt::Matrix& b) {
  dt::Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float s = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  }
  return out;
}

void expect_near(const dt::Matrix& a, const dt::Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b)) << a.shape_string() << " vs "
                               << b.shape_string();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

}  // namespace

TEST(Matrix, ConstructionAndAccess) {
  dt::Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
  EXPECT_THROW(m.at(2, 0), desmine::PreconditionError);
  EXPECT_THROW(m.at(0, 3), desmine::PreconditionError);
}

TEST(Matrix, FromRowsAndRagged) {
  const auto m = dt::Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_FLOAT_EQ(m(2, 1), 6.0f);
  EXPECT_THROW(dt::Matrix::from_rows({{1, 2}, {3}}),
               desmine::PreconditionError);
}

TEST(Matrix, ArithmeticOps) {
  auto a = dt::Matrix::from_rows({{1, 2}, {3, 4}});
  auto b = dt::Matrix::from_rows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_FLOAT_EQ(a(1, 1), 44.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(0, 0), 1.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a(1, 0), 6.0f);
  a.hadamard(b);
  EXPECT_FLOAT_EQ(a(0, 1), 80.0f);
  EXPECT_THROW(a += dt::Matrix(1, 2), desmine::PreconditionError);
}

TEST(Matrix, ApplySumNorm) {
  auto m = dt::Matrix::from_rows({{1, -2}, {3, -4}});
  EXPECT_FLOAT_EQ(m.sum(), -2.0f);
  EXPECT_DOUBLE_EQ(m.squared_norm(), 1 + 4 + 9 + 16);
  m.apply([](float v) { return std::abs(v); });
  EXPECT_FLOAT_EQ(m.sum(), 10.0f);
}

TEST(Matrix, Transposed) {
  const auto m = dt::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
}

TEST(Matrix, MatmulMatchesNaive) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t m = 1 + rng.index(8), k = 1 + rng.index(8),
                      n = 1 + rng.index(8);
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    dt::Matrix out(m, n);
    dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b, 0.0f, out);
    expect_near(out, naive_matmul(a, b));
  }
}

TEST(Matrix, MatmulTransAMatchesNaive) {
  Rng rng(2);
  const auto a = random_matrix(5, 3, rng);  // (k x m)
  const auto b = random_matrix(5, 4, rng);  // (k x n)
  dt::Matrix out(3, 4);
  dt::gemm(dt::Transpose::kTrans, dt::Transpose::kNo, 1.0f, a, b, 1.0f, out);
  expect_near(out, naive_matmul(a.transposed(), b));
}

TEST(Matrix, MatmulTransBMatchesNaive) {
  Rng rng(3);
  const auto a = random_matrix(4, 6, rng);  // (m x k)
  const auto b = random_matrix(5, 6, rng);  // (n x k)
  dt::Matrix out(4, 5);
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kTrans, 1.0f, a, b, 1.0f, out);
  expect_near(out, naive_matmul(a, b.transposed()));
}

TEST(Matrix, MatmulAccumAddsToExisting) {
  Rng rng(4);
  const auto a = random_matrix(3, 3, rng);
  const auto b = random_matrix(3, 3, rng);
  dt::Matrix out(3, 3, 1.0f);
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b, 1.0f, out);
  auto expected = naive_matmul(a, b);
  expected += dt::Matrix(3, 3, 1.0f);
  expect_near(out, expected);
}

TEST(Matrix, MatmulShapeChecks) {
  dt::Matrix a(2, 3), b(4, 5), out(2, 5);
  EXPECT_THROW(dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b,
                        0.0f, out),
               desmine::PreconditionError);
  dt::Matrix b2(3, 5), out_bad(3, 5);
  EXPECT_THROW(dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b2,
                        0.0f, out_bad),
               desmine::PreconditionError);
}

TEST(Matrix, DeprecatedMatmulShimStillWorks) {
  // One release of source compatibility (ISSUE 10): the pre-gemm matmul
  // name keeps compiling and forwarding. Conformance of all four shims
  // lives in test_kernels.
  Rng rng(8);
  const auto a = random_matrix(3, 4, rng);
  const auto b = random_matrix(4, 2, rng);
  dt::Matrix out(3, 2);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  dt::matmul(a, b, out);
#pragma GCC diagnostic pop
  expect_near(out, naive_matmul(a, b));
}

TEST(Matrix, AddRowBias) {
  auto m = dt::Matrix::from_rows({{1, 2}, {3, 4}});
  const auto bias = dt::Matrix::from_rows({{10, 20}});
  dt::add_row_bias(m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 24.0f);
  EXPECT_THROW(dt::add_row_bias(m, dt::Matrix(1, 3)),
               desmine::PreconditionError);
}

TEST(Matrix, Axpy) {
  auto y = dt::Matrix::from_rows({{1, 1}});
  const auto x = dt::Matrix::from_rows({{2, 3}});
  dt::axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 2.5f);
}

TEST(Matrix, SoftmaxRowsSumToOne) {
  Rng rng(5);
  auto m = random_matrix(4, 7, rng);
  m *= 10.0f;  // exercise the max-subtraction stability path
  dt::softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m(r, c), 0.0f);
      sum += m(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Matrix, SoftmaxOrderPreserved) {
  auto m = dt::Matrix::from_rows({{1.0f, 3.0f, 2.0f}});
  dt::softmax_rows(m);
  EXPECT_GT(m(0, 1), m(0, 2));
  EXPECT_GT(m(0, 2), m(0, 0));
}

TEST(Matrix, InitUniformWithinScale) {
  Rng rng(6);
  dt::Matrix m(10, 10);
  m.init_uniform(rng, 0.25f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), 0.25f);
  }
  // Not all zero.
  EXPECT_GT(m.squared_norm(), 0.0);
}

// ---- views ------------------------------------------------------------------

TEST(MatrixView, AliasesOwningMatrix) {
  auto m = dt::Matrix::from_rows({{1, 2}, {3, 4}});
  dt::MatrixView v = m;  // implicit: views alias, never copy
  EXPECT_EQ(v.data(), m.data());
  v.at(0, 1) = 20.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 20.0f);
  m(1, 0) = 30.0f;
  EXPECT_FLOAT_EQ(v.at(1, 0), 30.0f);

  dt::ConstMatrixView cv = m;
  EXPECT_EQ(cv.data(), m.data());
  EXPECT_FLOAT_EQ(cv.at(1, 0), 30.0f);

  // Materializing a Matrix from a view copies.
  dt::Matrix copy = cv;
  EXPECT_NE(copy.data(), m.data());
  m(0, 0) = -1.0f;
  EXPECT_FLOAT_EQ(copy(0, 0), 1.0f);
}

TEST(MatrixView, BoundsAndShapeChecks) {
  dt::Matrix m(2, 3);
  dt::MatrixView v = m;
  EXPECT_THROW(v.at(2, 0), desmine::PreconditionError);
  EXPECT_THROW(v.at(0, 3), desmine::PreconditionError);
  dt::Matrix other(2, 2);
  EXPECT_THROW(v.copy_from(other), desmine::PreconditionError);
  EXPECT_THROW(v += dt::ConstMatrixView(other), desmine::PreconditionError);
}

TEST(MatrixView, KernelsMatchOwnedPath) {
  // The same GEMM through views over arena storage must produce exactly
  // what the owned-Matrix call does (one shared kernel path).
  Rng rng(7);
  const auto a = random_matrix(4, 6, rng);
  const auto b = random_matrix(6, 5, rng);
  dt::Matrix owned(4, 5);
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b, 0.0f, owned);

  dt::Workspace ws;
  dt::MatrixView out = ws.alloc(4, 5);
  dt::gemm(dt::Transpose::kNo, dt::Transpose::kNo, 1.0f, a, b, 0.0f, out);
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(out.data()[i], owned.data()[i]) << "at flat index " << i;
  }
}

// ---- workspace --------------------------------------------------------------

TEST(Workspace, AllocIsZeroedAndShaped) {
  dt::Workspace ws;
  dt::MatrixView v = ws.alloc(3, 4);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(v.data()[i], 0.0f);
  v.fill(9.0f);
  dt::MatrixView w = ws.alloc(2, 2);
  EXPECT_NE(w.data(), v.data());
  EXPECT_FLOAT_EQ(v.at(2, 3), 9.0f);  // earlier slice untouched
}

TEST(Workspace, CheckpointRewindReusesAndRezeroes) {
  dt::Workspace ws;
  dt::MatrixView persistent = ws.alloc(2, 2);
  persistent.fill(1.0f);
  const auto cp = ws.checkpoint();
  const std::size_t used_at_cp = ws.bytes_used();

  dt::MatrixView scratch = ws.alloc(8, 8);
  scratch.fill(7.0f);
  float* scratch_ptr = scratch.data();
  EXPECT_GT(ws.bytes_used(), used_at_cp);

  ws.rewind(cp);
  EXPECT_EQ(ws.bytes_used(), used_at_cp);
  EXPECT_FLOAT_EQ(persistent.at(1, 1), 1.0f);  // survives the rewind

  // Same-size realloc lands on the same storage, zeroed again.
  dt::MatrixView again = ws.alloc(8, 8);
  EXPECT_EQ(again.data(), scratch_ptr);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(again.data()[i], 0.0f);
}

TEST(Workspace, SteadyStateDoesNotGrow) {
  dt::Workspace ws;
  // Warm-up pass: force multiple chunks.
  for (int i = 0; i < 4; ++i) ws.alloc(300, 300);
  const auto warm = ws.stats();
  EXPECT_GE(warm.grows, 1u);
  EXPECT_GE(warm.bytes_reserved, warm.bytes_peak);

  // Steady state: identical passes after reset must never allocate.
  for (int pass = 0; pass < 3; ++pass) {
    ws.reset();
    for (int i = 0; i < 4; ++i) ws.alloc(300, 300);
    const auto s = ws.stats();
    EXPECT_EQ(s.grows, warm.grows);
    EXPECT_EQ(s.bytes_reserved, warm.bytes_reserved);
    EXPECT_EQ(s.bytes_peak, warm.bytes_peak);
  }
  EXPECT_EQ(ws.stats().rewinds, warm.rewinds + 3);
}

TEST(Workspace, ReservePreventsGrowthInLoop) {
  dt::Workspace ws;
  ws.reserve(4 * 100 * 100 * sizeof(float) + 4096);
  const auto before = ws.stats();
  for (int i = 0; i < 4; ++i) ws.alloc(100, 100);
  EXPECT_EQ(ws.stats().grows, before.grows);  // capacity was enough
  EXPECT_GE(before.bytes_reserved, 4 * 100 * 100 * sizeof(float));
}

TEST(Workspace, RewindForeignOrForwardCheckpointRejected) {
  dt::Workspace ws;
  ws.alloc(4, 4);
  const auto cp = ws.checkpoint();
  ws.reset();
  // cp is now ahead of the cursor: rewinding "forward" must be refused.
  EXPECT_THROW(ws.rewind(cp), desmine::PreconditionError);
}
