// Tests for sensor encryption (§II-A1): sequence filtering, alphanumeric
// letter assignment, unknown-state handling.
#include <gtest/gtest.h>

#include "core/encryption.h"
#include "core/event.h"
#include "util/error.h"

namespace dc = desmine::core;

namespace {

dc::MultivariateSeries sample_series() {
  return {
      {"s1", {"ON", "OFF", "ON", "OFF"}},
      {"s2", {"idle", "idle", "idle", "idle"}},  // constant -> dropped
      {"s3", {"status 2", "status 1", "status 3", "status 1"}},
  };
}

}  // namespace

TEST(Encryption, ConstantSensorsDropped) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  EXPECT_EQ(enc.kept_sensors().size(), 2u);
  EXPECT_EQ(enc.dropped_sensors().size(), 1u);
  EXPECT_EQ(enc.dropped_sensors()[0], "s2");
  EXPECT_TRUE(enc.keeps("s1"));
  EXPECT_FALSE(enc.keeps("s2"));
}

TEST(Encryption, AlphanumericLetterAssignment) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  // s1 states sorted: OFF < ON -> OFF='a', ON='b'.
  EXPECT_EQ(enc.encode("s1", {"ON", "OFF"}), "ba");
  // s3 states sorted: "status 1" < "status 2" < "status 3".
  EXPECT_EQ(enc.encode("s3", {"status 1", "status 2", "status 3"}), "abc");
}

TEST(Encryption, CardinalityReported) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  EXPECT_EQ(enc.cardinality("s1"), 2u);
  EXPECT_EQ(enc.cardinality("s3"), 3u);
  EXPECT_THROW(enc.cardinality("s2"), desmine::PreconditionError);
}

TEST(Encryption, UnknownStatesMapToUnknownChar) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  const std::string out = enc.encode("s1", {"ON", "BROKEN", "OFF"});
  EXPECT_EQ(out, std::string("b") + dc::SensorEncrypter::kUnknownChar + "a");
}

TEST(Encryption, TokenHasSensorPrefix) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  EXPECT_EQ(enc.token("s1", "OFF"), "s1.a");
  EXPECT_EQ(enc.token("s1", "ON"), "s1.b");
  EXPECT_EQ(enc.token("s1", "???"),
            std::string("s1.") + dc::SensorEncrypter::kUnknownChar);
}

TEST(Encryption, EncodeAllAlignsWithKeptSensors) {
  const auto series = sample_series();
  const auto enc = dc::SensorEncrypter::fit(series);
  const auto all = enc.encode_all(series);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].size(), 4u);
  EXPECT_EQ(all[0], "baba");
}

TEST(Encryption, EncodeAllMissingSensorThrows) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  dc::MultivariateSeries partial = {{"s1", {"ON"}}};
  EXPECT_THROW(enc.encode_all(partial), desmine::PreconditionError);
}

TEST(Encryption, DroppedSensorEncodeThrows) {
  const auto enc = dc::SensorEncrypter::fit(sample_series());
  EXPECT_THROW(enc.encode("s2", {"idle"}), desmine::PreconditionError);
  EXPECT_THROW(enc.encode("ghost", {"x"}), desmine::PreconditionError);
}

TEST(Encryption, CardinalityBeyondAlphabetThrows) {
  dc::SensorSeries wide;
  wide.name = "wide";
  for (int i = 0; i < 30; ++i) {
    wide.events.push_back("state" + std::to_string(i));
  }
  EXPECT_THROW(dc::SensorEncrypter::fit({wide}), desmine::PreconditionError);
}

TEST(Encryption, EmptySeriesDropsEverything) {
  const auto enc = dc::SensorEncrypter::fit({{"e", {}}});
  EXPECT_TRUE(enc.kept_sensors().empty());
  EXPECT_EQ(enc.dropped_sensors().size(), 1u);
}

// --------------------------------------------------------- event helpers ---

TEST(Event, SliceClampsBounds) {
  dc::MultivariateSeries series = {{"a", {"x", "y", "z"}}};
  const auto s = dc::slice(series, 1, 10);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].events.size(), 2u);
  EXPECT_EQ(s[0].events[0], "y");
  const auto empty = dc::slice(series, 5, 9);
  EXPECT_TRUE(empty[0].events.empty());
}

TEST(Event, SeriesLengthChecksAgreement) {
  dc::MultivariateSeries ok = {{"a", {"x", "y"}}, {"b", {"p", "q"}}};
  EXPECT_EQ(dc::series_length(ok), 2u);
  dc::MultivariateSeries bad = {{"a", {"x"}}, {"b", {"p", "q"}}};
  EXPECT_THROW(dc::series_length(bad), desmine::PreconditionError);
  EXPECT_EQ(dc::series_length({}), 0u);
}
