// Tests for the streaming OnlineDetector: window arithmetic, equivalence
// with batch detection, broken-edge reporting, and buffer trimming.
#include <gtest/gtest.h>

#include <map>

#include "core/framework.h"
#include "core/online.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
using desmine::util::Rng;

namespace {

/// Coupled pair (follow repeats lead 2 ticks later) plus a noise sensor.
dc::MultivariateSeries make_series(std::size_t ticks, bool desync_tail,
                                   std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    const bool broken = desync_tail && t >= ticks / 2;
    lead.push_back(state ? "ON" : "OFF");
    const bool f = broken ? rng.bernoulli(0.5)
                          : (t >= 2 && lead[t - 2] == "ON");
    follow.push_back(f ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          c.miner.translation.trainer.steps = 150;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(600, false, 1), make_series(300, false, 2));
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

}  // namespace

TEST(OnlineDetector, EmitsAtSentenceStride) {
  auto& f = fixture();
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  const auto series = make_series(100, false, 4);

  // Window 0 spans chars [0, span); span = (4-1)*1 + 4 = 7; afterwards one
  // window per sentence_stride * word_stride = 4 ticks.
  std::vector<std::size_t> emit_ticks;
  for (std::size_t t = 0; t < 40; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) emit_ticks.push_back(t + 1);  // end_tick = ticks consumed
  }
  ASSERT_GE(emit_ticks.size(), 3u);
  EXPECT_EQ(emit_ticks[0], 7u);
  EXPECT_EQ(emit_ticks[1], 11u);
  EXPECT_EQ(emit_ticks[2], 15u);
}

TEST(OnlineDetector, MatchesBatchDetection) {
  auto& f = fixture();
  const auto series = make_series(120, false, 5);
  const auto batch = f.framework.detect(series);

  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<double> online_scores;
  for (std::size_t t = 0; t < 120; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) online_scores.push_back(result->anomaly_score);
  }
  ASSERT_EQ(online_scores.size(), batch.anomaly_scores.size());
  for (std::size_t w = 0; w < online_scores.size(); ++w) {
    EXPECT_DOUBLE_EQ(online_scores[w], batch.anomaly_scores[w]) << w;
  }
}

TEST(OnlineDetector, FlagsDesyncWindows) {
  auto& f = fixture();
  const auto series = make_series(160, true, 6);  // second half desynced
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  double first_half = 0.0, second_half = 0.0;
  std::size_t n1 = 0, n2 = 0;
  for (std::size_t t = 0; t < 160; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (!result) continue;
    if (result->end_tick <= 80) {
      first_half += result->anomaly_score;
      ++n1;
    } else {
      second_half += result->anomaly_score;
      ++n2;
    }
  }
  ASSERT_GT(n1, 0u);
  ASSERT_GT(n2, 0u);
  EXPECT_GT(second_half / n2, first_half / n1);
}

TEST(OnlineDetector, BrokenEdgesNameValidPairs) {
  auto& f = fixture();
  const auto series = make_series(160, true, 7);
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  const std::size_t n = f.framework.graph().sensor_count();
  for (std::size_t t = 0; t < 160; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (!result) continue;
    for (const auto& [src, dst] : result->broken) {
      EXPECT_LT(src, n);
      EXPECT_LT(dst, n);
      EXPECT_NE(src, dst);
    }
  }
}

TEST(OnlineDetector, MissingSensorThrowsTypedError) {
  auto& f = fixture();
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::string expected;
  for (const auto& name : f.framework.encrypter().kept_sensors()) {
    if (name != "lead") {
      expected = name;  // first kept sensor absent from the tick
      break;
    }
  }
  try {
    online.push({{"lead", "ON"}});
    FAIL() << "expected robust::MissingSensor";
  } catch (const desmine::robust::MissingSensor& e) {
    EXPECT_EQ(e.sensor(), expected);
    EXPECT_EQ(e.tick(), 0u);
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos);
  }
  // MissingSensor derives from RuntimeError (plumbing, not misuse).
  dc::OnlineDetector online2(f.framework.graph(), f.framework.encrypter(),
                             f.cfg.window, f.cfg.detector);
  EXPECT_THROW(online2.push({{"lead", "ON"}}), desmine::RuntimeError);
}

TEST(OnlineDetector, DegradedCleanRunMatchesStrict) {
  auto& f = fixture();
  const auto series = make_series(120, false, 9);
  dc::OnlineDetector strict(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  dc::DegradedConfig degraded;
  degraded.enabled = true;
  dc::OnlineDetector tolerant(f.framework.graph(), f.framework.encrypter(),
                              f.cfg.window, f.cfg.detector, degraded);
  for (std::size_t t = 0; t < 120; ++t) {
    const auto a = strict.push(tick_states(series, t));
    const auto b = tolerant.push(tick_states(series, t));
    ASSERT_EQ(a.has_value(), b.has_value()) << t;
    if (!a) continue;
    EXPECT_EQ(a->anomaly_score, b->anomaly_score) << t;  // bit-identical
    EXPECT_EQ(b->coverage, 1.0) << t;
    EXPECT_FALSE(b->degraded) << t;
    EXPECT_TRUE(b->unhealthy.empty()) << t;
  }
}

TEST(OnlineDetector, DegradedDropoutRenormalizesAndRecovers) {
  auto& f = fixture();
  const auto series = make_series(200, false, 10);
  const auto& kept = f.framework.encrypter().kept_sensors();
  std::size_t noise_idx = kept.size();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    if (kept[k] == "noise") noise_idx = k;
  }
  ASSERT_LT(noise_idx, kept.size());

  dc::OnlineDetector strict(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  dc::DetectorConfig lax = f.cfg.detector;
  lax.min_coverage = 0.2;  // below 2/6 so dropout windows still score
  dc::DegradedConfig degraded;
  degraded.enabled = true;
  dc::OnlineDetector tolerant(f.framework.graph(), f.framework.encrypter(),
                              f.cfg.window, lax, degraded);

  // "noise" delivers nothing for ticks [40, 60). With readmit_after = 8
  // clean ticks, its taint clears at tick 60 + 8 - 1 = 67.
  const std::size_t taint_lo = 40;
  const std::size_t taint_hi = 60 + degraded.health.readmit_after - 1;
  std::size_t affected = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    const auto full = tick_states(series, t);
    auto holed = full;
    if (t >= 40 && t < 60) holed.erase("noise");
    const auto a = strict.push(full);
    const auto b = tolerant.push(holed);
    ASSERT_EQ(a.has_value(), b.has_value()) << t;
    if (!a) continue;
    const std::size_t start = b->window_index * 4;  // sentence stride 4
    const std::size_t span = 7;                     // (4-1)*1 + 4
    const bool clean = start + span <= taint_lo || start > taint_hi;
    if (clean) {
      // Outside the taint range the score must be bit-identical to the
      // no-fault run — the acceptance criterion for re-admission.
      EXPECT_EQ(a->anomaly_score, b->anomaly_score) << b->window_index;
      EXPECT_EQ(b->coverage, 1.0) << b->window_index;
      EXPECT_TRUE(b->unhealthy.empty()) << b->window_index;
    } else {
      ++affected;
      // noise's 4 incident edges leave the valid set; 2 of 6 survive.
      EXPECT_NEAR(b->coverage, 2.0 / 6.0, 1e-12) << b->window_index;
      EXPECT_FALSE(b->degraded) << b->window_index;  // above the 0.2 quorum
      ASSERT_EQ(b->unhealthy.size(), 1u) << b->window_index;
      EXPECT_EQ(b->unhealthy.front(), noise_idx);
    }
  }
  EXPECT_GT(affected, 0u);
}

TEST(OnlineDetector, DefaultQuorumFlagsDegradedWindows) {
  auto& f = fixture();
  const auto series = make_series(80, false, 11);
  dc::DegradedConfig degraded;
  degraded.enabled = true;
  // Default min_coverage 0.5: losing noise leaves 2/6 < 0.5 -> no verdict.
  dc::OnlineDetector tolerant(f.framework.graph(), f.framework.encrypter(),
                              f.cfg.window, f.cfg.detector, degraded);
  std::size_t degraded_windows = 0;
  for (std::size_t t = 0; t < 80; ++t) {
    auto states = tick_states(series, t);
    if (t >= 20 && t < 40) states.erase("noise");
    const auto r = tolerant.push(states);
    if (r && r->degraded) {
      ++degraded_windows;
      EXPECT_EQ(r->anomaly_score, 0.0);  // placeholder, not a verdict
      EXPECT_LT(r->coverage, 0.5);
    }
  }
  EXPECT_GT(degraded_windows, 0u);
}

TEST(OnlineDetector, InjectedDropFaultTaintsSensor) {
  auto& f = fixture();
  const auto series = make_series(60, false, 12);
  const auto& kept = f.framework.encrypter().kept_sensors();
  std::size_t noise_idx = kept.size();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    if (kept[k] == "noise") noise_idx = k;
  }
  ASSERT_LT(noise_idx, kept.size());

  auto& injector = desmine::robust::FaultInjector::instance();
  injector.clear();
  injector.arm("detect.push", static_cast<std::int64_t>(noise_idx),
               desmine::robust::FaultAction::kDrop, 10);
  dc::DetectorConfig lax = f.cfg.detector;
  lax.min_coverage = 0.2;
  dc::DegradedConfig degraded;
  degraded.enabled = true;
  dc::OnlineDetector tolerant(f.framework.graph(), f.framework.encrypter(),
                              f.cfg.window, lax, degraded);
  std::size_t tainted_windows = 0;
  for (std::size_t t = 0; t < 60; ++t) {
    const auto r = tolerant.push(tick_states(series, t));
    if (r && !r->unhealthy.empty()) {
      ++tainted_windows;
      EXPECT_EQ(r->unhealthy.front(), noise_idx);
    }
  }
  injector.clear();
  EXPECT_GT(tainted_windows, 0u);
}

TEST(OnlineDetector, InjectedDropFaultInStrictModeThrowsMissingSensor) {
  auto& f = fixture();
  const auto series = make_series(10, false, 13);
  auto& injector = desmine::robust::FaultInjector::instance();
  injector.clear();
  injector.arm("detect.push", 0, desmine::robust::FaultAction::kDrop, 1);
  dc::OnlineDetector strict(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  EXPECT_THROW(strict.push(tick_states(series, 0)),
               desmine::robust::MissingSensor);
  injector.clear();
}

TEST(OnlineDetector, LongStreamStaysConsistentAcrossTrim) {
  // Run past the 4096-char trim boundary and verify windows keep flowing
  // with correct indices.
  auto& f = fixture();
  const auto series = make_series(9000, false, 8);
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::size_t windows = 0;
  std::size_t last_index = 0;
  for (std::size_t t = 0; t < 9000; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) {
      EXPECT_EQ(result->window_index, windows);
      last_index = result->window_index;
      ++windows;
    }
  }
  // span 7, stride 4: windows = floor((9000 - 7) / 4) + 1 = 2249.
  EXPECT_EQ(windows, 2249u);
  EXPECT_EQ(last_index, 2248u);
}
