// Tests for the streaming OnlineDetector: window arithmetic, equivalence
// with batch detection, broken-edge reporting, and buffer trimming.
#include <gtest/gtest.h>

#include <map>

#include "core/framework.h"
#include "core/online.h"
#include "util/error.h"
#include "util/rng.h"

namespace dc = desmine::core;
using desmine::util::Rng;

namespace {

/// Coupled pair (follow repeats lead 2 ticks later) plus a noise sensor.
dc::MultivariateSeries make_series(std::size_t ticks, bool desync_tail,
                                   std::uint64_t seed) {
  Rng rng(seed);
  dc::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 13 == 0) state = !state;
    const bool broken = desync_tail && t >= ticks / 2;
    lead.push_back(state ? "ON" : "OFF");
    const bool f = broken ? rng.bernoulli(0.5)
                          : (t >= 2 && lead[t - 2] == "ON");
    follow.push_back(f ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

struct Fixture {
  dc::FrameworkConfig cfg;
  dc::Framework framework;

  Fixture()
      : cfg([] {
          dc::FrameworkConfig c;
          c.window = {4, 1, 4, 4};
          c.miner.translation.model.embedding_dim = 16;
          c.miner.translation.model.hidden_dim = 16;
          c.miner.translation.model.num_layers = 1;
          c.miner.translation.model.dropout = 0.0f;
          c.miner.translation.trainer.steps = 150;
          c.miner.translation.trainer.batch_size = 8;
          c.miner.seed = 3;
          c.detector.valid_lo = 0.0;
          c.detector.valid_hi = 100.5;
          c.detector.tolerance = 10.0;
          c.detector.threads = 1;
          return c;
        }()),
        framework(cfg) {
    framework.fit(make_series(600, false, 1), make_series(300, false, 2));
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::map<std::string, std::string> tick_states(
    const dc::MultivariateSeries& series, std::size_t t) {
  std::map<std::string, std::string> out;
  for (const auto& sensor : series) out[sensor.name] = sensor.events[t];
  return out;
}

}  // namespace

TEST(OnlineDetector, EmitsAtSentenceStride) {
  auto& f = fixture();
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  const auto series = make_series(100, false, 4);

  // Window 0 spans chars [0, span); span = (4-1)*1 + 4 = 7; afterwards one
  // window per sentence_stride * word_stride = 4 ticks.
  std::vector<std::size_t> emit_ticks;
  for (std::size_t t = 0; t < 40; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) emit_ticks.push_back(t + 1);  // end_tick = ticks consumed
  }
  ASSERT_GE(emit_ticks.size(), 3u);
  EXPECT_EQ(emit_ticks[0], 7u);
  EXPECT_EQ(emit_ticks[1], 11u);
  EXPECT_EQ(emit_ticks[2], 15u);
}

TEST(OnlineDetector, MatchesBatchDetection) {
  auto& f = fixture();
  const auto series = make_series(120, false, 5);
  const auto batch = f.framework.detect(series);

  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::vector<double> online_scores;
  for (std::size_t t = 0; t < 120; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) online_scores.push_back(result->anomaly_score);
  }
  ASSERT_EQ(online_scores.size(), batch.anomaly_scores.size());
  for (std::size_t w = 0; w < online_scores.size(); ++w) {
    EXPECT_DOUBLE_EQ(online_scores[w], batch.anomaly_scores[w]) << w;
  }
}

TEST(OnlineDetector, FlagsDesyncWindows) {
  auto& f = fixture();
  const auto series = make_series(160, true, 6);  // second half desynced
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  double first_half = 0.0, second_half = 0.0;
  std::size_t n1 = 0, n2 = 0;
  for (std::size_t t = 0; t < 160; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (!result) continue;
    if (result->end_tick <= 80) {
      first_half += result->anomaly_score;
      ++n1;
    } else {
      second_half += result->anomaly_score;
      ++n2;
    }
  }
  ASSERT_GT(n1, 0u);
  ASSERT_GT(n2, 0u);
  EXPECT_GT(second_half / n2, first_half / n1);
}

TEST(OnlineDetector, BrokenEdgesNameValidPairs) {
  auto& f = fixture();
  const auto series = make_series(160, true, 7);
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  const std::size_t n = f.framework.graph().sensor_count();
  for (std::size_t t = 0; t < 160; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (!result) continue;
    for (const auto& [src, dst] : result->broken) {
      EXPECT_LT(src, n);
      EXPECT_LT(dst, n);
      EXPECT_NE(src, dst);
    }
  }
}

TEST(OnlineDetector, MissingSensorThrows) {
  auto& f = fixture();
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  EXPECT_THROW(online.push({{"lead", "ON"}}), desmine::PreconditionError);
}

TEST(OnlineDetector, LongStreamStaysConsistentAcrossTrim) {
  // Run past the 4096-char trim boundary and verify windows keep flowing
  // with correct indices.
  auto& f = fixture();
  const auto series = make_series(9000, false, 8);
  dc::OnlineDetector online(f.framework.graph(), f.framework.encrypter(),
                            f.cfg.window, f.cfg.detector);
  std::size_t windows = 0;
  std::size_t last_index = 0;
  for (std::size_t t = 0; t < 9000; ++t) {
    const auto result = online.push(tick_states(series, t));
    if (result) {
      EXPECT_EQ(result->window_index, windows);
      last_index = result->window_index;
      ++windows;
    }
  }
  // span 7, stride 4: windows = floor((9000 - 7) / 4) + 1 = 2249.
  EXPECT_EQ(windows, 2249u);
  EXPECT_EQ(last_index, 2248u);
}
