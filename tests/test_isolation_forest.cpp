// Tests for the Isolation Forest baseline.
#include <gtest/gtest.h>

#include "ml/isolation_forest.h"
#include "util/error.h"
#include "util/rng.h"

namespace ml = desmine::ml;
using desmine::util::Rng;

namespace {

ml::FeatureMatrix gaussian_cloud(std::size_t n, Rng& rng) {
  ml::FeatureMatrix rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({rng.normal(0, 1), rng.normal(0, 1)});
  }
  return rows;
}

}  // namespace

TEST(IsolationForest, OutliersScoreHigherThanInliers) {
  Rng rng(1);
  const auto train = gaussian_cloud(400, rng);
  ml::IsolationForest forest;
  forest.fit(train, {});

  double inlier_sum = 0.0;
  for (int i = 0; i < 30; ++i) {
    inlier_sum += forest.score({rng.normal(0, 0.3), rng.normal(0, 0.3)});
  }
  double outlier_sum = 0.0;
  for (int i = 0; i < 30; ++i) {
    outlier_sum += forest.score({6.0 + rng.normal(0, 0.3),
                                 6.0 + rng.normal(0, 0.3)});
  }
  EXPECT_GT(outlier_sum / 30.0, inlier_sum / 30.0 + 0.1);
}

TEST(IsolationForest, ScoresAreBounded) {
  Rng rng(2);
  const auto train = gaussian_cloud(200, rng);
  ml::IsolationForest forest;
  forest.fit(train, {});
  for (const auto& row : train) {
    const double s = forest.score(row);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForest, CalibratedThresholdControlsFlagRate) {
  Rng rng(3);
  const auto train = gaussian_cloud(500, rng);
  ml::IsolationForest forest;
  forest.fit(train, {});
  EXPECT_THROW(forest.predict_anomaly(train[0]), desmine::PreconditionError);

  forest.calibrate_threshold(train, 95.0);
  std::size_t flagged = 0;
  for (const auto& row : train) flagged += forest.predict_anomaly(row);
  // ~5% of the training data exceeds its own 95th percentile.
  EXPECT_NEAR(static_cast<double>(flagged) / train.size(), 0.05, 0.03);
  EXPECT_EQ(forest.predict_anomaly({9.0, -9.0}), 1);
}

TEST(IsolationForest, DeterministicForSameSeed) {
  Rng rng(4);
  const auto train = gaussian_cloud(150, rng);
  ml::IsolationForestConfig cfg;
  cfg.seed = 7;
  ml::IsolationForest a, b;
  a.fit(train, cfg);
  b.fit(train, cfg);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {rng.normal(0, 2), rng.normal(0, 2)};
    EXPECT_DOUBLE_EQ(a.score(x), b.score(x));
  }
}

TEST(IsolationForest, HandlesConstantFeatures) {
  // A constant column must not break split selection.
  Rng rng(5);
  ml::FeatureMatrix rows;
  for (int i = 0; i < 100; ++i) rows.push_back({rng.normal(0, 1), 42.0});
  ml::IsolationForest forest;
  EXPECT_NO_THROW(forest.fit(rows, {}));
  EXPECT_GT(forest.score({8.0, 42.0}), forest.score({0.0, 42.0}));
}

TEST(IsolationForest, InvalidUseThrows) {
  ml::IsolationForest forest;
  EXPECT_THROW(forest.fit({}, {}), desmine::PreconditionError);
  EXPECT_THROW(forest.score({1.0, 2.0}), desmine::PreconditionError);
}
