// Quickstart — the whole pipeline in ~60 lines.
//
// Two binary sensors follow the same hidden switching pattern (one lags the
// other); a third is unrelated noise. We train the framework on a clean
// window, inspect the mined relationship graph, and detect an injected
// anomaly where the coupled pair falls out of sync.
//
//   $ ./quickstart
#include <iostream>

#include "core/framework.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace desmine;

namespace {

/// Coupled pair: s_follow repeats s_lead 3 ticks later. s_noise is random.
core::MultivariateSeries make_series(std::size_t ticks, bool desync_tail,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  core::EventSequence lead, follow, noise;
  bool state = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t % 17 == 0) state = !state;           // hidden switching pattern
    const bool broken = desync_tail && t >= ticks / 2;
    lead.push_back(state ? "ON" : "OFF");
    const bool f = broken ? rng.bernoulli(0.5)  // anomaly: follower desyncs
                          : (t >= 3 && lead[t - 3] == "ON");
    follow.push_back(f ? "ON" : "OFF");
    noise.push_back(rng.bernoulli(0.5) ? "ON" : "OFF");
  }
  return {{"lead", lead}, {"follow", follow}, {"noise", noise}};
}

}  // namespace

int main() {
  // 1. Configure: short words/sentences and a tiny NMT model keep this demo
  //    under a minute; see bench/ for paper-style settings.
  core::FrameworkConfig cfg;
  cfg.window = {/*word_length=*/5, /*word_stride=*/1,
                /*sentence_length=*/5, /*sentence_stride=*/5};
  cfg.miner.translation.model.embedding_dim = 16;
  cfg.miner.translation.model.hidden_dim = 16;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.trainer.steps = 200;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.seed = 1;
  cfg.detector.valid_lo = 0.0;  // treat every pair model as valid
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;

  // 2. Offline training (Algorithm 1): mine pairwise NMT relationships.
  core::Framework framework(cfg);
  framework.fit(make_series(800, false, 1), make_series(400, false, 2));

  std::cout << "mined relationship graph:\n";
  const auto& g = framework.graph();
  for (const auto& e : g.edges()) {
    std::cout << "  " << g.name(e.src) << " -> " << g.name(e.dst)
              << "  BLEU " << util::fixed(e.bleu, 1) << "\n";
  }
  std::cout << "(coupled lead<->follow edges should far out-score anything "
               "involving 'noise')\n\n";

  // 3. Online detection (Algorithm 2): first half normal, second half with
  //    the follower desynchronized.
  const auto result = framework.detect(make_series(400, true, 3));
  std::cout << "anomaly scores over time (first half normal, second half "
               "desynchronized):\n  ";
  for (double s : result.anomaly_scores) std::cout << util::fixed(s, 2) << " ";
  std::cout << "\n";
  return 0;
}
