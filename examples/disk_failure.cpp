// Disk-failure prediction — the paper's case study II in miniature:
// continuous SMART features are discretized (§IV-C), a relationship graph is
// mined over the feature "sensors", and failing drives are flagged by sharp
// anomaly-score increases before their failure date.
//
//   $ ./disk_failure
#include <iostream>

#include "core/anomaly.h"
#include "core/framework.h"
#include "data/smart.h"
#include "util/strings.h"

using namespace desmine;

int main() {
  data::SmartConfig smart_cfg;
  smart_cfg.num_drives = 10;
  smart_cfg.days = 90;
  smart_cfg.failure_fraction = 0.3;
  smart_cfg.degradation_days = 10;
  smart_cfg.failure_window_days = 30;
  smart_cfg.seed = 77;
  const data::SmartDataset smart = data::generate_smart(smart_cfg);

  // Discretize per feature on the first 2 months (§IV-C schemes).
  const std::size_t train_days = 45, dev_days = 15;
  const auto discretizers = data::fit_discretizers(smart, train_days);
  std::cout << "discretized " << discretizers.size()
            << " SMART features (binary for zero-inflated error counters, "
               "quintiles otherwise)\n";

  // Pool training/dev sentences across drives. To keep the demo fast we
  // mine over the 6 failure-relevant features only; the benches use all 16.
  const std::vector<int> features = {5, 9, 187, 192, 197, 198};
  core::FrameworkConfig cfg;
  cfg.window = {5, 1, 7, 1};  // word=5 days, sentence=7 words (§IV-C)
  cfg.miner.translation.model.embedding_dim = 16;
  cfg.miner.translation.model.hidden_dim = 16;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.0f;
  cfg.miner.translation.model.max_decode_length = 9;
  cfg.miner.translation.trainer.steps = 200;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.seed = 9;
  cfg.detector.valid_lo = 0.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;

  std::map<int, core::Discretizer> selected;
  for (int id : features) selected.emplace(id, discretizers.at(id));

  // Build pooled language corpora (aligned within each drive).
  core::MultivariateSeries pooled;
  for (const auto& drive : smart.drives) {
    auto series = core::slice(data::drive_to_series(smart, drive, selected),
                              0, train_days);
    if (pooled.empty()) {
      pooled = series;
    } else {
      for (std::size_t k = 0; k < pooled.size(); ++k) {
        pooled[k].events.insert(pooled[k].events.end(),
                                series[k].events.begin(),
                                series[k].events.end());
      }
    }
  }
  core::MultivariateSeries pooled_dev;
  for (const auto& drive : smart.drives) {
    auto series =
        core::slice(data::drive_to_series(smart, drive, selected), train_days,
                    train_days + dev_days);
    if (pooled_dev.empty()) {
      pooled_dev = series;
    } else {
      for (std::size_t k = 0; k < pooled_dev.size(); ++k) {
        pooled_dev[k].events.insert(pooled_dev[k].events.end(),
                                    series[k].events.begin(),
                                    series[k].events.end());
      }
    }
  }

  std::cout << "mining the feature relationship graph...\n";
  core::Framework framework(cfg);
  framework.fit(pooled, pooled_dev);
  std::cout << "  " << framework.graph().edges().size()
            << " directional models over " << features.size()
            << " features\n\n";

  // Per-drive detection over the final month.
  std::cout << "per-drive anomaly trajectories (final month):\n";
  const core::AnomalyDetector detector(framework.graph(), cfg.detector);
  std::size_t detected = 0, failures = 0;
  for (const auto& drive : smart.drives) {
    const auto series = data::drive_to_series(smart, drive, selected);
    const auto tail =
        core::slice(series, train_days + dev_days, drive.observed_days());
    const auto result = detector.detect(framework.to_corpora(tail));
    bool sharp = false;
    for (std::size_t t = 1; t < result.anomaly_scores.size(); ++t) {
      sharp |= result.anomaly_scores[t] - result.anomaly_scores[t - 1] >= 0.3;
    }
    std::cout << "  " << drive.serial
              << (drive.failed ? " [FAILED] " : " [healthy]") << " scores: ";
    for (double s : result.anomaly_scores) {
      std::cout << util::fixed(s, 2) << " ";
    }
    std::cout << (sharp ? " <- sharp increase" : "") << "\n";
    if (drive.failed) {
      ++failures;
      detected += sharp ? 1 : 0;
    }
  }
  std::cout << "\nrecall on failed drives: " << detected << "/" << failures
            << "\n";
  return 0;
}
