// Plant monitoring — the paper's case study I end to end on a synthetic
// plant: offline training on normal days, online detection over a test
// window, and fault diagnosis for the worst window.
//
//   $ ./plant_monitoring
#include <iostream>

#include "core/diagnosis.h"
#include "core/framework.h"
#include "data/plant.h"
#include "util/strings.h"

using namespace desmine;

int main() {
  // A small plant: 3 components x 2 sensors + 1 constant sensor; one
  // anomaly hits components 0 and 1 on the final day.
  data::PlantConfig plant_cfg;
  plant_cfg.num_components = 3;
  plant_cfg.sensors_per_component = 2;
  plant_cfg.num_popular = 0;
  plant_cfg.num_lazy = 0;
  plant_cfg.num_constant = 1;
  plant_cfg.days = 6;
  plant_cfg.minutes_per_day = 240;
  plant_cfg.anomalies = {{5, {0, 1}}};
  plant_cfg.precursors = false;
  plant_cfg.seed = 11;
  const data::PlantDataset plant = data::generate_plant(plant_cfg);

  core::FrameworkConfig cfg;
  cfg.window = {5, 1, 6, 6};
  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 4;
  cfg.detector.valid_lo = 0.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;

  std::cout << "training pairwise NMT models on days 1-3 (normal)...\n";
  core::Framework framework(cfg);
  framework.fit(plant.days_slice(0, 3), plant.days_slice(3, 1));
  std::cout << "  " << framework.graph().edges().size()
            << " directional models trained\n\n";

  std::cout << "detecting over days 5-6 (day 6 anomalous in c0/c1)...\n";
  const auto result = framework.detect(plant.days_slice(4, 2));
  const std::size_t per_day = result.anomaly_scores.size() / 2;
  auto day_mean = [&](std::size_t day) {
    double s = 0.0;
    for (std::size_t w = day * per_day; w < (day + 1) * per_day; ++w) {
      s += result.anomaly_scores[w];
    }
    return s / static_cast<double>(per_day);
  };
  std::cout << "  mean anomaly score day 5 (normal):    "
            << util::fixed(day_mean(0), 3) << "\n"
            << "  mean anomaly score day 6 (anomalous): "
            << util::fixed(day_mean(1), 3) << "\n\n";

  // Fault diagnosis: cluster the graph, attribute broken edges.
  std::size_t worst = per_day;  // scan the anomalous day
  for (std::size_t w = per_day; w < result.anomaly_scores.size(); ++w) {
    if (result.anomaly_scores[w] > result.anomaly_scores[worst]) worst = w;
  }
  core::DiagnosisConfig dcfg;
  dcfg.faulty_threshold = 0.3;
  const core::FaultDiagnoser diagnoser(framework.graph(), dcfg);
  const auto diag = diagnoser.diagnose(result, worst);

  std::cout << "fault diagnosis at the worst window (score "
            << util::fixed(result.anomaly_scores[worst], 2) << "):\n";
  for (std::size_t c = 0; c < diag.clusters.size(); ++c) {
    const auto& cluster = diag.clusters[c];
    if (cluster.sensors.empty()) continue;
    std::cout << "  cluster " << c << " [";
    for (std::size_t v : cluster.sensors) {
      std::cout << " " << framework.graph().name(v);
    }
    std::cout << " ]  broken " << cluster.edges_broken << "/"
              << cluster.edges_total
              << (std::find(diag.faulty.begin(), diag.faulty.end(), c) !=
                          diag.faulty.end()
                      ? "  <-- FAULTY"
                      : "")
              << "\n";
  }
  std::cout << "(the faulty clusters should be the ones holding c0.*/c1.* "
               "sensors)\n";
  return 0;
}
