// Knowledge discovery — mining structure from the relationship graph:
// global subgraphs (popular sensors = health indicators), local subgraphs
// (clusters = physical components), and DOT export for visualization.
//
//   $ ./knowledge_discovery > graph_report.txt
#include <fstream>
#include <iostream>

#include "core/framework.h"
#include "data/plant.h"
#include "graph/walktrap.h"
#include "util/strings.h"

using namespace desmine;

int main() {
  data::PlantConfig plant_cfg;
  plant_cfg.num_components = 3;
  plant_cfg.sensors_per_component = 3;
  plant_cfg.num_popular = 1;
  plant_cfg.popular_period = 30;  // fast mode: visible at this tiny horizon
  plant_cfg.num_lazy = 1;
  plant_cfg.num_constant = 1;
  plant_cfg.days = 5;
  plant_cfg.minutes_per_day = 240;
  plant_cfg.anomalies = {};
  plant_cfg.seed = 21;
  const data::PlantDataset plant = data::generate_plant(plant_cfg);

  core::FrameworkConfig cfg;
  cfg.window = {5, 1, 6, 6};
  cfg.miner.translation.model.embedding_dim = 24;
  cfg.miner.translation.model.hidden_dim = 24;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 2;

  std::cout << "mining relationship graph over "
            << plant.series.size() - plant_cfg.num_constant
            << " informative sensors...\n";
  core::Framework framework(cfg);
  framework.fit(plant.days_slice(0, 3), plant.days_slice(3, 2));
  const auto& g = framework.graph();

  // Global view: who is easy to translate into (high in-degree)?
  const auto strong = g.filter_bleu(70.0, 100.5);
  const auto in_deg = strong.in_degrees();
  std::cout << "\nglobal subgraph [70,100]: " << strong.edges().size()
            << " edges\n  in-degrees:";
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    std::cout << " " << g.name(v) << "=" << in_deg[v];
  }
  std::cout << "\n  (the strictly periodic 'mode.*' sensor and the lazy "
               "sensor should rank high)\n";

  // Local view: remove the best-connected nodes, cluster what remains.
  std::vector<std::size_t> hubs;
  for (std::size_t v = 0; v < g.sensor_count(); ++v) {
    if (plant.component_of.count(g.name(v)) == 0) hubs.push_back(v);
  }
  const auto local = strong.without_sensors(hubs);
  const auto communities = graph::walktrap(local.to_digraph());
  std::cout << "\nlocal subgraph clusters (ground truth: c<k>.* share a "
               "component):\n";
  for (std::size_t c = 0; c < communities.community_count; ++c) {
    std::cout << "  cluster " << c << ":";
    for (std::size_t v = 0; v < g.sensor_count(); ++v) {
      if (communities.membership[v] == c &&
          plant.component_of.count(g.name(v)) > 0) {
        std::cout << " " << g.name(v);
      }
    }
    std::cout << "\n";
  }
  std::cout << "  modularity: " << util::fixed(communities.modularity, 3)
            << "\n";

  // Export for graphviz.
  std::ofstream("mvrg.dot") << strong.to_dot();
  std::cout << "\nwrote mvrg.dot (render with: dot -Tpng mvrg.dot -o "
               "mvrg.png)\n";
  return 0;
}
