// Streaming detection — the online counterpart of plant_monitoring:
// a trained framework is wrapped in an OnlineDetector and fed one
// multivariate sample per tick, as a deployed monitor would be; alerts are
// printed the moment a detection window completes.
//
//   $ ./streaming_detection
#include <iostream>
#include <map>

#include "core/framework.h"
#include "core/online.h"
#include "data/plant.h"
#include "util/strings.h"

using namespace desmine;

int main() {
  data::PlantConfig plant_cfg;
  plant_cfg.num_components = 2;
  plant_cfg.sensors_per_component = 2;
  plant_cfg.num_popular = 0;
  plant_cfg.num_lazy = 0;
  plant_cfg.num_constant = 0;
  plant_cfg.days = 6;
  plant_cfg.minutes_per_day = 240;
  plant_cfg.anomalies = {{5, {0}}};
  plant_cfg.precursors = false;
  plant_cfg.seed = 33;
  const data::PlantDataset plant = data::generate_plant(plant_cfg);

  core::FrameworkConfig cfg;
  cfg.window = {5, 1, 6, 6};
  cfg.miner.translation.model.embedding_dim = 20;
  cfg.miner.translation.model.hidden_dim = 20;
  cfg.miner.translation.model.num_layers = 1;
  cfg.miner.translation.model.dropout = 0.1f;
  cfg.miner.translation.trainer.steps = 300;
  cfg.miner.translation.trainer.batch_size = 8;
  cfg.miner.translation.trainer.lr = 0.02f;
  cfg.miner.seed = 12;
  cfg.detector.valid_lo = 0.0;
  cfg.detector.valid_hi = 100.5;
  cfg.detector.tolerance = 10.0;
  cfg.detector.threads = 1;

  std::cout << "offline: training on days 1-3, dev day 4...\n";
  core::Framework framework(cfg);
  framework.fit(plant.days_slice(0, 3), plant.days_slice(3, 1));

  std::cout << "online: streaming days 5-6 one minute at a time (day 6 "
               "anomalous in c0)...\n";
  core::OnlineDetector online(framework.graph(), framework.encrypter(),
                              cfg.window, cfg.detector);
  const auto stream = plant.days_slice(4, 2);
  const std::size_t ticks = core::series_length(stream);

  double alert_threshold = 0.4;
  for (std::size_t t = 0; t < ticks; ++t) {
    std::map<std::string, std::string> sample;
    for (const auto& sensor : stream) {
      sample[sensor.name] = sensor.events[t];
    }
    const auto result = online.push(sample);
    if (!result) continue;
    const bool alert = result->anomaly_score >= alert_threshold;
    if (alert || result->window_index % 10 == 0) {
      std::cout << "  t=" << result->end_tick << " window "
                << result->window_index << " score "
                << util::fixed(result->anomaly_score, 2);
      if (alert) {
        std::cout << "  ALERT — broken:";
        for (const auto& [src, dst] : result->broken) {
          std::cout << " " << framework.graph().name(src) << "->"
                    << framework.graph().name(dst);
        }
      }
      std::cout << "\n";
    }
  }
  std::cout << "processed " << online.ticks() << " ticks into "
            << online.windows_emitted() << " detection windows\n";
  return 0;
}
