// desmine — umbrella header for the public API.
//
// Include this one header to embed the framework: offline mining
// (core::Framework), online single-stream detection (core::OnlineDetector),
// the multi-session serving layer (serve::SessionManager), artifact and CSV
// io, config JSON round-trip, and the observability hooks tools are
// expected to wire up.
//
// Public surface (covered by the tier-1 tests and kept
// backwards-compatible across PRs):
//   core::FrameworkConfig / Framework        — fit / detect / detect_degraded
//   core::AnomalyDetector / DetectOptions    — windowed scoring over corpora
//   core::OnlineDetector / WindowAssembler   — streaming single-session path
//   core::MvrGraph / MvrEdge                 — mined relationship graph
//   core::SensorEncrypter / LanguageGenerator— event encoding / language gen
//   serve::SessionManager / ServeConfig      — multi-session batched serving
//   lifecycle::LifecycleController / DriftMonitor / IncrementalRetrainer
//                                            — drift -> retrain -> promotion
//   io::read_csv / save_framework / load_framework — data + artifact io
//   io::RunConfig / run_config_{to,from}_json — config files (--config)
//   obs::init_logging / metrics / trace      — structured obs surface
//   obs::telemetry / HttpExposition          — live scrape plane (/metrics)
//   tensor::kernels (Backend / select_backend / apply_kernel_config)
//   tensor::Precision + tensor::gemm         — compute-kernel dispatch and
//                                              decode precision (DESIGN.md
//                                              §16): backend chosen per
//                                              process via config key
//                                              tensor.kernels / --kernels /
//                                              DESMINE_KERNELS; precision
//                                              (f32 | int8) flows through
//                                              DetectOptions and ServeConfig
//
// Everything else under src/ (tensor internals beyond the kernel dispatch
// surface, nn, nmt, text, robust internals, serve::BatchScheduler, util) is
// internal: tools and tests may reach in, but embedders should not — those
// layers rearrange freely between PRs.
#pragma once

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/event.h"
#include "core/framework.h"
#include "core/language.h"
#include "core/miner.h"
#include "core/mvr_graph.h"
#include "core/online.h"
#include "core/window_assembler.h"
#include "io/config_json.h"
#include "io/csv.h"
#include "io/serialize.h"
#include "lifecycle/controller.h"
#include "obs/http_exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "robust/sensor_health.h"
#include "serve/session_manager.h"
#include "tensor/kernels.h"
