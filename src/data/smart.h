// Synthetic SMART/HDD dataset (substitute for the Backblaze logs, §IV —
// see DESIGN.md's substitution table; no network access in this build).
//
// Mirrors the published shape of the data the paper relies on:
//  * 20 raw SMART features recorded daily for every drive, of which 14 are
//    cumulative lifetime counters (differenced into daily deltas for the
//    baselines, §IV-B) and 4 are near-constant (dropped by the framework,
//    §IV-C);
//  * error counters (5, 187, 188, 192, 197, 198) are zero-inflated — the
//    binary discretization case of Fig. 10a;
//  * activity/age features (9, 190, 194, 241...) vary smoothly — the
//    quantile discretization case of Fig. 10b;
//  * failing drives ramp their error counters during a degradation window
//    and are removed from production the day after the failure mark, so each
//    failed drive contributes exactly one anomaly sample (§IV-C).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/discretize.h"
#include "core/event.h"

namespace desmine::data {

struct SmartFeatureSpec {
  int id = 0;               ///< SMART attribute number (e.g. 187)
  std::string name;         ///< human-readable attribute name
  bool cumulative = false;  ///< lifetime counter (differenced for baselines)
  bool error_counter = false;  ///< zero-inflated failure-related counter
  bool near_constant = false;  ///< barely changes; dropped by the framework
};

/// The 20-feature catalog used by the generator (fixed, Backblaze-like).
const std::vector<SmartFeatureSpec>& smart_feature_catalog();

struct SmartConfig {
  std::size_t num_drives = 60;
  std::size_t days = 120;               ///< observation horizon (~4 months)
  double failure_fraction = 0.3;        ///< share of drives that fail
  std::size_t degradation_days = 14;    ///< error ramp length before failure
  /// Fraction of failing drives that die abruptly with no SMART warning
  /// (e.g. electronics failures) — these bound every model's recall.
  double abrupt_failure_fraction = 0.3;
  /// Failures are placed in the last `failure_window_days` of the horizon so
  /// the train/dev months stay anomaly-free (matching §IV-C's split).
  std::size_t failure_window_days = 30;
  std::uint64_t seed = 21;
};

struct DriveRecord {
  std::string serial;
  bool failed = false;
  bool abrupt = false;  ///< failed without a degradation ramp
  /// Day index of the failure mark; == observed_days()-1 for failed drives.
  std::size_t failure_day = 0;
  /// feature id -> daily raw values; failed drives stop reporting after the
  /// failure day (the drive is removed from production).
  std::map<int, std::vector<double>> values;

  std::size_t observed_days() const;
};

struct SmartDataset {
  std::vector<SmartFeatureSpec> features;
  std::vector<DriveRecord> drives;
  SmartConfig config;

  const SmartFeatureSpec& feature(int id) const;
};

SmartDataset generate_smart(const SmartConfig& config);

/// Flat per-day feature matrix for the baseline models: 20 raw features plus
/// the 14 first-differenced cumulative ones (34 columns, §IV-B). Label 1 =
/// failure day, 0 otherwise.
struct LabeledMatrix {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<std::size_t> drive_of_row;  ///< index into dataset.drives
  std::vector<std::string> column_names;
};

LabeledMatrix to_labeled_matrix(const SmartDataset& dataset);

/// Fit per-feature discretizers on the given day range [0, train_days) of
/// every healthy observation, using the paper's scheme-selection rule.
/// Near-constant features are excluded (§IV-C drops them).
std::map<int, core::Discretizer> fit_discretizers(const SmartDataset& dataset,
                                                  std::size_t train_days);

/// Turn one drive into a multivariate discrete event series (one "sensor"
/// per retained feature) using fitted discretizers.
core::MultivariateSeries drive_to_series(
    const SmartDataset& dataset, const DriveRecord& drive,
    const std::map<int, core::Discretizer>& discretizers);

}  // namespace desmine::data
