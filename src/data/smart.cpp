#include "data/smart.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace desmine::data {

const std::vector<SmartFeatureSpec>& smart_feature_catalog() {
  // id, name, cumulative, error_counter, near_constant
  static const std::vector<SmartFeatureSpec> kCatalog = {
      {1, "Read Error Rate", false, false, false},
      {4, "Start/Stop Count", true, false, false},
      {5, "Reallocated Sectors Count", true, true, false},
      {7, "Seek Error Rate", false, false, false},
      {9, "Power-On Hours", true, false, false},
      {10, "Spin Retry Count", true, false, true},
      {12, "Power Cycle Count", true, false, false},
      {183, "SATA Downshift Error Count", true, false, true},
      {184, "End-to-End Error", true, false, true},
      {187, "Reported Uncorrectable Errors", true, true, false},
      {188, "Command Timeout", true, true, false},
      {189, "High Fly Writes", true, false, false},
      {190, "Airflow Temperature", false, false, false},
      {192, "Power-off Retract Count", true, true, false},
      {193, "Load Cycle Count", true, false, false},
      {194, "Temperature Celsius", false, false, false},
      {197, "Current Pending Sector Count", false, true, false},
      {198, "Offline Uncorrectable Sector Count", false, true, false},
      {199, "UltraDMA CRC Error Count", true, false, true},
      {241, "Total LBAs Written", true, false, false},
  };
  return kCatalog;
}

std::size_t DriveRecord::observed_days() const {
  return values.empty() ? 0 : values.begin()->second.size();
}

const SmartFeatureSpec& SmartDataset::feature(int id) const {
  for (const SmartFeatureSpec& f : features) {
    if (f.id == id) return f;
  }
  throw PreconditionError("unknown SMART feature id " + std::to_string(id));
}

SmartDataset generate_smart(const SmartConfig& config) {
  DESMINE_EXPECTS(config.num_drives > 0 && config.days > 0, "empty dataset");
  DESMINE_EXPECTS(config.failure_window_days <= config.days,
                  "failure window exceeds horizon");

  SmartDataset dataset;
  dataset.features = smart_feature_catalog();
  dataset.config = config;

  util::Rng rng(config.seed);
  const auto num_failed = static_cast<std::size_t>(
      std::round(config.failure_fraction *
                 static_cast<double>(config.num_drives)));

  for (std::size_t d = 0; d < config.num_drives; ++d) {
    DriveRecord drive;
    drive.serial = "Z" + std::to_string(100000 + d);
    drive.failed = d < num_failed;
    util::Rng drv = rng.fork(d);
    drive.abrupt =
        drive.failed && drv.bernoulli(config.abrupt_failure_fraction);

    const std::size_t observed =
        drive.failed
            ? config.days - config.failure_window_days +
                  drv.index(config.failure_window_days) + 1
            : config.days;
    drive.failure_day = drive.failed ? observed - 1 : config.days;

    // Per-drive personality.
    const double activity = drv.uniform(50.0, 400.0);    // GB/day-ish
    const double base_temp = drv.uniform(24.0, 34.0);
    const double age_hours = drv.uniform(8000.0, 30000.0);
    const std::size_t degradation_start =
        (drive.failed && !drive.abrupt)
            ? (drive.failure_day >= config.degradation_days
                   ? drive.failure_day - config.degradation_days
                   : 0)
            : observed;  // never reached for healthy or abrupt-failure drives

    // Cumulative counter states. Error counters start fresh (0) so their
    // healthy languages are the zero-inflated kind the paper's Table III
    // features exhibit; 189 (high-fly writes) instead accumulates benign
    // activity-driven counts, making it a *busy* non-failure feature.
    double c5 = 0, c187 = 0, c188 = 0, c192 = 0,
           c189 = drv.uniform(1.0, 50.0);
    double c4 = drv.index(50), c12 = drv.index(40),
           c193 = drv.uniform(100, 5000), c241 = drv.uniform(1e3, 5e4);
    double pending = 0;  // 197 gauge
    double offline_uncorrectable = 0;  // 198 gauge

    auto& v = drive.values;
    for (const SmartFeatureSpec& f : dataset.features) {
      v[f.id].reserve(observed);
    }

    for (std::size_t day = 0; day < observed; ++day) {
      const bool degrading = drive.failed && day >= degradation_start;
      // Severity ramps 0 -> 1 across the degradation window.
      const double severity =
          degrading ? (static_cast<double>(day - degradation_start) + 1.0) /
                          static_cast<double>(config.degradation_days)
                    : 0.0;

      // --- error-counter dynamics (Table III features) ---
      if (degrading) {
        // Moderate ramps: strong enough to shift the discretized language,
        // subtle enough that supervised baselines stay below 100% recall.
        pending += drv.uniform(0, 2.5 * severity);
        c5 += drv.uniform(0, 1.2 * severity);       // remapped sectors
        c187 += drv.uniform(0, 1.5 * severity);     // uncorrectable reads
        if (drv.bernoulli(0.15 * severity)) c188 += 1;
        if (drv.bernoulli(0.3 * severity)) c192 += 1 + drv.index(2);
      } else {
        // Rare benign hiccups on healthy days (so no error counter is
        // constant over the training months, but all stay zero-inflated).
        if (drv.bernoulli(0.01)) pending += 1;
        if (drv.bernoulli(0.005)) c5 += 1;
        if (drv.bernoulli(0.003)) c187 += 1;
        if (drv.bernoulli(0.003)) c192 += 1;
        if (drv.bernoulli(0.004)) c188 += 1;
        if (pending > 0 && drv.bernoulli(0.3)) pending -= 1;  // remapped away
      }
      if (degrading) {
        offline_uncorrectable += drv.uniform(0, 2.0 * severity);
      } else if (drv.bernoulli(0.006)) {
        offline_uncorrectable += 1;
      } else if (offline_uncorrectable > 0 && drv.bernoulli(0.4)) {
        offline_uncorrectable -= 1;
      }

      // --- activity / environment ---
      const double day_activity =
          activity * (1.0 + 0.2 * std::sin(static_cast<double>(day) / 7.0)) *
          drv.uniform(0.7, 1.3);
      c241 += day_activity;
      c4 += drv.bernoulli(0.05) ? 1 : 0;
      c12 += drv.bernoulli(0.03) ? 1 : 0;
      c193 += drv.uniform(5, 40);
      c189 += drv.uniform(0.0, 2.0);  // benign, activity-like growth
      const double temp = base_temp +
                          3.0 * std::sin(static_cast<double>(day) / 11.0) +
                          drv.normal(0, 0.8) + 1.5 * severity;

      v[1].push_back(std::floor(drv.uniform(0, 100)));
      v[4].push_back(c4);
      v[5].push_back(std::floor(c5));
      v[7].push_back(std::floor(drv.uniform(0, 60)));
      v[9].push_back(age_hours + 24.0 * static_cast<double>(day));
      v[10].push_back(0.0);
      v[12].push_back(c12);
      v[183].push_back(0.0);
      v[184].push_back(0.0);
      v[187].push_back(std::floor(c187));
      v[188].push_back(c188);
      v[189].push_back(std::floor(c189));
      v[190].push_back(std::round(temp));
      v[192].push_back(c192);
      v[193].push_back(std::floor(c193));
      v[194].push_back(std::round(temp + drv.normal(0, 0.5)));
      v[197].push_back(std::floor(pending));
      v[198].push_back(std::floor(offline_uncorrectable));
      v[199].push_back(0.0);
      v[241].push_back(std::floor(c241));
    }
    dataset.drives.push_back(std::move(drive));
  }
  return dataset;
}

LabeledMatrix to_labeled_matrix(const SmartDataset& dataset) {
  LabeledMatrix out;
  for (const SmartFeatureSpec& f : dataset.features) {
    out.column_names.push_back("smart_" + std::to_string(f.id) + "_raw");
  }
  for (const SmartFeatureSpec& f : dataset.features) {
    if (f.cumulative) {
      out.column_names.push_back("smart_" + std::to_string(f.id) + "_diff");
    }
  }

  for (std::size_t d = 0; d < dataset.drives.size(); ++d) {
    const DriveRecord& drive = dataset.drives[d];
    const std::size_t days = drive.observed_days();
    // Pre-compute diffs per cumulative feature.
    std::map<int, std::vector<double>> diffs;
    for (const SmartFeatureSpec& f : dataset.features) {
      if (f.cumulative) {
        diffs[f.id] = core::first_difference(drive.values.at(f.id));
      }
    }
    for (std::size_t day = 0; day < days; ++day) {
      std::vector<double> row;
      row.reserve(out.column_names.size());
      for (const SmartFeatureSpec& f : dataset.features) {
        row.push_back(drive.values.at(f.id)[day]);
      }
      for (const SmartFeatureSpec& f : dataset.features) {
        if (f.cumulative) row.push_back(diffs[f.id][day]);
      }
      out.rows.push_back(std::move(row));
      out.labels.push_back(drive.failed && day == drive.failure_day ? 1 : 0);
      out.drive_of_row.push_back(d);
    }
  }
  return out;
}

std::map<int, core::Discretizer> fit_discretizers(const SmartDataset& dataset,
                                                  std::size_t train_days) {
  std::map<int, core::Discretizer> out;
  for (const SmartFeatureSpec& f : dataset.features) {
    if (f.near_constant) continue;
    std::vector<double> sample;
    for (const DriveRecord& drive : dataset.drives) {
      const auto& vals = drive.values.at(f.id);
      const std::size_t limit = std::min<std::size_t>(train_days, vals.size());
      for (std::size_t day = 0; day < limit; ++day) {
        sample.push_back(vals[day]);
      }
    }
    if (!sample.empty()) {
      out.emplace(f.id, core::Discretizer::fit_auto(sample));
    }
  }
  return out;
}

core::MultivariateSeries drive_to_series(
    const SmartDataset& dataset, const DriveRecord& drive,
    const std::map<int, core::Discretizer>& discretizers) {
  core::MultivariateSeries series;
  for (const SmartFeatureSpec& f : dataset.features) {
    const auto it = discretizers.find(f.id);
    if (it == discretizers.end()) continue;  // near-constant features dropped
    core::SensorSeries sensor;
    sensor.name = "smart_" + std::to_string(f.id);
    sensor.events = it->second.apply(drive.values.at(f.id));
    series.push_back(std::move(sensor));
  }
  return series;
}

}  // namespace desmine::data
