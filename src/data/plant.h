// Synthetic physical-plant dataset (substitute for the paper's proprietary
// NEC plant log, §III — see DESIGN.md's substitution table).
//
// The generator reproduces the published characteristics of that dataset:
//  * ~N sensors reporting categorical states once per minute for D days;
//  * cardinality mostly 2 (paper: 97.6% binary, mean 2.07, max 7);
//  * sensors organized in components: each component has a latent periodic
//    driver and its sensors are delayed/inverted/noisy functions of it, so
//    within-component pairs translate well (the structure recovered by the
//    local subgraphs of Fig. 7);
//  * a few "global mode" sensors that are strictly periodic and thus easily
//    translated into from anywhere — these become the popular, high
//    in-degree nodes of Fig. 5/6;
//  * a few "lazy" sensors that rarely change state — their trivially
//    predictable language lands in the [90,100] BLEU band and reproduces the
//    paper's finding that the strongest band is useless for detection;
//  * constant sensors that exercise sequence filtering;
//  * injected anomalies on configurable days (phase shifts / stuck drivers /
//    extra noise in selected components), optionally preceded by shorter
//    precursor perturbations that reproduce Fig. 8's early-warning spikes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/event.h"

namespace desmine::data {

struct PlantAnomaly {
  std::size_t day = 0;  ///< 0-based day index
  /// Components disturbed on that day; empty = all components (a severe,
  /// system-wide anomaly like the paper's Nov 28).
  std::vector<std::size_t> components;
};

/// Slow sensor migration (DESIGN.md §14): a *gradual* phase/threshold shift
/// that ramps in over many days, modelling aging hardware or re-tuned control
/// loops. Distinct from PlantAnomaly: drift is monotone, persists after the
/// ramp, and settles into a new self-consistent steady state — a graph mined
/// on post-drift data sees nothing anomalous, while a graph mined before the
/// drift slowly loses translation quality on the migrated component's pairs.
struct PlantDrift {
  std::size_t start_day = 0;  ///< 0-based day the migration begins
  std::size_t ramp_days = 10; ///< days until full strength (>= 1)
  /// Components that migrate; empty = all components. Popular/lazy/constant
  /// sensors never drift — migration is a plant-floor phenomenon.
  std::vector<std::size_t> components;
  /// Fraction of the driver period each sensor's phase has migrated at full
  /// strength, scaled by (s + 1) / sensors_per_component so every sensor
  /// slips by a *different* amount and pairwise timing relations genuinely
  /// change (a common shift alone would preserve them).
  double phase_fraction = 0.25;
  /// Extra response delay (minutes) per sensor index at full strength: sensor
  /// s gains round(level * delay_step * s) minutes of lag.
  std::size_t delay_step = 2;
};

struct PlantConfig {
  std::size_t num_components = 6;
  std::size_t sensors_per_component = 4;
  std::size_t num_popular = 2;   ///< strictly periodic global-mode sensors
  /// Period of the global-mode sensors. Slow modes (>> sentence span) have
  /// near-constant windows and become the high in-degree popular sensors.
  std::size_t popular_period = 480;
  std::size_t num_lazy = 2;      ///< rarely changing sensors
  std::size_t num_constant = 2;  ///< filtered out by sequence filtering
  std::size_t days = 30;
  std::size_t minutes_per_day = 1440;
  std::vector<PlantAnomaly> anomalies = {{20, {0, 1}}, {27, {}}};
  std::vector<PlantDrift> drifts = {};  ///< slow migrations (none by default)
  bool precursors = true;   ///< mild disturbance late on the preceding day
  double noise = 0.005;     ///< per-minute random state-flip probability
  std::uint64_t seed = 7;
};

struct PlantDataset {
  core::MultivariateSeries series;  ///< full horizon, all sensors
  std::size_t minutes_per_day = 1440;
  std::size_t days = 30;
  std::vector<PlantAnomaly> anomalies;
  std::vector<PlantDrift> drifts;
  /// Ground-truth component of each component sensor (name -> component id);
  /// popular/lazy/constant sensors are absent from this map.
  std::map<std::string, std::size_t> component_of;
  std::vector<std::string> popular_names;
  std::vector<std::string> lazy_names;
  std::vector<std::string> constant_names;

  /// Slice whole days [first_day, first_day + day_count).
  core::MultivariateSeries days_slice(std::size_t first_day,
                                      std::size_t day_count) const;
  bool is_anomalous_day(std::size_t day) const;
};

PlantDataset generate_plant(const PlantConfig& config);

}  // namespace desmine::data
