#include "data/plant.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace desmine::data {

namespace {

/// Square-ish multi-level wave: cycles through `levels` states over `period`
/// minutes, holding each state for period/levels minutes.
std::size_t wave_level(std::size_t t, std::size_t period, std::size_t phase,
                       std::size_t levels) {
  const std::size_t pos = (t + phase) % period;
  return pos * levels / period;
}

std::string binary_state(bool on) { return on ? "ON" : "OFF"; }

std::string level_state(std::size_t level) {
  return "status " + std::to_string(level + 1);
}

}  // namespace

core::MultivariateSeries PlantDataset::days_slice(std::size_t first_day,
                                                  std::size_t day_count) const {
  return core::slice(series, first_day * minutes_per_day,
                     (first_day + day_count) * minutes_per_day);
}

bool PlantDataset::is_anomalous_day(std::size_t day) const {
  for (const PlantAnomaly& a : anomalies) {
    if (a.day == day) return true;
  }
  return false;
}

PlantDataset generate_plant(const PlantConfig& config) {
  DESMINE_EXPECTS(config.num_components > 0, "need at least one component");
  DESMINE_EXPECTS(config.days > 0 && config.minutes_per_day > 0,
                  "horizon must be positive");
  for (const PlantAnomaly& a : config.anomalies) {
    DESMINE_EXPECTS(a.day < config.days, "anomaly day beyond horizon");
    for (std::size_t c : a.components) {
      DESMINE_EXPECTS(c < config.num_components, "anomalous component range");
    }
  }
  for (const PlantDrift& d : config.drifts) {
    DESMINE_EXPECTS(d.start_day < config.days, "drift start beyond horizon");
    DESMINE_EXPECTS(d.ramp_days > 0, "drift ramp must span at least one day");
    DESMINE_EXPECTS(d.phase_fraction >= 0.0 && d.phase_fraction <= 1.0,
                    "drift phase_fraction outside [0, 1]");
    for (std::size_t c : d.components) {
      DESMINE_EXPECTS(c < config.num_components, "drifting component range");
    }
  }

  util::Rng rng(config.seed);
  const std::size_t total_minutes = config.days * config.minutes_per_day;

  PlantDataset dataset;
  dataset.minutes_per_day = config.minutes_per_day;
  dataset.days = config.days;
  dataset.anomalies = config.anomalies;
  dataset.drifts = config.drifts;

  // --- Disturbance schedule -------------------------------------------------
  // disturbance[c][t] in {0 = none, 1 = mild precursor, 2 = full anomaly}.
  // Component id num_components is used for the popular (global-mode)
  // sensors, which are only disturbed by system-wide anomalies.
  const std::size_t channels = config.num_components + 1;
  std::vector<std::vector<std::uint8_t>> disturbance(
      channels, std::vector<std::uint8_t>(total_minutes, 0));
  auto mark = [&](std::size_t channel, std::size_t from, std::size_t to,
                  std::uint8_t level) {
    for (std::size_t t = from; t < std::min(to, total_minutes); ++t) {
      disturbance[channel][t] = std::max(disturbance[channel][t], level);
    }
  };
  for (const PlantAnomaly& anomaly : config.anomalies) {
    std::vector<std::size_t> targets = anomaly.components;
    const bool system_wide = targets.empty();
    if (system_wide) {
      for (std::size_t c = 0; c < channels; ++c) targets.push_back(c);
    }
    const std::size_t day_start = anomaly.day * config.minutes_per_day;
    for (std::size_t c : targets) {
      mark(c, day_start, day_start + config.minutes_per_day, 2);
      if (config.precursors && anomaly.day > 0) {
        // Mild disturbance over the last quarter of the preceding day —
        // the paper's domain experts confirmed such spikes as early signs.
        const std::size_t pre_len = config.minutes_per_day / 4;
        mark(c, day_start - pre_len, day_start, 1);
      }
    }
  }

  // --- Component sensors ----------------------------------------------------
  for (std::size_t c = 0; c < config.num_components; ++c) {
    // Periods repeat across components so some cross-component pairs share
    // dynamics (mid BLEU bands) while others are unrelated (low bands).
    static constexpr std::size_t kBasePeriods[] = {60, 90, 60, 150, 120, 90};
    const std::size_t period = kBasePeriods[c % 6];
    const std::size_t phase = 7 * c;
    const bool multilevel = (c % 16 == 4);
    const std::size_t driver_levels = multilevel ? 7 : 2;

    // Drifts that apply to this component (empty target list = all).
    std::vector<const PlantDrift*> component_drifts;
    for (const PlantDrift& d : config.drifts) {
      const bool applies =
          d.components.empty() ||
          std::find(d.components.begin(), d.components.end(), c) !=
              d.components.end();
      if (applies) component_drifts.push_back(&d);
    }

    for (std::size_t s = 0; s < config.sensors_per_component; ++s) {
      core::SensorSeries sensor;
      sensor.name = "c" + std::to_string(c) + ".s" + std::to_string(s);
      sensor.events.reserve(total_minutes);

      const std::size_t delay = 3 * s;
      const bool inverted = (s % 2 == 1);
      // Multi-level drivers feed sensors of differing cardinality (3..7),
      // matching the paper's cardinality tail (Fig. 3a).
      const std::size_t cardinality =
          multilevel ? std::min<std::size_t>(3 + 2 * s, 7) : 2;
      util::Rng noise_rng = rng.fork(1000 + c * 64 + s);

      for (std::size_t t = 0; t < total_minutes; ++t) {
        const std::uint8_t dist = disturbance[c][t];
        std::size_t eff_phase = phase;
        double noise = config.noise;
        if (dist == 1) {
          // Precursor: mild common slip plus a small per-sensor drift.
          eff_phase = phase + period / 4 + s * period / 16;
          noise = config.noise * 4;
        } else if (dist == 2) {
          // Full anomaly: the component's sensors desynchronize — each
          // slips by a *different* amount, so pairwise relationships break
          // (a common shift alone would preserve them).
          eff_phase = phase + period / 2 + s * period / 5;
          noise = std::min(0.25, config.noise * 20);
        }
        // Slow migration: a monotone ramp shifts this sensor's phase and
        // delay by a sensor-dependent amount. Purely deterministic — the
        // noise RNG stream is untouched, so a drift-free configuration stays
        // bit-identical and a drifted run differs from its undrifted twin
        // only where the migration moved a state boundary.
        std::size_t drift_phase = 0;
        std::size_t drift_delay = 0;
        for (const PlantDrift* d : component_drifts) {
          const std::size_t start = d->start_day * config.minutes_per_day;
          if (t < start) continue;
          const double ramp =
              static_cast<double>(d->ramp_days * config.minutes_per_day);
          const double level_frac =
              std::min(1.0, static_cast<double>(t - start) / ramp);
          drift_phase += static_cast<std::size_t>(std::llround(
              level_frac * d->phase_fraction * static_cast<double>(period) *
              static_cast<double>(s + 1) /
              static_cast<double>(config.sensors_per_component)));
          drift_delay += static_cast<std::size_t>(std::llround(
              level_frac * static_cast<double>(d->delay_step * s)));
        }
        const std::size_t eff_delay = delay + drift_delay;
        std::size_t level =
            wave_level(t >= eff_delay ? t - eff_delay : 0, period,
                       eff_phase + drift_phase, driver_levels);
        // Quantize the driver level to this sensor's cardinality.
        std::size_t state = level * cardinality / driver_levels;
        if (noise_rng.bernoulli(noise)) {
          state = noise_rng.index(cardinality);
        }
        if (cardinality == 2) {
          const bool on = (state == 1) != inverted;
          sensor.events.push_back(binary_state(on));
        } else {
          sensor.events.push_back(level_state(state));
        }
      }
      dataset.component_of[sensor.name] = c;
      dataset.series.push_back(std::move(sensor));
    }
  }

  // --- Popular (global-mode) sensors ----------------------------------------
  // Strictly periodic, noise-free and *slow* (period 480): nearly every
  // sentence window of a mode sensor is constant, so its language is
  // predictable from any source and every sensor translates into it with a
  // high score — these become the high in-degree popular sensors of the
  // MVRG (Fig. 5/6), exactly the stability mechanism behind the paper's
  // popular sensors.
  for (std::size_t p = 0; p < config.num_popular; ++p) {
    core::SensorSeries sensor;
    sensor.name = "mode.s" + std::to_string(p);
    sensor.events.reserve(total_minutes);
    const std::size_t period = config.popular_period;
    const std::size_t phase = 11 * p;
    for (std::size_t t = 0; t < total_minutes; ++t) {
      if (disturbance[config.num_components][t] == 2) {
        sensor.events.push_back(binary_state(false));  // stuck during anomaly
      } else {
        sensor.events.push_back(
            binary_state(wave_level(t, period, phase, 2) == 1));
      }
    }
    dataset.popular_names.push_back(sensor.name);
    dataset.series.push_back(std::move(sensor));
  }

  // --- Lazy sensors -----------------------------------------------------------
  // Mostly OFF with occasional short ON bursts: trivially translatable, they
  // populate the [90,100] band the paper shows to be useless for detection.
  for (std::size_t z = 0; z < config.num_lazy; ++z) {
    core::SensorSeries sensor;
    sensor.name = "lazy.s" + std::to_string(z);
    sensor.events.assign(total_minutes, binary_state(false));
    util::Rng blip_rng = rng.fork(5000 + z);
    for (std::size_t day = 0; day < config.days; ++day) {
      const std::size_t bursts = blip_rng.index(2);  // 0..1 bursts per day
      for (std::size_t b = 0; b < bursts; ++b) {
        // Single-minute blips keep the lazy language's vocabulary tiny
        // (11 words at word length 10), matching the paper's ~40% of
        // sensors with vocabulary < 13 (Fig. 3b).
        const std::size_t start = day * config.minutes_per_day +
                                  blip_rng.index(config.minutes_per_day);
        if (start < total_minutes) {
          sensor.events[start] = binary_state(true);
        }
      }
    }
    dataset.lazy_names.push_back(sensor.name);
    dataset.series.push_back(std::move(sensor));
  }

  // --- Constant sensors (dropped by sequence filtering) -----------------------
  for (std::size_t k = 0; k < config.num_constant; ++k) {
    core::SensorSeries sensor;
    sensor.name = "const.s" + std::to_string(k);
    sensor.events.assign(total_minutes, binary_state(false));
    dataset.constant_names.push_back(sensor.name);
    dataset.series.push_back(std::move(sensor));
  }

  return dataset;
}

}  // namespace desmine::data
