// Generation-counted model registry for hot reload (DESIGN.md §13).
//
// Serving must swap in a retrained MVRG artifact without restarting or
// perturbing in-flight work. The registry holds the *current* generation —
// an immutable bundle of valid-band edge models plus the detector
// thresholds — behind one mutex; publishing a new generation is a pointer
// swap. Every window snapshots a shared_ptr to the generation it was
// ingested under and scores against exactly that state, so a swap never
// mixes models within a window: windows ingested before the swap finish on
// the old generation, windows after it start on the new one. When the last
// in-flight reference drains (scheduler edge states erased, pending windows
// finalized), the old generation's models free themselves; retired_live()
// exposes the count of still-referenced retired generations so tests can
// assert the drain actually released the memory.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/anomaly.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "serve/residency.h"

namespace desmine::serve {

/// One valid edge of a generation. Heap generations (v1–v3 artifacts, or a
/// graph handed in directly) carry the shared trained model in `model`;
/// mapped (v4) generations leave `model` null and materialize through the
/// generation's ResidencyManager on demand. Scorers always go through
/// acquire(), which hides the difference.
struct EdgeModel {
  std::size_t src = 0;
  std::size_t dst = 0;
  double train_bleu = 0.0;  ///< s(i, j) — the broken threshold baseline
  std::shared_ptr<nmt::TranslationModel> model;
  /// Mapped generations only: the residency cache and this edge's index
  /// into the map's TOC.
  std::shared_ptr<ResidencyManager> residency;
  std::size_t map_index = 0;

  /// The model to score with: the owned model when present, else the
  /// residency cache's (materializing on first touch — io::ArtifactError
  /// surfaces corruption; the scheduler's per-edge failure handling treats
  /// it like any scoring error).
  std::shared_ptr<nmt::TranslationModel> acquire() const {
    return model != nullptr ? model : residency->acquire(map_index);
  }
};

/// One immutable published model state. Windows and scheduler edge states
/// hold shared_ptrs to the generation they score against; nothing mutates a
/// generation after publication. For mapped generations, `residency` pins
/// the io::ArtifactMap (and with it the weight pages) for the generation's
/// whole lifetime.
struct ModelGeneration {
  std::uint64_t id = 1;  ///< monotonically increasing across reloads
  std::vector<EdgeModel> edges;
  core::DetectorConfig detector;
  std::shared_ptr<ResidencyManager> residency;  ///< null for heap generations
};

/// Build a generation from a trained graph: keep the edges whose training
/// BLEU lies in [detector.valid_lo, detector.valid_hi) — the same valid-band
/// rule AnomalyDetector applies. Throws PreconditionError when a valid edge
/// lacks a trained model.
std::shared_ptr<const ModelGeneration> make_generation(
    const core::MvrGraph& graph, const core::DetectorConfig& detector,
    std::uint64_t id);

/// Build a generation over a mapped (v4) artifact: same valid-band rule,
/// but no model is deserialized — edges materialize lazily through a fresh
/// ResidencyManager budgeted by `residency`. Open-to-serveable cost is
/// O(TOC), independent of weight bytes. Throws PreconditionError when a
/// valid-band TOC entry lacks a model blob.
std::shared_ptr<const ModelGeneration> make_generation(
    std::shared_ptr<io::ArtifactMap> map, const core::DetectorConfig& detector,
    std::uint64_t id, const ResidencyConfig& residency);

class ModelRegistry {
 public:
  explicit ModelRegistry(std::shared_ptr<const ModelGeneration> initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The generation new windows should score against. Thread-safe; the
  /// returned pointer stays valid for as long as the caller holds it, even
  /// across publishes.
  std::shared_ptr<const ModelGeneration> current() const;

  /// Atomically make `next` the current generation (next->id must exceed
  /// the current id). Returns the retired generation; the registry also
  /// keeps a weak_ptr to it so retired_live() can observe the drain.
  std::shared_ptr<const ModelGeneration> publish(
      std::shared_ptr<const ModelGeneration> next);

  /// Id of the current generation.
  std::uint64_t generation() const;

  /// Retired generations still referenced somewhere (in-flight windows or
  /// scheduler edge states). 0 means every old generation's memory has been
  /// released.
  std::size_t retired_live() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelGeneration> current_;
  mutable std::vector<std::weak_ptr<const ModelGeneration>> retired_;
};

}  // namespace desmine::serve
