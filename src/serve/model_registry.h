// Generation-counted model registry for hot reload (DESIGN.md §13).
//
// Serving must swap in a retrained MVRG artifact without restarting or
// perturbing in-flight work. The registry holds the *current* generation —
// an immutable bundle of valid-band edge models plus the detector
// thresholds — behind one mutex; publishing a new generation is a pointer
// swap. Every window snapshots a shared_ptr to the generation it was
// ingested under and scores against exactly that state, so a swap never
// mixes models within a window: windows ingested before the swap finish on
// the old generation, windows after it start on the new one. When the last
// in-flight reference drains (scheduler edge states erased, pending windows
// finalized), the old generation's models free themselves; retired_live()
// exposes the count of still-referenced retired generations so tests can
// assert the drain actually released the memory.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/anomaly.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"

namespace desmine::serve {

/// One valid edge of a generation with its shared trained model.
struct EdgeModel {
  std::size_t src = 0;
  std::size_t dst = 0;
  double train_bleu = 0.0;  ///< s(i, j) — the broken threshold baseline
  std::shared_ptr<nmt::TranslationModel> model;
};

/// One immutable published model state. Windows and scheduler edge states
/// hold shared_ptrs to the generation they score against; nothing mutates a
/// generation after publication.
struct ModelGeneration {
  std::uint64_t id = 1;  ///< monotonically increasing across reloads
  std::vector<EdgeModel> edges;
  core::DetectorConfig detector;
};

/// Build a generation from a trained graph: keep the edges whose training
/// BLEU lies in [detector.valid_lo, detector.valid_hi) — the same valid-band
/// rule AnomalyDetector applies. Throws PreconditionError when a valid edge
/// lacks a trained model.
std::shared_ptr<const ModelGeneration> make_generation(
    const core::MvrGraph& graph, const core::DetectorConfig& detector,
    std::uint64_t id);

class ModelRegistry {
 public:
  explicit ModelRegistry(std::shared_ptr<const ModelGeneration> initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The generation new windows should score against. Thread-safe; the
  /// returned pointer stays valid for as long as the caller holds it, even
  /// across publishes.
  std::shared_ptr<const ModelGeneration> current() const;

  /// Atomically make `next` the current generation (next->id must exceed
  /// the current id). Returns the retired generation; the registry also
  /// keeps a weak_ptr to it so retired_live() can observe the drain.
  std::shared_ptr<const ModelGeneration> publish(
      std::shared_ptr<const ModelGeneration> next);

  /// Id of the current generation.
  std::uint64_t generation() const;

  /// Retired generations still referenced somewhere (in-flight windows or
  /// scheduler edge states). 0 means every old generation's memory has been
  /// released.
  std::size_t retired_live() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelGeneration> current_;
  mutable std::vector<std::weak_ptr<const ModelGeneration>> retired_;
};

}  // namespace desmine::serve
