#include "serve/session_manager.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/framework.h"
#include "io/artifact_map.h"
#include "io/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::serve {

SessionManager::SessionManager(const core::MvrGraph& graph,
                               core::SensorEncrypter encrypter,
                               core::WindowConfig window, ServeConfig config)
    : config_(config), encrypter_(std::move(encrypter)), window_(window) {
  DESMINE_EXPECTS(
      graph.sensor_count() == encrypter_.kept_sensors().size(),
      "graph/encrypter sensor counts disagree");
  registry_ = std::make_unique<ModelRegistry>(
      make_generation(graph, config.detector, 1));
  start();
}

SessionManager::SessionManager(const std::string& artifact_path,
                               ServeConfig config)
    : config_(std::move(config)) {
  if (io::peek_artifact_version(artifact_path) == io::kMappedArtifactVersion) {
    // Mapped open: O(header + TOC); no weight bytes are read or copied
    // until an edge actually scores.
    std::shared_ptr<io::ArtifactMap> map = io::ArtifactMap::open(artifact_path);
    encrypter_ = map->encrypter();
    window_ = map->window();
    registry_ = std::make_unique<ModelRegistry>(make_generation(
        std::move(map), config_.detector, 1,
        ResidencyConfig{config_.resident_bytes, config_.resident_edges}));
  } else {
    core::FrameworkConfig overlay;
    overlay.detector = config_.detector;
    const core::Framework loaded = io::load_framework(artifact_path, overlay);
    encrypter_ = loaded.encrypter();
    window_ = loaded.config().window;
    // The generation shares the graph's model shared_ptrs, so letting the
    // framework die here releases only the graph scaffolding.
    registry_ = std::make_unique<ModelRegistry>(
        make_generation(loaded.graph(), config_.detector, 1));
  }
  start();
}

void SessionManager::start() {
  DESMINE_EXPECTS(config_.detector.valid_lo <= config_.detector.valid_hi,
                  "valid band order");
  DESMINE_EXPECTS(config_.detector.min_coverage >= 0.0 &&
                      config_.detector.min_coverage <= 1.0,
                  "min_coverage must lie in [0, 1]");
  // Shadow candidates are gated under the serving precision (see
  // ShadowConfig::precision): a gate passed at f32 says nothing about the
  // int8 path the promoted generation would actually decode with.
  config_.shadow.precision = config_.precision;

  // Telemetry plane: shape the sliding windows before any instrument is
  // created, then pre-register the scrape-visible instruments so /metrics
  // carries them (zero-valued) from the first scrape, not the first window.
  if (config_.sliding_window_s > 0.0 && config_.sliding_epochs > 0) {
    obs::telemetry().configure(config_.sliding_window_s,
                               config_.sliding_epochs);
  }
  obs::telemetry().sliding("serve.window.latency_ms");
  obs::metrics().histogram("serve.window.latency_ms");
  obs::metrics().histogram("serve.stage.queue_ms");
  obs::metrics().histogram("serve.stage.batch_form_ms");
  obs::metrics().histogram("serve.stage.decode_ms");
  obs::metrics().histogram("serve.stage.reorder_ms");
  obs::metrics().histogram("serve.shed.age_ms");
  obs::metrics().counter("serve.windows_scored");
  obs::metrics().counter("serve.ticks");
  obs::metrics().counter("serve.reload.count");
  obs::metrics().counter("serve.reload.failures");
  obs::metrics().counter("serve.shed.windows");
  obs::metrics().counter("serve.shed.global_rejects");
  obs::metrics().counter("serve.window.failed_edges");
  obs::metrics().counter("serve.batch.failures");
  obs::metrics().counter("serve.circuit.opened");
  obs::metrics().counter("serve.circuit.closed");
  obs::metrics().counter("serve.circuit.probes");
  obs::metrics().counter("serve.circuit.quarantined");
  obs::metrics().gauge("serve.model.generation").set(1.0);
  obs::metrics().histogram("serve.reload.duration_ms");
  obs::metrics().gauge("serve.model.retired_live").set(0.0);
  obs::metrics().gauge("serve.model.resident_edges").set(0.0);
  obs::metrics().gauge("serve.model.resident_bytes").set(0.0);
  obs::metrics().counter("serve.model.evictions");
  obs::metrics().counter("serve.shadow.windows");
  obs::metrics().counter("serve.shadow.alerts");
  obs::metrics().counter("serve.shadow.failures");
  obs::metrics().counter("serve.shadow.edge_failures");
  obs::metrics().counter("serve.shadow.agreements");
  obs::metrics().counter("serve.shadow.disagreements");
  obs::metrics().gauge("serve.shadow.active").set(0.0);
  obs::metrics().gauge("serve.shadow.agreement").set(0.0);
  obs::metrics().counter("lifecycle.promotions");
  obs::metrics().counter("lifecycle.rollbacks");

  SchedulerConfig sched;
  sched.max_batch = config_.max_batch;
  sched.decode_cache = config_.decode_cache;
  sched.bleu = config_.detector.bleu;
  sched.circuit_open_after = config_.circuit_open_after;
  sched.circuit_probe_after = config_.circuit_probe_after;
  sched.max_queue_delay_ms = config_.max_queue_delay_ms;
  sched.precision = config_.precision;
  scheduler_ = std::make_unique<BatchScheduler>(
      registry_->current(), sched,
      [this](std::unique_ptr<PendingWindow> window) {
        // Shadow mirroring: lift what candidate scoring needs out of the
        // window BEFORE finalize() consumes it. Candidate decoding itself
        // runs after delivery and accounting, so shadow load never delays
        // the client-visible result or backpressure release.
        std::shared_ptr<ShadowScorer> shadow;
        {
          std::lock_guard slock(shadow_mu_);
          shadow = shadow_;
        }
        std::optional<ShadowSample> sample;
        if (shadow && shadow->admit(*window)) {
          sample = ShadowScorer::capture(*window);
        }
        // The session may already be erased; its in-flight windows are then
        // dropped on the floor by design.
        const std::shared_ptr<Session> session = find(window->session_id);
        if (session) session->finalize(std::move(window));
        window.reset();  // drop the generation reference before accounting
        if (config_.max_global_pending > 0) {
          {
            std::lock_guard glock(global_mu_);
            --global_inflight_;
          }
          global_cv_.notify_all();
        }
        if (sample) shadow->observe(std::move(*sample));
      });

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool_->submit([this] {
      while (scheduler_->run_one()) {
      }
    });
  }
  DESMINE_LOG_INFO("serve engine up",
                   {obs::kv("valid_edges", valid_model_count()),
                    obs::kv("workers", workers),
                    obs::kv("max_batch", config_.max_batch)});
}

SessionManager::~SessionManager() {
  // Refuse new ticks, let workers drain every queued score, then join.
  {
    std::lock_guard lock(mu_);
    for (auto& [id, session] : sessions_) session->close();
  }
  scheduler_->stop();
  pool_.reset();  // ThreadPool dtor drains the worker loops
  obs::metrics().gauge("serve.sessions").set(0.0);
}

std::uint64_t SessionManager::open(core::DegradedConfig degraded) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_id_++;
  TelemetryPolicy telemetry;
  telemetry.slow_window_ms = config_.slow_window_ms;
  sessions_.emplace(id, std::make_shared<Session>(id, *registry_, encrypter_,
                                                  window_, degraded,
                                                  config_.limits, telemetry));
  obs::metrics().gauge("serve.sessions").set(
      static_cast<double>(sessions_.size()));
  DESMINE_LOG_DEBUG("session opened", {obs::kv("session", id),
                                       obs::kv("degraded", degraded.enabled)});
  return id;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t session) const {
  std::lock_guard lock(mu_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second;
}

IngestStatus SessionManager::ingest(
    std::uint64_t session, const std::map<std::string, std::string>& states) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  // Global admission control before the (possibly blocking) session ingest:
  // a full fleet-wide budget rejects or blocks the tick up front, so one
  // overloaded deployment never piles unbounded work onto the scheduler.
  if (config_.max_global_pending > 0) {
    std::unique_lock glock(global_mu_);
    while (global_inflight_ >= config_.max_global_pending) {
      if (config_.limits.reject_when_full) {
        obs::metrics().counter("serve.shed.global_rejects").inc();
        return IngestStatus::kRejected;
      }
      global_cv_.wait(glock);
    }
  }
  std::unique_ptr<PendingWindow> to_schedule;
  const IngestStatus status = s->ingest(states, &to_schedule);
  if (to_schedule) {
    if (config_.max_global_pending > 0) {
      std::lock_guard glock(global_mu_);
      ++global_inflight_;
    }
    scheduler_->submit(std::move(to_schedule));
  }
  return status;
}

std::optional<WindowResult> SessionManager::poll(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  return s->poll();
}

void SessionManager::close(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->close();
}

void SessionManager::drain(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->drain();
}

void SessionManager::drain() {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(mu_);
    all.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (const std::shared_ptr<Session>& s : all) s->drain();
}

void SessionManager::erase(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->close();
  s->drain();
  {
    std::lock_guard lock(mu_);
    sessions_.erase(session);
    obs::metrics().gauge("serve.sessions").set(
        static_cast<double>(sessions_.size()));
  }
  DESMINE_LOG_DEBUG("session erased", {obs::kv("session", session)});
}

std::shared_ptr<const ModelGeneration> SessionManager::load_generation_locked(
    const std::string& path) {
  switch (robust::fire_fault("serve.model.load", 0)) {
    case robust::FaultAction::kThrow:
      throw RuntimeError("injected serve.model.load fault");
    case robust::FaultAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(robust::kDelayMillis));
      break;
    default:
      break;
  }
  // Integrity-verified load off the worker threads; the detector band/quorum
  // this manager was configured with carries over to the new generation.
  const auto check_compatible = [this](const core::SensorEncrypter& enc,
                                       const core::WindowConfig& w) {
    DESMINE_EXPECTS(enc.kept_sensors() == encrypter_.kept_sensors(),
                    "artifact serves different sensors than this manager");
    DESMINE_EXPECTS(w.word_length == window_.word_length &&
                        w.word_stride == window_.word_stride &&
                        w.sentence_length == window_.sentence_length &&
                        w.sentence_stride == window_.sentence_stride,
                    "artifact was mined with a different window config");
  };
  std::shared_ptr<const ModelGeneration> next;
  if (io::peek_artifact_version(path) == io::kMappedArtifactVersion) {
    // Mapped promotion is a remap: open + TOC verification + valid-band
    // filtering, no weight deserialization. Unlike cold start (lazy CRCs
    // for O(header+TOC) readiness), swapping a LIVE fleet demands the §13
    // contract — integrity-verified before publication — so every edge CRC
    // is swept eagerly here; a corrupt candidate keeps the old generation.
    // The retiring generation's map stays pinned until its last in-flight
    // window drains.
    std::shared_ptr<io::ArtifactMap> map = io::ArtifactMap::open(path);
    check_compatible(map->encrypter(), map->window());
    map->verify_all();
    next = make_generation(
        std::move(map), config_.detector, registry_->generation() + 1,
        ResidencyConfig{config_.resident_bytes, config_.resident_edges});
  } else {
    core::FrameworkConfig overlay;
    overlay.detector = config_.detector;
    const core::Framework loaded = io::load_framework(path, overlay);
    check_compatible(loaded.encrypter(), loaded.config().window);
    next = make_generation(loaded.graph(), config_.detector,
                           registry_->generation() + 1);
  }
  DESMINE_EXPECTS(!next->edges.empty(),
                  "artifact has no valid-band edges to serve");
  return next;
}

std::uint64_t SessionManager::reload(const std::string& path) {
  std::lock_guard rlock(reload_mu_);
  const auto reload_start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [reload_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - reload_start)
        .count();
  };
  const obs::SpanContext span = obs::tracer().start_span(
      "serve.reload", {}, {obs::kv("path", path)});
  try {
    std::shared_ptr<const ModelGeneration> next = load_generation_locked(path);

    // Publish, then retire the old generation's scheduler states: windows
    // already in flight finish on their snapshot, new windows score on the
    // swap — no window ever mixes generations.
    registry_->publish(next);
    scheduler_->set_current_generation(next->id);
    obs::metrics().gauge("serve.model.generation")
        .set(static_cast<double>(next->id));
    obs::metrics().gauge("serve.model.retired_live")
        .set(static_cast<double>(registry_->retired_live()));
    obs::metrics().counter("serve.reload.count").inc();
    obs::metrics().histogram("serve.reload.duration_ms").record(elapsed_ms());
    {
      std::lock_guard slock(shadow_mu_);
      last_reload_error_.clear();
    }
    obs::tracer().finish_span(
        span, {obs::kv("generation", next->id),
               obs::kv("valid_edges", next->edges.size())});
    DESMINE_LOG_INFO("model reloaded",
                     {obs::kv("path", path), obs::kv("generation", next->id),
                      obs::kv("valid_edges", next->edges.size())});
    return next->id;
  } catch (const std::exception& e) {
    // Failed reloads are timed too: a slow failure (giant corrupt artifact,
    // hung storage) must be visible in latency telemetry, not only in logs.
    obs::metrics().counter("serve.reload.failures").inc();
    obs::metrics().histogram("serve.reload.duration_ms").record(elapsed_ms());
    {
      std::lock_guard slock(shadow_mu_);
      last_reload_error_ = e.what();
    }
    obs::tracer().finish_span(span, {obs::kv("error", e.what())});
    DESMINE_LOG_WARN("model reload failed — keeping current generation",
                     {obs::kv("path", path), obs::kv("error", e.what()),
                      obs::kv("generation", registry_->generation())});
    throw;
  }
}

std::uint64_t SessionManager::begin_shadow(const std::string& path) {
  std::lock_guard rlock(reload_mu_);
  // Any load/validation failure throws here, before shadow state changes:
  // a corrupt candidate artifact can never arm a scorer, let alone reach
  // the active generation.
  std::shared_ptr<const ModelGeneration> next = load_generation_locked(path);
  auto scorer =
      std::make_shared<ShadowScorer>(next, config_.shadow, path);
  std::shared_ptr<ShadowScorer> previous;
  {
    std::lock_guard slock(shadow_mu_);
    previous = std::exchange(shadow_, std::move(scorer));
  }
  if (previous) previous->seal();
  obs::metrics().gauge("serve.shadow.active").set(1.0);
  obs::metrics().gauge("serve.shadow.agreement").set(0.0);
  DESMINE_LOG_INFO("shadow candidate armed",
                   {obs::kv("path", path), obs::kv("candidate", next->id),
                    obs::kv("valid_edges", next->edges.size()),
                    obs::kv("replaced_previous", previous != nullptr)});
  return next->id;
}

std::uint64_t SessionManager::promote() {
  std::lock_guard rlock(reload_mu_);
  std::shared_ptr<ShadowScorer> shadow;
  {
    std::lock_guard slock(shadow_mu_);
    shadow = shadow_;
  }
  DESMINE_EXPECTS(shadow != nullptr, "no shadow candidate armed");
  if (!shadow->gate_passed()) {
    throw PreconditionError("shadow gate not passed: " +
                            shadow->gate_reason());
  }
  const std::shared_ptr<const ModelGeneration>& next = shadow->candidate();
  DESMINE_EXPECTS(next->id == registry_->generation() + 1,
                  "shadow candidate is stale (a reload superseded it); "
                  "rearm with begin_shadow");

  // Detach the scorer first so no new samples start, then seal() — which
  // waits out any in-flight candidate decode — before the scheduler's
  // workers may touch the same (single-threaded) models.
  {
    std::lock_guard slock(shadow_mu_);
    shadow_.reset();
  }
  shadow->seal();
  registry_->publish(next);
  scheduler_->set_current_generation(next->id);
  obs::metrics().gauge("serve.model.generation")
      .set(static_cast<double>(next->id));
  obs::metrics().gauge("serve.model.retired_live")
      .set(static_cast<double>(registry_->retired_live()));
  obs::metrics().gauge("serve.shadow.active").set(0.0);
  obs::metrics().counter("lifecycle.promotions").inc();
  const ShadowScorer::Status st = shadow->status();
  DESMINE_LOG_INFO("shadow candidate promoted",
                   {obs::kv("generation", next->id),
                    obs::kv("sampled", st.sampled),
                    obs::kv("alert_rate", st.alert_rate()),
                    obs::kv("agreement", st.agreement())});
  return next->id;
}

std::string SessionManager::rollback() {
  std::lock_guard rlock(reload_mu_);
  std::shared_ptr<ShadowScorer> shadow;
  {
    std::lock_guard slock(shadow_mu_);
    shadow = std::exchange(shadow_, nullptr);
  }
  DESMINE_EXPECTS(shadow != nullptr, "no shadow candidate armed");
  shadow->seal();
  obs::metrics().gauge("serve.shadow.active").set(0.0);
  obs::metrics().counter("lifecycle.rollbacks").inc();
  const ShadowScorer::Status st = shadow->status();
  DESMINE_LOG_INFO("shadow candidate rolled back — serving unchanged",
                   {obs::kv("path", st.path),
                    obs::kv("sampled", st.sampled),
                    obs::kv("reason", shadow->gate_reason())});
  return st.path;
}

std::optional<ShadowScorer::Status> SessionManager::shadow_status() const {
  std::shared_ptr<ShadowScorer> shadow;
  {
    std::lock_guard slock(shadow_mu_);
    shadow = shadow_;
  }
  if (!shadow) return std::nullopt;
  return shadow->status();
}

bool SessionManager::shadow_gate_passed() const {
  std::shared_ptr<ShadowScorer> shadow;
  {
    std::lock_guard slock(shadow_mu_);
    shadow = shadow_;
  }
  return shadow != nullptr && shadow->gate_passed();
}

std::string SessionManager::last_reload_error() const {
  std::lock_guard slock(shadow_mu_);
  return last_reload_error_;
}

Session::Stats SessionManager::stats(std::uint64_t session) const {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  return s->stats();
}

std::size_t SessionManager::session_count() const {
  std::lock_guard lock(mu_);
  return sessions_.size();
}

double SessionManager::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

}  // namespace desmine::serve
