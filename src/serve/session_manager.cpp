#include "serve/session_manager.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/error.h"

namespace desmine::serve {

SessionManager::SessionManager(const core::MvrGraph& graph,
                               core::SensorEncrypter encrypter,
                               core::WindowConfig window, ServeConfig config)
    : config_(config), encrypter_(std::move(encrypter)), window_(window) {
  DESMINE_EXPECTS(
      graph.sensor_count() == encrypter_.kept_sensors().size(),
      "graph/encrypter sensor counts disagree");
  DESMINE_EXPECTS(config_.detector.valid_lo <= config_.detector.valid_hi,
                  "valid band order");
  DESMINE_EXPECTS(config_.detector.min_coverage >= 0.0 &&
                      config_.detector.min_coverage <= 1.0,
                  "min_coverage must lie in [0, 1]");
  shared_.detector = config_.detector;
  // Same valid-band rule as AnomalyDetector: an edge is served when its
  // training BLEU lies in [valid_lo, valid_hi).
  for (const core::MvrEdge& e : graph.edges()) {
    if (e.bleu >= config_.detector.valid_lo &&
        e.bleu < config_.detector.valid_hi) {
      DESMINE_EXPECTS(e.model != nullptr, "valid edge lacks a trained model");
      shared_.edges.push_back({e.src, e.dst, e.bleu, e.model});
    }
  }

  // Telemetry plane: shape the sliding windows before any instrument is
  // created, then pre-register the scrape-visible instruments so /metrics
  // carries them (zero-valued) from the first scrape, not the first window.
  if (config_.sliding_window_s > 0.0 && config_.sliding_epochs > 0) {
    obs::telemetry().configure(config_.sliding_window_s,
                               config_.sliding_epochs);
  }
  obs::telemetry().sliding("serve.window.latency_ms");
  obs::metrics().histogram("serve.window.latency_ms");
  obs::metrics().histogram("serve.stage.queue_ms");
  obs::metrics().histogram("serve.stage.batch_form_ms");
  obs::metrics().histogram("serve.stage.decode_ms");
  obs::metrics().histogram("serve.stage.reorder_ms");
  obs::metrics().counter("serve.windows_scored");
  obs::metrics().counter("serve.ticks");

  scheduler_ = std::make_unique<BatchScheduler>(
      shared_.edges, config_.max_batch, config_.decode_cache,
      config_.detector.bleu,
      [this](std::unique_ptr<PendingWindow> window) {
        // The session may already be erased; its in-flight windows are then
        // dropped on the floor by design.
        const std::shared_ptr<Session> session = find(window->session_id);
        if (session) session->finalize(std::move(window));
      });

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<util::ThreadPool>(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool_->submit([this] {
      while (scheduler_->run_one()) {
      }
    });
  }
  DESMINE_LOG_INFO("serve engine up",
                   {obs::kv("valid_edges", shared_.edges.size()),
                    obs::kv("workers", workers),
                    obs::kv("max_batch", config_.max_batch)});
}

SessionManager::~SessionManager() {
  // Refuse new ticks, let workers drain every queued score, then join.
  {
    std::lock_guard lock(mu_);
    for (auto& [id, session] : sessions_) session->close();
  }
  scheduler_->stop();
  pool_.reset();  // ThreadPool dtor drains the worker loops
  obs::metrics().gauge("serve.sessions").set(0.0);
}

std::uint64_t SessionManager::open(core::DegradedConfig degraded) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_id_++;
  TelemetryPolicy telemetry;
  telemetry.slow_window_ms = config_.slow_window_ms;
  sessions_.emplace(id, std::make_shared<Session>(id, shared_, encrypter_,
                                                  window_, degraded,
                                                  config_.limits, telemetry));
  obs::metrics().gauge("serve.sessions").set(
      static_cast<double>(sessions_.size()));
  DESMINE_LOG_DEBUG("session opened", {obs::kv("session", id),
                                       obs::kv("degraded", degraded.enabled)});
  return id;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t session) const {
  std::lock_guard lock(mu_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second;
}

IngestStatus SessionManager::ingest(
    std::uint64_t session, const std::map<std::string, std::string>& states) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  std::unique_ptr<PendingWindow> to_schedule;
  const IngestStatus status = s->ingest(states, &to_schedule);
  if (to_schedule) scheduler_->submit(std::move(to_schedule));
  return status;
}

std::optional<WindowResult> SessionManager::poll(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  return s->poll();
}

void SessionManager::close(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->close();
}

void SessionManager::drain(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->drain();
}

void SessionManager::drain() {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(mu_);
    all.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (const std::shared_ptr<Session>& s : all) s->drain();
}

void SessionManager::erase(std::uint64_t session) {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  s->close();
  s->drain();
  {
    std::lock_guard lock(mu_);
    sessions_.erase(session);
    obs::metrics().gauge("serve.sessions").set(
        static_cast<double>(sessions_.size()));
  }
  DESMINE_LOG_DEBUG("session erased", {obs::kv("session", session)});
}

Session::Stats SessionManager::stats(std::uint64_t session) const {
  const std::shared_ptr<Session> s = find(session);
  DESMINE_EXPECTS(s != nullptr, "unknown session id");
  return s->stats();
}

std::size_t SessionManager::session_count() const {
  std::lock_guard lock(mu_);
  return sessions_.size();
}

double SessionManager::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

}  // namespace desmine::serve
