// Multi-session streaming detection engine (DESIGN.md §11, §13).
//
// SessionManager is the serving layer's front door: it owns N independent
// detection sessions, the generation-counted ModelRegistry, the
// cross-session BatchScheduler, and the worker pool that drains it. One
// trained artifact (MvrGraph + SensorEncrypter + WindowConfig — exactly
// what io::load_framework restores) serves any number of concurrent
// streams; per-session strict/degraded semantics are chosen at open().
// Ingest is thread-safe per session and across sessions; a flooding session
// exhausts only its own pending-window budget (SessionLimits) and never
// stalls or degrades its neighbours.
//
// Fault tolerance (DESIGN.md §13):
//  * reload(path) hot-swaps a retrained artifact: the new generation is
//    CRC-verified and validated off the worker threads, published
//    atomically, and in-flight windows finish on the generation they were
//    ingested under. The old generation's models free themselves when the
//    last reference drains (registry().retired_live() observes this).
//  * Worker supervision + per-edge circuit breakers live in the scheduler;
//    sessions deliver failed edges as typed results, never severed streams.
//  * Admission control: `max_global_pending` caps scheduled windows across
//    ALL sessions on top of the per-session budget (soft bound — racing
//    ingests may briefly overshoot by the number of ingesting threads),
//    and `max_queue_delay_ms` sheds stale windows oldest-first without
//    ever starving a session (SessionLimits::max_consecutive_shed).
//
// Reported metrics: everything from PR 5/6 plus serve.model.generation
// (gauge), serve.reload.{count,failures}, serve.shed.windows,
// serve.shed.global_rejects, serve.window.failed_edges, serve.batch.failures,
// and serve.circuit.{opened,closed,probes,quarantined} (counters), plus the
// serve.shed.age_ms histogram. Shed windows are excluded from
// serve.window.latency_ms, so its p99 tracks accepted windows only.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/language.h"
#include "core/mvr_graph.h"
#include "serve/batch_scheduler.h"
#include "serve/model_registry.h"
#include "serve/session.h"
#include "serve/shadow_scorer.h"
#include "util/thread_pool.h"

namespace desmine::serve {

struct ServeConfig {
  /// Valid band, tolerance, quorum, and BLEU options — the same knobs an
  /// AnomalyDetector takes (DetectorConfig::threads is ignored; the serving
  /// layer's `workers` pool replaces it).
  core::DetectorConfig detector{};
  /// Scoring worker threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Max sentence-windows one batched decode may stack per edge.
  std::size_t max_batch = 32;
  /// Per-edge source->translation cache entries (0 disables). Periodic
  /// discrete streams repeat sentences heavily; caching turns repeat
  /// windows into pure BLEU evaluations, bit-identically.
  std::size_t decode_cache = 4096;
  /// Per-session flow control (pending-window budget + block/reject +
  /// consecutive-shed guard).
  SessionLimits limits{};
  /// Numeric mode of the serve-side greedy decodes: kF32 (default) or the
  /// int8 quantized-weight path (DESIGN.md §16). Chosen at startup (config
  /// file `tensor.precision` / `--precision`), never mid-stream.
  tensor::Precision precision = tensor::Precision::kF32;

  // --- Fault tolerance (DESIGN.md §13) ---
  /// Global in-flight budget: windows scheduled for scoring across all
  /// sessions (0 = unlimited). Full-budget policy follows
  /// limits.reject_when_full (block vs reject the tick).
  std::size_t max_global_pending = 0;
  /// Shed sheddable windows older than this at item-pop time instead of
  /// scoring them late (0 disables shedding).
  double max_queue_delay_ms = 0.0;
  /// Consecutive failed batches before an edge's circuit breaker opens
  /// (0 disables the breaker; failures still yield typed error results).
  std::size_t circuit_open_after = 5;
  /// Quarantined items before an open breaker goes half-open and probes.
  std::size_t circuit_probe_after = 16;

  // --- Telemetry plane (DESIGN.md §12) ---
  /// Loopback port for the /metrics + /healthz + /statusz exposition
  /// (0 = off). The listener itself is mounted by the serving tool; the
  /// knob lives here so config files carry it.
  std::size_t telemetry_port = 0;
  /// Windows slower than this (end-to-end ms) emit their span tree as a
  /// warn-level JSON-lines record (0 = off).
  double slow_window_ms = 0.0;
  /// Shape of the sliding-window quantiles on /metrics: total window in
  /// seconds and the number of ring epochs it is divided into.
  double sliding_window_s = 60.0;
  std::size_t sliding_epochs = 6;

  // --- Mapped model store (DESIGN.md §15) ---
  /// Byte budget for materialized edge decode state when serving a mapped
  /// (v4) artifact (0 = unlimited). LRU edges evict past the budget;
  /// in-flight scorers are never interrupted. Ignored for heap generations.
  std::uint64_t resident_bytes = 0;
  /// Cap on concurrently materialized mapped edges (0 = unlimited).
  std::size_t resident_edges = 0;

  // --- Continual mining lifecycle (DESIGN.md §14) ---
  /// Shadow-promotion gate for begin_shadow()/promote() candidates.
  ShadowConfig shadow{};
};

class SessionManager {
 public:
  /// `graph` must carry trained models on its valid-band edges; `encrypter`
  /// and `window` must be the ones the graph was mined with (the trio an
  /// io::load_framework artifact restores).
  SessionManager(const core::MvrGraph& graph, core::SensorEncrypter encrypter,
                 core::WindowConfig window, ServeConfig config = {});

  /// Serve straight from a saved artifact, dispatching on its version:
  /// a mapped (v4) artifact is opened via io::ArtifactMap — the encrypter,
  /// window config and edge TOC come from O(header + TOC) work, weights
  /// stay on disk and edges materialize lazily under the residency budget
  /// (config.resident_bytes/resident_edges) — while v1–v3 artifacts
  /// deserialize through io::load_framework exactly as before. Scoring is
  /// bit-identical either way. Throws io::ArtifactError / RuntimeError on a
  /// corrupt or unreadable artifact.
  explicit SessionManager(const std::string& artifact_path,
                          ServeConfig config = {});

  /// Stops workers after draining every queued score; results never polled
  /// are discarded.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Open a new detection session; returns its id. Strict by default, or
  /// degraded-mode health tracking per `degraded`.
  std::uint64_t open(core::DegradedConfig degraded = {});

  /// Feed one tick into `session`. Thread-safe; see Session::ingest for the
  /// backpressure contract. Throws PreconditionError for unknown ids.
  IngestStatus ingest(std::uint64_t session,
                      const std::map<std::string, std::string>& states);

  /// Next completed window of `session`, in window order.
  std::optional<WindowResult> poll(std::uint64_t session);

  /// Refuse further ticks on `session`; in-flight windows still complete.
  void close(std::uint64_t session);

  /// Block until `session` has no window awaiting scoring.
  void drain(std::uint64_t session);
  /// Block until no session has a window awaiting scoring.
  void drain();

  /// Close, drain, and forget `session` (unpolled results are dropped).
  void erase(std::uint64_t session);

  /// Hot-swap the served models from a saved artifact (io::load_framework —
  /// CRC-verified; the artifact must carry the same kept sensors and window
  /// config this manager was built with). In-flight windows finish on their
  /// old generation; windows ingested after the swap score on the new one.
  /// Returns the new generation id. Throws (RuntimeError/PreconditionError)
  /// and leaves the old generation serving on any failure. Serialized:
  /// concurrent reloads run one at a time. Call from a control thread, not
  /// a scoring worker.
  std::uint64_t reload(const std::string& path);

  // --- Shadow-gated promotion (DESIGN.md §14) ---

  /// Arm a candidate generation from a saved artifact (same CRC and
  /// compatibility validations as reload()). The candidate shadow-scores a
  /// sampled slice of live windows per config().shadow with no client-
  /// visible effect; serving stays entirely on the active generation.
  /// Replaces any previously armed candidate. Returns the id the candidate
  /// will publish under if promoted (current generation + 1). Throws and
  /// leaves shadow state unchanged on a corrupt or incompatible artifact.
  std::uint64_t begin_shadow(const std::string& path);

  /// Promote the armed candidate into serving via the hot-reload path.
  /// Requires the shadow gate to pass and the candidate to still be the
  /// next generation (an interleaved reload() stales it). Throws
  /// PreconditionError (gate/staleness) and leaves serving untouched on
  /// failure. In-flight windows finish on their old generation.
  std::uint64_t promote();

  /// Discard the armed candidate. Serving is untouched — the active
  /// generation remains bit-identical. Returns the discarded candidate's
  /// artifact path. Throws PreconditionError when no candidate is armed.
  std::string rollback();

  /// Gate progress of the armed candidate; nullopt when none is armed.
  std::optional<ShadowScorer::Status> shadow_status() const;

  /// True when a candidate is armed and its gate currently passes.
  bool shadow_gate_passed() const;

  /// Why the last reload() failed; empty after a success (or when none
  /// failed yet). Exposed on /statusz and the stats op so operators see
  /// reload failures without scraping logs.
  std::string last_reload_error() const;

  Session::Stats stats(std::uint64_t session) const;
  std::size_t session_count() const;
  std::size_t valid_model_count() const {
    return registry_->current()->edges.size();
  }
  /// Current model generation id (1 until the first successful reload).
  std::uint64_t generation() const { return registry_->generation(); }
  /// The registry, for generation/refcount introspection (tests, tools).
  const ModelRegistry& registry() const { return *registry_; }
  const ServeConfig& config() const { return config_; }
  const core::SensorEncrypter& encrypter() const { return encrypter_; }

  /// Seconds since this manager came up (/statusz and the stats op).
  double uptime_s() const;

 private:
  std::shared_ptr<Session> find(std::uint64_t session) const;

  /// Shared tail of both constructors: validates config_, registers the
  /// telemetry instruments, and brings up the scheduler + worker pool.
  /// Requires encrypter_/window_/registry_ to be set.
  void start();

  /// Load + validate a candidate/reload artifact (CRC, kept sensors,
  /// window config) and build the next generation — mapped for v4
  /// artifacts, heap for v1–v3. Caller holds reload_mu_.
  std::shared_ptr<const ModelGeneration> load_generation_locked(
      const std::string& path);

  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  ServeConfig config_;
  core::SensorEncrypter encrypter_;
  core::WindowConfig window_;

  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::unique_ptr<util::ThreadPool> pool_;

  /// Serializes reload()/begin_shadow()/promote()/rollback(); never held
  /// while scoring.
  std::mutex reload_mu_;

  /// Guards shadow_ and last_reload_error_. Leaf lock: never held while
  /// calling into the scorer, registry, or scheduler.
  mutable std::mutex shadow_mu_;
  std::shared_ptr<ShadowScorer> shadow_;
  std::string last_reload_error_;

  /// Global admission control (soft budget, see class comment).
  std::mutex global_mu_;
  std::condition_variable global_cv_;
  std::size_t global_inflight_ = 0;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace desmine::serve
