// Multi-session streaming detection engine (DESIGN.md §11).
//
// SessionManager is the serving layer's front door: it owns N independent
// detection sessions, the cross-session BatchScheduler, and the worker pool
// that drains it. One trained artifact (MvrGraph + SensorEncrypter +
// WindowConfig — exactly what io::load_framework restores) serves any
// number of concurrent streams; per-session strict/degraded semantics are
// chosen at open(). Ingest is thread-safe per session and across sessions;
// a flooding session exhausts only its own pending-window budget
// (SessionLimits) and never stalls or degrades its neighbours.
//
// Reported metrics: serve.sessions (gauge), serve.batch.size,
// serve.window.latency_ms, serve.batch.score_ms, the per-stage breakdown
// serve.stage.{queue,batch_form,decode,reorder}_ms (histograms),
// serve.ticks, serve.windows_scored, serve.batch.{decoded,cache_hits},
// serve.ingest.rejected, and serve.window.slow (counters), plus a sliding
// serve.window.latency_ms in obs::telemetry() for recent quantiles on
// /metrics. serve.window.latency_ms is measured at delivery (poll order),
// so it includes the reorder wait.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/language.h"
#include "core/mvr_graph.h"
#include "serve/batch_scheduler.h"
#include "serve/session.h"
#include "util/thread_pool.h"

namespace desmine::serve {

struct ServeConfig {
  /// Valid band, tolerance, quorum, and BLEU options — the same knobs an
  /// AnomalyDetector takes (DetectorConfig::threads is ignored; the serving
  /// layer's `workers` pool replaces it).
  core::DetectorConfig detector{};
  /// Scoring worker threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Max sentence-windows one batched decode may stack per edge.
  std::size_t max_batch = 32;
  /// Per-edge source->translation cache entries (0 disables). Periodic
  /// discrete streams repeat sentences heavily; caching turns repeat
  /// windows into pure BLEU evaluations, bit-identically.
  std::size_t decode_cache = 4096;
  /// Per-session flow control (pending-window budget + block/reject).
  SessionLimits limits{};

  // --- Telemetry plane (DESIGN.md §12) ---
  /// Loopback port for the /metrics + /healthz + /statusz exposition
  /// (0 = off). The listener itself is mounted by the serving tool; the
  /// knob lives here so config files carry it.
  std::size_t telemetry_port = 0;
  /// Windows slower than this (end-to-end ms) emit their span tree as a
  /// warn-level JSON-lines record (0 = off).
  double slow_window_ms = 0.0;
  /// Shape of the sliding-window quantiles on /metrics: total window in
  /// seconds and the number of ring epochs it is divided into.
  double sliding_window_s = 60.0;
  std::size_t sliding_epochs = 6;
};

class SessionManager {
 public:
  /// `graph` must carry trained models on its valid-band edges; `encrypter`
  /// and `window` must be the ones the graph was mined with (the trio an
  /// io::load_framework artifact restores).
  SessionManager(const core::MvrGraph& graph, core::SensorEncrypter encrypter,
                 core::WindowConfig window, ServeConfig config = {});
  /// Stops workers after draining every queued score; results never polled
  /// are discarded.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Open a new detection session; returns its id. Strict by default, or
  /// degraded-mode health tracking per `degraded`.
  std::uint64_t open(core::DegradedConfig degraded = {});

  /// Feed one tick into `session`. Thread-safe; see Session::ingest for the
  /// backpressure contract. Throws PreconditionError for unknown ids.
  IngestStatus ingest(std::uint64_t session,
                      const std::map<std::string, std::string>& states);

  /// Next completed window of `session`, in window order.
  std::optional<WindowResult> poll(std::uint64_t session);

  /// Refuse further ticks on `session`; in-flight windows still complete.
  void close(std::uint64_t session);

  /// Block until `session` has no window awaiting scoring.
  void drain(std::uint64_t session);
  /// Block until no session has a window awaiting scoring.
  void drain();

  /// Close, drain, and forget `session` (unpolled results are dropped).
  void erase(std::uint64_t session);

  Session::Stats stats(std::uint64_t session) const;
  std::size_t session_count() const;
  std::size_t valid_model_count() const { return shared_.edges.size(); }
  const ServeConfig& config() const { return config_; }
  const core::SensorEncrypter& encrypter() const { return encrypter_; }

  /// Seconds since this manager came up (/statusz and the stats op).
  double uptime_s() const;

 private:
  std::shared_ptr<Session> find(std::uint64_t session) const;

  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  ServeConfig config_;
  core::SensorEncrypter encrypter_;
  core::WindowConfig window_;
  SharedModel shared_;

  std::unique_ptr<BatchScheduler> scheduler_;
  std::unique_ptr<util::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace desmine::serve
