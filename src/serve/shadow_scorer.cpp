#include "serve/shadow_scorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::serve {

namespace {

std::string edge_name(std::size_t src, std::size_t dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

}  // namespace

ShadowScorer::ShadowScorer(std::shared_ptr<const ModelGeneration> candidate,
                           ShadowConfig config, std::string source_path)
    : candidate_(std::move(candidate)),
      config_(config),
      path_(std::move(source_path)),
      stride_(config.sample_rate >= 1.0
                  ? 1
                  : static_cast<std::size_t>(std::max(
                        1.0, std::round(1.0 / std::max(1e-9,
                                                       config.sample_rate))))) {
  DESMINE_EXPECTS(candidate_ != nullptr, "shadow needs a candidate generation");
  DESMINE_EXPECTS(config_.sample_rate > 0.0, "sample_rate must be positive");
  DESMINE_EXPECTS(!candidate_->edges.empty(),
                  "candidate generation has no valid-band edges");
}

bool ShadowScorer::admit(const PendingWindow& window) {
  if (window.shed) return false;  // no score to mirror
  std::lock_guard lock(mu_);
  if (sealed_) return false;
  const bool take = (observed_ % stride_) == 0;
  ++observed_;
  return take;
}

std::optional<ShadowSample> ShadowScorer::capture(const PendingWindow& w) {
  if (w.shed) return std::nullopt;
  // Replicate Session::finalize operation for operation so the mirrored
  // active score is bit-identical to the delivered result.
  const ModelGeneration& gen = *w.generation;
  const double total = static_cast<double>(gen.edges.size());
  std::size_t surviving = 0;
  std::size_t broken = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < w.edges.size(); ++i) {
    const EdgeModel& edge = gen.edges[w.edges[i]];
    if (w.edge_status[i] != static_cast<std::uint8_t>(SlotStatus::kScored)) {
      ++failed;
      continue;
    }
    ++surviving;
    if (w.edge_bleu[i] < edge.train_bleu - gen.detector.tolerance) ++broken;
  }
  const double coverage =
      total == 0.0 ? 0.0 : static_cast<double>(surviving) / total;
  ShadowSample sample;
  sample.corpora = w.corpora;
  sample.unhealthy = w.unhealthy;
  sample.masked = w.masked;
  if ((w.masked || failed > 0) && coverage < gen.detector.min_coverage) {
    sample.active_score = 0.0;  // degraded: no verdict
  } else {
    sample.active_score = surviving == 0
                              ? 0.0
                              : static_cast<double>(broken) /
                                    static_cast<double>(surviving);
  }
  return sample;
}

void ShadowScorer::observe(ShadowSample sample) {
  std::lock_guard lock(mu_);
  if (sealed_) return;

  // Candidate scoring with the same semantics the candidate would serve
  // with: health-masked edges excluded, failed decodes excluded and the
  // score renormalized over the survivors.
  std::vector<char> bad(sample.corpora.size(), 0);
  for (std::size_t node : sample.unhealthy) {
    if (node < bad.size()) bad[node] = 1;
  }
  const auto is_bad = [&bad](std::size_t node) {
    return node < bad.size() && bad[node] != 0;
  };
  std::size_t surviving = 0;
  std::size_t broken = 0;
  bool any_failed = false;
  for (const EdgeModel& edge : candidate_->edges) {
    if (is_bad(edge.src) || is_bad(edge.dst)) continue;
    try {
      switch (robust::fire_fault("serve.shadow", edge_name(edge.src,
                                                           edge.dst))) {
        case robust::FaultAction::kThrow:
        case robust::FaultAction::kDiverge:
        case robust::FaultAction::kAbort:
          throw RuntimeError("injected serve.shadow fault");
        case robust::FaultAction::kDrop:
          continue;  // edge silently excluded from this sample
        case robust::FaultAction::kDelay:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(robust::kDelayMillis));
          break;
        default:
          break;
      }
      const std::shared_ptr<nmt::TranslationModel> model = edge.acquire();
      model->set_decode_precision(config_.precision);
      const double f = model
                           ->score(sample.corpora[edge.src],
                                   sample.corpora[edge.dst],
                                   candidate_->detector.bleu)
                           .score;
      ++surviving;
      if (f < edge.train_bleu - candidate_->detector.tolerance) ++broken;
    } catch (const std::exception& e) {
      any_failed = true;
      obs::metrics().counter("serve.shadow.edge_failures").inc();
      DESMINE_LOG_WARN("shadow candidate edge failed",
                       {obs::kv("edge", edge_name(edge.src, edge.dst)),
                        obs::kv("error", e.what())});
    }
  }
  const double candidate_score =
      surviving == 0
          ? 0.0
          : static_cast<double>(broken) / static_cast<double>(surviving);

  ++sampled_;
  if (any_failed) ++failures_;
  candidate_sum_ += candidate_score;
  active_sum_ += sample.active_score;
  const bool cand_alert = candidate_score >= config_.alert_threshold;
  const bool active_alert = sample.active_score >= config_.alert_threshold;
  if (cand_alert) ++candidate_alerts_;
  if (active_alert) ++active_alerts_;
  if (cand_alert == active_alert) ++agreements_;

  obs::metrics().counter("serve.shadow.windows").inc();
  if (cand_alert) obs::metrics().counter("serve.shadow.alerts").inc();
  if (any_failed) obs::metrics().counter("serve.shadow.failures").inc();
  if (cand_alert == active_alert) {
    obs::metrics().counter("serve.shadow.agreements").inc();
  } else {
    obs::metrics().counter("serve.shadow.disagreements").inc();
  }
  obs::metrics().gauge("serve.shadow.agreement")
      .set(sampled_ == 0 ? 0.0
                         : static_cast<double>(agreements_) /
                               static_cast<double>(sampled_));
}

void ShadowScorer::seal() {
  std::lock_guard lock(mu_);
  sealed_ = true;
}

ShadowScorer::Status ShadowScorer::status() const {
  std::lock_guard lock(mu_);
  Status s;
  s.path = path_;
  s.candidate_id = candidate_->id;
  s.observed = observed_;
  s.sampled = sampled_;
  s.candidate_alerts = candidate_alerts_;
  s.active_alerts = active_alerts_;
  s.agreements = agreements_;
  s.failures = failures_;
  s.candidate_mean =
      sampled_ == 0 ? 0.0 : candidate_sum_ / static_cast<double>(sampled_);
  s.active_mean =
      sampled_ == 0 ? 0.0 : active_sum_ / static_cast<double>(sampled_);
  return s;
}

bool ShadowScorer::gate_passed() const {
  std::lock_guard lock(mu_);
  return gate_passed_locked();
}

std::string ShadowScorer::gate_reason() const {
  std::lock_guard lock(mu_);
  return gate_reason_locked();
}

bool ShadowScorer::gate_passed_locked() const {
  if (sampled_ < config_.min_windows) return false;
  if (failures_ > config_.max_failures) return false;
  const double alert_rate = static_cast<double>(candidate_alerts_) /
                            static_cast<double>(sampled_);
  if (alert_rate > config_.max_alert_rate) return false;
  if (config_.min_agreement > 0.0) {
    const double agreement = static_cast<double>(agreements_) /
                             static_cast<double>(sampled_);
    if (agreement < config_.min_agreement) return false;
  }
  return true;
}

std::string ShadowScorer::gate_reason_locked() const {
  if (sampled_ < config_.min_windows) {
    return "insufficient shadow volume (" + std::to_string(sampled_) + "/" +
           std::to_string(config_.min_windows) + " windows)";
  }
  if (failures_ > config_.max_failures) {
    return "candidate decode failures (" + std::to_string(failures_) + " > " +
           std::to_string(config_.max_failures) + ")";
  }
  const double alert_rate = static_cast<double>(candidate_alerts_) /
                            static_cast<double>(sampled_);
  if (alert_rate > config_.max_alert_rate) {
    return "candidate alert rate " + std::to_string(alert_rate) +
           " exceeds max_alert_rate " + std::to_string(config_.max_alert_rate);
  }
  if (config_.min_agreement > 0.0) {
    const double agreement = static_cast<double>(agreements_) /
                             static_cast<double>(sampled_);
    if (agreement < config_.min_agreement) {
      return "agreement " + std::to_string(agreement) +
             " below min_agreement " + std::to_string(config_.min_agreement);
    }
  }
  return "gate passed";
}

}  // namespace desmine::serve
