// Shadow scoring of a candidate model generation (DESIGN.md §14).
//
// Before a retrained candidate graph is promoted into serving, it must
// prove itself on live traffic without any client-visible effect. The
// ShadowScorer holds the candidate ModelGeneration and mirrors a sampled
// slice of delivered live windows: for each sampled window it re-scores the
// window's corpora against the candidate's edge models (same health-mask
// exclusions, same broken rule f < s - tolerance) and accumulates a
// promotion gate:
//  * quietness — the fraction of sampled windows where the candidate's
//    anomaly score reaches `alert_threshold` must stay at or below
//    `max_alert_rate`. This is the core precision gate: a good candidate is
//    quiet on drifted-but-normal traffic, while during a true fault it
//    alerts heavily and the gate blocks promotion — the loop can never
//    promote a graph into masking a live anomaly.
//  * agreement — the fraction of sampled windows where candidate and active
//    alert verdicts match must reach `min_agreement` (0 disables; under
//    drift the active generation false-alarms, so demanding agreement with
//    it would block exactly the promotion the lifecycle exists for).
//  * volume & health — at least `min_windows` sampled windows, at most
//    `max_failures` windows with candidate decode failures.
//
// Client-visible output is untouched: sampling and candidate decoding run
// after the window's result was finalized and delivered, on the scoring
// worker that delivered it, serialized by the scorer's mutex (the candidate
// models are not thread-safe). `sample_rate` bounds the added decode load.
//
// Fault injection: point "serve.shadow" keyed by edge name "src->dst"
// (throw = candidate decode failure, drop = edge silently excluded,
// delay = stalled decode) — used by chaos tests to prove a poisoned
// candidate fails the gate instead of reaching the active generation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/batch_scheduler.h"
#include "serve/model_registry.h"

namespace desmine::serve {

struct ShadowConfig {
  /// Fraction of delivered windows mirrored to the candidate (deterministic
  /// 1-in-round(1/rate) stride; >= 1 mirrors every window).
  double sample_rate = 0.25;
  /// Sampled windows required before the gate can pass.
  std::size_t min_windows = 64;
  /// Anomaly score at or above this counts as an alert (both generations).
  double alert_threshold = 0.5;
  /// Max fraction of sampled windows where the candidate alerts.
  double max_alert_rate = 0.05;
  /// Min fraction of sampled windows where candidate and active verdicts
  /// agree (0 disables the agreement criterion).
  double min_agreement = 0.0;
  /// Max sampled windows with candidate decode failures.
  std::size_t max_failures = 0;
  /// Numeric mode of candidate decodes. Not a config-file knob: the
  /// SessionManager copies ServeConfig::precision in so the candidate is
  /// gated under exactly the precision it would serve with if promoted.
  tensor::Precision precision = tensor::Precision::kF32;
};

/// What capture() lifts out of a PendingWindow before finalize() consumes
/// it: the corpora, the health mask, and the ACTIVE generation's anomaly
/// score computed with Session::finalize's exact math.
struct ShadowSample {
  std::vector<text::Corpus> corpora;    ///< per sensor node
  std::vector<std::size_t> unhealthy;   ///< node indices excluded
  bool masked = false;                  ///< degraded-mode semantics
  double active_score = 0.0;
};

class ShadowScorer {
 public:
  /// `candidate` is the generation under evaluation (its id must be the
  /// active generation's id + 1 at promote time); `source_path` names the
  /// artifact it was loaded from, for status reporting.
  ShadowScorer(std::shared_ptr<const ModelGeneration> candidate,
               ShadowConfig config, std::string source_path);

  /// Sampling decision for one delivered window. Returns true when the
  /// window should be mirrored (capture + observe); shed windows and
  /// windows arriving after seal() never sample. Thread-safe.
  bool admit(const PendingWindow& window);

  /// Replicate Session::finalize's scoring math on a resolved window and
  /// copy out what candidate scoring needs. Call before finalize() (which
  /// consumes the window). Returns nullopt for shed windows.
  static std::optional<ShadowSample> capture(const PendingWindow& window);

  /// Score one admitted sample against the candidate generation and fold it
  /// into the gate. Never throws (a failing candidate edge is recorded, not
  /// propagated); serialized internally. No-op after seal().
  void observe(ShadowSample sample);

  /// Block until any in-flight observe() finishes, then refuse further
  /// samples. Called before the candidate's models are promoted into the
  /// scheduler (they are single-threaded; promotion must not race a decode).
  void seal();

  struct Status {
    std::string path;            ///< artifact the candidate came from
    std::uint64_t candidate_id = 0;
    std::size_t observed = 0;    ///< scoreable windows seen while armed
    std::size_t sampled = 0;     ///< windows mirrored to the candidate
    std::size_t candidate_alerts = 0;
    std::size_t active_alerts = 0;
    std::size_t agreements = 0;  ///< sampled windows with matching verdicts
    std::size_t failures = 0;    ///< sampled windows with failed cand edges
    double candidate_mean = 0.0; ///< mean candidate score over samples
    double active_mean = 0.0;    ///< mean active score over samples
    double alert_rate() const {
      return sampled == 0 ? 0.0
                          : static_cast<double>(candidate_alerts) /
                                static_cast<double>(sampled);
    }
    double agreement() const {
      return sampled == 0 ? 0.0
                          : static_cast<double>(agreements) /
                                static_cast<double>(sampled);
    }
  };
  Status status() const;

  /// True when every gate criterion currently holds.
  bool gate_passed() const;
  /// Human-readable reason the gate is (not) passing, for statusz/ops.
  std::string gate_reason() const;

  const std::shared_ptr<const ModelGeneration>& candidate() const {
    return candidate_;
  }
  const ShadowConfig& config() const { return config_; }

 private:
  bool gate_passed_locked() const;
  std::string gate_reason_locked() const;

  const std::shared_ptr<const ModelGeneration> candidate_;
  const ShadowConfig config_;
  const std::string path_;
  const std::size_t stride_;

  mutable std::mutex mu_;
  bool sealed_ = false;
  std::size_t observed_ = 0;
  std::size_t sampled_ = 0;
  std::size_t candidate_alerts_ = 0;
  std::size_t active_alerts_ = 0;
  std::size_t agreements_ = 0;
  std::size_t failures_ = 0;
  double candidate_sum_ = 0.0;
  double active_sum_ = 0.0;
};

}  // namespace desmine::serve
