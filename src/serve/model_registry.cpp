#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace desmine::serve {

std::shared_ptr<const ModelGeneration> make_generation(
    const core::MvrGraph& graph, const core::DetectorConfig& detector,
    std::uint64_t id) {
  DESMINE_EXPECTS(detector.valid_lo <= detector.valid_hi, "valid band order");
  auto gen = std::make_shared<ModelGeneration>();
  gen->id = id;
  gen->detector = detector;
  for (const core::MvrEdge& e : graph.edges()) {
    if (e.bleu >= detector.valid_lo && e.bleu < detector.valid_hi) {
      DESMINE_EXPECTS(e.model != nullptr, "valid edge lacks a trained model");
      EdgeModel edge;
      edge.src = e.src;
      edge.dst = e.dst;
      edge.train_bleu = e.bleu;
      edge.model = e.model;
      gen->edges.push_back(std::move(edge));
    }
  }
  return gen;
}

std::shared_ptr<const ModelGeneration> make_generation(
    std::shared_ptr<io::ArtifactMap> map, const core::DetectorConfig& detector,
    std::uint64_t id, const ResidencyConfig& residency) {
  DESMINE_EXPECTS(detector.valid_lo <= detector.valid_hi, "valid band order");
  auto gen = std::make_shared<ModelGeneration>();
  gen->id = id;
  gen->detector = detector;
  gen->residency =
      std::make_shared<ResidencyManager>(std::move(map), residency);
  const auto& entries = gen->residency->map()->edges();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const io::EdgeEntry& e = entries[i];
    if (e.bleu >= detector.valid_lo && e.bleu < detector.valid_hi) {
      DESMINE_EXPECTS(e.has_model, "valid edge lacks a trained model");
      EdgeModel edge;
      edge.src = e.src;
      edge.dst = e.dst;
      edge.train_bleu = e.bleu;
      edge.residency = gen->residency;
      edge.map_index = i;
      gen->edges.push_back(std::move(edge));
    }
  }
  return gen;
}

ModelRegistry::ModelRegistry(std::shared_ptr<const ModelGeneration> initial)
    : current_(std::move(initial)) {
  DESMINE_EXPECTS(current_ != nullptr, "registry needs an initial generation");
}

std::shared_ptr<const ModelGeneration> ModelRegistry::current() const {
  std::lock_guard lock(mu_);
  return current_;
}

std::shared_ptr<const ModelGeneration> ModelRegistry::publish(
    std::shared_ptr<const ModelGeneration> next) {
  DESMINE_EXPECTS(next != nullptr, "cannot publish a null generation");
  std::lock_guard lock(mu_);
  DESMINE_EXPECTS(next->id > current_->id,
                  "generation ids must increase across publishes");
  std::shared_ptr<const ModelGeneration> retired = std::move(current_);
  retired_.push_back(retired);
  current_ = std::move(next);
  return retired;
}

std::uint64_t ModelRegistry::generation() const {
  std::lock_guard lock(mu_);
  return current_->id;
}

std::size_t ModelRegistry::retired_live() const {
  std::lock_guard lock(mu_);
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const std::weak_ptr<const ModelGeneration>&
                                       w) { return w.expired(); }),
                 retired_.end());
  return retired_.size();
}

}  // namespace desmine::serve
