// One detection session of the serving layer.
//
// A Session wraps a core::WindowAssembler (per-sensor buffering, health
// tracking, strict/degraded ingestion — the exact machinery OnlineDetector
// uses) and the bookkeeping that deferred, out-of-order batched scoring
// needs: a bounded pending-window budget with block-or-reject backpressure,
// a reorder buffer so results are delivered in window order regardless of
// which edge batch finishes last, and a completed queue the client polls.
// Finalization replicates AnomalyDetector::detect()'s per-window math
// exactly (same order of operations), so a served stream's scores are
// bit-identical to replaying it through an OnlineDetector.
//
// Fault tolerance (DESIGN.md §13): every window snapshots the current
// ModelGeneration at ingest and scores against exactly that state, so hot
// reloads never mix models within a window. Slots a worker could not score
// (decode failure or open circuit breaker) surface as the result's `failed`
// edge list — the score renormalizes over the surviving edges like PR 3's
// degraded mode, and the min_coverage quorum gates the verdict. Windows the
// scheduler shed (deadline exceeded) deliver a counted no-verdict result
// with the `shed` flag instead of a late score; the consecutive-shed guard
// marks follow-up windows unsheddable so overload never starves a session
// entirely.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/anomaly.h"
#include "core/online.h"
#include "core/window_assembler.h"
#include "serve/batch_scheduler.h"
#include "serve/model_registry.h"

namespace desmine::serve {

/// Served results reuse the online detector's result shape — the serving
/// layer is a multi-session, batched OnlineDetector by contract.
using WindowResult = core::OnlineDetector::WindowResult;

/// Outcome of one ingest() call.
enum class IngestStatus {
  kAccepted,  ///< tick consumed (a window may have been queued for scoring)
  kRejected,  ///< backpressure, tick NOT consumed — retry the same tick
  kClosed,    ///< session closed, tick NOT consumed
};

/// Per-session flow-control limits.
struct SessionLimits {
  /// Upper bound on windows in flight for one session: queued for scoring,
  /// being scored, or scored but not yet polled. Bounds per-session memory
  /// and isolates a flooding session from the rest of the fleet.
  std::size_t max_pending_windows = 64;
  /// Full-budget policy: false blocks ingest() until the client polls (or
  /// the session closes); true returns kRejected immediately.
  bool reject_when_full = false;
  /// After this many consecutive shed windows the next window is marked
  /// unsheddable, guaranteeing forward progress under sustained overload.
  std::size_t max_consecutive_shed = 8;
};

/// Per-session telemetry knobs (SessionManager copies them out of
/// ServeConfig).
struct TelemetryPolicy {
  /// Windows whose end-to-end latency exceeds this emit their span tree as
  /// a warn-level JSON log record (0 disables the slow-window log).
  double slow_window_ms = 0.0;
};

class Session {
 public:
  /// `registry` outlives the session (SessionManager owns both); each
  /// window snapshots registry.current() at ingest.
  Session(std::uint64_t id, const ModelRegistry& registry,
          core::SensorEncrypter encrypter, core::WindowConfig window,
          core::DegradedConfig degraded, SessionLimits limits,
          TelemetryPolicy telemetry = {});

  /// Consume one tick. When the tick completes a window, `*to_schedule`
  /// receives the pending window to hand to the BatchScheduler (null
  /// otherwise — including when the window had nothing to score and was
  /// finalized inline). Applies backpressure per SessionLimits. Strict-mode
  /// sessions throw robust::MissingSensor on a missing kept sensor.
  IngestStatus ingest(const std::map<std::string, std::string>& states,
                      std::unique_ptr<PendingWindow>* to_schedule);

  /// Deliver a fully resolved window (BatchScheduler::on_scored). Computes
  /// the WindowResult, reorders, and wakes pollers/blocked ingests.
  void finalize(std::unique_ptr<PendingWindow> window);

  /// Pop the next completed window result, in window order.
  std::optional<WindowResult> poll();

  /// Refuse further ticks; in-flight windows still get scored and polled.
  void close();
  bool closed() const;

  /// Block until no submitted window awaits scoring (completed results may
  /// still be queued for poll()).
  void drain();

  std::uint64_t id() const { return id_; }
  bool degraded_enabled() const { return degraded_enabled_; }

  struct Stats {
    std::size_t ticks = 0;
    std::size_t windows_assembled = 0;
    std::size_t windows_delivered = 0;
    std::size_t pending = 0;  ///< in flight + awaiting poll
    std::size_t shed = 0;     ///< windows dropped by deadline shedding
  };
  Stats stats() const;

 private:
  /// A scored window parked in the reorder buffer: the result plus the
  /// trace handle and stage timeline it must keep until actual delivery —
  /// the reorder stage only ends when the window leaves in order.
  struct Delivery {
    WindowResult result;
    obs::SpanContext span;
    std::chrono::steady_clock::time_point enqueued{};
    std::chrono::steady_clock::time_point first_dequeue{};
    std::chrono::steady_clock::time_point last_dequeue{};
    std::chrono::steady_clock::time_point scored_done{};
    bool scheduled = false;  ///< went through the BatchScheduler
  };

  /// pending budget used: windows being scored + results not yet polled.
  std::size_t pending_locked() const {
    return inflight_ + reorder_.size() + completed_.size();
  }
  void enqueue_result_locked(std::size_t window_index, Delivery delivery);
  /// Record latency + stage histograms, close the window's span tree, and
  /// emit the slow-window log. Called at delivery time (in window order).
  void deliver_telemetry(const Delivery& d,
                         std::chrono::steady_clock::time_point delivered);

  const std::uint64_t id_;
  const ModelRegistry& registry_;
  const SessionLimits limits_;
  const TelemetryPolicy telemetry_;
  const bool degraded_enabled_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  core::WindowAssembler assembler_;
  bool closed_ = false;
  std::size_t inflight_ = 0;   ///< submitted to the scheduler, not finalized
  std::size_t next_emit_ = 0;  ///< next window index to deliver in order
  std::map<std::size_t, Delivery> reorder_;
  std::deque<WindowResult> completed_;
  std::size_t delivered_ = 0;
  std::size_t shed_total_ = 0;
  /// Consecutive shed windows at finalize time (finalize order approximates
  /// window order closely enough for the starvation guard).
  std::size_t sheds_in_row_ = 0;
};

}  // namespace desmine::serve
