#include "serve/batch_scheduler.h"

#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::serve {

namespace {

double age_ms(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string edge_name(const EdgeModel& edge) {
  return std::to_string(edge.src) + "->" + std::to_string(edge.dst);
}

}  // namespace

BatchScheduler::BatchScheduler(
    const std::shared_ptr<const ModelGeneration>& initial,
    SchedulerConfig config,
    std::function<void(std::unique_ptr<PendingWindow>)> on_scored)
    : config_(config), on_scored_(std::move(on_scored)) {
  DESMINE_EXPECTS(config_.max_batch > 0, "max_batch must be > 0");
  DESMINE_EXPECTS(config_.circuit_open_after == 0 ||
                      config_.circuit_probe_after > 0,
                  "circuit_probe_after must be > 0 when the breaker is on");
  DESMINE_EXPECTS(on_scored_ != nullptr, "scheduler needs an on_scored sink");
  DESMINE_EXPECTS(initial != nullptr, "scheduler needs an initial generation");
  current_generation_ = initial->id;
}

void BatchScheduler::submit(std::unique_ptr<PendingWindow> window) {
  DESMINE_EXPECTS(window != nullptr && !window->edges.empty(),
                  "submit needs at least one edge to score");
  DESMINE_EXPECTS(window->generation != nullptr,
                  "window lacks a model generation");
  DESMINE_EXPECTS(window->remaining == window->edges.size() &&
                      window->edge_bleu.size() == window->edges.size() &&
                      window->edge_status.size() == window->edges.size(),
                  "window score bookkeeping not initialized");
  PendingWindow* raw = window.get();
  {
    std::lock_guard lock(mu_);
    DESMINE_EXPECTS(!stopping_, "submit after stop()");
    owned_.emplace(raw, std::move(window));
    const std::uint64_t gen_id = raw->generation->id;
    for (std::size_t slot = 0; slot < raw->edges.size(); ++slot) {
      const std::size_t edge_id = raw->edges[slot];
      DESMINE_EXPECTS(edge_id < raw->generation->edges.size(),
                      "edge id out of range");
      const Key key{gen_id, edge_id};
      auto [it, inserted] = states_.try_emplace(key);
      EdgeState& state = it->second;
      if (inserted) {
        state.generation = raw->generation;
        state.edge_id = edge_id;
        state.retired = gen_id != current_generation_;
      }
      state.queue.push_back({raw, slot});
      ++queued_items_;
      if (!state.busy && !state.in_ready) {
        ready_.push_back(key);
        state.in_ready = true;
      }
    }
  }
  cv_.notify_all();
}

void BatchScheduler::resolve_locked(
    const Item& item, SlotStatus status,
    std::vector<std::unique_ptr<PendingWindow>>* completed) {
  item.window->edge_status[item.slot] = static_cast<std::uint8_t>(status);
  if (--item.window->remaining == 0) {
    item.window->scored_done = std::chrono::steady_clock::now();
    const auto it = owned_.find(item.window);
    completed->push_back(std::move(it->second));
    owned_.erase(it);
  }
}

bool BatchScheduler::run_one() {
  std::vector<Item> batch;
  Key key{};
  EdgeState* state = nullptr;
  bool probing = false;
  std::vector<std::unique_ptr<PendingWindow>> completed;
  {
    std::unique_lock lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] {
        return !ready_.empty() || (stopping_ && queued_items_ == 0);
      });
      if (ready_.empty()) return false;  // stopping and fully drained
      key = ready_.front();
      ready_.pop_front();
      const auto it = states_.find(key);
      if (it == states_.end()) continue;  // state erased while enqueued
      state = &it->second;
      state->in_ready = false;
      break;
    }
    state->busy = true;

    // Form the batch, dispositioning each popped item: already-shed or
    // stale windows resolve as kShed, an open breaker quarantines, and the
    // rest join the decode batch (a single item when half-open probing).
    const auto now = std::chrono::steady_clock::now();
    std::size_t limit = config_.max_batch;
    if (state->breaker == Breaker::kHalfOpen) {
      limit = 1;
      probing = true;
    }
    std::deque<Item>& queue = state->queue;
    while (batch.size() < limit && !queue.empty()) {
      const Item item = queue.front();
      queue.pop_front();
      --queued_items_;
      // Stage stamps: the first pop ends the queue wait, the last pop ends
      // batch formation (a window contributes one item per edge, so these
      // land across run_one() calls of different workers — all under mu_).
      PendingWindow* w = item.window;
      if (w->dequeued == 0) w->first_dequeue = now;
      if (++w->dequeued == w->edges.size()) w->last_dequeue = now;

      if (w->shed) {
        resolve_locked(item, SlotStatus::kShed, &completed);
        continue;
      }
      if (config_.max_queue_delay_ms > 0.0 && w->sheddable &&
          age_ms(w->enqueued, now) > config_.max_queue_delay_ms) {
        w->shed = true;
        obs::metrics().counter("serve.shed.windows").inc();
        resolve_locked(item, SlotStatus::kShed, &completed);
        continue;
      }
      if (state->breaker == Breaker::kOpen) {
        resolve_locked(item, SlotStatus::kQuarantined, &completed);
        obs::metrics().counter("serve.circuit.quarantined").inc();
        if (++state->skipped_since_open >= config_.circuit_probe_after) {
          state->breaker = Breaker::kHalfOpen;
          state->skipped_since_open = 0;
          break;  // the next visit probes with a single item
        }
        continue;
      }
      batch.push_back(item);
    }
  }
  if (!completed.empty()) cv_.notify_all();
  for (std::unique_ptr<PendingWindow>& window : completed) {
    on_scored_(std::move(window));
  }
  completed.clear();

  // Worker supervision: a throwing decode resolves the batch as error
  // results instead of killing the worker (the session delivers them as
  // typed failed-edge windows through its reorder buffer).
  bool scored_ok = true;
  if (!batch.empty()) {
    if (probing) obs::metrics().counter("serve.circuit.probes").inc();
    try {
      score_batch(*state, batch);
    } catch (const std::exception& e) {
      scored_ok = false;
      obs::metrics().counter("serve.batch.failures").inc();
      DESMINE_LOG_WARN(
          "batch scoring failed",
          {obs::kv("edge", edge_name(state->generation->edges[state->edge_id])),
           obs::kv("generation", state->generation->id),
           obs::kv("batch", batch.size()), obs::kv("error", e.what())});
    }
  }

  {
    std::lock_guard lock(mu_);
    state->busy = false;
    if (!batch.empty()) {
      if (scored_ok) {
        state->consecutive_failures = 0;
        if (state->breaker != Breaker::kClosed) {
          state->breaker = Breaker::kClosed;
          obs::metrics().counter("serve.circuit.closed").inc();
          DESMINE_LOG_INFO(
              "circuit closed",
              {obs::kv("edge",
                       edge_name(state->generation->edges[state->edge_id]))});
        }
      } else if (config_.circuit_open_after > 0) {
        state->skipped_since_open = 0;
        if (probing || ++state->consecutive_failures >=
                           config_.circuit_open_after) {
          if (state->breaker != Breaker::kOpen) {
            obs::metrics().counter("serve.circuit.opened").inc();
            DESMINE_LOG_WARN(
                "circuit opened",
                {obs::kv("edge",
                         edge_name(state->generation->edges[state->edge_id])),
                 obs::kv("failures", state->consecutive_failures)});
          }
          state->breaker = Breaker::kOpen;
          state->consecutive_failures = 0;
        }
      }
      for (const Item& item : batch) {
        resolve_locked(item,
                       scored_ok ? SlotStatus::kScored : SlotStatus::kFailed,
                       &completed);
      }
    }
    if (!state->queue.empty()) {
      if (!state->in_ready) {
        // Re-queue at the tail: round-robin fairness across hot edges.
        ready_.push_back(key);
        state->in_ready = true;
      }
    } else if (state->retired) {
      // Last work of a superseded generation: drop the state (and with it
      // the generation reference) so the old models can free themselves.
      states_.erase(key);
      state = nullptr;
    }
  }
  cv_.notify_all();
  for (std::unique_ptr<PendingWindow>& window : completed) {
    on_scored_(std::move(window));
  }
  return true;
}

void BatchScheduler::score_batch(EdgeState& state,
                                 const std::vector<Item>& batch) {
  static obs::Histogram& batch_size =
      obs::metrics().histogram("serve.batch.size");
  static obs::Histogram& score_ms =
      obs::metrics().histogram("serve.batch.score_ms");
  static obs::Counter& cache_hits =
      obs::metrics().counter("serve.batch.cache_hits");
  static obs::Counter& decoded = obs::metrics().counter("serve.batch.decoded");

  const obs::ScopedTimer timer("serve.score-batch", score_ms);
  batch_size.record(static_cast<double>(batch.size()));

  const EdgeModel& edge = state.generation->edges[state.edge_id];
  switch (robust::fire_fault("serve.decode", edge_name(edge))) {
    case robust::FaultAction::kThrow:
      throw RuntimeError("injected serve.decode fault on edge " +
                         edge_name(edge));
    case robust::FaultAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(robust::kDelayMillis));
      break;
    default:
      break;
  }

  std::map<text::Sentence, text::Sentence>& cache = state.cache;
  const std::size_t cache_capacity = config_.decode_cache;

  // Partition into cache hits and sources still to decode. The decode pass
  // itself dedups identical sources, so `misses` may hold repeats. One map
  // lookup per item: the hit's translation pointer is kept for the scoring
  // loop below (map references stay valid across the inserts at the end).
  std::vector<const text::Sentence*> sources(batch.size());
  std::vector<const text::Sentence*> candidates(batch.size(), nullptr);
  std::vector<const text::Sentence*> misses;
  std::vector<std::size_t> miss_index;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingWindow& w = *batch[i].window;
    sources[i] = &w.corpora[edge.src].front();
    const auto hit = cache_capacity > 0 ? cache.find(*sources[i])
                                        : cache.end();
    if (hit != cache.end()) {
      cache_hits.inc();
      candidates[i] = &hit->second;
    } else {
      misses.push_back(sources[i]);
      miss_index.push_back(i);
    }
  }
  std::vector<text::Sentence> fresh;
  if (!misses.empty()) {
    const std::shared_ptr<nmt::TranslationModel> model = edge.acquire();
    model->set_decode_precision(config_.precision);
    fresh = model->translate_batch(misses);
    decoded.inc(misses.size());
  }

  // Score every item. Hits and fresh decodes are interchangeable bit for
  // bit: greedy decoding is a pure function of the source tokens.
  for (std::size_t m = 0; m < miss_index.size(); ++m) {
    candidates[miss_index[m]] = &fresh[m];
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingWindow& w = *batch[i].window;
    const text::Sentence& candidate = *candidates[i];
    const text::Sentence& reference = w.corpora[edge.dst].front();
    batch[i].window->edge_bleu[batch[i].slot] =
        text::sentence_bleu(candidate, reference, config_.bleu).score;
  }

  if (cache_capacity > 0) {
    for (std::size_t m = 0; m < miss_index.size(); ++m) {
      if (cache.size() >= cache_capacity) {
        // Epoch eviction: periodic discrete streams repopulate the working
        // set within a few windows, and clearing keeps the bound simple.
        cache.clear();
        obs::metrics().counter("serve.batch.cache_evictions").inc();
      }
      cache.emplace(*misses[m], fresh[m]);
    }
  }
}

void BatchScheduler::set_current_generation(std::uint64_t id) {
  {
    std::lock_guard lock(mu_);
    current_generation_ = id;
    for (auto it = states_.begin(); it != states_.end();) {
      EdgeState& state = it->second;
      if (state.generation->id == id) {
        ++it;
        continue;
      }
      if (state.queue.empty() && !state.busy) {
        // Idle old-generation state: queue empty implies not in ready_, so
        // erasing here leaves no dangling key behind (run_one tolerates
        // stale keys regardless).
        it = states_.erase(it);
      } else {
        state.retired = true;
        ++it;
      }
    }
  }
  cv_.notify_all();
}

void BatchScheduler::stop() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
}

}  // namespace desmine::serve
