#include "serve/batch_scheduler.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace desmine::serve {

BatchScheduler::BatchScheduler(
    std::vector<Edge> edges, std::size_t max_batch, std::size_t decode_cache,
    text::BleuOptions bleu,
    std::function<void(std::unique_ptr<PendingWindow>)> on_scored)
    : edges_(std::move(edges)),
      max_batch_(max_batch),
      cache_capacity_(decode_cache),
      bleu_(bleu),
      on_scored_(std::move(on_scored)) {
  DESMINE_EXPECTS(max_batch_ > 0, "max_batch must be > 0");
  DESMINE_EXPECTS(on_scored_ != nullptr, "scheduler needs an on_scored sink");
  for (const Edge& e : edges_) {
    DESMINE_EXPECTS(e.model != nullptr, "scheduler edge lacks a model");
  }
  caches_.resize(edges_.size());
  queues_.resize(edges_.size());
  in_ready_.assign(edges_.size(), 0);
  busy_.assign(edges_.size(), 0);
}

void BatchScheduler::submit(std::unique_ptr<PendingWindow> window) {
  DESMINE_EXPECTS(window != nullptr && !window->edges.empty(),
                  "submit needs at least one edge to score");
  DESMINE_EXPECTS(window->remaining == window->edges.size() &&
                      window->edge_bleu.size() == window->edges.size(),
                  "window score bookkeeping not initialized");
  PendingWindow* raw = window.get();
  {
    std::lock_guard lock(mu_);
    DESMINE_EXPECTS(!stopping_, "submit after stop()");
    owned_.emplace(raw, std::move(window));
    for (std::size_t slot = 0; slot < raw->edges.size(); ++slot) {
      const std::size_t edge_id = raw->edges[slot];
      DESMINE_EXPECTS(edge_id < edges_.size(), "edge id out of range");
      queues_[edge_id].push_back({raw, slot});
      ++queued_items_;
      if (!busy_[edge_id] && !in_ready_[edge_id]) {
        ready_.push_back(edge_id);
        in_ready_[edge_id] = 1;
      }
    }
  }
  cv_.notify_all();
}

bool BatchScheduler::run_one() {
  std::vector<Item> batch;
  std::size_t edge_id = 0;
  {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      return !ready_.empty() || (stopping_ && queued_items_ == 0);
    });
    if (ready_.empty()) return false;  // stopping and fully drained
    edge_id = ready_.front();
    ready_.pop_front();
    in_ready_[edge_id] = 0;
    busy_[edge_id] = 1;
    std::deque<Item>& queue = queues_[edge_id];
    const auto now = std::chrono::steady_clock::now();
    while (batch.size() < max_batch_ && !queue.empty()) {
      batch.push_back(queue.front());
      queue.pop_front();
      // Stage stamps: the first pop ends the queue wait, the last pop ends
      // batch formation (a window contributes one item per edge, so these
      // land across run_one() calls of different workers — all under mu_).
      PendingWindow* w = batch.back().window;
      if (w->dequeued == 0) w->first_dequeue = now;
      if (++w->dequeued == w->edges.size()) w->last_dequeue = now;
    }
    queued_items_ -= batch.size();
  }

  score_batch(edge_id, batch);

  std::vector<std::unique_ptr<PendingWindow>> completed;
  {
    std::lock_guard lock(mu_);
    busy_[edge_id] = 0;
    if (!queues_[edge_id].empty() && !in_ready_[edge_id]) {
      // Re-queue at the tail: round-robin fairness across hot edges.
      ready_.push_back(edge_id);
      in_ready_[edge_id] = 1;
    }
    for (const Item& item : batch) {
      if (--item.window->remaining == 0) {
        item.window->scored_done = std::chrono::steady_clock::now();
        const auto it = owned_.find(item.window);
        completed.push_back(std::move(it->second));
        owned_.erase(it);
      }
    }
  }
  cv_.notify_all();
  for (std::unique_ptr<PendingWindow>& window : completed) {
    on_scored_(std::move(window));
  }
  return true;
}

void BatchScheduler::score_batch(std::size_t edge_id,
                                 const std::vector<Item>& batch) {
  static obs::Histogram& batch_size =
      obs::metrics().histogram("serve.batch.size");
  static obs::Histogram& score_ms =
      obs::metrics().histogram("serve.batch.score_ms");
  static obs::Counter& cache_hits =
      obs::metrics().counter("serve.batch.cache_hits");
  static obs::Counter& decoded = obs::metrics().counter("serve.batch.decoded");

  const obs::ScopedTimer timer("serve.score-batch", score_ms);
  batch_size.record(static_cast<double>(batch.size()));

  const Edge& edge = edges_[edge_id];
  std::map<text::Sentence, text::Sentence>& cache = caches_[edge_id];

  // Partition into cache hits and sources still to decode. The decode pass
  // itself dedups identical sources, so `misses` may hold repeats.
  std::vector<const text::Sentence*> sources(batch.size());
  std::vector<const text::Sentence*> misses;
  std::vector<std::size_t> miss_index;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingWindow& w = *batch[i].window;
    sources[i] = &w.corpora[edge.src].front();
    if (cache_capacity_ > 0 && cache.count(*sources[i]) != 0) {
      cache_hits.inc();
    } else {
      misses.push_back(sources[i]);
      miss_index.push_back(i);
    }
  }
  std::vector<text::Sentence> fresh;
  if (!misses.empty()) {
    fresh = edge.model->translate_batch(misses);
    decoded.inc(misses.size());
  }

  // Score every item. Hits and fresh decodes are interchangeable bit for
  // bit: greedy decoding is a pure function of the source tokens.
  std::vector<const text::Sentence*> candidates(batch.size(), nullptr);
  for (std::size_t m = 0; m < miss_index.size(); ++m) {
    candidates[miss_index[m]] = &fresh[m];
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingWindow& w = *batch[i].window;
    const text::Sentence& candidate =
        candidates[i] != nullptr ? *candidates[i] : cache.at(*sources[i]);
    const text::Sentence& reference = w.corpora[edge.dst].front();
    batch[i].window->edge_bleu[batch[i].slot] =
        text::corpus_bleu({candidate}, {reference}, bleu_).score;
  }

  if (cache_capacity_ > 0) {
    for (std::size_t m = 0; m < miss_index.size(); ++m) {
      if (cache.size() >= cache_capacity_) {
        // Epoch eviction: periodic discrete streams repopulate the working
        // set within a few windows, and clearing keeps the bound simple.
        cache.clear();
        obs::metrics().counter("serve.batch.cache_evictions").inc();
      }
      cache.emplace(*misses[m], fresh[m]);
    }
  }
}

void BatchScheduler::stop() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
}

}  // namespace desmine::serve
