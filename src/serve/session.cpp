#include "serve/session.h"

#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::serve {

Session::Session(std::uint64_t id, const SharedModel& shared,
                 core::SensorEncrypter encrypter, core::WindowConfig window,
                 core::DegradedConfig degraded, SessionLimits limits)
    : id_(id),
      shared_(shared),
      limits_(limits),
      degraded_enabled_(degraded.enabled),
      assembler_(std::move(encrypter), window, degraded) {
  DESMINE_EXPECTS(limits_.max_pending_windows > 0,
                  "max_pending_windows must be > 0");
}

IngestStatus Session::ingest(const std::map<std::string, std::string>& states,
                             std::unique_ptr<PendingWindow>* to_schedule) {
  DESMINE_EXPECTS(to_schedule != nullptr, "ingest needs an output slot");
  to_schedule->reset();
  std::unique_lock lock(mu_);
  if (closed_) return IngestStatus::kClosed;
  // Backpressure gates every tick once the budget is full — not only the
  // window-completing ones — so a blocked or rejected tick is never
  // half-consumed and the caller can always retry the same sample.
  while (pending_locked() >= limits_.max_pending_windows) {
    if (limits_.reject_when_full) {
      obs::metrics().counter("serve.ingest.rejected").inc();
      return IngestStatus::kRejected;
    }
    cv_.wait(lock);
    if (closed_) return IngestStatus::kClosed;
  }

  std::optional<core::WindowAssembler::Window> window =
      assembler_.push(states);
  obs::metrics().counter("serve.ticks").inc();
  if (!window) return IngestStatus::kAccepted;

  auto pending = std::make_unique<PendingWindow>();
  pending->session_id = id_;
  pending->window_index = window->window_index;
  pending->end_tick = window->end_tick;
  pending->corpora = std::move(window->corpora);
  pending->unhealthy = std::move(window->unhealthy);
  pending->masked = degraded_enabled_;
  pending->enqueued = std::chrono::steady_clock::now();

  // The per-window valid set: every shared edge, minus edges incident to an
  // unhealthy sensor — the same exclusion rule AnomalyDetector applies.
  std::vector<std::uint8_t> bad;
  if (!pending->unhealthy.empty()) {
    bad.assign(pending->corpora.size(), 0);
    for (const std::size_t n : pending->unhealthy) {
      DESMINE_EXPECTS(n < bad.size(),
                      "health mask names a sensor outside the graph");
      bad[n] = 1;
    }
  }
  for (std::size_t e = 0; e < shared_.edges.size(); ++e) {
    const BatchScheduler::Edge& edge = shared_.edges[e];
    if (!bad.empty() && (bad[edge.src] || bad[edge.dst])) continue;
    pending->edges.push_back(e);
  }
  pending->edge_bleu.assign(pending->edges.size(), 0.0);
  pending->remaining = pending->edges.size();

  ++inflight_;
  if (pending->edges.empty()) {
    // Nothing to score (no valid edges, or every edge excluded): finalize
    // inline so the window still emits its no-verdict result in order.
    lock.unlock();
    finalize(std::move(pending));
    return IngestStatus::kAccepted;
  }
  *to_schedule = std::move(pending);
  return IngestStatus::kAccepted;
}

void Session::finalize(std::unique_ptr<PendingWindow> window) {
  // The scored window is exclusively ours here; compute the result before
  // taking the session lock. The math mirrors AnomalyDetector::detect()
  // operation for operation so served scores are bit-identical to replay.
  WindowResult out;
  out.window_index = window->window_index;
  out.end_tick = window->end_tick;
  out.unhealthy = std::move(window->unhealthy);
  const double total = static_cast<double>(shared_.edges.size());
  const std::size_t surviving = window->edges.size();
  std::size_t broken = 0;
  for (std::size_t i = 0; i < window->edges.size(); ++i) {
    const BatchScheduler::Edge& edge = shared_.edges[window->edges[i]];
    if (window->edge_bleu[i] < edge.train_bleu - shared_.detector.tolerance) {
      ++broken;
      out.broken.emplace_back(edge.src, edge.dst);
    }
  }
  out.coverage =
      total == 0.0 ? 0.0 : static_cast<double>(surviving) / total;
  if (window->masked && out.coverage < shared_.detector.min_coverage) {
    out.degraded = true;
    out.anomaly_score = 0.0;
    obs::metrics().counter("detect.window.degraded").inc();
  } else {
    out.anomaly_score = surviving == 0
                            ? 0.0
                            : static_cast<double>(broken) /
                                  static_cast<double>(surviving);
  }

  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - window->enqueued)
          .count();
  obs::metrics().histogram("serve.window.latency_ms").record(latency_ms);
  obs::metrics().counter("serve.windows_scored").inc();

  {
    std::lock_guard lock(mu_);
    --inflight_;
    enqueue_result_locked(out.window_index, std::move(out));
  }
  cv_.notify_all();
}

void Session::enqueue_result_locked(std::size_t window_index,
                                    WindowResult result) {
  reorder_.emplace(window_index, std::move(result));
  while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
    completed_.push_back(std::move(reorder_.begin()->second));
    reorder_.erase(reorder_.begin());
    ++next_emit_;
  }
}

std::optional<WindowResult> Session::poll() {
  std::optional<WindowResult> out;
  {
    std::lock_guard lock(mu_);
    if (completed_.empty()) return std::nullopt;
    out = std::move(completed_.front());
    completed_.pop_front();
    ++delivered_;
  }
  cv_.notify_all();  // budget freed: wake a blocked ingest
  return out;
}

void Session::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Session::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

void Session::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return inflight_ == 0 && reorder_.empty(); });
}

Session::Stats Session::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.ticks = assembler_.ticks();
  s.windows_assembled = assembler_.windows_emitted();
  s.windows_delivered = delivered_;
  s.pending = pending_locked();
  return s;
}

}  // namespace desmine::serve
