#include "serve/session.h"

#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Session::Session(std::uint64_t id, const ModelRegistry& registry,
                 core::SensorEncrypter encrypter, core::WindowConfig window,
                 core::DegradedConfig degraded, SessionLimits limits,
                 TelemetryPolicy telemetry)
    : id_(id),
      registry_(registry),
      limits_(limits),
      telemetry_(telemetry),
      degraded_enabled_(degraded.enabled),
      assembler_(std::move(encrypter), window, degraded) {
  DESMINE_EXPECTS(limits_.max_pending_windows > 0,
                  "max_pending_windows must be > 0");
  DESMINE_EXPECTS(limits_.max_consecutive_shed > 0,
                  "max_consecutive_shed must be > 0");
}

IngestStatus Session::ingest(const std::map<std::string, std::string>& states,
                             std::unique_ptr<PendingWindow>* to_schedule) {
  DESMINE_EXPECTS(to_schedule != nullptr, "ingest needs an output slot");
  to_schedule->reset();
  std::unique_lock lock(mu_);
  if (closed_) return IngestStatus::kClosed;
  // Backpressure gates every tick once the budget is full — not only the
  // window-completing ones — so a blocked or rejected tick is never
  // half-consumed and the caller can always retry the same sample.
  while (pending_locked() >= limits_.max_pending_windows) {
    if (limits_.reject_when_full) {
      obs::metrics().counter("serve.ingest.rejected").inc();
      return IngestStatus::kRejected;
    }
    cv_.wait(lock);
    if (closed_) return IngestStatus::kClosed;
  }

  // Chaos point: drop loses this tick like a gap in the feed, throw raises
  // to the caller with the tick unconsumed, delay stalls this session.
  switch (robust::fire_fault("serve.ingest",
                             static_cast<std::int64_t>(id_))) {
    case robust::FaultAction::kThrow:
      throw RuntimeError("injected serve.ingest fault on session " +
                         std::to_string(id_));
    case robust::FaultAction::kDrop:
      return IngestStatus::kAccepted;
    case robust::FaultAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(robust::kDelayMillis));
      break;
    default:
      break;
  }

  std::optional<core::WindowAssembler::Window> window =
      assembler_.push(states);
  obs::metrics().counter("serve.ticks").inc();
  if (!window) return IngestStatus::kAccepted;

  // Snapshot the generation this window will score against: a concurrent
  // hot reload affects the NEXT window, never a window already assembled.
  std::shared_ptr<const ModelGeneration> gen = registry_.current();

  auto pending = std::make_unique<PendingWindow>();
  pending->session_id = id_;
  pending->window_index = window->window_index;
  pending->end_tick = window->end_tick;
  pending->generation = gen;
  pending->corpora = std::move(window->corpora);
  pending->unhealthy = std::move(window->unhealthy);
  pending->masked = degraded_enabled_;
  pending->sheddable = sheds_in_row_ < limits_.max_consecutive_shed;
  pending->enqueued = std::chrono::steady_clock::now();
  // Root span of the window's end-to-end trace; carried by value through
  // the scheduler's thread handoffs, closed at delivery (invalid context —
  // hence free — while tracing is disabled).
  pending->span = obs::tracer().start_span(
      "serve.window", {},
      {obs::kv("session", id_), obs::kv("window", pending->window_index)});

  // The per-window valid set: every generation edge, minus edges incident
  // to an unhealthy sensor — the same exclusion rule AnomalyDetector
  // applies.
  std::vector<std::uint8_t> bad;
  if (!pending->unhealthy.empty()) {
    bad.assign(pending->corpora.size(), 0);
    for (const std::size_t n : pending->unhealthy) {
      DESMINE_EXPECTS(n < bad.size(),
                      "health mask names a sensor outside the graph");
      bad[n] = 1;
    }
  }
  for (std::size_t e = 0; e < gen->edges.size(); ++e) {
    const EdgeModel& edge = gen->edges[e];
    if (!bad.empty() && (bad[edge.src] || bad[edge.dst])) continue;
    pending->edges.push_back(e);
  }
  pending->edge_bleu.assign(pending->edges.size(), 0.0);
  pending->edge_status.assign(pending->edges.size(), 0);
  pending->remaining = pending->edges.size();

  ++inflight_;
  if (pending->edges.empty()) {
    // Nothing to score (no valid edges, or every edge excluded): finalize
    // inline so the window still emits its no-verdict result in order.
    lock.unlock();
    finalize(std::move(pending));
    return IngestStatus::kAccepted;
  }
  *to_schedule = std::move(pending);
  return IngestStatus::kAccepted;
}

void Session::finalize(std::unique_ptr<PendingWindow> window) {
  // The resolved window is exclusively ours here; compute the result before
  // taking the session lock. The math mirrors AnomalyDetector::detect()
  // operation for operation so served scores are bit-identical to replay.
  const ModelGeneration& gen = *window->generation;
  WindowResult out;
  out.window_index = window->window_index;
  out.end_tick = window->end_tick;
  out.unhealthy = std::move(window->unhealthy);
  if (window->shed) {
    // Dropped by deadline shedding: a counted no-verdict placeholder keeps
    // the stream's window indices contiguous.
    out.shed = true;
    out.anomaly_score = 0.0;
    out.coverage = 0.0;
  } else {
    const double total = static_cast<double>(gen.edges.size());
    std::size_t surviving = 0;
    std::size_t broken = 0;
    for (std::size_t i = 0; i < window->edges.size(); ++i) {
      const EdgeModel& edge = gen.edges[window->edges[i]];
      if (window->edge_status[i] !=
          static_cast<std::uint8_t>(SlotStatus::kScored)) {
        // Decode failure or open breaker: the edge drops out of this
        // window's score exactly like a health-masked edge would.
        out.failed.emplace_back(edge.src, edge.dst);
        continue;
      }
      ++surviving;
      if (window->edge_bleu[i] < edge.train_bleu - gen.detector.tolerance) {
        ++broken;
        out.broken.emplace_back(edge.src, edge.dst);
      }
    }
    out.coverage =
        total == 0.0 ? 0.0 : static_cast<double>(surviving) / total;
    if ((window->masked || !out.failed.empty()) &&
        out.coverage < gen.detector.min_coverage) {
      out.degraded = true;
      out.anomaly_score = 0.0;
      obs::metrics().counter("detect.window.degraded").inc();
    } else {
      out.anomaly_score = surviving == 0
                              ? 0.0
                              : static_cast<double>(broken) /
                                    static_cast<double>(surviving);
    }
    if (!out.failed.empty()) {
      obs::metrics().counter("serve.window.failed_edges")
          .inc(out.failed.size());
    }
  }

  obs::metrics().counter("serve.windows_scored").inc();

  Delivery delivery;
  delivery.result = std::move(out);
  delivery.span = window->span;
  delivery.enqueued = window->enqueued;
  delivery.first_dequeue = window->first_dequeue;
  delivery.last_dequeue = window->last_dequeue;
  delivery.scored_done = window->scored_done;
  delivery.scheduled = !window->edges.empty();
  const std::size_t index = delivery.result.window_index;
  const bool shed = delivery.result.shed;

  {
    std::lock_guard lock(mu_);
    --inflight_;
    sheds_in_row_ = shed ? sheds_in_row_ + 1 : 0;
    if (shed) ++shed_total_;
    enqueue_result_locked(index, std::move(delivery));
  }
  cv_.notify_all();
}

void Session::enqueue_result_locked(std::size_t window_index,
                                    Delivery delivery) {
  reorder_.emplace(window_index, std::move(delivery));
  while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
    Delivery& next = reorder_.begin()->second;
    // Delivery is the true end of the window's life cycle: latency and the
    // reorder stage both close here, not when the score landed.
    deliver_telemetry(next, std::chrono::steady_clock::now());
    completed_.push_back(std::move(next.result));
    reorder_.erase(reorder_.begin());
    ++next_emit_;
  }
}

void Session::deliver_telemetry(
    const Delivery& d, std::chrono::steady_clock::time_point delivered) {
  static obs::Histogram& latency =
      obs::metrics().histogram("serve.window.latency_ms");
  static obs::Histogram& queue_ms =
      obs::metrics().histogram("serve.stage.queue_ms");
  static obs::Histogram& batch_form_ms =
      obs::metrics().histogram("serve.stage.batch_form_ms");
  static obs::Histogram& decode_ms =
      obs::metrics().histogram("serve.stage.decode_ms");
  static obs::Histogram& reorder_ms =
      obs::metrics().histogram("serve.stage.reorder_ms");

  const double latency_ms = ms_between(d.enqueued, delivered);

  if (d.result.shed) {
    // A shed window was never scored; its age goes to the shedding
    // telemetry, NOT the serving latency distributions — p99 latency stays
    // the latency of accepted windows.
    obs::metrics().histogram("serve.shed.age_ms").record(latency_ms);
    if (d.span.valid()) {
      obs::tracer().finish_span(
          d.span, {obs::kv("shed", true), obs::kv("age_ms", latency_ms)});
    }
    return;
  }

  latency.record(latency_ms);
  obs::telemetry().sliding("serve.window.latency_ms").record(latency_ms);

  double stage_ms[4] = {0.0, 0.0, 0.0, 0.0};
  if (d.scheduled) {
    stage_ms[0] = ms_between(d.enqueued, d.first_dequeue);
    stage_ms[1] = ms_between(d.first_dequeue, d.last_dequeue);
    stage_ms[2] = ms_between(d.last_dequeue, d.scored_done);
    stage_ms[3] = ms_between(d.scored_done, delivered);
    queue_ms.record(stage_ms[0]);
    batch_form_ms.record(stage_ms[1]);
    decode_ms.record(stage_ms[2]);
    reorder_ms.record(stage_ms[3]);
  }

  if (d.span.valid()) {
    obs::Tracer& tr = obs::tracer();
    if (d.scheduled) {
      tr.record_complete("serve.stage.queue", d.span, d.enqueued,
                         d.first_dequeue);
      tr.record_complete("serve.stage.batch_form", d.span, d.first_dequeue,
                         d.last_dequeue);
      tr.record_complete("serve.stage.decode", d.span, d.last_dequeue,
                         d.scored_done);
      tr.record_complete("serve.stage.reorder", d.span, d.scored_done,
                         delivered);
    }
    tr.finish_span(d.span, {obs::kv("score", d.result.anomaly_score),
                            obs::kv("latency_ms", latency_ms)});
  }

  if (telemetry_.slow_window_ms > 0.0 &&
      latency_ms > telemetry_.slow_window_ms) {
    obs::metrics().counter("serve.window.slow").inc();
    // The window's span tree, inline, so a JSON-lines sink yields one
    // self-contained record per slow window (schema: DESIGN.md §12).
    obs::JsonWriter w;
    w.begin_object();
    w.key("name").value("serve.window");
    w.key("duration_ms").value(latency_ms);
    w.key("children").begin_array();
    static constexpr const char* kStageNames[4] = {
        "serve.stage.queue", "serve.stage.batch_form", "serve.stage.decode",
        "serve.stage.reorder"};
    for (std::size_t s = 0; s < 4; ++s) {
      w.begin_object();
      w.key("name").value(kStageNames[s]);
      w.key("duration_ms").value(d.scheduled ? stage_ms[s] : 0.0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    DESMINE_LOG_WARN("slow window",
                     {obs::kv("session", id_),
                      obs::kv("window", d.result.window_index),
                      obs::kv("latency_ms", latency_ms),
                      obs::kv("queue_ms", stage_ms[0]),
                      obs::kv("batch_form_ms", stage_ms[1]),
                      obs::kv("decode_ms", stage_ms[2]),
                      obs::kv("reorder_ms", stage_ms[3]),
                      obs::kv("trace", w.str())});
  }
}

std::optional<WindowResult> Session::poll() {
  std::optional<WindowResult> out;
  {
    std::lock_guard lock(mu_);
    if (completed_.empty()) return std::nullopt;
    out = std::move(completed_.front());
    completed_.pop_front();
    ++delivered_;
  }
  cv_.notify_all();  // budget freed: wake a blocked ingest
  return out;
}

void Session::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Session::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

void Session::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return inflight_ == 0 && reorder_.empty(); });
}

Session::Stats Session::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.ticks = assembler_.ticks();
  s.windows_assembled = assembler_.windows_emitted();
  s.windows_delivered = delivered_;
  s.pending = pending_locked();
  s.shed = shed_total_;
  return s;
}

}  // namespace desmine::serve
