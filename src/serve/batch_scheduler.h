// Cross-session batched scoring (the serving layer's hot path).
//
// Detection sessions emit sentence-windows; each window must be scored by
// every valid edge model f(i, j). Scoring one window at a time (what
// OnlineDetector does) decodes each source sentence alone. The scheduler
// instead keeps one FIFO of (window, edge) work items per edge model, and a
// worker drains up to ServeConfig::max_batch items of ONE edge in a single
// TranslationModel::score pass: duplicate sources decode once, the rest go
// through Seq2SeqModel::translate_batch's stacked GEMMs, and a per-edge
// decode cache carries results across batches. All three layers preserve
// IEEE-754 bit-identity with the sequential path because greedy decoding is
// deterministic and every kernel is row-independent (see seq2seq.h).
//
// Concurrency contract (TSan-clean by construction):
//  * All queue/ownership bookkeeping happens under one mutex.
//  * An edge is scored by at most one worker at a time (busy flag, handed
//    over under the mutex), so its model + decode cache need no own locks.
//  * A window's edge_bleu slots are disjoint per work item; the finalize
//    handoff happens only after the last slot's count-down under the mutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "nmt/translation.h"
#include "obs/trace.h"
#include "text/bleu.h"

namespace desmine::serve {

/// One sentence-window awaiting its per-edge scores. Created by a Session,
/// owned by the BatchScheduler while any score is outstanding, then handed
/// back (fully scored) through the on_scored callback.
struct PendingWindow {
  std::uint64_t session_id = 0;
  std::size_t window_index = 0;  ///< per session, 0-based
  std::size_t end_tick = 0;
  /// One single-sentence corpus per sensor node (WindowAssembler output).
  std::vector<text::Corpus> corpora;
  /// Node indices excluded from this window (degraded sessions only).
  std::vector<std::size_t> unhealthy;
  bool masked = false;  ///< session runs degraded-mode semantics
  /// Scheduler edge ids to score (ascending; excluded edges absent).
  std::vector<std::size_t> edges;
  /// f(i, j) per entry of `edges`, filled by workers (disjoint slots).
  std::vector<double> edge_bleu;
  /// Outstanding scores; guarded by the scheduler mutex.
  std::size_t remaining = 0;
  /// Work items already popped by workers; guarded by the scheduler mutex.
  std::size_t dequeued = 0;

  /// End-to-end trace handle: the "serve.window" root span opened at
  /// ingest, carried across the scheduler's thread handoffs and closed at
  /// delivery (invalid while tracing is disabled).
  obs::SpanContext span;
  /// Stage timeline, stamped as the window flows through the scheduler:
  /// enqueued <= first_dequeue <= last_dequeue <= scored_done. Session
  /// finalization turns the gaps into the serve.stage.* histograms and the
  /// per-stage child spans.
  std::chrono::steady_clock::time_point enqueued{};
  std::chrono::steady_clock::time_point first_dequeue{};
  std::chrono::steady_clock::time_point last_dequeue{};
  std::chrono::steady_clock::time_point scored_done{};
};

class BatchScheduler {
 public:
  /// One valid edge of the MVR graph with its shared trained model. The
  /// scheduler is the model's only user while serving (one worker at a
  /// time per edge).
  struct Edge {
    std::size_t src = 0;
    std::size_t dst = 0;
    double train_bleu = 0.0;  ///< s(i, j) — the broken threshold baseline
    std::shared_ptr<nmt::TranslationModel> model;
  };

  /// `on_scored` receives each fully scored window, called from a worker
  /// thread with no scheduler lock held. `decode_cache` bounds the per-edge
  /// source->translation cache (0 disables caching).
  BatchScheduler(std::vector<Edge> edges, std::size_t max_batch,
                 std::size_t decode_cache, text::BleuOptions bleu,
                 std::function<void(std::unique_ptr<PendingWindow>)> on_scored);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queue every edge score of `window` (window->edges must be non-empty;
  /// remaining must equal edges.size()). The scheduler owns the window
  /// until its last score lands.
  void submit(std::unique_ptr<PendingWindow> window);

  /// Worker loop body: wait for a ready edge, score one batch of its queue.
  /// Returns false once stop() was called and every queued item is done —
  /// run as `while (run_one()) {}` on pool threads.
  bool run_one();

  /// Let workers drain what is queued, then have run_one() return false.
  void stop();

  const std::vector<Edge>& edges() const { return edges_; }

 private:
  struct Item {
    PendingWindow* window = nullptr;
    std::size_t slot = 0;  ///< index into window->edges / edge_bleu
  };

  /// Score `batch` against edge `edge_id`. Runs without the scheduler lock;
  /// exclusive edge access is guaranteed by the busy flag.
  void score_batch(std::size_t edge_id, const std::vector<Item>& batch);

  std::vector<Edge> edges_;
  const std::size_t max_batch_;
  const std::size_t cache_capacity_;
  const text::BleuOptions bleu_;
  const std::function<void(std::unique_ptr<PendingWindow>)> on_scored_;

  /// Per-edge source->translation memo. Greedy decoding is deterministic,
  /// so a hit is bit-identical to a fresh decode. Touched only by the
  /// worker currently holding the edge's busy flag.
  std::vector<std::map<text::Sentence, text::Sentence>> caches_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Item>> queues_;     ///< per edge
  std::deque<std::size_t> ready_;            ///< edges with work, round-robin
  std::vector<std::uint8_t> in_ready_;
  std::vector<std::uint8_t> busy_;
  std::map<PendingWindow*, std::unique_ptr<PendingWindow>> owned_;
  std::size_t queued_items_ = 0;
  bool stopping_ = false;
};

}  // namespace desmine::serve
