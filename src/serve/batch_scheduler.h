// Cross-session batched scoring (the serving layer's hot path).
//
// Detection sessions emit sentence-windows; each window must be scored by
// every valid edge model f(i, j). Scoring one window at a time (what
// OnlineDetector does) decodes each source sentence alone. The scheduler
// instead keeps one FIFO of (window, edge) work items per edge model, and a
// worker drains up to SchedulerConfig::max_batch items of ONE edge in a
// single TranslationModel::score pass: duplicate sources decode once, the
// rest go through Seq2SeqModel::translate_batch's stacked GEMMs, and a
// per-edge decode cache carries results across batches. All three layers
// preserve IEEE-754 bit-identity with the sequential path because greedy
// decoding is deterministic and every kernel is row-independent (see
// seq2seq.h).
//
// Fault tolerance (DESIGN.md §13):
//  * Edge states are keyed by (generation id, edge id). A window carries a
//    shared_ptr to the ModelGeneration it was ingested under and scores
//    against exactly those models; set_current_generation() retires the old
//    generation's states as they drain, releasing the old models.
//  * A throwing decode never kills a worker: the batch's slots resolve as
//    kFailed error results and flow through the session's reorder buffer
//    like any score. After `circuit_open_after` consecutive failed batches
//    the edge's circuit breaker opens — its queued items resolve as
//    kQuarantined without touching the model — and after
//    `circuit_probe_after` quarantined items the breaker goes half-open and
//    probes with a single-item batch (success closes it, failure reopens).
//  * Deadline shedding: when `max_queue_delay_ms` > 0, a sheddable window
//    older than the deadline at item-pop time is marked shed; all its slots
//    resolve as kShed and the session emits a counted `shed` result instead
//    of scoring stale data.
//
// Concurrency contract (TSan-clean by construction):
//  * All queue/ownership/breaker bookkeeping happens under one mutex.
//  * An edge state is scored by at most one worker at a time (busy flag,
//    handed over under the mutex), so its model + decode cache need no own
//    locks.
//  * A window's edge_bleu/edge_status slots are disjoint per work item; the
//    finalize handoff happens only after the last slot's count-down under
//    the mutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "nmt/translation.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "text/bleu.h"

namespace desmine::serve {

/// Per-slot outcome of one (window, edge) work item.
enum class SlotStatus : std::uint8_t {
  kScored = 0,       ///< edge_bleu slot holds a real f(i, j)
  kFailed = 1,       ///< decode threw; slot excluded, edge reported failed
  kQuarantined = 2,  ///< circuit breaker open; model not touched
  kShed = 3,         ///< window shed before this slot was scored
};

/// One sentence-window awaiting its per-edge scores. Created by a Session,
/// owned by the BatchScheduler while any score is outstanding, then handed
/// back (fully resolved) through the on_scored callback.
struct PendingWindow {
  std::uint64_t session_id = 0;
  std::size_t window_index = 0;  ///< per session, 0-based
  std::size_t end_tick = 0;
  /// The model generation this window scores against (snapshotted at
  /// ingest; never mixed within a window).
  std::shared_ptr<const ModelGeneration> generation;
  /// One single-sentence corpus per sensor node (WindowAssembler output).
  std::vector<text::Corpus> corpora;
  /// Node indices excluded from this window (degraded sessions only).
  std::vector<std::size_t> unhealthy;
  bool masked = false;  ///< session runs degraded-mode semantics
  /// Indices into generation->edges to score (ascending; excluded absent).
  std::vector<std::size_t> edges;
  /// f(i, j) per entry of `edges`, filled by workers (disjoint slots).
  std::vector<double> edge_bleu;
  /// SlotStatus per entry of `edges` (disjoint slots, like edge_bleu).
  std::vector<std::uint8_t> edge_status;
  /// False once the session's consecutive-shed guard kicked in: the window
  /// must be scored even when older than the shedding deadline.
  bool sheddable = true;
  /// Set (under the scheduler mutex) when the deadline shed this window.
  bool shed = false;
  /// Outstanding slots; guarded by the scheduler mutex.
  std::size_t remaining = 0;
  /// Work items already popped by workers; guarded by the scheduler mutex.
  std::size_t dequeued = 0;

  /// End-to-end trace handle: the "serve.window" root span opened at
  /// ingest, carried across the scheduler's thread handoffs and closed at
  /// delivery (invalid while tracing is disabled).
  obs::SpanContext span;
  /// Stage timeline, stamped as the window flows through the scheduler:
  /// enqueued <= first_dequeue <= last_dequeue <= scored_done. Session
  /// finalization turns the gaps into the serve.stage.* histograms and the
  /// per-stage child spans.
  std::chrono::steady_clock::time_point enqueued{};
  std::chrono::steady_clock::time_point first_dequeue{};
  std::chrono::steady_clock::time_point last_dequeue{};
  std::chrono::steady_clock::time_point scored_done{};
};

struct SchedulerConfig {
  /// Max sentence-windows one batched decode may stack per edge.
  std::size_t max_batch = 32;
  /// Per-edge source->translation cache entries (0 disables caching).
  std::size_t decode_cache = 4096;
  text::BleuOptions bleu{};
  /// Consecutive failed batches before an edge's breaker opens (0 disables
  /// the circuit breaker: failures still resolve as error results).
  std::size_t circuit_open_after = 5;
  /// Quarantined items before an open breaker goes half-open and probes.
  std::size_t circuit_probe_after = 16;
  /// Shed sheddable windows older than this at item-pop time (0 disables).
  double max_queue_delay_ms = 0.0;
  /// Numeric mode of the batched greedy decodes: kF32 (default) or the int8
  /// quantized-weight path (DESIGN.md §16). Fixed for the scheduler's
  /// lifetime, so the per-edge decode caches stay self-consistent (a cached
  /// translation is always replayed under the precision that produced it).
  tensor::Precision precision = tensor::Precision::kF32;
};

class BatchScheduler {
 public:
  /// `initial` pins the starting generation id; edge states are created
  /// lazily as windows arrive. `on_scored` receives each fully resolved
  /// window, called from a worker thread with no scheduler lock held.
  BatchScheduler(const std::shared_ptr<const ModelGeneration>& initial,
                 SchedulerConfig config,
                 std::function<void(std::unique_ptr<PendingWindow>)> on_scored);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queue every edge score of `window` (window->edges must be non-empty;
  /// remaining must equal edges.size()). The scheduler owns the window
  /// until its last slot resolves.
  void submit(std::unique_ptr<PendingWindow> window);

  /// Worker loop body: wait for a ready edge, score one batch of its queue.
  /// Returns false once stop() was called and every queued item is done —
  /// run as `while (run_one()) {}` on pool threads. Never throws on decode
  /// failure (worker supervision).
  bool run_one();

  /// Retire every edge state of generations other than `id`: idle states
  /// are erased immediately (dropping their model references), busy or
  /// queued ones as soon as they drain. Called by SessionManager::reload
  /// after publishing the new generation.
  void set_current_generation(std::uint64_t id);

  /// Let workers drain what is queued, then have run_one() return false.
  void stop();

 private:
  struct Item {
    PendingWindow* window = nullptr;
    std::size_t slot = 0;  ///< index into window->edges / edge_bleu / status
  };

  /// (generation id, edge id) — the unit of queueing, caching, breaking.
  using Key = std::pair<std::uint64_t, std::size_t>;

  enum class Breaker : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct EdgeState {
    std::shared_ptr<const ModelGeneration> generation;
    std::size_t edge_id = 0;
    std::deque<Item> queue;
    bool busy = false;
    bool in_ready = false;
    /// Generation superseded; erase this state once its queue drains.
    bool retired = false;
    /// Per-edge source->translation memo. Greedy decoding is deterministic,
    /// so a hit is bit-identical to a fresh decode. Touched only by the
    /// worker currently holding the busy flag.
    std::map<text::Sentence, text::Sentence> cache;
    Breaker breaker = Breaker::kClosed;
    std::size_t consecutive_failures = 0;  ///< failed batches since a success
    std::size_t skipped_since_open = 0;    ///< quarantined items since open
  };

  /// Resolve one popped slot under mu_: record its status, count it down,
  /// and move the window to `completed` when it was the last slot.
  void resolve_locked(const Item& item, SlotStatus status,
                      std::vector<std::unique_ptr<PendingWindow>>* completed);

  /// Score `batch` against `state`'s edge model. Runs without the scheduler
  /// lock; exclusive state access is guaranteed by the busy flag. Throws on
  /// decode failure (including injected serve.decode faults).
  void score_batch(EdgeState& state, const std::vector<Item>& batch);

  const SchedulerConfig config_;
  const std::function<void(std::unique_ptr<PendingWindow>)> on_scored_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t current_generation_ = 0;
  std::map<Key, EdgeState> states_;
  std::deque<Key> ready_;  ///< states with work, round-robin
  std::map<PendingWindow*, std::unique_ptr<PendingWindow>> owned_;
  std::size_t queued_items_ = 0;
  bool stopping_ = false;
};

}  // namespace desmine::serve
