// LRU edge residency for mapped model generations (DESIGN.md §15).
//
// A v4 artifact maps hundreds of edge models but a serving deployment's
// valid band usually touches far fewer at a time. The ResidencyManager is
// the serving layer's materialization cache over one io::ArtifactMap: the
// first acquire() of an edge verifies its CRCs, binds its weights as
// zero-copy views, and builds its decode state (vocabularies, scaffolding,
// workspace); later acquires return the same instance and refresh its LRU
// position. When the configured budget (bytes and/or edge count) is
// exceeded, the least-recently-used edges are evicted — eviction only drops
// the cache's reference, so any in-flight scorer holding the shared_ptr
// finishes safely and the decode state frees itself when the last reference
// drains. The mapped weight pages themselves are kernel-cache-resident and
// never counted: evicting an edge costs re-building its decode state, not
// re-reading its weights.
//
// Gauges serve.model.resident_edges / serve.model.resident_bytes track the
// cache, counter serve.model.evictions the churn.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "io/artifact_map.h"
#include "nmt/translation.h"

namespace desmine::serve {

struct ResidencyConfig {
  /// Evict LRU edges while the resident decode-state estimate exceeds this
  /// (0 = unlimited). The most-recently-acquired edge is never evicted, so
  /// a budget smaller than one edge still serves (with a cache of one).
  std::uint64_t max_resident_bytes = 0;
  /// Cap on materialized edges regardless of bytes (0 = unlimited).
  std::size_t max_resident_edges = 0;
};

class ResidencyManager {
 public:
  ResidencyManager(std::shared_ptr<io::ArtifactMap> map,
                   ResidencyConfig config);

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  /// The model for edges()[map_index], materializing on first touch (CRC
  /// verification + weight binding; io::ArtifactError on corruption) and
  /// from cache afterwards. Thread-safe. The returned pointer stays valid
  /// for as long as the caller holds it, even across evictions.
  std::shared_ptr<nmt::TranslationModel> acquire(std::size_t map_index);

  struct Stats {
    std::size_t resident_edges = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

  const std::shared_ptr<io::ArtifactMap>& map() const { return map_; }
  const ResidencyConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<nmt::TranslationModel> model;
    std::uint64_t cost_bytes = 0;
    std::list<std::size_t>::iterator lru_pos;
  };

  /// Caller holds mu_. Evict LRU entries (never `keep`) until within budget.
  void enforce_budget_locked(std::size_t keep);
  void publish_gauges_locked() const;

  std::shared_ptr<io::ArtifactMap> map_;
  ResidencyConfig config_;

  mutable std::mutex mu_;
  std::list<std::size_t> lru_;  ///< front = most recently used
  std::unordered_map<std::size_t, Entry> cache_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace desmine::serve
