#include "serve/residency.h"

#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::serve {

ResidencyManager::ResidencyManager(std::shared_ptr<io::ArtifactMap> map,
                                   ResidencyConfig config)
    : map_(std::move(map)), config_(config) {
  DESMINE_EXPECTS(map_ != nullptr, "residency manager needs a mapped artifact");
}

std::shared_ptr<nmt::TranslationModel> ResidencyManager::acquire(
    std::size_t map_index) {
  std::lock_guard lock(mu_);
  if (const auto it = cache_.find(map_index); it != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.model;
  }
  ++misses_;
  // Materialization under the lock serializes cold edges against each other,
  // which is what we want: it bounds the transient overshoot above the
  // budget to a single edge.
  Entry entry;
  entry.model = map_->materialize_edge(map_index);
  entry.cost_bytes = map_->edge_cost_bytes(map_index);
  lru_.push_front(map_index);
  entry.lru_pos = lru_.begin();
  resident_bytes_ += entry.cost_bytes;
  std::shared_ptr<nmt::TranslationModel> model = entry.model;
  cache_.emplace(map_index, std::move(entry));
  enforce_budget_locked(map_index);
  publish_gauges_locked();
  return model;
}

void ResidencyManager::enforce_budget_locked(std::size_t keep) {
  const auto over = [this] {
    return (config_.max_resident_bytes > 0 &&
            resident_bytes_ > config_.max_resident_bytes) ||
           (config_.max_resident_edges > 0 &&
            cache_.size() > config_.max_resident_edges);
  };
  while (over() && !lru_.empty() && lru_.back() != keep) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    resident_bytes_ -= it->second.cost_bytes;
    // Only the cache's reference is dropped: a scorer mid-decode on this
    // edge holds its own shared_ptr and finishes safely.
    cache_.erase(it);
    ++evictions_;
    obs::metrics().counter("serve.model.evictions").inc();
  }
}

void ResidencyManager::publish_gauges_locked() const {
  obs::metrics().gauge("serve.model.resident_edges")
      .set(static_cast<double>(cache_.size()));
  obs::metrics().gauge("serve.model.resident_bytes")
      .set(static_cast<double>(resident_bytes_));
}

ResidencyManager::Stats ResidencyManager::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.resident_edges = cache_.size();
  s.resident_bytes = resident_bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

}  // namespace desmine::serve
