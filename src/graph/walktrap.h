// Random-walk community detection (Pons & Latapy 2006, "Computing
// communities in large networks using random walks" — reference [33]).
//
// Short random walks tend to stay inside communities, so the t-step
// transition distributions of two nodes in the same community are close.
// Walktrap agglomeratively merges adjacent communities, at each step picking
// the merge with the smallest increase in the mean squared walk distance
// (Ward's criterion), and returns the partition along the merge sequence
// with the highest modularity. The paper applies this to local subgraphs of
// the multivariate relationship graph to recover system components (§II-B).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace desmine::graph {

struct WalktrapOptions {
  std::size_t walk_length = 4;  ///< t — steps of the random walk
};

struct CommunityResult {
  /// membership[v] = community id (0-based, contiguous).
  std::vector<std::size_t> membership;
  std::size_t community_count = 0;
  double modularity = 0.0;
};

/// Detect communities on the undirected weighted view of `g`. Isolated nodes
/// become singleton communities.
CommunityResult walktrap(const Digraph& g, const WalktrapOptions& options = {});

}  // namespace desmine::graph
