#include "graph/walktrap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "util/error.h"

namespace desmine::graph {

namespace {

/// Community bookkeeping during agglomeration.
struct Community {
  std::vector<std::size_t> members;
  std::vector<double> walk_profile;  ///< mean t-step distribution, /sqrt(deg)
  bool alive = true;
};

double profile_distance(const Community& a, const Community& b) {
  double ss = 0.0;
  for (std::size_t k = 0; k < a.walk_profile.size(); ++k) {
    const double d = a.walk_profile[k] - b.walk_profile[k];
    ss += d * d;
  }
  return ss;  // squared r^2 distance
}

/// Ward-style merge cost between communities (Pons & Latapy eq. 9).
double merge_cost(const Community& a, const Community& b, std::size_t n) {
  const auto sa = static_cast<double>(a.members.size());
  const auto sb = static_cast<double>(b.members.size());
  return (sa * sb) / (sa + sb) * profile_distance(a, b) /
         static_cast<double>(n);
}

}  // namespace

CommunityResult walktrap(const Digraph& g, const WalktrapOptions& options) {
  const std::size_t n = g.node_count();
  CommunityResult result;
  if (n == 0) return result;

  // Transition matrix with self-loops (ensures aperiodicity and defines
  // walks for isolated nodes).
  auto adj = g.undirected_adjacency();
  for (std::size_t v = 0; v < n; ++v) adj[v][v] += 1.0;
  std::vector<double> degree(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = 0; u < n; ++u) degree[v] += adj[v][u];
  }

  // P^t rows by repeated multiplication of each row with P.
  std::vector<std::vector<double>> walk(n, std::vector<double>(n, 0.0));
  for (std::size_t v = 0; v < n; ++v) walk[v][v] = 1.0;
  std::vector<double> next(n, 0.0);
  for (std::size_t step = 0; step < options.walk_length; ++step) {
    for (std::size_t v = 0; v < n; ++v) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t mid = 0; mid < n; ++mid) {
        const double p = walk[v][mid];
        if (p == 0.0) continue;
        const double inv_deg = 1.0 / degree[mid];
        for (std::size_t u = 0; u < n; ++u) {
          next[u] += p * adj[mid][u] * inv_deg;
        }
      }
      walk[v] = next;
    }
  }

  // Initial singleton communities with normalized walk profiles.
  std::vector<Community> communities(n);
  for (std::size_t v = 0; v < n; ++v) {
    communities[v].members = {v};
    communities[v].walk_profile.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      communities[v].walk_profile[k] = walk[v][k] / std::sqrt(degree[k]);
    }
  }

  // Adjacency between communities (only adjacent communities may merge).
  std::vector<std::set<std::size_t>> neighbors(n);
  for (const Edge& e : g.edges()) {
    if (e.src == e.dst) continue;
    neighbors[e.src].insert(e.dst);
    neighbors[e.dst].insert(e.src);
  }

  // Track the best partition (by modularity) along the merge sequence.
  std::vector<std::size_t> current(n);
  std::iota(current.begin(), current.end(), 0);
  auto normalize = [&](const std::vector<std::size_t>& raw) {
    std::vector<std::size_t> out(raw.size());
    std::vector<long> remap(n, -1);
    std::size_t next_id = 0;
    for (std::size_t v = 0; v < raw.size(); ++v) {
      if (remap[raw[v]] < 0) remap[raw[v]] = static_cast<long>(next_id++);
      out[v] = static_cast<std::size_t>(remap[raw[v]]);
    }
    return out;
  };

  std::vector<std::size_t> best_membership = normalize(current);
  double best_q = modularity(g, best_membership);

  // Agglomerate until no adjacent pair remains.
  while (true) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t ma = 0, mb = 0;
    bool found = false;
    for (std::size_t a = 0; a < communities.size(); ++a) {
      if (!communities[a].alive) continue;
      for (std::size_t b : neighbors[a]) {
        if (b <= a || !communities[b].alive) continue;
        const double cost = merge_cost(communities[a], communities[b], n);
        if (cost < best_cost) {
          best_cost = cost;
          ma = a;
          mb = b;
          found = true;
        }
      }
    }
    if (!found) break;

    // Merge mb into ma: weighted-average walk profile, union members.
    Community& ca = communities[ma];
    Community& cb = communities[mb];
    const auto sa = static_cast<double>(ca.members.size());
    const auto sb = static_cast<double>(cb.members.size());
    for (std::size_t k = 0; k < n; ++k) {
      ca.walk_profile[k] =
          (sa * ca.walk_profile[k] + sb * cb.walk_profile[k]) / (sa + sb);
    }
    ca.members.insert(ca.members.end(), cb.members.begin(), cb.members.end());
    cb.alive = false;

    neighbors[ma].insert(neighbors[mb].begin(), neighbors[mb].end());
    neighbors[ma].erase(ma);
    neighbors[ma].erase(mb);
    for (std::size_t v : neighbors[mb]) {
      neighbors[v].erase(mb);
      if (v != ma) neighbors[v].insert(ma);
    }
    neighbors[mb].clear();

    for (std::size_t v : ca.members) current[v] = ma;
    const std::vector<std::size_t> candidate = normalize(current);
    const double q = modularity(g, candidate);
    if (q > best_q) {
      best_q = q;
      best_membership = candidate;
    }
  }

  result.membership = best_membership;
  result.community_count =
      best_membership.empty()
          ? 0
          : *std::max_element(best_membership.begin(), best_membership.end()) +
                1;
  result.modularity = best_q;
  return result;
}

}  // namespace desmine::graph
