// Generic weighted directed graph used beneath the multivariate relationship
// graph: degree statistics, weak connected components, DOT export.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace desmine::graph {

struct Edge {
  std::size_t src = 0;
  std::size_t dst = 0;
  double weight = 1.0;
};

class Digraph {
 public:
  explicit Digraph(std::size_t node_count);

  /// Add a directed edge; parallel edges are allowed. Endpoints must exist.
  void add_edge(std::size_t src, std::size_t dst, double weight = 1.0);

  std::size_t node_count() const { return node_count_; }
  std::size_t edge_count() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t in_degree(std::size_t node) const;
  std::size_t out_degree(std::size_t node) const;
  std::vector<std::size_t> in_degrees() const;
  std::vector<std::size_t> out_degrees() const;

  /// Weakly connected components (edge direction ignored). Isolated nodes
  /// form singleton components. Components are ordered by smallest member.
  std::vector<std::vector<std::size_t>> weak_components() const;

  /// Symmetric adjacency (weights summed over both directions), used by the
  /// community-detection and modularity code.
  std::vector<std::vector<double>> undirected_adjacency() const;

  /// Graphviz DOT rendering with optional node labels.
  std::string to_dot(const std::vector<std::string>& labels = {}) const;

 private:
  std::size_t node_count_;
  std::vector<Edge> edges_;
  std::vector<std::size_t> in_degree_;
  std::vector<std::size_t> out_degree_;
};

/// Newman modularity of a partition on the undirected weighted view of g.
/// `membership[v]` is the community id of node v.
double modularity(const Digraph& g, const std::vector<std::size_t>& membership);

}  // namespace desmine::graph
