#include "graph/digraph.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>

#include "util/error.h"

namespace desmine::graph {

Digraph::Digraph(std::size_t node_count)
    : node_count_(node_count),
      in_degree_(node_count, 0),
      out_degree_(node_count, 0) {}

void Digraph::add_edge(std::size_t src, std::size_t dst, double weight) {
  DESMINE_EXPECTS(src < node_count_ && dst < node_count_,
                  "edge endpoint out of range");
  edges_.push_back({src, dst, weight});
  ++out_degree_[src];
  ++in_degree_[dst];
}

std::size_t Digraph::in_degree(std::size_t node) const {
  DESMINE_EXPECTS(node < node_count_, "node out of range");
  return in_degree_[node];
}

std::size_t Digraph::out_degree(std::size_t node) const {
  DESMINE_EXPECTS(node < node_count_, "node out of range");
  return out_degree_[node];
}

std::vector<std::size_t> Digraph::in_degrees() const { return in_degree_; }
std::vector<std::size_t> Digraph::out_degrees() const { return out_degree_; }

std::vector<std::vector<std::size_t>> Digraph::weak_components() const {
  // Union-find over edge endpoints.
  std::vector<std::size_t> parent(node_count_);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> rank(node_count_, 0);

  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };
  for (const Edge& e : edges_) unite(e.src, e.dst);

  std::vector<std::vector<std::size_t>> components;
  std::vector<long> component_of_root(node_count_, -1);
  for (std::size_t v = 0; v < node_count_; ++v) {
    const std::size_t root = find(v);
    if (component_of_root[root] < 0) {
      component_of_root[root] = static_cast<long>(components.size());
      components.emplace_back();
    }
    components[static_cast<std::size_t>(component_of_root[root])].push_back(v);
  }
  return components;
}

std::vector<std::vector<double>> Digraph::undirected_adjacency() const {
  std::vector<std::vector<double>> adj(node_count_,
                                       std::vector<double>(node_count_, 0.0));
  for (const Edge& e : edges_) {
    adj[e.src][e.dst] += e.weight;
    adj[e.dst][e.src] += e.weight;
  }
  return adj;
}

std::string Digraph::to_dot(const std::vector<std::string>& labels) const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (std::size_t v = 0; v < node_count_; ++v) {
    os << "  n" << v;
    if (v < labels.size()) os << " [label=\"" << labels[v] << "\"]";
    os << ";\n";
  }
  for (const Edge& e : edges_) {
    os << "  n" << e.src << " -> n" << e.dst << " [weight=" << e.weight
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

double modularity(const Digraph& g,
                  const std::vector<std::size_t>& membership) {
  DESMINE_EXPECTS(membership.size() == g.node_count(),
                  "membership must cover every node");
  const auto adj = g.undirected_adjacency();
  const std::size_t n = g.node_count();

  std::vector<double> strength(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) strength[i] += adj[i][j];
    total += strength[i];
  }
  if (total == 0.0) return 0.0;

  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (membership[i] != membership[j]) continue;
      q += adj[i][j] - strength[i] * strength[j] / total;
    }
  }
  return q / total;
}

}  // namespace desmine::graph
