#include "lifecycle/controller.h"

#include <cmath>
#include <utility>

#include "core/encryption.h"
#include "io/serialize.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/error.h"

namespace desmine::lifecycle {

LifecycleController::LifecycleController(const core::Framework& framework,
                                         LifecycleConfig config)
    : config_(std::move(config)),
      framework_(framework),
      monitor_(framework_.graph(), framework_.config().detector,
               config_.drift) {
  DESMINE_EXPECTS(framework.fitted(),
                  "lifecycle needs a fitted (mined) framework");
}

LifecycleController::PeriodReport LifecycleController::observe(
    const core::MultivariateSeries& period) {
  const obs::ScopedTimer timer("lifecycle.observe");
  const core::DetectionResult detection = framework_.detect(period);
  DESMINE_ENSURES(detection.valid_edges.size() == monitor_.edge_count(),
                  "detection valid edges disagree with the drift monitor");
  const std::size_t windows = detection.anomaly_scores.size();

  // Per-edge aggregates: mean live f(i, j) and broken fraction across the
  // period's windows.
  std::vector<EdgeObservation> observations(monitor_.edge_count());
  if (windows > 0) {
    for (std::size_t e = 0; e < observations.size(); ++e) {
      double sum = 0.0;
      for (std::size_t t = 0; t < windows; ++t) {
        sum += detection.edge_bleu[e][t];
      }
      observations[e].bleu = sum / static_cast<double>(windows);
    }
    for (const std::vector<std::size_t>& broken : detection.broken_edges) {
      for (std::size_t e : broken) observations[e].break_rate += 1.0;
    }
    for (EdgeObservation& obs : observations) {
      obs.break_rate /= static_cast<double>(windows);
    }
  }

  // Per-sensor <unk> rates from the encoded character streams.
  const std::vector<std::string> encoded =
      framework_.encrypter().encode_all(period);
  std::vector<double> sensor_unk(encoded.size(), 0.0);
  for (std::size_t k = 0; k < encoded.size(); ++k) {
    if (encoded[k].empty()) continue;
    std::size_t unknown = 0;
    for (char c : encoded[k]) {
      if (c == core::SensorEncrypter::kUnknownChar) ++unknown;
    }
    sensor_unk[k] = static_cast<double>(unknown) /
                    static_cast<double>(encoded[k].size());
  }

  monitor_.observe(observations, sensor_unk);

  PeriodReport report;
  report.windows = windows;
  if (windows > 0) {
    double sum = 0.0;
    for (double s : detection.anomaly_scores) sum += s;
    report.mean_score = sum / static_cast<double>(windows);
  }
  report.drifting = monitor_.count(DriftState::kDrifting);
  report.drifted = monitor_.count(DriftState::kDrifted);
  return report;
}

std::vector<core::SensorLanguage> LifecycleController::languages(
    const core::MultivariateSeries& train,
    const core::MultivariateSeries& dev) const {
  const std::vector<text::Corpus> train_corpora = framework_.to_corpora(train);
  const std::vector<text::Corpus> dev_corpora = framework_.to_corpora(dev);
  const std::vector<std::string>& names = framework_.graph().sensor_names();
  DESMINE_ENSURES(train_corpora.size() == names.size() &&
                      dev_corpora.size() == names.size(),
                  "corpora misaligned with the graph's sensor nodes");
  std::vector<core::SensorLanguage> langs(names.size());
  for (std::size_t k = 0; k < names.size(); ++k) {
    langs[k].name = names[k];
    langs[k].train = train_corpora[k];
    langs[k].dev = dev_corpora[k];
  }
  return langs;
}

LifecycleController::CandidateReport LifecycleController::build_candidate(
    const core::MultivariateSeries& train,
    const core::MultivariateSeries& dev, const std::string& path) {
  const std::vector<std::pair<std::size_t, std::size_t>> drifted =
      monitor_.drifted_pairs();
  DESMINE_EXPECTS(!drifted.empty(),
                  "no drifted edges — nothing to retrain");
  const obs::ScopedTimer timer("lifecycle.candidate",
                               {obs::kv("drifted", drifted.size())});

  IncrementalRetrainer retrainer(config_.retrain,
                                 framework_.config().miner.translation);
  CandidateReport report;
  report.edges_total = framework_.graph().edges().size();
  const core::MvrGraph candidate = retrainer.retrain(
      framework_.graph(), languages(train, dev), drifted, &report.retrain);

  // Persist the candidate as a whole-framework artifact: CRC-trailed and
  // temp+fsync+renamed, so serve::begin_shadow either sees the complete
  // candidate or the previous file — never a torn write.
  core::Framework fw(framework_.config());
  fw.restore(framework_.encrypter(), candidate);
  io::save_framework(fw, path);
  report.path = path;

  DESMINE_LOG_INFO(
      "candidate artifact written",
      {obs::kv("path", path), obs::kv("drifted", drifted.size()),
       obs::kv("retrained", report.retrain.retrained),
       obs::kv("failed", report.retrain.failed),
       obs::kv("edges_total", report.edges_total)});
  return report;
}

void LifecycleController::rebase(const core::Framework& framework) {
  DESMINE_EXPECTS(framework.fitted(), "rebase needs a fitted framework");
  framework_ = framework;
  monitor_ = DriftMonitor(framework_.graph(), framework_.config().detector,
                          config_.drift);
  DESMINE_LOG_INFO("lifecycle rebased on promoted graph",
                   {obs::kv("edges", monitor_.edge_count())});
}

}  // namespace desmine::lifecycle
