#include "lifecycle/retrainer.h"

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "io/serialize.h"
#include "nmt/trainer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "util/error.h"
#include "util/rng.h"

namespace desmine::lifecycle {

namespace {

std::string edge_name(std::size_t src, std::size_t dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

/// FNV-1a over the knobs that make fine-tuned BLEU comparable, so resuming
/// tooling can detect a journal written under different settings.
std::uint32_t retrain_fingerprint(const nmt::TranslationConfig& translation,
                                  const RetrainConfig& config,
                                  std::size_t sensor_count) {
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= static_cast<std::uint32_t>((v >> (8 * byte)) & 0xffu);
      h *= 16777619u;
    }
  };
  mix(sensor_count);
  mix(translation.trainer.steps);
  mix(translation.trainer.batch_size);
  mix(static_cast<std::uint64_t>(translation.trainer.lr * 1e6f));
  mix(static_cast<std::uint64_t>(config.lr_factor * 1e6));
  mix(config.steps);
  mix(config.seed);
  return h;
}

/// Duplicate a trained model (vocabularies + weights) through the artifact
/// serializer: the copy owns fresh tensors, so fine-tuning it never touches
/// the active graph's weights.
nmt::TranslationModel deep_copy(nmt::TranslationModel& model,
                                const nmt::Seq2SeqConfig& config) {
  std::stringstream buffer;
  io::write_translation_model(buffer, model, config, io::kStreamArtifactVersion);
  return io::read_translation_model(buffer, io::kStreamArtifactVersion);
}

}  // namespace

std::size_t pair_index_of(std::size_t src, std::size_t dst,
                          std::size_t sensor_count) {
  DESMINE_EXPECTS(src != dst && src < sensor_count && dst < sensor_count,
                  "pair indices out of range");
  return src * (sensor_count - 1) + (dst - (dst > src ? 1 : 0));
}

IncrementalRetrainer::IncrementalRetrainer(RetrainConfig config,
                                           nmt::TranslationConfig translation)
    : config_(std::move(config)), translation_(std::move(translation)) {
  DESMINE_EXPECTS(config_.lr_factor > 0.0 && config_.lr_factor <= 1.0,
                  "lr_factor must lie in (0, 1]");
}

core::MvrGraph IncrementalRetrainer::retrain(
    const core::MvrGraph& graph,
    const std::vector<core::SensorLanguage>& languages,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    RetrainReport* report) {
  const std::size_t n = graph.sensor_count();
  DESMINE_EXPECTS(languages.size() == n,
                  "languages must align with the graph's sensor nodes");
  DESMINE_EXPECTS(!pairs.empty(), "no pairs to retrain");

  const obs::ScopedTimer timer("lifecycle.retrain",
                               {obs::kv("pairs", pairs.size())});
  obs::Counter& retrained_counter =
      obs::metrics().counter("lifecycle.retrain.pairs");
  obs::Counter& failed_counter =
      obs::metrics().counter("lifecycle.retrain.failures");
  obs::Histogram& wall_ms =
      obs::metrics().histogram("lifecycle.retrain.pair_wall_ms");

  // Active edges by (src, dst) for warm-start lookup and reassembly.
  std::map<std::pair<std::size_t, std::size_t>, const core::MvrEdge*> active;
  for (const core::MvrEdge& edge : graph.edges()) {
    active[{edge.src, edge.dst}] = &edge;
  }

  std::unique_ptr<robust::CheckpointJournal> journal;
  if (!config_.journal_path.empty()) {
    std::filesystem::create_directories(
        robust::checkpoint_model_dir(config_.journal_path));
    journal = std::make_unique<robust::CheckpointJournal>(config_.journal_path,
                                                          /*append=*/false);
    journal->write_header(retrain_fingerprint(translation_, config_, n),
                          pairs.size());
  }

  nmt::TrainerConfig trainer = translation_.trainer;
  trainer.lr = static_cast<float>(trainer.lr * config_.lr_factor);
  if (config_.steps > 0) trainer.steps = config_.steps;
  trainer.on_step = nullptr;  // per-pair progress is journaled, not streamed
  const util::Rng master(config_.seed);

  // Fine-tuned replacement models by (src, dst). Training runs sequentially:
  // drifted sets are small by construction (< 25% of edges) and sequential
  // fine-tunes keep the per-pair RNG streams trivially deterministic.
  std::map<std::pair<std::size_t, std::size_t>,
           std::shared_ptr<nmt::TranslationModel>>
      replacements;
  std::map<std::pair<std::size_t, std::size_t>, RetrainedPair> outcomes;

  for (const auto& [src, dst] : pairs) {
    DESMINE_EXPECTS(src < n && dst < n && src != dst, "pair out of range");
    RetrainedPair rec;
    rec.src = src;
    rec.dst = dst;
    rec.pair_index = pair_index_of(src, dst, n);
    const auto it = active.find({src, dst});
    const auto started = std::chrono::steady_clock::now();
    auto finish = [&](bool ok, const std::string& error) {
      rec.ok = ok;
      rec.error = error;
      rec.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
      wall_ms.record(rec.wall_s * 1000.0);
      (ok ? retrained_counter : failed_counter).inc();
      if (journal) {
        robust::PairRecord jrec;
        jrec.pair_index = rec.pair_index;
        jrec.src = src;
        jrec.dst = dst;
        jrec.ok = ok;
        jrec.bleu = rec.new_bleu;
        jrec.runtime_s = rec.wall_s;
        jrec.steps = rec.steps_run;
        jrec.error = error;
        jrec.model_file = rec.model_file;
        journal->append(jrec);
      }
      outcomes[{src, dst}] = rec;
    };

    try {
      switch (robust::fire_fault("lifecycle.retrain", edge_name(src, dst))) {
        case robust::FaultAction::kThrow:
          throw RuntimeError("injected lifecycle.retrain fault");
        case robust::FaultAction::kAbort:
          // Simulated crash: the whole cycle dies, no candidate exists.
          throw robust::Interrupted("injected lifecycle.retrain abort");
        case robust::FaultAction::kDiverge:
          // Poison the LR so the divergence guard trips below.
          trainer.lr = translation_.trainer.lr * 1e6f;
          break;
        case robust::FaultAction::kDelay:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(robust::kDelayMillis));
          break;
        default:
          break;
      }

      if (it == active.end()) {
        throw RuntimeError("pair has no active edge to fine-tune");
      }
      rec.old_bleu = it->second->bleu;

      // Warm start: prefer the miner's checkpoint sidecar (survives process
      // restarts), else deep-copy the live in-memory model.
      std::shared_ptr<nmt::TranslationModel> model;
      if (!config_.warm_start_journal.empty()) {
        const std::string sidecar = robust::checkpoint_model_file(
            config_.warm_start_journal, rec.pair_index);
        try {
          model = std::make_shared<nmt::TranslationModel>(
              io::load_pair_model(sidecar));
          rec.warm_started = true;
        } catch (const std::exception& e) {
          DESMINE_LOG_WARN("warm-start sidecar unavailable — deep-copying "
                           "the live model",
                           {obs::kv("pair", edge_name(src, dst)),
                            obs::kv("error", e.what())});
        }
      }
      if (!model) {
        DESMINE_EXPECTS(it->second->model != nullptr,
                        "active edge carries no model to copy");
        model = std::make_shared<nmt::TranslationModel>(
            deep_copy(*it->second->model, translation_.model));
      }

      // Fine-tune on the fresh corpora with the model's ORIGINAL
      // vocabularies — post-drift states unseen at mine time stay <unk>,
      // which keeps the candidate's s(i, j) comparable to the baseline and
      // is exactly what the drift monitor's unk-rate signal surfaces.
      const std::vector<nmt::EncodedPair> train_pairs = nmt::encode_pairs(
          model->src_vocab(), model->tgt_vocab(), languages[src].train,
          languages[dst].train);
      const std::vector<nmt::EncodedPair> dev_pairs = nmt::encode_pairs(
          model->src_vocab(), model->tgt_vocab(), languages[src].dev,
          languages[dst].dev);
      nmt::TrainingHistory history;
      if (trainer.eval_every > 0) {
        history = nmt::train_with_dev(model->model(), train_pairs, dev_pairs,
                                      trainer, master.fork(rec.pair_index));
      } else {
        history = nmt::train(model->model(), train_pairs, trainer,
                             master.fork(rec.pair_index));
      }
      rec.steps_run = history.steps_run;
      rec.new_bleu = model->score(languages[src].dev, languages[dst].dev,
                                  translation_.bleu)
                         .score;

      // Republish the per-edge artifact atomically (CRC-trailed sidecar).
      if (journal) {
        rec.model_file = robust::checkpoint_model_file(config_.journal_path,
                                                       rec.pair_index);
        io::save_pair_model(rec.model_file, *model, translation_.model);
      }
      replacements[{src, dst}] = std::move(model);
      finish(true, "");
    } catch (const robust::Interrupted&) {
      throw;  // simulated crash: nothing is assembled, journal stays partial
    } catch (const std::exception& e) {
      finish(false, e.what());
      DESMINE_LOG_WARN("pair fine-tune failed — keeping the active edge",
                       {obs::kv("pair", edge_name(src, dst)),
                        obs::kv("error", e.what())});
    }
    trainer.lr = static_cast<float>(translation_.trainer.lr *
                                    config_.lr_factor);  // undo any poison
  }

  // Candidate graph: the active graph with drifted edges swapped for their
  // fine-tuned replacements. Untouched edges share the active models.
  core::MvrGraph candidate(graph.sensor_names());
  for (const core::MvrEdge& edge : graph.edges()) {
    const auto rit = replacements.find({edge.src, edge.dst});
    if (rit == replacements.end()) {
      candidate.add_edge(edge);
      continue;
    }
    core::MvrEdge next = edge;
    next.model = rit->second;
    const RetrainedPair& rec = outcomes[{edge.src, edge.dst}];
    next.bleu = rec.new_bleu;
    next.runtime_seconds = rec.wall_s;
    candidate.add_edge(next);
  }
  for (const core::PairFailure& failure : graph.failures()) {
    candidate.add_failure(failure);
  }

  if (report) {
    for (const auto& [src, dst] : pairs) {
      const RetrainedPair& rec = outcomes[{src, dst}];
      report->pairs.push_back(rec);
      ++(rec.ok ? report->retrained : report->failed);
    }
  }
  DESMINE_LOG_INFO(
      "incremental retrain finished",
      {obs::kv("pairs", pairs.size()), obs::kv("replaced", replacements.size()),
       obs::kv("failed", pairs.size() - replacements.size())});
  return candidate;
}

}  // namespace desmine::lifecycle
