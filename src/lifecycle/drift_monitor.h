// Drift detection over live traffic (DESIGN.md §14).
//
// Production sensors migrate: phases slip, thresholds get re-tuned, states
// appear that training never saw. The mined s(i, j) baselines then overstate
// what live decoding can achieve and the detector's false-alarm rate creeps
// up. The DriftMonitor watches three signals the pipeline already produces:
//  * per-edge decode score — an EWMA of live f(i, j) against the mined
//    s(i, j) baseline (the primary drift signal);
//  * per-edge break rate — an EWMA of the alert-matrix base rate (fraction
//    of windows where the edge reported broken);
//  * per-sensor <unk> rate — the fraction of encoded characters that mapped
//    to SensorEncrypter::kUnknownChar (states unseen at training time).
// and emits a typed per-edge verdict: stable / drifting / drifted.
//
// Hysteresis: a verdict only changes after `DriftConfig::hysteresis`
// consecutive observation periods agree on the same target state, so a
// transient true anomaly (one bad day) cannot flip an edge to drifted — the
// EWMAs absorb the spike and the streak counter resets when the signal
// clears. Drift, by contrast, is monotone and keeps the deficit pinned.
//
// The monitor watches exactly the valid-band edges an AnomalyDetector (and
// serve::make_generation) would score, in the same order, so observations
// can be lifted directly from a DetectionResult's valid_edges arrays.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/anomaly.h"
#include "core/mvr_graph.h"

namespace desmine::lifecycle {

enum class DriftState : std::uint8_t {
  kStable = 0,
  kDrifting = 1,  ///< early warning; not yet worth a retrain
  kDrifted = 2,   ///< baseline no longer holds; schedule incremental retrain
};

const char* to_string(DriftState state);

struct DriftConfig {
  /// EWMA smoothing factor for the per-edge decode-score and break-rate
  /// averages and the per-sensor <unk> rates (weight of the newest period).
  /// Keep alpha * worst-single-period-crash below drifting_drop so one
  /// anomalous period cannot push the EWMA over the drift threshold alone.
  double ewma_alpha = 0.1;
  /// Minimum observation periods before any edge may leave kStable.
  std::size_t min_observations = 3;
  /// Consecutive periods that must agree on a new verdict before the edge
  /// transitions (hysteresis against transient anomalies).
  std::size_t hysteresis = 2;
  /// BLEU deficit (baseline - EWMA of live f) that marks an edge drifting.
  double drifting_drop = 5.0;
  /// BLEU deficit that marks an edge drifted (retrain-worthy).
  double drifted_drop = 15.0;
  /// EWMA broken-fraction (alert-matrix base rate) that marks an edge
  /// drifting even while its BLEU deficit is still small.
  double break_rate = 0.5;
  /// <unk>-rate on either endpoint sensor that marks an edge drifting (new
  /// states are appearing that the pair model cannot decode).
  double max_unk_rate = 0.25;
};

/// Published state of one monitored edge.
struct EdgeDrift {
  std::size_t src = 0;
  std::size_t dst = 0;
  double baseline = 0.0;         ///< mined s(src, dst)
  double ewma_bleu = 0.0;        ///< EWMA of live f(src, dst)
  double ewma_break_rate = 0.0;  ///< EWMA of the per-period broken fraction
  double unk_rate = 0.0;         ///< max endpoint <unk> EWMA at last observe
  DriftState state = DriftState::kStable;
  std::size_t observations = 0;  ///< periods with a real score for this edge
};

/// One edge's aggregate over an observation period (e.g. one day of
/// windows). A NaN bleu means the edge produced no score that period (all
/// its windows were health-masked); the EWMAs then hold their value.
struct EdgeObservation {
  double bleu = std::numeric_limits<double>::quiet_NaN();
  double break_rate = 0.0;  ///< fraction of the period's windows broken
};

class DriftMonitor {
 public:
  /// Monitors the edges of `graph` whose training BLEU lies in
  /// [detector.valid_lo, detector.valid_hi) — the same valid-band rule
  /// AnomalyDetector applies, in the same order.
  DriftMonitor(const core::MvrGraph& graph,
               const core::DetectorConfig& detector, DriftConfig config);

  /// Feed one observation period. `edges` must align with edges() (one
  /// entry per monitored edge); `sensor_unk` holds the period's <unk>
  /// fraction per sensor node (graph indexing) and may be empty when
  /// unknown-state tracking is not available.
  void observe(const std::vector<EdgeObservation>& edges,
               const std::vector<double>& sensor_unk = {});

  const std::vector<EdgeDrift>& edges() const { return edges_; }
  std::size_t edge_count() const { return edges_.size(); }

  /// (src, dst) of every edge currently in DriftState::kDrifted.
  std::vector<std::pair<std::size_t, std::size_t>> drifted_pairs() const;

  /// Number of monitored edges currently in `state`.
  std::size_t count(DriftState state) const;

  const DriftConfig& config() const { return config_; }

 private:
  DriftConfig config_;
  std::vector<EdgeDrift> edges_;
  /// Pending verdict + streak per edge (hysteresis bookkeeping).
  std::vector<DriftState> target_;
  std::vector<std::size_t> streak_;
  /// Per-sensor <unk> EWMAs (graph node indexing); NaN until first seen.
  std::vector<double> sensor_unk_;
};

}  // namespace desmine::lifecycle
