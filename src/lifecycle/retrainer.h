// Incremental retraining of drifted pair models (DESIGN.md §14).
//
// A full remine retrains all N(N-1) pair models; drift usually touches a
// handful. The IncrementalRetrainer fine-tunes *only* the drifted pairs,
// warm-started from the miner's checkpoint sidecar artifacts (PR 2's
// `<journal>.models/pair_<p>.bin`) — or, when no journal is available, from
// a deep copy of the in-memory model — with the learning rate scaled by
// `lr_factor` and the trainer's divergence guard active. The result is a
// *candidate* graph: every untouched edge is shared with the active graph,
// every retrained edge carries a fresh model and a re-measured s(i, j).
//
// Durability mirrors the miner: with a journal path configured, each
// retrained pair is appended to an append-only JSON-lines journal and its
// model republished as a CRC-trailed, temp+fsync+rename sidecar artifact,
// so a crash mid-cycle never leaves a half-written candidate — the caller
// only persists the whole-framework candidate artifact after retrain()
// returns.
//
// Fault injection: point "lifecycle.retrain" keyed by edge name "src->dst".
//   throw/diverge  the pair fails (old edge kept, failure recorded);
//   abort          the whole cycle aborts (simulated crash — no candidate);
//   delay          the pair stalls for robust::kDelayMillis first.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/miner.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"

namespace desmine::lifecycle {

struct RetrainConfig {
  /// Learning-rate multiplier for fine-tuning (warm starts want a fraction
  /// of the from-scratch rate; the ISSUE's "halved LR").
  double lr_factor = 0.5;
  /// Fine-tuning steps; 0 keeps the translation config's trainer steps.
  std::size_t steps = 0;
  /// Lifecycle journal path: retrained pairs are appended here and their
  /// models republished under `<journal>.models/`. Empty disables the
  /// journal (the candidate then lives only in the returned graph).
  std::string journal_path;
  /// The miner checkpoint journal whose `.models/` sidecars seed the warm
  /// start. Empty falls back to deep-copying the in-memory edge models.
  std::string warm_start_journal;
  /// Master seed for the fine-tuning RNG streams (forked per pair).
  std::uint64_t seed = 97;
};

/// Outcome of one pair's fine-tune.
struct RetrainedPair {
  std::size_t pair_index = 0;  ///< miner enumeration order (sidecar naming)
  std::size_t src = 0;
  std::size_t dst = 0;
  bool ok = false;
  bool warm_started = false;  ///< seeded from a checkpoint sidecar artifact
  double old_bleu = 0.0;      ///< s(i, j) the active graph carries
  double new_bleu = 0.0;      ///< re-measured s(i, j) after fine-tuning
  double wall_s = 0.0;
  std::size_t steps_run = 0;
  std::string error;       ///< failure reason when !ok (old edge kept)
  std::string model_file;  ///< republished sidecar artifact when journaled
};

struct RetrainReport {
  std::vector<RetrainedPair> pairs;
  std::size_t retrained = 0;  ///< pairs whose candidate edge is new
  std::size_t failed = 0;     ///< pairs that kept the old edge
};

class IncrementalRetrainer {
 public:
  /// `translation` must be the configuration the active graph was mined
  /// with (architecture and BLEU options must match for the re-measured
  /// s(i, j) to stay comparable).
  IncrementalRetrainer(RetrainConfig config,
                       nmt::TranslationConfig translation);

  /// Fine-tune the given (src, dst) pairs of `graph` on fresh normal-
  /// operation corpora and return the candidate graph. `languages` must
  /// align with the graph's sensor nodes. Pairs without an active edge are
  /// recorded as failures. Throws robust::Interrupted on an injected abort
  /// (simulated crash: no candidate graph exists afterwards).
  core::MvrGraph retrain(
      const core::MvrGraph& graph,
      const std::vector<core::SensorLanguage>& languages,
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      RetrainReport* report = nullptr);

  const RetrainConfig& config() const { return config_; }

 private:
  RetrainConfig config_;
  nmt::TranslationConfig translation_;
};

/// Miner pair enumeration order: the 0-based index of ordered pair
/// (src, dst) among all N(N-1) directed pairs — the sidecar artifact
/// numbering shared by the miner's checkpoint journal.
std::size_t pair_index_of(std::size_t src, std::size_t dst,
                          std::size_t sensor_count);

}  // namespace desmine::lifecycle
