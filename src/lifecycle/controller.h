// The offline half of the continual mining lifecycle (DESIGN.md §14).
//
// The loop:
//   observe ──> DriftMonitor verdicts ──> build_candidate (incremental
//   retrain + atomic candidate artifact) ──> serve::SessionManager::
//   begin_shadow / promote / rollback ──> rebase on the promoted graph
//
// The controller owns the active framework copy, the drift monitor, and the
// retrainer; the serving half (shadow scoring, gate, hot promotion) lives in
// serve::SessionManager so the two halves can run in different processes —
// the only artifact they exchange is the candidate framework file.
//
// Observation granularity is a "period" — any contiguous slice of traffic,
// typically one day. Each observe() call runs one batch detection pass with
// the ACTIVE graph, folds per-edge decode scores and break rates plus
// per-sensor <unk> rates into the DriftMonitor, and reports the period.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.h"
#include "lifecycle/drift_monitor.h"
#include "lifecycle/retrainer.h"
#include "serve/shadow_scorer.h"

namespace desmine::lifecycle {

/// Everything the lifecycle loop is tuned by — the `lifecycle` section of
/// io::RunConfig. `shadow` is mirrored into serve::ServeConfig::shadow by
/// the config loader so one file drives both halves of the loop.
struct LifecycleConfig {
  DriftConfig drift{};
  RetrainConfig retrain{};
  serve::ShadowConfig shadow{};
};

class LifecycleController {
 public:
  /// `framework` must be fitted (the active mined state). The controller
  /// copies it; the caller's instance is never mutated.
  LifecycleController(const core::Framework& framework,
                      LifecycleConfig config);

  /// Summary of one observed traffic period.
  struct PeriodReport {
    std::size_t windows = 0;
    double mean_score = 0.0;   ///< mean anomaly score over the period
    std::size_t drifting = 0;  ///< edges in kDrifting after this period
    std::size_t drifted = 0;   ///< edges in kDrifted after this period
  };

  /// Feed one period of live traffic (must contain every kept sensor).
  PeriodReport observe(const core::MultivariateSeries& period);

  /// Outcome of one candidate build.
  struct CandidateReport {
    RetrainReport retrain;
    std::string path;             ///< the atomic candidate artifact
    std::size_t edges_total = 0;  ///< active graph edges (retrain fraction)
  };

  /// Incrementally retrain the currently-drifted pairs on fresh normal-
  /// operation data and persist the candidate framework to `path`
  /// (CRC-trailed, temp+fsync+rename — ready for begin_shadow). Throws
  /// PreconditionError when no edge is drifted and robust::Interrupted on
  /// an injected retrain abort (no artifact is written in either case).
  CandidateReport build_candidate(const core::MultivariateSeries& train,
                                  const core::MultivariateSeries& dev,
                                  const std::string& path);

  /// Adopt a promoted candidate as the new active state: replaces the
  /// framework copy and restarts drift monitoring against the new
  /// baselines.
  void rebase(const core::Framework& framework);

  const DriftMonitor& monitor() const { return monitor_; }
  const core::Framework& framework() const { return framework_; }
  const LifecycleConfig& config() const { return config_; }

  /// (src, dst) pairs currently flagged kDrifted.
  std::vector<std::pair<std::size_t, std::size_t>> drifted_pairs() const {
    return monitor_.drifted_pairs();
  }

 private:
  /// Aligned per-sensor languages (train/dev corpora) for the retrainer.
  std::vector<core::SensorLanguage> languages(
      const core::MultivariateSeries& train,
      const core::MultivariateSeries& dev) const;

  LifecycleConfig config_;
  core::Framework framework_;
  DriftMonitor monitor_;
};

}  // namespace desmine::lifecycle
