#include "lifecycle/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::lifecycle {

const char* to_string(DriftState state) {
  switch (state) {
    case DriftState::kStable:
      return "stable";
    case DriftState::kDrifting:
      return "drifting";
    case DriftState::kDrifted:
      return "drifted";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(const core::MvrGraph& graph,
                           const core::DetectorConfig& detector,
                           DriftConfig config)
    : config_(config) {
  DESMINE_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                  "ewma_alpha must lie in (0, 1]");
  DESMINE_EXPECTS(config_.hysteresis > 0, "hysteresis must be >= 1");
  DESMINE_EXPECTS(config_.drifting_drop <= config_.drifted_drop,
                  "drifting_drop must not exceed drifted_drop");
  for (const core::MvrEdge& edge : graph.edges()) {
    if (edge.bleu < detector.valid_lo || edge.bleu >= detector.valid_hi) {
      continue;  // same band rule as AnomalyDetector / make_generation
    }
    EdgeDrift e;
    e.src = edge.src;
    e.dst = edge.dst;
    e.baseline = edge.bleu;
    e.ewma_bleu = edge.bleu;  // start at the mined baseline (zero deficit)
    edges_.push_back(e);
  }
  target_.assign(edges_.size(), DriftState::kStable);
  streak_.assign(edges_.size(), 0);
  sensor_unk_.assign(graph.sensor_count(),
                     std::numeric_limits<double>::quiet_NaN());
  obs::metrics().gauge("lifecycle.drift.stable")
      .set(static_cast<double>(edges_.size()));
  obs::metrics().gauge("lifecycle.drift.drifting").set(0.0);
  obs::metrics().gauge("lifecycle.drift.drifted").set(0.0);
}

void DriftMonitor::observe(const std::vector<EdgeObservation>& edges,
                           const std::vector<double>& sensor_unk) {
  DESMINE_EXPECTS(edges.size() == edges_.size(),
                  "edge observations must align with the monitored edges");
  DESMINE_EXPECTS(sensor_unk.empty() || sensor_unk.size() == sensor_unk_.size(),
                  "sensor_unk must cover every sensor node (or be empty)");
  const double a = config_.ewma_alpha;
  for (std::size_t k = 0; k < sensor_unk.size(); ++k) {
    sensor_unk_[k] = std::isnan(sensor_unk_[k])
                         ? sensor_unk[k]
                         : (1.0 - a) * sensor_unk_[k] + a * sensor_unk[k];
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    EdgeDrift& e = edges_[i];
    const EdgeObservation& obs = edges[i];
    if (!std::isnan(obs.bleu)) {
      e.ewma_bleu = (1.0 - a) * e.ewma_bleu + a * obs.bleu;
      e.ewma_break_rate =
          (1.0 - a) * e.ewma_break_rate + a * obs.break_rate;
      ++e.observations;
    }
    const double src_unk = sensor_unk_[e.src];
    const double dst_unk = sensor_unk_[e.dst];
    e.unk_rate = std::max(std::isnan(src_unk) ? 0.0 : src_unk,
                          std::isnan(dst_unk) ? 0.0 : dst_unk);

    const double deficit = e.baseline - e.ewma_bleu;
    DriftState target = DriftState::kStable;
    if (deficit >= config_.drifted_drop) {
      target = DriftState::kDrifted;
    } else if (deficit >= config_.drifting_drop ||
               e.ewma_break_rate >= config_.break_rate ||
               e.unk_rate >= config_.max_unk_rate) {
      target = DriftState::kDrifting;
    }

    // Hysteresis: only a streak of `hysteresis` consecutive periods agreeing
    // on the same new verdict commits a transition (and never before
    // min_observations real scores have accumulated).
    if (target == e.state) {
      streak_[i] = 0;
      target_[i] = target;
      continue;
    }
    streak_[i] = (target == target_[i]) ? streak_[i] + 1 : 1;
    target_[i] = target;
    if (streak_[i] >= config_.hysteresis &&
        e.observations >= config_.min_observations) {
      e.state = target;
      streak_[i] = 0;
    }
  }
  obs::metrics().gauge("lifecycle.drift.stable")
      .set(static_cast<double>(count(DriftState::kStable)));
  obs::metrics().gauge("lifecycle.drift.drifting")
      .set(static_cast<double>(count(DriftState::kDrifting)));
  obs::metrics().gauge("lifecycle.drift.drifted")
      .set(static_cast<double>(count(DriftState::kDrifted)));
}

std::vector<std::pair<std::size_t, std::size_t>> DriftMonitor::drifted_pairs()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const EdgeDrift& e : edges_) {
    if (e.state == DriftState::kDrifted) pairs.emplace_back(e.src, e.dst);
  }
  return pairs;
}

std::size_t DriftMonitor::count(DriftState state) const {
  std::size_t n = 0;
  for (const EdgeDrift& e : edges_) {
    if (e.state == state) ++n;
  }
  return n;
}

}  // namespace desmine::lifecycle
