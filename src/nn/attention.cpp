#include "nn/attention.h"

#include <cmath>

#include "util/error.h"

namespace desmine::nn {

LuongAttention::LuongAttention(const std::string& name, std::size_t hidden,
                               util::Rng& rng, float init_scale,
                               AttentionScore score)
    : hidden_(hidden),
      score_(score),
      wa_(name + ".Wa", hidden, hidden),
      wc_(name + ".Wc", 2 * hidden, hidden) {
  DESMINE_EXPECTS(hidden > 0, "attention hidden must be > 0");
  wa_.value.init_uniform(rng, init_scale);
  wc_.value.init_uniform(rng, init_scale);
}

void LuongAttention::begin(const std::vector<tensor::Matrix>* encoder_outputs,
                           std::size_t batch) {
  DESMINE_EXPECTS(encoder_outputs != nullptr && !encoder_outputs->empty(),
                  "attention needs encoder outputs");
  enc_ = encoder_outputs;
  batch_ = batch;
  transformed_.clear();
  transformed_.reserve(enc_->size());
  for (const auto& e : *enc_) {
    DESMINE_EXPECTS(e.rows() == batch && e.cols() == hidden_,
                    "encoder output shape");
    if (score_ == AttentionScore::kGeneral) {
      tensor::Matrix t(batch, hidden_);
      tensor::matmul(e, wa_.value, t);
      transformed_.push_back(std::move(t));
    } else {
      transformed_.push_back(e);  // dot score: transformed == encoder output
    }
  }
  d_encoder_.assign(enc_->size(), tensor::Matrix(batch, hidden_));
  steps_.clear();
  backward_cursor_ = 0;
}

tensor::Matrix LuongAttention::step(const tensor::Matrix& h_dec) {
  DESMINE_EXPECTS(enc_ != nullptr, "begin() not called");
  DESMINE_EXPECTS(h_dec.rows() == batch_ && h_dec.cols() == hidden_,
                  "h_dec shape");
  const std::size_t S = enc_->size();

  StepCache cache;
  cache.h_dec = h_dec;

  // Scores: score(b, s) = <h_dec[b], (enc[s] Wa)[b]>.
  cache.align = tensor::Matrix(batch_, S);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& tr = transformed_[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* hd = h_dec.row(b);
      const float* tv = tr.row(b);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) dot += hd[k] * tv[k];
      cache.align(b, s) = dot;
    }
  }
  tensor::softmax_rows(cache.align);

  // Context vector and [context; h_dec] concat.
  cache.concat = tensor::Matrix(batch_, 2 * hidden_);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& e = (*enc_)[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      const float w = cache.align(b, s);
      if (w == 0.0f) continue;
      float* ctx = cache.concat.row(b);
      const float* ev = e.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) ctx[k] += w * ev[k];
    }
  }
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = cache.concat.row(b) + hidden_;
    const float* hd = h_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = hd[k];
  }

  cache.attn = tensor::Matrix(batch_, hidden_);
  tensor::matmul(cache.concat, wc_.value, cache.attn);
  cache.attn.apply([](float v) { return std::tanh(v); });

  steps_.push_back(std::move(cache));
  backward_cursor_ = steps_.size();
  return steps_.back().attn;
}

const tensor::Matrix& LuongAttention::alignment(std::size_t t) const {
  DESMINE_EXPECTS(t < steps_.size(), "alignment step out of range");
  return steps_[t].align;
}

tensor::Matrix LuongAttention::backward_step(const tensor::Matrix& d_attn) {
  DESMINE_EXPECTS(backward_cursor_ > 0, "no forward step left to backprop");
  const StepCache& cache = steps_[--backward_cursor_];
  const std::size_t S = enc_->size();

  // Through tanh.
  tensor::Matrix dpre = d_attn;
  for (std::size_t idx = 0; idx < dpre.size(); ++idx) {
    const float a = cache.attn.data()[idx];
    dpre.data()[idx] *= (1.0f - a * a);
  }

  // Through the combine layer: attn_pre = concat * Wc.
  tensor::matmul_transA_accum(cache.concat, dpre, wc_.grad);
  tensor::Matrix dconcat(batch_, 2 * hidden_);
  tensor::matmul_transB_accum(dpre, wc_.value, dconcat);

  // Split into dcontext (first H) and dh_dec (second H).
  tensor::Matrix dh_dec(batch_, hidden_);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = dconcat.row(b) + hidden_;
    float* dst = dh_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = src[k];
  }

  // dalign(b,s) = <dcontext[b], enc[s][b]>; denc[s][b] += align(b,s) dcontext[b].
  tensor::Matrix dalign(batch_, S);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& e = (*enc_)[s];
    tensor::Matrix& de = d_encoder_[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* dctx = dconcat.row(b);
      const float* ev = e.row(b);
      float* dev = de.row(b);
      const float w = cache.align(b, s);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) {
        dot += dctx[k] * ev[k];
        dev[k] += w * dctx[k];
      }
      dalign(b, s) = dot;
    }
  }

  // Softmax backward: dscore = align ⊙ (dalign - <align, dalign>).
  tensor::Matrix dscore(batch_, S);
  for (std::size_t b = 0; b < batch_; ++b) {
    float inner = 0.0f;
    for (std::size_t s = 0; s < S; ++s) {
      inner += cache.align(b, s) * dalign(b, s);
    }
    for (std::size_t s = 0; s < S; ++s) {
      dscore(b, s) = cache.align(b, s) * (dalign(b, s) - inner);
    }
  }

  // Through the score: score(b,s) = <h_dec[b], transformed[s][b]>.
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& tr = transformed_[s];
    const tensor::Matrix& e = (*enc_)[s];
    tensor::Matrix& de = d_encoder_[s];
    tensor::Matrix dtr(batch_, hidden_);
    for (std::size_t b = 0; b < batch_; ++b) {
      const float ds = dscore(b, s);
      if (ds == 0.0f) continue;
      const float* hd = cache.h_dec.row(b);
      const float* tv = tr.row(b);
      float* dhd = dh_dec.row(b);
      float* dtv = dtr.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) {
        dhd[k] += ds * tv[k];
        dtv[k] = ds * hd[k];
      }
    }
    if (score_ == AttentionScore::kGeneral) {
      // transformed[s] = enc[s] * Wa:
      //   dWa += enc[s]^T dtr; denc[s] += dtr Wa^T.
      tensor::matmul_transA_accum(e, dtr, wa_.grad);
      tensor::matmul_transB_accum(dtr, wa_.value, de);
    } else {
      de += dtr;  // dot score: transformed == enc
    }
  }

  return dh_dec;
}

tensor::Matrix LuongAttention::infer(const tensor::Matrix& h_dec) const {
  DESMINE_EXPECTS(enc_ != nullptr, "begin() not called");
  const std::size_t B = h_dec.rows();
  DESMINE_EXPECTS(h_dec.cols() == hidden_, "h_dec shape");
  DESMINE_EXPECTS(B == batch_, "infer batch must match begin()");
  const std::size_t S = enc_->size();

  tensor::Matrix align(B, S);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& tr = transformed_[s];
    for (std::size_t b = 0; b < B; ++b) {
      const float* hd = h_dec.row(b);
      const float* tv = tr.row(b);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) dot += hd[k] * tv[k];
      align(b, s) = dot;
    }
  }
  tensor::softmax_rows(align);

  tensor::Matrix concat(B, 2 * hidden_);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::Matrix& e = (*enc_)[s];
    for (std::size_t b = 0; b < B; ++b) {
      const float w = align(b, s);
      if (w == 0.0f) continue;
      float* ctx = concat.row(b);
      const float* ev = e.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) ctx[k] += w * ev[k];
    }
  }
  for (std::size_t b = 0; b < B; ++b) {
    float* dst = concat.row(b) + hidden_;
    const float* hd = h_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = hd[k];
  }

  tensor::Matrix attn(B, hidden_);
  tensor::matmul(concat, wc_.value, attn);
  attn.apply([](float v) { return std::tanh(v); });
  return attn;
}

}  // namespace desmine::nn
