#include "nn/attention.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace desmine::nn {

LuongAttention::LuongAttention(const std::string& name, std::size_t hidden,
                               util::Rng& rng, float init_scale,
                               AttentionScore score, WeightStorage storage)
    : hidden_(hidden),
      score_(score),
      wa_(name + ".Wa", hidden, hidden, storage),
      wc_(name + ".Wc", 2 * hidden, hidden, storage) {
  DESMINE_EXPECTS(hidden > 0, "attention hidden must be > 0");
  if (storage == WeightStorage::kOwned) {
    wa_.value.init_uniform(rng, init_scale);
    wc_.value.init_uniform(rng, init_scale);
  }
}

void LuongAttention::begin(
    const std::vector<tensor::ConstMatrixView>& encoder_outputs,
    std::size_t batch, tensor::Workspace* workspace,
    const std::vector<std::size_t>* source_lengths,
    tensor::Precision precision) {
  DESMINE_EXPECTS(!encoder_outputs.empty(), "attention needs encoder outputs");
  ws_ = workspace != nullptr ? workspace : &own_ws_;
  if (workspace == nullptr) own_ws_.reset();
  enc_.assign(encoder_outputs.begin(), encoder_outputs.end());
  batch_ = batch;
  precision_ = precision;
  if (source_lengths != nullptr) {
    DESMINE_EXPECTS(source_lengths->size() == batch,
                    "one source length per batch row");
    for (const std::size_t len : *source_lengths) {
      DESMINE_EXPECTS(len > 0 && len <= enc_.size(),
                      "source length outside [1, src_len]");
    }
    src_lengths_ = *source_lengths;
  } else {
    src_lengths_.clear();
  }
  transformed_.clear();
  transformed_.reserve(enc_.size());
  for (const tensor::ConstMatrixView e : enc_) {
    DESMINE_EXPECTS(e.rows() == batch && e.cols() == hidden_,
                    "encoder output shape");
    if (score_ == AttentionScore::kGeneral) {
      tensor::MatrixView t = ws_->alloc(batch, hidden_);
      if (precision_ == tensor::Precision::kInt8) {
        tensor::gemm_i8_accum(e, wa_.quantized(), t);  // t is zero-alloc'd
      } else {
        tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kNo, 1.0f, e,
                     wa_.view(), 0.0f, t);
      }
      transformed_.push_back(t);
    } else {
      transformed_.push_back(e);  // dot score: transformed == encoder output
    }
  }
  d_encoder_.clear();
  d_encoder_.reserve(enc_.size());
  for (std::size_t s = 0; s < enc_.size(); ++s) {
    d_encoder_.push_back(ws_->alloc(batch, hidden_));
  }
  steps_.clear();
  backward_cursor_ = 0;
}

void LuongAttention::begin(const std::vector<tensor::Matrix>* encoder_outputs,
                           std::size_t batch, tensor::Workspace* workspace) {
  DESMINE_EXPECTS(encoder_outputs != nullptr, "attention needs encoder outputs");
  std::vector<tensor::ConstMatrixView> views;
  views.reserve(encoder_outputs->size());
  for (const tensor::Matrix& e : *encoder_outputs) views.emplace_back(e);
  begin(views, batch, workspace);
}

tensor::ConstMatrixView LuongAttention::step(tensor::ConstMatrixView h_dec) {
  DESMINE_EXPECTS(!enc_.empty(), "begin() not called");
  DESMINE_EXPECTS(h_dec.rows() == batch_ && h_dec.cols() == hidden_,
                  "h_dec shape");
  const std::size_t S = enc_.size();

  StepCache cache;
  // h_dec is copied so the cache survives transient caller buffers.
  cache.h_dec = ws_->alloc(batch_, hidden_);
  cache.h_dec.copy_from(h_dec);

  // Scores: score(b, s) = <h_dec[b], (enc[s] Wa)[b]>.
  cache.align = ws_->alloc(batch_, S);
  const bool masked = !src_lengths_.empty();
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView tr = transformed_[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      if (masked && s >= src_lengths_[b]) {
        // Padded position: -inf survives the row max untouched and its
        // exp() contributes an exact 0.0f to the softmax sum, so the valid
        // prefix's weights match the compact (unpadded) decode bit for bit.
        cache.align(b, s) = -std::numeric_limits<float>::infinity();
        continue;
      }
      const float* hd = h_dec.row(b);
      const float* tv = tr.row(b);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) dot += hd[k] * tv[k];
      cache.align(b, s) = dot;
    }
  }
  tensor::softmax_rows(cache.align);

  // Context vector and [context; h_dec] concat (relies on the zeroed alloc
  // for the skipped zero-weight accumulations).
  cache.concat = ws_->alloc(batch_, 2 * hidden_);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView e = enc_[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      const float w = cache.align(b, s);
      if (w == 0.0f) continue;
      float* ctx = cache.concat.row(b);
      const float* ev = e.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) ctx[k] += w * ev[k];
    }
  }
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = cache.concat.row(b) + hidden_;
    const float* hd = h_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = hd[k];
  }

  cache.attn = ws_->alloc(batch_, hidden_);
  if (precision_ == tensor::Precision::kInt8) {
    tensor::gemm_i8_accum(cache.concat, wc_.quantized(), cache.attn);
  } else {
    tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kNo, 1.0f,
                 cache.concat, wc_.view(), 0.0f, cache.attn);
  }
  cache.attn.apply([](float v) { return std::tanh(v); });

  steps_.push_back(cache);
  backward_cursor_ = steps_.size();
  return steps_.back().attn;
}

tensor::ConstMatrixView LuongAttention::alignment(std::size_t t) const {
  DESMINE_EXPECTS(t < steps_.size(), "alignment step out of range");
  return steps_[t].align;
}

tensor::MatrixView LuongAttention::backward_step(
    tensor::ConstMatrixView d_attn) {
  DESMINE_EXPECTS(backward_cursor_ > 0, "no forward step left to backprop");
  const StepCache& cache = steps_[--backward_cursor_];
  const std::size_t S = enc_.size();

  // dh_dec is the step's output and must outlive the rewind below; the rest
  // is scratch reclaimed when this step's backward is done.
  tensor::MatrixView dh_dec = ws_->alloc(batch_, hidden_);
  const tensor::Workspace::Checkpoint scratch = ws_->checkpoint();

  // Through tanh.
  tensor::MatrixView dpre = ws_->alloc(batch_, hidden_);
  dpre.copy_from(d_attn);
  for (std::size_t idx = 0; idx < dpre.size(); ++idx) {
    const float a = cache.attn.data()[idx];
    dpre.data()[idx] *= (1.0f - a * a);
  }

  // Through the combine layer: attn_pre = concat * Wc.
  tensor::gemm(tensor::Transpose::kTrans, tensor::Transpose::kNo, 1.0f,
               cache.concat, dpre, 1.0f, wc_.grad);
  tensor::MatrixView dconcat = ws_->alloc(batch_, 2 * hidden_);
  tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kTrans, 1.0f, dpre,
               wc_.view(), 0.0f, dconcat);

  // Split into dcontext (first H) and dh_dec (second H).
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = dconcat.row(b) + hidden_;
    float* dst = dh_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = src[k];
  }

  // dalign(b,s) = <dcontext[b], enc[s][b]>; denc[s][b] += align(b,s) dcontext[b].
  tensor::MatrixView dalign = ws_->alloc(batch_, S);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView e = enc_[s];
    tensor::MatrixView de = d_encoder_[s];
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* dctx = dconcat.row(b);
      const float* ev = e.row(b);
      float* dev = de.row(b);
      const float w = cache.align(b, s);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) {
        dot += dctx[k] * ev[k];
        dev[k] += w * dctx[k];
      }
      dalign(b, s) = dot;
    }
  }

  // Softmax backward: dscore = align ⊙ (dalign - <align, dalign>).
  tensor::MatrixView dscore = ws_->alloc(batch_, S);
  for (std::size_t b = 0; b < batch_; ++b) {
    float inner = 0.0f;
    for (std::size_t s = 0; s < S; ++s) {
      inner += cache.align(b, s) * dalign(b, s);
    }
    for (std::size_t s = 0; s < S; ++s) {
      dscore(b, s) = cache.align(b, s) * (dalign(b, s) - inner);
    }
  }

  // Through the score: score(b,s) = <h_dec[b], transformed[s][b]>. dtr is
  // re-zeroed per source position, matching the fresh zero matrix the
  // pre-arena code allocated (zero rows are skipped via ds == 0).
  tensor::MatrixView dtr = ws_->alloc(batch_, hidden_);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView tr = transformed_[s];
    const tensor::ConstMatrixView e = enc_[s];
    tensor::MatrixView de = d_encoder_[s];
    dtr.zero();
    for (std::size_t b = 0; b < batch_; ++b) {
      const float ds = dscore(b, s);
      if (ds == 0.0f) continue;
      const float* hd = cache.h_dec.row(b);
      const float* tv = tr.row(b);
      float* dhd = dh_dec.row(b);
      float* dtv = dtr.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) {
        dhd[k] += ds * tv[k];
        dtv[k] = ds * hd[k];
      }
    }
    if (score_ == AttentionScore::kGeneral) {
      // transformed[s] = enc[s] * Wa:
      //   dWa += enc[s]^T dtr; denc[s] += dtr Wa^T.
      tensor::gemm(tensor::Transpose::kTrans, tensor::Transpose::kNo, 1.0f, e,
                   dtr, 1.0f, wa_.grad);
      tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kTrans, 1.0f,
                   dtr, wa_.view(), 1.0f, de);
    } else {
      de += dtr;  // dot score: transformed == enc
    }
  }

  ws_->rewind(scratch);
  return dh_dec;
}

tensor::Matrix LuongAttention::infer(const tensor::Matrix& h_dec) const {
  DESMINE_EXPECTS(!enc_.empty(), "begin() not called");
  const std::size_t B = h_dec.rows();
  DESMINE_EXPECTS(h_dec.cols() == hidden_, "h_dec shape");
  DESMINE_EXPECTS(B == batch_, "infer batch must match begin()");
  const std::size_t S = enc_.size();

  tensor::Matrix align(B, S);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView tr = transformed_[s];
    for (std::size_t b = 0; b < B; ++b) {
      const float* hd = h_dec.row(b);
      const float* tv = tr.row(b);
      float dot = 0.0f;
      for (std::size_t k = 0; k < hidden_; ++k) dot += hd[k] * tv[k];
      align(b, s) = dot;
    }
  }
  tensor::softmax_rows(align);

  tensor::Matrix concat(B, 2 * hidden_);
  for (std::size_t s = 0; s < S; ++s) {
    const tensor::ConstMatrixView e = enc_[s];
    for (std::size_t b = 0; b < B; ++b) {
      const float w = align(b, s);
      if (w == 0.0f) continue;
      float* ctx = concat.row(b);
      const float* ev = e.row(b);
      for (std::size_t k = 0; k < hidden_; ++k) ctx[k] += w * ev[k];
    }
  }
  for (std::size_t b = 0; b < B; ++b) {
    float* dst = concat.row(b) + hidden_;
    const float* hd = h_dec.row(b);
    for (std::size_t k = 0; k < hidden_; ++k) dst[k] = hd[k];
  }

  tensor::Matrix attn(B, hidden_);
  if (precision_ == tensor::Precision::kInt8) {
    tensor::gemm_i8_accum(concat, wc_.quantized(), attn);
  } else {
    tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kNo, 1.0f, concat,
                 wc_.view(), 0.0f, attn);
  }
  attn.apply([](float v) { return std::tanh(v); });
  return attn;
}

}  // namespace desmine::nn
