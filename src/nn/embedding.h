// Token embedding lookup with manual backward.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace desmine::nn {

/// Maps token ids to dense rows of a trainable (vocab x dim) table.
class Embedding {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng,
            float init_scale = 0.1f,
            WeightStorage storage = WeightStorage::kOwned);

  /// Look up a batch of ids; returns (batch x dim). Ids must be < vocab.
  tensor::Matrix forward(const std::vector<std::int32_t>& ids) const;

  /// Same lookup into a pre-shaped (batch x dim) buffer (overwritten).
  void forward_into(const std::vector<std::int32_t>& ids,
                    tensor::MatrixView out) const;

  /// Accumulate gradient for the ids used in the matching forward call.
  void backward(const std::vector<std::int32_t>& ids,
                tensor::ConstMatrixView grad_out);

  void register_params(ParamRegistry& reg) { reg.add(&table_); }

  std::size_t vocab_size() const { return table_.rows(); }
  std::size_t dim() const { return table_.cols(); }
  Param& table() { return table_; }

 private:
  Param table_;
};

}  // namespace desmine::nn
