// Fully connected layer with manual backward.
#pragma once

#include "nn/param.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace desmine::nn {

/// y = x W + b, with x: (batch x in), W: (in x out), b: (1 x out).
///
/// The layer is stateless across calls: backward takes the saved input, so a
/// single Linear can be applied at many timesteps and back-propagated per
/// step (gradients accumulate into the shared parameters). The *_into
/// variants write into caller-provided (typically workspace-backed) buffers;
/// the owning variants wrap them.
class Linear {
 public:
  Linear(std::string name, std::size_t in, std::size_t out, util::Rng& rng,
         bool with_bias = true, float init_scale = 0.1f,
         WeightStorage storage = WeightStorage::kOwned);

  tensor::Matrix forward(const tensor::Matrix& x) const;

  /// y = x W + b into a pre-shaped (batch x out) buffer (overwritten).
  /// `precision` kInt8 runs the weight GEMM through the quantized decode
  /// path (per-tensor absmax W, per-row dynamic x; inference only — the
  /// quantized product has no backward).
  void forward_into(tensor::ConstMatrixView x, tensor::MatrixView y,
                    tensor::Precision precision =
                        tensor::Precision::kF32) const;

  /// Given dL/dy and the forward input, accumulate parameter gradients and
  /// return dL/dx.
  tensor::Matrix backward(const tensor::Matrix& x,
                          const tensor::Matrix& grad_out);

  /// Same, writing dL/dx into a pre-shaped (batch x in) buffer
  /// (overwritten).
  void backward_into(tensor::ConstMatrixView x, tensor::ConstMatrixView grad_out,
                     tensor::MatrixView grad_in);

  void register_params(ParamRegistry& reg) {
    reg.add(&weight_);
    if (with_bias_) reg.add(&bias_);
  }

  std::size_t in_dim() const { return weight_.rows(); }
  std::size_t out_dim() const { return weight_.cols(); }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  Param weight_;
  Param bias_;
  bool with_bias_;
};

}  // namespace desmine::nn
