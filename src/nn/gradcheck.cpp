#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace desmine::nn {

GradCheckReport gradient_check(ParamRegistry& registry,
                               const std::function<double(bool)>& loss_fn,
                               std::size_t probes_per_param, double epsilon) {
  registry.zero_grad();
  (void)loss_fn(true);  // fill analytic gradients

  // Snapshot analytic gradients before finite differencing mutates values.
  std::vector<tensor::Matrix> analytic;
  analytic.reserve(registry.params().size());
  for (const Param* p : registry.params()) analytic.push_back(p->grad);

  GradCheckReport report;
  for (std::size_t pi = 0; pi < registry.params().size(); ++pi) {
    Param* p = registry.params()[pi];
    const std::size_t n = p->value.size();
    // Probe evenly spaced entries so both early and late rows are covered.
    const std::size_t probes = std::min(probes_per_param, n);
    for (std::size_t q = 0; q < probes; ++q) {
      const std::size_t k = (n * q + n / 2) / std::max<std::size_t>(probes, 1);
      const std::size_t idx = std::min(k, n - 1);
      const float original = p->value.data()[idx];

      p->value.data()[idx] = original + static_cast<float>(epsilon);
      const double loss_plus = loss_fn(false);
      p->value.data()[idx] = original - static_cast<float>(epsilon);
      const double loss_minus = loss_fn(false);
      p->value.data()[idx] = original;

      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double exact = analytic[pi].data()[idx];
      const double scale =
          std::max({std::abs(numeric), std::abs(exact), 1e-4});
      const double rel = std::abs(numeric - exact) / scale;
      ++report.checked;
      if (rel > report.max_rel_error) {
        report.max_rel_error = rel;
        report.worst_param = p->name;
      }
    }
  }
  return report;
}

}  // namespace desmine::nn
