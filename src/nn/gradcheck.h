// Numerical gradient checking — the property test that keeps the manual
// backprop honest.
#pragma once

#include <functional>
#include <string>

#include "nn/param.h"

namespace desmine::nn {

struct GradCheckReport {
  std::size_t checked = 0;       ///< number of scalar parameters probed
  double max_rel_error = 0.0;    ///< worst relative error seen
  std::string worst_param;       ///< parameter holding the worst error
};

/// Compare analytic gradients against central finite differences.
///
/// `loss_fn` must (1) be deterministic, (2) recompute the forward pass from
/// the registry's current parameter values, and (3) when `accumulate` is
/// true, run backward and fill the parameter gradients. The checker first
/// calls loss_fn(true) to obtain analytic gradients, then perturbs up to
/// `probes_per_param` entries of each parameter by ±epsilon and compares.
GradCheckReport gradient_check(ParamRegistry& registry,
                               const std::function<double(bool)>& loss_fn,
                               std::size_t probes_per_param = 4,
                               double epsilon = 1e-3);

}  // namespace desmine::nn
