// Adam optimizer (Kingma & Ba 2015) over a ParamRegistry.
#pragma once

#include <vector>

#include "nn/param.h"

namespace desmine::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// One bias-corrected Adam update over equal-shaped buffers: updates the
/// moment estimates `m`/`v` in place and applies the step to `value`.
/// `lr_t` is the bias-corrected rate lr * sqrt(1-beta2^t) / (1-beta1^t).
/// View-based so values/moments can live in owned matrices or arena slices.
void adam_apply(tensor::MatrixView value, tensor::ConstMatrixView grad,
                tensor::MatrixView m, tensor::MatrixView v,
                const AdamConfig& config, float lr_t);

/// Owns first/second-moment slots matching the registry's parameter order.
/// The registry must not change after construction.
class Adam {
 public:
  explicit Adam(ParamRegistry& registry, AdamConfig config = {});

  /// Apply one update using the gradients currently stored in the params,
  /// then leave the gradients untouched (caller decides when to zero them).
  void step();

  std::size_t steps_taken() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(float lr) { config_.lr = lr; }

 private:
  ParamRegistry& registry_;
  AdamConfig config_;
  std::size_t t_ = 0;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
};

}  // namespace desmine::nn
