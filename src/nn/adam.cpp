#include "nn/adam.h"

#include <cmath>

#include "util/error.h"

namespace desmine::nn {

Adam::Adam(ParamRegistry& registry, AdamConfig config)
    : registry_(registry), config_(config) {
  DESMINE_EXPECTS(config.lr > 0.0f, "learning rate must be positive");
  m_.reserve(registry.params().size());
  v_.reserve(registry.params().size());
  for (const Param* p : registry.params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  const auto lr_t = static_cast<float>(config_.lr * std::sqrt(bc2) / bc1);

  auto& params = registry_.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* value = params[i]->value.data();
    const float* grad = params[i]->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = params[i]->value.size();
    for (std::size_t k = 0; k < n; ++k) {
      m[k] = config_.beta1 * m[k] + (1.0f - config_.beta1) * grad[k];
      v[k] = config_.beta2 * v[k] + (1.0f - config_.beta2) * grad[k] * grad[k];
      value[k] -= lr_t * m[k] / (std::sqrt(v[k]) + config_.eps);
    }
  }
}

}  // namespace desmine::nn
