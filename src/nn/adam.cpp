#include "nn/adam.h"

#include <cmath>

#include "util/error.h"

namespace desmine::nn {

Adam::Adam(ParamRegistry& registry, AdamConfig config)
    : registry_(registry), config_(config) {
  DESMINE_EXPECTS(config.lr > 0.0f, "learning rate must be positive");
  m_.reserve(registry.params().size());
  v_.reserve(registry.params().size());
  for (const Param* p : registry.params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void adam_apply(tensor::MatrixView value, tensor::ConstMatrixView grad,
                tensor::MatrixView m_view, tensor::MatrixView v_view,
                const AdamConfig& config, float lr_t) {
  DESMINE_EXPECTS(value.same_shape(grad) && value.same_shape(m_view) &&
                      value.same_shape(v_view),
                  "adam_apply shape mismatch");
  float* val = value.data();
  const float* g = grad.data();
  float* m = m_view.data();
  float* v = v_view.data();
  const std::size_t n = value.size();
  for (std::size_t k = 0; k < n; ++k) {
    m[k] = config.beta1 * m[k] + (1.0f - config.beta1) * g[k];
    v[k] = config.beta2 * v[k] + (1.0f - config.beta2) * g[k] * g[k];
    val[k] -= lr_t * m[k] / (std::sqrt(v[k]) + config.eps);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  const auto lr_t = static_cast<float>(config_.lr * std::sqrt(bc2) / bc1);

  auto& params = registry_.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    adam_apply(params[i]->value, params[i]->grad, m_[i], v_[i], config_, lr_t);
  }
}

}  // namespace desmine::nn
