// Trainable parameters and the registry optimizers iterate over.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "util/error.h"

namespace desmine::nn {

/// Where a model's weights live (ISSUE 9, DESIGN.md §15).
///  * kOwned    — each Param allocates heap value + grad tensors (training
///                and v1–v3 stream loads).
///  * kDeferred — no allocation at construction; the weight bytes arrive
///                later via Param::bind(), typically views into an mmap'd
///                v4 artifact. Deferred models are inference-only.
enum class WeightStorage { kOwned, kDeferred };

/// One model tensor: an owned value/gradient pair (training), or a shape
/// plus a bound read-only view over external storage (mapped serving).
///
/// Every forward kernel reads weights through view(), which aliases the
/// bound storage when present and the owned heap matrix otherwise — the
/// same bytes flow through the same kernels either way, so a mapped decode
/// is bit-identical to the heap decode of the same artifact.
struct Param {
  Param() = default;
  Param(std::string name, std::size_t rows, std::size_t cols,
        WeightStorage storage = WeightStorage::kOwned)
      : name(std::move(name)), rows_(rows), cols_(cols) {
    if (storage == WeightStorage::kOwned) {
      value = tensor::Matrix(rows, cols);
      grad = tensor::Matrix(rows, cols);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }

  /// Read path for forward/inference kernels.
  tensor::ConstMatrixView view() const {
    return bound_.data() != nullptr ? bound_ : tensor::ConstMatrixView(value);
  }

  /// Read path for the int8 decode kernels: a lazily-materialized per-tensor
  /// absmax quantization of view() (DESIGN.md §16). The first call quantizes
  /// and caches; later calls return the cache. Materialization is
  /// thread-safe; like bind(), invalidation must not race live readers.
  const tensor::QuantizedTensor& quantized() const;

  /// Drop the cached int8 view because the weight bytes changed. Called by
  /// bind() and zero_grad(), which every optimizer loop runs before the next
  /// forward — so training naturally re-materializes a fresh view.
  void invalidate_quantized() const;

  /// True when this Param owns mutable storage the optimizer may update.
  bool trainable() const { return !value.empty(); }

  /// Alias external read-only storage (mmap'd artifact pages). The storage
  /// must match this Param's shape and outlive every view() reader; the
  /// owner (io::ArtifactMap) pins it via nmt::TranslationModel.
  void bind(tensor::ConstMatrixView external) {
    DESMINE_EXPECTS(external.rows() == rows_ && external.cols() == cols_,
                    "bound storage shape mismatch for " + name);
    bound_ = external;
    invalidate_quantized();
  }

  void zero_grad() {
    grad.zero();
    invalidate_quantized();
  }

  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  tensor::ConstMatrixView bound_;
  // shared_ptr (not a plain member) keeps Param copyable/movable and lets
  // concurrent readers hold the materialized view cheaply.
  mutable std::shared_ptr<const tensor::QuantizedTensor> quant_;
};

/// Non-owning list of a model's parameters, in a stable order.
///
/// Layers register their Params once at construction; the optimizer and the
/// gradient checker walk the same list, so parameter order is identical
/// between them (required for reproducibility).
class ParamRegistry {
 public:
  void add(Param* p) { params_.push_back(p); }
  void add_all(const ParamRegistry& other) {
    params_.insert(params_.end(), other.params_.begin(), other.params_.end());
  }

  std::vector<Param*>& params() { return params_; }
  const std::vector<Param*>& params() const { return params_; }

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  /// Total number of scalar parameters.
  std::size_t scalar_count() const {
    std::size_t n = 0;
    for (const Param* p : params_) n += p->size();
    return n;
  }

  /// Global L2 norm of all gradients.
  double grad_norm() const;

  /// Scale all gradients so the global norm is at most `max_norm`.
  void clip_grad_norm(double max_norm);

 private:
  std::vector<Param*> params_;
};

}  // namespace desmine::nn
