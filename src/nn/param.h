// Trainable parameters and the registry optimizers iterate over.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace desmine::nn {

/// One trainable tensor: value plus accumulated gradient of equal shape.
struct Param {
  Param() = default;
  Param(std::string name, std::size_t rows, std::size_t cols)
      : name(std::move(name)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }

  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;
};

/// Non-owning list of a model's parameters, in a stable order.
///
/// Layers register their Params once at construction; the optimizer and the
/// gradient checker walk the same list, so parameter order is identical
/// between them (required for reproducibility).
class ParamRegistry {
 public:
  void add(Param* p) { params_.push_back(p); }
  void add_all(const ParamRegistry& other) {
    params_.insert(params_.end(), other.params_.begin(), other.params_.end());
  }

  std::vector<Param*>& params() { return params_; }
  const std::vector<Param*>& params() const { return params_; }

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  /// Total number of scalar parameters.
  std::size_t scalar_count() const {
    std::size_t n = 0;
    for (const Param* p : params_) n += p->value.size();
    return n;
  }

  /// Global L2 norm of all gradients.
  double grad_norm() const;

  /// Scale all gradients so the global norm is at most `max_norm`.
  void clip_grad_norm(double max_norm);

 private:
  std::vector<Param*> params_;
};

}  // namespace desmine::nn
