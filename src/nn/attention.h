// Luong-style "general" attention (Effective Approaches to Attention-based
// NMT, Luong et al. 2015 — reference [23] of the paper).
//
// score(h_dec, h_enc) = h_dec^T (Wa h_enc); alignment = softmax over source
// positions; context = alignment-weighted sum of encoder outputs; the
// attentional hidden state is h~ = tanh(Wc [context; h_dec]).
//
// The module is driven per decoder step (forward) and then in exact reverse
// order (backward_step), mirroring how the decoder interleaves it with the
// LSTM stack. Gradients w.r.t. the encoder outputs accumulate across steps
// and are handed back once at the end.
//
// Per-step caches live in a tensor::Workspace handed to begin() (or an
// internal fallback arena); transient backward scratch is reclaimed via
// checkpoint/rewind inside each backward_step. Views returned by step()/
// backward_step() stay valid until that workspace is next rewound by its
// owner.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace desmine::nn {

/// Luong scoring function variants. kGeneral is the paper's default;
/// kDot drops Wa entirely (score = <h_dec, h_enc>), trading a parameter
/// matrix for speed (ablated in bench_ablation_nmt_settings).
enum class AttentionScore { kGeneral, kDot };

class LuongAttention {
 public:
  LuongAttention(const std::string& name, std::size_t hidden, util::Rng& rng,
                 float init_scale = 0.1f,
                 AttentionScore score = AttentionScore::kGeneral,
                 WeightStorage storage = WeightStorage::kOwned);

  /// Bind the encoder outputs (one (batch x H) view per source position) for
  /// the coming decode. The viewed storage must outlive the sequence.
  /// `workspace`, if given, backs the per-step caches and encoder-gradient
  /// accumulators (never rewound here — the owner rewinds between
  /// sequences); otherwise an internal arena is used and reset here.
  /// `source_lengths`, if given, holds one true source length per batch row
  /// (rows were encoded in lock-step and padded to the longest): step() then
  /// pins align(b, s) to -inf for s >= source_lengths[b] before the softmax,
  /// which makes every padded position's weight exactly 0.0f. Because
  /// max(x, -inf) == x and x + 0.0f == x bitwise, the softmax over the valid
  /// prefix — and hence the context and h~ — is bit-identical to running
  /// that row alone at its compact length. Masked decodes are inference
  /// only: backward_step through a -inf score is undefined.
  /// `precision` kInt8 routes the Wa/Wc weight GEMMs of this sequence
  /// through the quantized decode path (inference only).
  void begin(const std::vector<tensor::ConstMatrixView>& encoder_outputs,
             std::size_t batch, tensor::Workspace* workspace = nullptr,
             const std::vector<std::size_t>* source_lengths = nullptr,
             tensor::Precision precision = tensor::Precision::kF32);

  /// Convenience overload over owned encoder outputs. The pointed-to vector
  /// must outlive the sequence.
  void begin(const std::vector<tensor::Matrix>* encoder_outputs,
             std::size_t batch, tensor::Workspace* workspace = nullptr);

  /// One decoder step: consume the decoder top hidden state, return the
  /// attentional hidden state h~ (batch x H).
  tensor::ConstMatrixView step(tensor::ConstMatrixView h_dec);

  /// Alignment weights of forward step t (batch x src_len); for inspection.
  tensor::ConstMatrixView alignment(std::size_t t) const;

  /// Backward for the most recent un-backpropagated step (call in reverse
  /// step order). Takes dL/dh~ and returns dL/dh_dec. Parameter gradients
  /// accumulate; encoder-output gradients accumulate into encoder_grads().
  tensor::MatrixView backward_step(tensor::ConstMatrixView d_attn);

  /// Accumulated dL/d encoder_outputs, valid after all backward_step calls.
  const std::vector<tensor::MatrixView>& encoder_grads() const {
    return d_encoder_;
  }

  /// Inference-only step: compute h~ for a decoder hidden state without
  /// recording a cache entry (beam search runs many hypotheses against one
  /// begin()-bound encoding). Does not interact with backward_step.
  tensor::Matrix infer(const tensor::Matrix& h_dec) const;

  void register_params(ParamRegistry& reg) {
    if (score_ == AttentionScore::kGeneral) reg.add(&wa_);
    reg.add(&wc_);
  }

  std::size_t hidden() const { return hidden_; }
  AttentionScore score_type() const { return score_; }

 private:
  struct StepCache {
    tensor::MatrixView h_dec;   ///< (batch x H), copied into the workspace
    tensor::MatrixView align;   ///< (batch x S)
    tensor::MatrixView concat;  ///< [context; h_dec] (batch x 2H)
    tensor::MatrixView attn;    ///< h~ (batch x H)
  };

  std::size_t hidden_;
  AttentionScore score_;
  Param wa_;  ///< (H x H) for the "general" score (unused for kDot)
  Param wc_;  ///< (2H x H) combine layer

  tensor::Workspace* ws_ = nullptr;
  tensor::Workspace own_ws_;
  std::vector<tensor::ConstMatrixView> enc_;
  std::vector<tensor::ConstMatrixView> transformed_;  ///< enc[s] * Wa, cached
  std::vector<std::size_t> src_lengths_;  ///< per-row mask; empty = no mask
  std::vector<tensor::MatrixView> d_encoder_;
  std::vector<StepCache> steps_;
  std::size_t backward_cursor_ = 0;  ///< steps remaining to backprop
  std::size_t batch_ = 0;
  tensor::Precision precision_ = tensor::Precision::kF32;  ///< per begin()
};

}  // namespace desmine::nn
