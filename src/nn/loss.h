// Fused softmax + cross-entropy loss.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace desmine::nn {

/// Computes mean-per-token softmax cross-entropy and its gradient in one
/// pass (the fused form is numerically stable: grad = softmax(logits) - 1hot).
///
/// `logits` is (batch x vocab); `targets` holds one class id per row; a
/// target of -1 marks a padded position that contributes neither loss nor
/// gradient. `grad_scale` multiplies the gradient (use 1/total_tokens when
/// summing losses across timesteps so the final gradient matches the mean
/// loss that is reported).
struct XentResult {
  double loss_sum = 0.0;       ///< summed negative log-likelihood
  std::size_t token_count = 0;  ///< rows with target != -1
};

XentResult softmax_xent(const tensor::Matrix& logits,
                        const std::vector<std::int32_t>& targets,
                        tensor::Matrix& dlogits, float grad_scale);

/// View variant: `dlogits` must be pre-shaped like `logits`; it is fully
/// overwritten (padded rows are zeroed).
XentResult softmax_xent(tensor::ConstMatrixView logits,
                        const std::vector<std::int32_t>& targets,
                        tensor::MatrixView dlogits, float grad_scale);

/// Row-wise argmax of logits (greedy decode step).
std::vector<std::int32_t> argmax_rows(tensor::ConstMatrixView logits);

}  // namespace desmine::nn
