#include "nn/linear.h"

#include "util/error.h"

namespace desmine::nn {

Linear::Linear(std::string name, std::size_t in, std::size_t out,
               util::Rng& rng, bool with_bias, float init_scale,
               WeightStorage storage)
    : weight_(name + ".W", in, out, storage),
      bias_(name + ".b", 1, out, storage),
      with_bias_(with_bias) {
  DESMINE_EXPECTS(in > 0 && out > 0, "linear dims must be > 0");
  if (storage == WeightStorage::kOwned) {
    weight_.value.init_uniform(rng, init_scale);
  }
}

tensor::Matrix Linear::forward(const tensor::Matrix& x) const {
  tensor::Matrix y(x.rows(), out_dim());
  forward_into(x, y);
  return y;
}

void Linear::forward_into(tensor::ConstMatrixView x, tensor::MatrixView y,
                          tensor::Precision precision) const {
  DESMINE_EXPECTS(x.cols() == in_dim(), "linear input dim mismatch");
  DESMINE_EXPECTS(y.rows() == x.rows() && y.cols() == out_dim(),
                  "linear output shape");
  if (precision == tensor::Precision::kInt8) {
    y.zero();
    tensor::gemm_i8_accum(x, weight_.quantized(), y);
  } else {
    tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kNo, 1.0f, x,
                 weight_.view(), 0.0f, y);
  }
  if (with_bias_) tensor::add_row_bias(y, bias_.view());
}

tensor::Matrix Linear::backward(const tensor::Matrix& x,
                                const tensor::Matrix& grad_out) {
  tensor::Matrix grad_in(x.rows(), in_dim());
  backward_into(x, grad_out, grad_in);
  return grad_in;
}

void Linear::backward_into(tensor::ConstMatrixView x,
                           tensor::ConstMatrixView grad_out,
                           tensor::MatrixView grad_in) {
  DESMINE_EXPECTS(grad_out.rows() == x.rows() && grad_out.cols() == out_dim(),
                  "linear backward shape");
  DESMINE_EXPECTS(grad_in.rows() == x.rows() && grad_in.cols() == in_dim(),
                  "linear backward grad_in shape");
  // dW += x^T * dy
  tensor::gemm(tensor::Transpose::kTrans, tensor::Transpose::kNo, 1.0f, x,
               grad_out, 1.0f, weight_.grad);
  if (with_bias_) {
    float* bg = bias_.grad.row(0);
    for (std::size_t r = 0; r < grad_out.rows(); ++r) {
      const float* g = grad_out.row(r);
      for (std::size_t c = 0; c < out_dim(); ++c) bg[c] += g[c];
    }
  }
  // dx = dy * W^T (grad_in is overwritten, like the fresh matrix the owning
  // overload allocates)
  tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kTrans, 1.0f,
               grad_out, weight_.view(), 0.0f, grad_in);
}

}  // namespace desmine::nn
