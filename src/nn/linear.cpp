#include "nn/linear.h"

#include "util/error.h"

namespace desmine::nn {

Linear::Linear(std::string name, std::size_t in, std::size_t out,
               util::Rng& rng, bool with_bias, float init_scale)
    : weight_(name + ".W", in, out),
      bias_(name + ".b", 1, out),
      with_bias_(with_bias) {
  DESMINE_EXPECTS(in > 0 && out > 0, "linear dims must be > 0");
  weight_.value.init_uniform(rng, init_scale);
}

tensor::Matrix Linear::forward(const tensor::Matrix& x) const {
  DESMINE_EXPECTS(x.cols() == in_dim(), "linear input dim mismatch");
  tensor::Matrix y(x.rows(), out_dim());
  tensor::matmul(x, weight_.value, y);
  if (with_bias_) tensor::add_row_bias(y, bias_.value);
  return y;
}

tensor::Matrix Linear::backward(const tensor::Matrix& x,
                                const tensor::Matrix& grad_out) {
  DESMINE_EXPECTS(grad_out.rows() == x.rows() && grad_out.cols() == out_dim(),
                  "linear backward shape");
  // dW += x^T * dy
  tensor::matmul_transA_accum(x, grad_out, weight_.grad);
  if (with_bias_) {
    float* bg = bias_.grad.row(0);
    for (std::size_t r = 0; r < grad_out.rows(); ++r) {
      const float* g = grad_out.row(r);
      for (std::size_t c = 0; c < out_dim(); ++c) bg[c] += g[c];
    }
  }
  // dx = dy * W^T
  tensor::Matrix grad_in(x.rows(), in_dim());
  tensor::matmul_transB_accum(grad_out, weight_.value, grad_in);
  return grad_in;
}

}  // namespace desmine::nn
