#include "nn/param.h"

#include <cmath>

namespace desmine::nn {

double ParamRegistry::grad_norm() const {
  double total = 0.0;
  for (const Param* p : params_) total += p->grad.squared_norm();
  return std::sqrt(total);
}

void ParamRegistry::clip_grad_norm(double max_norm) {
  const double norm = grad_norm();
  if (norm <= max_norm || norm == 0.0) return;
  const auto scale = static_cast<float>(max_norm / norm);
  for (Param* p : params_) p->grad *= scale;
}

}  // namespace desmine::nn
