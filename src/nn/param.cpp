#include "nn/param.h"

#include <cmath>
#include <mutex>

namespace desmine::nn {

namespace {

// One process-wide mutex guards quantized-view materialization; the path is
// hit once per tensor per model lifetime, so contention is irrelevant.
std::mutex& quant_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

const tensor::QuantizedTensor& Param::quantized() const {
  std::lock_guard<std::mutex> lock(quant_mutex());
  if (quant_ == nullptr) {
    quant_ = std::make_shared<const tensor::QuantizedTensor>(
        tensor::quantize_absmax(view()));
  }
  return *quant_;
}

void Param::invalidate_quantized() const {
  std::lock_guard<std::mutex> lock(quant_mutex());
  quant_.reset();
}

double ParamRegistry::grad_norm() const {
  double total = 0.0;
  for (const Param* p : params_) total += p->grad.squared_norm();
  return std::sqrt(total);
}

void ParamRegistry::clip_grad_norm(double max_norm) {
  const double norm = grad_norm();
  if (norm <= max_norm || norm == 0.0) return;
  const auto scale = static_cast<float>(max_norm / norm);
  for (Param* p : params_) p->grad *= scale;
}

}  // namespace desmine::nn
