#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/error.h"

namespace desmine::nn {

XentResult softmax_xent(const tensor::Matrix& logits,
                        const std::vector<std::int32_t>& targets,
                        tensor::Matrix& dlogits, float grad_scale) {
  if (!dlogits.same_shape(logits)) {
    dlogits = tensor::Matrix(logits.rows(), logits.cols());
  }
  return softmax_xent(tensor::ConstMatrixView(logits), targets,
                      tensor::MatrixView(dlogits), grad_scale);
}

XentResult softmax_xent(tensor::ConstMatrixView logits,
                        const std::vector<std::int32_t>& targets,
                        tensor::MatrixView dlogits, float grad_scale) {
  DESMINE_EXPECTS(targets.size() == logits.rows(),
                  "one target per logits row");
  DESMINE_EXPECTS(dlogits.same_shape(logits), "dlogits shape mismatch");
  const std::size_t V = logits.cols();
  dlogits.zero();

  XentResult result;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::int32_t target = targets[r];
    if (target < 0) continue;  // padded position
    DESMINE_EXPECTS(static_cast<std::size_t>(target) < V, "target id range");

    const float* row = logits.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < V; ++c) mx = std::max(mx, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < V; ++c) denom += std::exp(row[c] - mx);
    const double log_denom = std::log(denom);

    result.loss_sum += -(row[static_cast<std::size_t>(target)] - mx - log_denom);
    ++result.token_count;

    float* drow = dlogits.row(r);
    for (std::size_t c = 0; c < V; ++c) {
      const auto p =
          static_cast<float>(std::exp(row[c] - mx - log_denom));
      drow[c] = grad_scale * p;
    }
    drow[static_cast<std::size_t>(target)] -= grad_scale;
  }
  return result;
}

std::vector<std::int32_t> argmax_rows(tensor::ConstMatrixView logits) {
  // Thin owning wrapper over the dispatched kernel (strict >, first maximum
  // wins — bit-exact tie breaking in every backend).
  std::vector<std::int32_t> out(logits.rows());
  tensor::argmax_rows(logits, out.data());
  return out;
}

}  // namespace desmine::nn
