#include "nn/lstm.h"

#include <cmath>

#include "util/error.h"

namespace desmine::nn {

namespace {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LstmStack::LstmStack(const std::string& name, std::size_t input_dim,
                     std::size_t hidden_dim, std::size_t num_layers,
                     util::Rng& rng, float dropout, float init_scale)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), dropout_(dropout) {
  DESMINE_EXPECTS(input_dim > 0 && hidden_dim > 0 && num_layers > 0,
                  "lstm dims must be > 0");
  DESMINE_EXPECTS(dropout >= 0.0f && dropout < 1.0f, "dropout in [0,1)");
  layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const std::size_t in = (l == 0) ? input_dim : hidden_dim;
    Layer layer{
        Param(name + ".l" + std::to_string(l) + ".Wx", in, 4 * hidden_dim),
        Param(name + ".l" + std::to_string(l) + ".Wh", hidden_dim,
              4 * hidden_dim),
        Param(name + ".l" + std::to_string(l) + ".b", 1, 4 * hidden_dim)};
    layer.wx.value.init_uniform(rng, init_scale);
    layer.wh.value.init_uniform(rng, init_scale);
    // Forget-gate bias starts at 1 so early training does not flush memory.
    for (std::size_t cidx = hidden_dim; cidx < 2 * hidden_dim; ++cidx) {
      layer.b.value(0, cidx) = 1.0f;
    }
    layers_.push_back(std::move(layer));
  }
}

void LstmStack::begin(std::size_t batch, const LstmState* init, bool train,
                      util::Rng* dropout_rng) {
  DESMINE_EXPECTS(batch > 0, "lstm batch must be > 0");
  batch_ = batch;
  train_ = train;
  dropout_rng_ = dropout_rng;
  if (train_ && dropout_ > 0.0f) {
    DESMINE_EXPECTS(dropout_rng_ != nullptr,
                    "training with dropout needs an rng");
  }
  caches_.clear();
  state0_.h.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  state0_.c.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  if (init != nullptr && !init->empty()) {
    DESMINE_EXPECTS(init->h.size() == layers_.size(), "init state layer count");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      DESMINE_EXPECTS(init->h[l].rows() == batch &&
                          init->h[l].cols() == hidden_dim_,
                      "init state shape");
      state0_.h[l] = init->h[l];
      state0_.c[l] = init->c[l];
    }
  }
}

void LstmStack::step_layer(std::size_t l, const tensor::Matrix& input,
                           const tensor::Matrix& h_prev,
                           const tensor::Matrix& c_prev, LayerCache& cache) {
  const std::size_t H = hidden_dim_;
  tensor::Matrix z(batch_, 4 * H);
  tensor::matmul_accum(input, layers_[l].wx.value, z);
  tensor::matmul_accum(h_prev, layers_[l].wh.value, z);
  tensor::add_row_bias(z, layers_[l].b.value);

  cache.i = tensor::Matrix(batch_, H);
  cache.f = tensor::Matrix(batch_, H);
  cache.g = tensor::Matrix(batch_, H);
  cache.o = tensor::Matrix(batch_, H);
  cache.c = tensor::Matrix(batch_, H);
  cache.tanh_c = tensor::Matrix(batch_, H);
  cache.h = tensor::Matrix(batch_, H);

  for (std::size_t r = 0; r < batch_; ++r) {
    const float* zr = z.row(r);
    const float* cp = c_prev.row(r);
    float* ir = cache.i.row(r);
    float* fr = cache.f.row(r);
    float* gr = cache.g.row(r);
    float* orow = cache.o.row(r);
    float* cr = cache.c.row(r);
    float* tcr = cache.tanh_c.row(r);
    float* hr = cache.h.row(r);
    for (std::size_t k = 0; k < H; ++k) {
      ir[k] = sigmoidf(zr[k]);
      fr[k] = sigmoidf(zr[H + k]);
      gr[k] = std::tanh(zr[2 * H + k]);
      orow[k] = sigmoidf(zr[3 * H + k]);
      cr[k] = fr[k] * cp[k] + ir[k] * gr[k];
      tcr[k] = std::tanh(cr[k]);
      hr[k] = orow[k] * tcr[k];
    }
  }
}

const tensor::Matrix& LstmStack::step(const tensor::Matrix& x_t) {
  DESMINE_EXPECTS(x_t.rows() == batch_ && x_t.cols() == input_dim_,
                  "lstm step input shape");
  const std::size_t t = caches_.size();
  caches_.emplace_back(layers_.size());
  StepCache& sc = caches_.back();

  const tensor::Matrix* layer_in = &x_t;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    LayerCache& lc = sc[l];
    // Inverted dropout on the layer's (non-recurrent) input.
    lc.input = *layer_in;
    if (train_ && dropout_ > 0.0f) {
      lc.mask = tensor::Matrix(lc.input.rows(), lc.input.cols());
      const float keep = 1.0f - dropout_;
      for (std::size_t idx = 0; idx < lc.mask.size(); ++idx) {
        lc.mask.data()[idx] = dropout_rng_->bernoulli(keep) ? 1.0f / keep : 0.0f;
      }
      lc.input.hadamard(lc.mask);
    }
    const tensor::Matrix& h_prev =
        (t == 0) ? state0_.h[l] : caches_[t - 1][l].h;
    const tensor::Matrix& c_prev =
        (t == 0) ? state0_.c[l] : caches_[t - 1][l].c;
    step_layer(l, lc.input, h_prev, c_prev, lc);
    layer_in = &lc.h;
  }
  return sc.back().h;
}

LstmState LstmStack::state() const {
  DESMINE_EXPECTS(!caches_.empty() || !state0_.empty(), "no state yet");
  LstmState s;
  if (caches_.empty()) return state0_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.h.push_back(caches_.back()[l].h);
    s.c.push_back(caches_.back()[l].c);
  }
  return s;
}

const tensor::Matrix& LstmStack::output(std::size_t t) const {
  DESMINE_EXPECTS(t < caches_.size(), "output step out of range");
  return caches_[t].back().h;
}

LstmStack::BackwardResult LstmStack::backward(
    const std::vector<tensor::Matrix>& dh_top, const LstmState* dfinal) {
  const std::size_t T = caches_.size();
  const std::size_t L = layers_.size();
  const std::size_t H = hidden_dim_;
  DESMINE_EXPECTS(dh_top.size() == T, "dh_top must cover every step");

  BackwardResult result;
  result.dx.assign(T, tensor::Matrix());

  // Running gradients flowing backward through time, per layer.
  std::vector<tensor::Matrix> dh_next(L, tensor::Matrix(batch_, H));
  std::vector<tensor::Matrix> dc_next(L, tensor::Matrix(batch_, H));
  if (dfinal != nullptr && !dfinal->empty()) {
    DESMINE_EXPECTS(dfinal->h.size() == L, "dfinal layer count");
    for (std::size_t l = 0; l < L; ++l) {
      dh_next[l] += dfinal->h[l];
      dc_next[l] += dfinal->c[l];
    }
  }

  tensor::Matrix dz(batch_, 4 * H);
  for (std::size_t ti = T; ti-- > 0;) {
    // Gradient flowing into lower layers from the layer above at this step.
    tensor::Matrix d_from_above;
    for (std::size_t l = L; l-- > 0;) {
      const LayerCache& lc = caches_[ti][l];
      tensor::Matrix dh = std::move(dh_next[l]);
      if (l == L - 1 && dh_top[ti].rows() > 0) dh += dh_top[ti];
      if (l < L - 1 && d_from_above.rows() > 0) dh += d_from_above;
      tensor::Matrix dc = std::move(dc_next[l]);

      const tensor::Matrix& c_prev =
          (ti == 0) ? state0_.c[l] : caches_[ti - 1][l].c;

      // Gate gradients -> fused dz in [i f g o] layout.
      for (std::size_t r = 0; r < batch_; ++r) {
        const float* dhr = dh.row(r);
        float* dcr = dc.row(r);
        const float* ir = lc.i.row(r);
        const float* fr = lc.f.row(r);
        const float* gr = lc.g.row(r);
        const float* orow = lc.o.row(r);
        const float* tcr = lc.tanh_c.row(r);
        const float* cpr = c_prev.row(r);
        float* dzr = dz.row(r);
        for (std::size_t k = 0; k < H; ++k) {
          const float do_ = dhr[k] * tcr[k];
          dcr[k] += dhr[k] * orow[k] * (1.0f - tcr[k] * tcr[k]);
          const float di = dcr[k] * gr[k];
          const float df = dcr[k] * cpr[k];
          const float dg = dcr[k] * ir[k];
          dzr[k] = di * ir[k] * (1.0f - ir[k]);
          dzr[H + k] = df * fr[k] * (1.0f - fr[k]);
          dzr[2 * H + k] = dg * (1.0f - gr[k] * gr[k]);
          dzr[3 * H + k] = do_ * orow[k] * (1.0f - orow[k]);
          // Cell gradient for the previous timestep.
          dcr[k] *= fr[k];
        }
      }
      dc_next[l] = std::move(dc);

      // Parameter gradients.
      tensor::matmul_transA_accum(lc.input, dz, layers_[l].wx.grad);
      const tensor::Matrix& h_prev =
          (ti == 0) ? state0_.h[l] : caches_[ti - 1][l].h;
      tensor::matmul_transA_accum(h_prev, dz, layers_[l].wh.grad);
      {
        float* bg = layers_[l].b.grad.row(0);
        for (std::size_t r = 0; r < batch_; ++r) {
          const float* dzr = dz.row(r);
          for (std::size_t k = 0; k < 4 * H; ++k) bg[k] += dzr[k];
        }
      }

      // Gradient to previous hidden state.
      tensor::Matrix dh_prev(batch_, H);
      tensor::matmul_transB_accum(dz, layers_[l].wh.value, dh_prev);
      dh_next[l] = std::move(dh_prev);

      // Gradient to the layer input (dropout mask re-applied).
      tensor::Matrix din(batch_, lc.input.cols());
      tensor::matmul_transB_accum(dz, layers_[l].wx.value, din);
      if (lc.mask.rows() > 0) din.hadamard(lc.mask);
      if (l == 0) {
        result.dx[ti] = std::move(din);
      } else {
        d_from_above = std::move(din);
      }
    }
  }

  result.dstate0.h = std::move(dh_next);
  result.dstate0.c = std::move(dc_next);
  return result;
}

LstmState LstmStack::zero_state(std::size_t batch) const {
  LstmState s;
  s.h.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  s.c.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  return s;
}

tensor::Matrix LstmStack::infer_step(const tensor::Matrix& x_t,
                                     LstmState& state) const {
  DESMINE_EXPECTS(x_t.cols() == input_dim_, "infer_step input dim");
  DESMINE_EXPECTS(state.h.size() == layers_.size(), "infer_step state layers");
  const std::size_t B = x_t.rows();
  const std::size_t H = hidden_dim_;

  tensor::Matrix layer_in = x_t;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DESMINE_EXPECTS(state.h[l].rows() == B && state.h[l].cols() == H,
                    "infer_step state shape");
    tensor::Matrix z(B, 4 * H);
    tensor::matmul_accum(layer_in, layers_[l].wx.value, z);
    tensor::matmul_accum(state.h[l], layers_[l].wh.value, z);
    tensor::add_row_bias(z, layers_[l].b.value);

    tensor::Matrix h(B, H);
    for (std::size_t r = 0; r < B; ++r) {
      const float* zr = z.row(r);
      float* cr = state.c[l].row(r);
      float* hr = h.row(r);
      for (std::size_t k = 0; k < H; ++k) {
        const float i = sigmoidf(zr[k]);
        const float f = sigmoidf(zr[H + k]);
        const float g = std::tanh(zr[2 * H + k]);
        const float o = sigmoidf(zr[3 * H + k]);
        cr[k] = f * cr[k] + i * g;
        hr[k] = o * std::tanh(cr[k]);
      }
    }
    state.h[l] = h;
    layer_in = std::move(h);
  }
  return layer_in;
}

void LstmStack::register_params(ParamRegistry& reg) {
  for (auto& layer : layers_) {
    reg.add(&layer.wx);
    reg.add(&layer.wh);
    reg.add(&layer.b);
  }
}

}  // namespace desmine::nn
